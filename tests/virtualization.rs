//! Fully hardware-supported virtualization (§7.1.1): LDoms run with
//! identical LDom-physical address spaces, isolated purely by DS-id
//! tagging and control-plane address translation — no hypervisor.

use pard::prelude::*;
use pard_icn::LAddr;
use pard_workloads::{impl_engine_any, Op, WorkloadEngine};

fn small() -> PardServer {
    PardServer::new(SystemConfig::small_test())
}

/// Touches a fixed list of addresses once (blocking), then halts.
struct Toucher {
    addrs: Vec<u64>,
    i: usize,
}

impl Toucher {
    fn new(addrs: Vec<u64>) -> Self {
        Toucher { addrs, i: 0 }
    }
}

impl WorkloadEngine for Toucher {
    fn name(&self) -> &str {
        "toucher"
    }
    fn next_op(&mut self, _now: Time) -> Op {
        match self.addrs.get(self.i) {
            Some(&a) => {
                self.i += 1;
                Op::Load {
                    addr: LAddr::new(a),
                    blocking: true,
                }
            }
            None => Op::Halt,
        }
    }
    impl_engine_any!();
}

#[test]
fn ldoms_get_disjoint_machine_memory_despite_identical_laddrs() {
    let mut server = small();
    let a = server
        .create_ldom(LDomSpec::new("a", vec![0], 16 << 20))
        .unwrap();
    let b = server
        .create_ldom(LDomSpec::new("b", vec![1], 16 << 20))
        .unwrap();

    // Both touch LDom-physical address 0 — as two unmodified OSes would.
    server.install_engine(0, Box::new(Toucher::new(vec![0, 64, 128])));
    server.install_engine(1, Box::new(Toucher::new(vec![0, 64, 128])));
    server.launch(a).unwrap();
    server.launch(b).unwrap();
    server.run_for(Time::from_ms(2));

    // The memory control plane translated them to disjoint DRAM regions.
    let fw = server.firmware().lock();
    let (base_a, base_b) = (fw.ldom(a).unwrap().mem_base, fw.ldom(b).unwrap().mem_base);
    drop(fw);
    assert_ne!(base_a, base_b);
    // Both produced real memory traffic.
    assert!(server.mem_cp().lock().stat(a, "serv_cnt").unwrap() > 0);
    assert!(server.mem_cp().lock().stat(b, "serv_cnt").unwrap() > 0);
}

#[test]
fn llc_never_leaks_lines_between_ldoms_with_equal_addresses() {
    let mut server = small();
    let a = server
        .create_ldom(LDomSpec::new("a", vec![0], 16 << 20))
        .unwrap();
    let b = server
        .create_ldom(LDomSpec::new("b", vec![1], 16 << 20))
        .unwrap();
    let addrs: Vec<u64> = (0..64u64).map(|i| i * 64).collect();
    server.install_engine(0, Box::new(Toucher::new(addrs.clone())));
    server.install_engine(1, Box::new(Toucher::new(addrs)));
    server.launch(a).unwrap();
    server.launch(b).unwrap();
    server.run_for(Time::from_ms(5));

    // Both LDoms must MISS on every line: a hit on the other's lines
    // would be a cross-LDom data leak (paper footnote 4 forbids it).
    let (hits_a, misses_a) = server.llc_counts(a);
    let (hits_b, misses_b) = server.llc_counts(b);
    assert_eq!(hits_a, 0, "ldom a hit lines it never fetched");
    assert_eq!(hits_b, 0, "ldom b hit lines it never fetched");
    assert_eq!(misses_a, 64);
    assert_eq!(misses_b, 64);
    // And both own their copies in the LLC simultaneously.
    assert_eq!(server.llc_occupancy_bytes(a), 64 * 64);
    assert_eq!(server.llc_occupancy_bytes(b), 64 * 64);
}

#[test]
fn destroy_and_recreate_recycles_resources() {
    let mut server = small();
    let a = server
        .create_ldom(LDomSpec::new("a", vec![0], 32 << 20))
        .unwrap();
    server.install_engine(0, Box::new(Toucher::new(vec![0])));
    server.launch(a).unwrap();
    server.run_for(Time::from_ms(1));
    server.firmware().lock().destroy_ldom(a).unwrap();

    // Memory freed: a full-size LDom fits again; DS-ids keep advancing.
    let b = server
        .create_ldom(LDomSpec::new("b", vec![1], 32 << 20))
        .unwrap();
    assert_eq!(b, DsId::new(1));
    let fw = server.firmware().lock();
    assert_eq!(fw.ldom(b).unwrap().mem_base, 0, "freed region was reused");
    assert!(fw.ldom(a).is_none());
}

#[test]
fn priority_spec_programs_the_memory_control_plane() {
    let mut server = small();
    let hi = server
        .create_ldom(LDomSpec::new("hi", vec![0], 16 << 20).high_priority())
        .unwrap();
    let lo = server
        .create_ldom(LDomSpec::new("lo", vec![1], 16 << 20))
        .unwrap();
    let cp = server.mem_cp().lock();
    assert_eq!(cp.param(hi, "priority").unwrap(), 1);
    assert_eq!(cp.param(hi, "rowbuf").unwrap(), 1);
    assert_eq!(cp.param(lo, "priority").unwrap(), 0);
    drop(cp);
    let fw = server.firmware().lock();
    assert_eq!(fw.ldom(hi).unwrap().spec.priority, Priority::High);
}

#[test]
fn out_of_memory_and_ds_exhaustion_are_reported() {
    let mut server = small();
    // small_test has 8 GB DRAM and 16 DS-ids.
    let err = server
        .create_ldom(LDomSpec::new("huge", vec![0], u64::MAX / 2))
        .unwrap_err();
    assert!(err.to_string().contains("out of machine memory"));

    for i in 0..16 {
        server
            .create_ldom(LDomSpec::new(format!("l{i}"), vec![0], 1 << 20))
            .unwrap();
    }
    let err = server
        .create_ldom(LDomSpec::new("one-too-many", vec![0], 1 << 20))
        .unwrap_err();
    assert!(err.to_string().contains("DS-id"));
}

#[test]
fn core_tag_registers_are_loaded_by_the_prm() {
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("t", vec![1], 16 << 20))
        .unwrap();
    assert_eq!(ds, DsId::new(0));
    // Before the PRM polls, the tag register still holds the default.
    assert_eq!(server.with_core(1, |c| c.tag()), DsId::DEFAULT);
    server.run_for(Time::from_ms(1));
    assert_eq!(server.with_core(1, |c| c.tag()), ds);
}
