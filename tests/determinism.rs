//! Cross-crate determinism: the RNG streams exposed through the prelude
//! drive the workload generators identically on every run.

use pard::prelude::*;
use pard_workloads::{PoissonArrivals, Zipf};

/// A Zipf sampler built `from_rng` off a prelude-derived stream replays
/// exactly when the parent stream is rebuilt — across the crate boundary
/// between `pard-sim` (RNG), `pard-workloads` (sampler), and `pard`
/// (prelude re-export).
#[test]
fn seeded_generators_replay_across_crates() {
    let draw = |seed: u64| -> (Vec<u64>, Vec<u64>) {
        let mut parent = stream_rng(seed, "experiment");
        let mut zipf = Zipf::from_rng(1000, 1.2, &mut parent);
        let mut poisson = PoissonArrivals::from_rng(1e6, &mut parent);
        (
            (0..64).map(|_| zipf.sample()).collect(),
            (0..64).map(|_| poisson.next_arrival().units()).collect(),
        )
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43), "different seeds must diverge");
}

/// Two servers built from equal configs (same seed) expose equal config
/// state; the seed travels with the config.
#[test]
fn config_seed_is_plumbed() {
    let cfg = SystemConfig::builder().seed(99).build();
    assert_eq!(cfg.seed, 99);
    let server = PardServer::new(cfg.clone());
    assert_eq!(server.now(), Time::ZERO);
    // The seed names streams: deriving the same stream twice agrees.
    let a: Vec<u64> = {
        let mut r = stream_rng(cfg.seed, "workload.zipf");
        (0..8).map(|_| r.next_u64()).collect()
    };
    let b: Vec<u64> = {
        let mut r = stream_rng(99, "workload.zipf");
        (0..8).map(|_| r.next_u64()).collect()
    };
    assert_eq!(a, b);
}
