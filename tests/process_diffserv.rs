//! Process-level DiffServ (the paper's §10 open problem): an OS-scheduler
//! model time-shares two "processes" on one core, loading the core's DS-id
//! tag register at each context switch — and the control planes then
//! differentiate the two processes like any pair of LDoms.

use pard::prelude::*;
use pard_sim::Time as SimTime;
use pard_workloads::{CacheFlush, TimeShared};

fn server_with_timeshared_core() -> PardServer {
    let mut server = PardServer::new(SystemConfig::small_test());
    // Two LDoms exist purely as resource principals (DS-ids 0 and 1);
    // both "run" on core 0, scheduled by the TimeShared engine.
    server
        .create_ldom(LDomSpec::new("proc-a", vec![0], 16 << 20))
        .unwrap();
    server
        .create_ldom(LDomSpec::new("proc-b", vec![], 16 << 20))
        .unwrap();
    server.install_engine(
        0,
        Box::new(TimeShared::new(
            vec![
                (0, Box::new(CacheFlush::new(0, 96 << 10))),
                (1, Box::new(CacheFlush::new(0, 96 << 10))),
            ],
            SimTime::from_us(100),
        )),
    );
    server.launch(DsId::new(0)).unwrap();
    server
}

#[test]
fn both_processes_accumulate_their_own_statistics() {
    let mut server = server_with_timeshared_core();
    server.run_for(Time::from_ms(5));

    // Each process's traffic was tagged with its own DS-id: both rows of
    // the LLC statistics show activity.
    let (h0, m0) = server.llc_counts(DsId::new(0));
    let (h1, m1) = server.llc_counts(DsId::new(1));
    assert!(h0 + m0 > 100, "process A produced LLC traffic");
    assert!(h1 + m1 > 100, "process B produced LLC traffic");

    // Memory statistics likewise split per process.
    let s0 = server
        .mem_cp()
        .lock()
        .stat(DsId::new(0), "serv_cnt")
        .unwrap();
    let s1 = server
        .mem_cp()
        .lock()
        .stat(DsId::new(1), "serv_cnt")
        .unwrap();
    assert!(s0 > 0 && s1 > 0);
}

#[test]
fn per_process_way_masks_partition_the_llc_within_one_core() {
    let mut server = server_with_timeshared_core();
    // Process 0 gets 12 ways, process 1 gets 4 — per *process*, not per
    // core: the same `echo` interface as LDom-level management.
    server
        .shell("echo 0x0FFF > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
        .unwrap();
    server
        .shell("echo 0xF000 > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask")
        .unwrap();
    server.run_for(Time::from_ms(6));

    let occ0 = server.llc_occupancy_bytes(DsId::new(0));
    let occ1 = server.llc_occupancy_bytes(DsId::new(1));
    // 4-way partition = 64 KB of the 256 KB test LLC; process 1's 96 KB
    // working set cannot exceed it (+ small transient slack).
    assert!(
        occ1 <= 72 << 10,
        "process B escaped its 4-way partition: {occ1}"
    );
    assert!(occ0 > occ1, "process A should hold more: {occ0} vs {occ1}");
}

#[test]
fn context_switches_retag_the_live_core() {
    let mut server = server_with_timeshared_core();
    server.run_for(Time::from_ms(1));
    let tag_then = server.with_core(0, |c| c.tag());
    // Half a slice later the other process should have been on the core at
    // least once; sample a few times and expect both tags observed.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..20 {
        server.run_for(Time::from_us(60));
        seen.insert(server.with_core(0, |c| c.tag()));
    }
    assert!(
        seen.len() >= 2,
        "both process tags observed: {seen:?} (first {tag_then:?})"
    );
}
