//! End-to-end integration tests: the assembled machine, from workload
//! engines through caches, DRAM, I/O, and the PRM firmware.

use pard::prelude::*;
use pard_icn::{NetFrame, PardEvent};
use pard_workloads::{
    CacheFlush, DiskCopy, DiskCopyConfig, Memcached, MemcachedConfig, PointerChase, Stream,
    StreamConfig,
};

fn small() -> PardServer {
    PardServer::new(SystemConfig::small_test())
}

#[test]
fn full_stack_stream_reaches_dram_and_stats_flow() {
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("s", vec![0], 64 << 20))
        .unwrap();
    server.install_engine(
        0,
        Box::new(Stream::new(StreamConfig {
            array_bytes: 1 << 20,
            base: 0,
            compute_per_block: 8,
        })),
    );
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(3));

    // Statistics must appear consistently at every level of the stack.
    let stats = server.core_stats(0);
    assert!(stats.loads > 0 && stats.stores > 0);
    let (hits, misses) = server.llc_counts(ds);
    assert!(misses > 0, "streaming must miss the LLC");
    assert!(
        hits + misses <= stats.l1_misses + 16,
        "LLC traffic from L1 misses"
    );
    let mem_bw = server.mem_cp().lock().stat(ds, "bandwidth").unwrap();
    assert!(mem_bw > 0, "memory control plane observed bandwidth");
    let served = server.mem_cp().lock().stat(ds, "serv_cnt").unwrap();
    assert!(served > 0);
}

#[test]
fn disk_path_exercises_dma_tagging_and_interrupt_routing() {
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("dd", vec![1], 32 << 20))
        .unwrap();
    server.install_engine(
        1,
        Box::new(DiskCopy::new(DiskCopyConfig {
            disk: 0,
            block_bytes: 1 << 20,
            count: 4,
            ..DiskCopyConfig::default()
        })),
    );
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(40));

    // The copy completed: the engine halted via the interrupt path.
    assert!(server.with_core(1, |c| c.is_halted()), "dd finished");
    assert_eq!(server.disk_progress(ds).bytes_done, 4 << 20);
    assert_eq!(server.disk_progress(ds).requests_done, 4);
    // The DMA traffic was tagged and accounted at the bridge.
    let dma = server.bridge_cp().lock().stat(ds, "dma_bytes").unwrap();
    assert_eq!(dma, 4 << 20);
}

#[test]
fn disk_reads_dma_into_memory() {
    // The from-device direction: DMA writes toward memory, same tagging.
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("reader", vec![0], 32 << 20))
        .unwrap();
    server.install_engine(
        0,
        Box::new(DiskCopy::new(DiskCopyConfig {
            disk: 2,
            kind: pard_icn::DiskKind::Read,
            block_bytes: 1 << 20,
            count: 2,
            ..DiskCopyConfig::default()
        })),
    );
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(30));
    assert!(server.with_core(0, |c| c.is_halted()));
    assert_eq!(server.disk_progress(ds).bytes_done, 2 << 20);
    // The receive DMA reached DRAM as tagged write traffic.
    let served = server.mem_cp().lock().stat(ds, "serv_cnt").unwrap();
    assert!(served > 0, "DMA writes must reach the memory controller");
}

#[test]
fn nic_frames_land_in_the_right_ldom() {
    let mut server = small();
    let mac = [2, 0, 0, 0, 0, 9];
    let ds = server
        .create_ldom(LDomSpec::new("net", vec![0], 32 << 20).with_mac(mac))
        .unwrap();
    server.run_for(Time::from_ms(1)); // PRM programs the v-NIC
    let nic = server.nic_id();
    server.post(
        nic,
        Time::ZERO,
        PardEvent::NetFrame(NetFrame {
            dst_mac: mac,
            bytes: 1500,
            arrived_at: Time::ZERO,
        }),
    );
    server.run_for(Time::from_ms(3));
    assert_eq!(server.nic_cp().lock().stat(ds, "frames").unwrap(), 1);
    assert_eq!(server.nic_cp().lock().stat(ds, "bytes").unwrap(), 1500);
    assert_eq!(
        server.bridge_cp().lock().stat(ds, "dma_bytes").unwrap(),
        1500
    );
}

#[test]
fn memcached_completes_requests_against_the_real_memory_system() {
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("mc", vec![0], 64 << 20))
        .unwrap();
    server.install_engine(
        0,
        Box::new(Memcached::new(MemcachedConfig {
            rps: 50_000.0,
            items: 64,
            value_lines: 16,
            buffer_lines: 8,
            meta_loads: 4,
            client_compute: 2_000,
            hash_compute: 1_000,
            resp_compute: 2_000,
            warmup: Time::from_ms(1),
            ..MemcachedConfig::default()
        })),
    );
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(20));
    let report = server.with_engine::<Memcached, _>(0, |m| m.report());
    assert!(report.completed > 200, "completed {}", report.completed);
    assert!(report.p95 > Time::ZERO);
    assert!(report.p95 >= report.mean);
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut server = small();
        let ds = server
            .create_ldom(LDomSpec::new("m", vec![0], 64 << 20))
            .unwrap();
        server.install_engine(
            0,
            Box::new(Memcached::new(MemcachedConfig {
                rps: 50_000.0,
                items: 64,
                value_lines: 16,
                buffer_lines: 8,
                warmup: Time::ZERO,
                seed: 7,
                ..MemcachedConfig::default()
            })),
        );
        server.launch(ds).unwrap();
        server.run_for(Time::from_ms(10));
        let report = server.with_engine::<Memcached, _>(0, |m| m.report());
        (
            report.completed,
            report.p95,
            server.events_processed(),
            server.llc_counts(ds),
        )
    };
    assert_eq!(run(), run(), "same seed must give bit-identical runs");
}

#[test]
fn waymask_repartition_through_the_shell_shifts_occupancy() {
    let mut server = small();
    let a = server
        .create_ldom(LDomSpec::new("a", vec![0], 32 << 20))
        .unwrap();
    let b = server
        .create_ldom(LDomSpec::new("b", vec![1], 32 << 20))
        .unwrap();
    server.install_engine(0, Box::new(CacheFlush::new(0, 1 << 20)));
    server.install_engine(1, Box::new(CacheFlush::new(0, 1 << 20)));
    server.launch(a).unwrap();
    server.launch(b).unwrap();
    server.run_for(Time::from_ms(2));

    let occ_before = server.llc_occupancy_bytes(a);
    server
        .shell("echo 0xFFF0 > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
        .unwrap();
    server
        .shell("echo 0x000F > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask")
        .unwrap();
    server.run_for(Time::from_ms(3));
    let occ_a = server.llc_occupancy_bytes(a);
    let occ_b = server.llc_occupancy_bytes(b);
    assert!(
        occ_a > occ_b * 2,
        "12/4 partition not visible: a={occ_a} b={occ_b} (before: {occ_before})"
    );
}

#[test]
fn cpu_utilization_tracks_active_cores() {
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("one", vec![0], 32 << 20))
        .unwrap();
    server.install_engine(0, Box::new(CacheFlush::new(0, 1 << 20)));
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(2));
    let util = server.cpu_utilization();
    // One of two test cores busy: ~50%.
    assert!(
        (0.35..=0.65).contains(&util),
        "expected ~0.5 utilisation, got {util}"
    );
}

#[test]
fn destroy_ldom_flushes_llc_lines() {
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("gone", vec![0], 32 << 20))
        .unwrap();
    server.install_engine(0, Box::new(CacheFlush::new(0, 128 << 10)));
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(2));
    assert!(server.llc_occupancy_bytes(ds) > 0);
    server.destroy_ldom(ds).unwrap();
    assert_eq!(
        server.llc_occupancy_bytes(ds),
        0,
        "teardown must reclaim the departing LDom's lines"
    );
}

#[test]
fn compression_extension_is_programmable_per_ldom() {
    // The §8 functionality extension through the operator surface.
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("mxt", vec![0], 32 << 20))
        .unwrap();
    server
        .shell("echo 1 > /sys/cpa/cpa1/ldoms/ldom0/parameters/compress")
        .unwrap();
    assert_eq!(server.mem_cp().lock().param(ds, "compress").unwrap(), 1);
    // Statistics column exists and starts at zero.
    assert_eq!(
        server
            .shell("cat /sys/cpa/cpa1/ldoms/ldom0/statistics/comp_saved")
            .unwrap(),
        "0"
    );
}

#[test]
fn memory_priority_protects_load_latency_end_to_end() {
    // The full-stack version of Figure 11: a latency-critical pointer
    // chaser shares the machine with a bandwidth hog; granting it
    // high memory priority (and the HP row buffer) must cut its observed
    // load latency.
    let run = |high_priority: bool| {
        let mut server = small();
        let spec = LDomSpec::new("chaser", vec![0], 32 << 20);
        let spec = if high_priority {
            spec.high_priority()
        } else {
            spec
        };
        let chaser = server.create_ldom(spec).unwrap();
        let hog = server
            .create_ldom(LDomSpec::new("hog", vec![1], 32 << 20))
            .unwrap();
        // 16 MB walk: misses both caches, every load exposes DRAM.
        server.install_engine(0, Box::new(PointerChase::new(0, 16 << 20, 3)));
        server.install_engine(
            1,
            Box::new(Stream::new(StreamConfig {
                array_bytes: 4 << 20,
                base: 0,
                compute_per_block: 8,
            })),
        );
        server.launch(chaser).unwrap();
        server.launch(hog).unwrap();
        server.run_for(Time::from_ms(4));
        server.with_core(0, |c| {
            c.with_engine::<PointerChase, _>(|e| (e.loads(), e.mean_load_latency()))
        })
    };
    let (n_lo, lat_lo) = run(false);
    let (n_hi, lat_hi) = run(true);
    assert!(n_lo > 1_000 && n_hi > 1_000, "chasers made progress");
    assert!(
        lat_hi < lat_lo,
        "high priority must cut load latency: {lat_hi} !< {lat_lo}"
    );
    // And more loads complete in the same span.
    assert!(n_hi > n_lo);
}

#[test]
fn firmware_log_records_ldom_lifecycle() {
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("logged", vec![0], 32 << 20))
        .unwrap();
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(1));
    server.firmware().lock().destroy_ldom(ds).unwrap();
    let log = server.shell("logread").unwrap();
    assert!(log.contains("created logged as ldom0"));
    assert!(log.contains("launched ldom0"));
    assert!(log.contains("destroyed ldom0"));
}
