//! The "trigger ⇒ action" methodology end to end, across crates: hardware
//! trigger tables, the control-plane-network interrupt, PRM polling, and
//! pardscript / native handlers reprogramming parameter tables.

use pard::prelude::*;
use pard_icn::LAddr;
use pard_workloads::{impl_engine_any, CacheFlush, Leslie3dProxy, Op, WorkloadEngine};

/// Sweeps a buffer, then idles in compute for a while — a latency-critical
/// service's duty cycle. The compute gap gives an aggressor time to evict
/// the working set, so LLC contention shows up as a miss-rate spike at the
/// next sweep (unlike a tight flush loop, which self-protects by constant
/// re-touching).
struct PhasedSweeper {
    base: u64,
    lines: u64,
    i: u64,
    gap_cycles: u64,
}

impl WorkloadEngine for PhasedSweeper {
    fn name(&self) -> &str {
        "phased-sweeper"
    }
    fn next_op(&mut self, _now: Time) -> Op {
        if self.i == self.lines {
            self.i = 0;
            return Op::Compute(self.gap_cycles);
        }
        let addr = LAddr::new(self.base + self.i * 64);
        self.i += 1;
        Op::Load {
            addr,
            blocking: true,
        }
    }
    impl_engine_any!();
}

fn small() -> PardServer {
    PardServer::new(SystemConfig::small_test())
}

/// Installs the canonical Figure 9 rule through the public shell surface.
fn install_rule(server: &mut PardServer, script: &str) {
    server
        .shell("pardtrigger /dev/cpa0 -ldom=0 -action=0 -stats=miss_rate -cond=gt,30")
        .expect("pardtrigger");
    server
        .firmware()
        .lock()
        .register_action("/cpa0_ldom0_t0.sh", Action::Script(script.to_string()));
    server
        .shell("echo /cpa0_ldom0_t0.sh > /sys/cpa/cpa0/ldoms/ldom0/triggers/0")
        .expect("bind");
}

#[test]
fn llc_trigger_fires_and_script_repartitions_the_cache() {
    let mut server = small();
    let victim = server
        .create_ldom(LDomSpec::new("victim", vec![0], 16 << 20))
        .unwrap();
    let bully = server
        .create_ldom(LDomSpec::new("bully", vec![1], 16 << 20))
        .unwrap();
    // small_test LLC is 256 KB / 16-way; the victim's 96 KB working set
    // exceeds the 64 KB L1 (so the LLC stays on its path) and fits its
    // future 8-way / 128 KB partition. The 500 µs compute gap between
    // sweeps lets the bully evict it, as co-located batch work would.
    server.install_engine(
        0,
        Box::new(PhasedSweeper {
            base: 0,
            lines: (96 << 10) / 64,
            i: 0,
            gap_cycles: 1_000_000,
        }),
    );
    server.install_engine(1, Box::new(CacheFlush::new(0, 2 << 20)));

    server.launch(victim).unwrap();
    server.run_for(Time::from_ms(3)); // warm: victim all-hits after pass 1
    install_rule(
        &mut server,
        r#"
log "protecting ldom $DS"
echo 0xFF00 > /sys/cpa/cpa$CPA/ldoms/ldom$DS/parameters/waymask
echo 0x00FF > /sys/cpa/cpa$CPA/ldoms/ldom1/parameters/waymask
"#,
    );

    server.launch(bully).unwrap();
    server.run_for(Time::from_ms(10));

    let mask = server.llc_cp().lock().param(victim, "waymask").unwrap();
    assert_eq!(mask, 0xFF00, "the script reprogrammed the victim's ways");
    let bully_mask = server.llc_cp().lock().param(bully, "waymask").unwrap();
    assert_eq!(bully_mask, 0x00FF);
    assert!(server
        .shell("logread")
        .unwrap()
        .contains("protecting ldom 0"));

    // With half the LLC protected, the victim's occupancy recovers and is
    // bounded by its partition.
    server.run_for(Time::from_ms(5));
    let occ = server.llc_occupancy_bytes(victim);
    assert!(occ >= 48 << 10, "victim reclaimed its working set: {occ}");
    // The bully is confined to its 8 ways (128 KB) for new fills; stale
    // bully lines persist in the victim's partition until the victim's
    // sweeps displace them, so allow that residue.
    assert!(server.llc_occupancy_bytes(bully) <= 192 << 10);
}

#[test]
fn native_actions_can_drive_any_resource_from_any_trigger() {
    // The paper: "trigger and action can be designated to different
    // resources" — a memory-latency trigger adjusting the LLC.
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("x", vec![0], 16 << 20))
        .unwrap();
    server.install_engine(0, Box::new(Leslie3dProxy::new(0)));

    {
        let mut fw = server.firmware().lock();
        // Trigger on the MEMORY control plane (cpa1): avg queueing latency.
        fw.pardtrigger(1, ds, 0, "avg_qlat", CmpOp::Ge, 0).unwrap();
        fw.register_action(
            "cross-resource",
            Action::Native(Box::new(|fw, env| {
                // Act on the CACHE control plane (cpa0).
                let path = format!(
                    "/sys/cpa/cpa0/ldoms/ldom{}/parameters/waymask",
                    env.ds.raw()
                );
                fw.write(&path, "0x3").unwrap();
                fw.log("cross-resource action ran");
            })),
        );
        fw.write("/sys/cpa/cpa1/ldoms/ldom0/triggers/0", "cross-resource")
            .unwrap();
    }
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(5));

    assert_eq!(server.llc_cp().lock().param(ds, "waymask").unwrap(), 0x3);
    assert!(server
        .shell("logread")
        .unwrap()
        .contains("cross-resource action ran"));
}

#[test]
fn trigger_reaction_latency_is_bounded_by_the_prm_poll() {
    let mut cfg = SystemConfig::small_test();
    cfg.prm_poll = Time::from_us(50);
    let mut server = PardServer::new(cfg);
    let ds = server
        .create_ldom(LDomSpec::new("x", vec![0], 16 << 20))
        .unwrap();
    {
        let mut fw = server.firmware().lock();
        fw.pardtrigger(0, ds, 0, "miss_rate", CmpOp::Ge, 0).unwrap();
        fw.register_action(
            "stamp",
            Action::Native(Box::new(|fw, env| {
                fw.log(format!("fired at {}", env.now));
            })),
        );
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/triggers/0", "stamp")
            .unwrap();
    }
    server.install_engine(0, Box::new(CacheFlush::new(0, 64 << 10)));
    server.launch(ds).unwrap();
    // First LLC window (20 µs) evaluates the trigger; the PRM services it
    // within one poll (50 µs): total well under 200 µs.
    server.run_for(Time::from_us(200));
    assert!(server.shell("logread").unwrap().contains("fired at"));
}

#[test]
fn triggers_latch_and_rearm_when_the_condition_clears() {
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("x", vec![0], 16 << 20))
        .unwrap();
    let cp = server.llc_cp().clone();
    {
        let mut fw = server.firmware().lock();
        fw.pardtrigger(0, ds, 0, "miss_rate", CmpOp::Gt, 50)
            .unwrap();
        fw.register_action("count", Action::Native(Box::new(|fw, _| fw.log("fired"))));
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/triggers/0", "count")
            .unwrap();
    }
    // Drive the statistics by hand to control the condition exactly.
    let fire_count =
        |server: &mut PardServer| server.shell("logread").unwrap().matches("fired").count();
    for (rate, expected_total) in [(80u64, 1usize), (90, 1), (10, 1), (80, 2)] {
        {
            let mut plane = cp.lock();
            let key = plane.stats().key("miss_rate").unwrap();
            plane.stats().set(ds, key, rate).unwrap();
            plane.evaluate_triggers(ds, server.now());
        }
        server.run_for(Time::from_ms(1));
        assert_eq!(fire_count(&mut server), expected_total, "at rate {rate}");
    }
}

#[test]
fn memory_latency_trigger_raises_scheduling_priority() {
    // Table 3's third rule: "memory latency => scheduling priority". When
    // an LDom's average queueing latency crosses the threshold, the
    // handler promotes it to the high-priority class (and grants the
    // high-priority row buffer).
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("suffering", vec![0], 16 << 20))
        .unwrap();
    server.install_engine(0, Box::new(CacheFlush::new(0, 2 << 20)));
    {
        let mut fw = server.firmware().lock();
        // cpa1 = MEMORY_CP; avg_qlat in memory cycles.
        fw.pardtrigger(1, ds, 0, "avg_qlat", CmpOp::Gt, 8).unwrap();
        fw.register_action(
            "promote",
            Action::Script(
                r#"
log "promoting ldom $DS to high memory priority"
echo 1 > /sys/cpa/cpa1/ldoms/ldom$DS/parameters/priority
echo 1 > /sys/cpa/cpa1/ldoms/ldom$DS/parameters/rowbuf
"#
                .to_string(),
            ),
        );
        fw.write("/sys/cpa/cpa1/ldoms/ldom0/triggers/0", "promote")
            .unwrap();
    }
    // Drive the condition deterministically through the statistics table.
    {
        let cp = server.mem_cp().clone();
        let mut plane = cp.lock();
        let key = plane.stats().key("avg_qlat").unwrap();
        plane.stats().set(ds, key, 40).unwrap();
        plane.evaluate_triggers(ds, Time::ZERO);
    }
    server.run_for(Time::from_ms(1));
    let cp = server.mem_cp().lock();
    assert_eq!(cp.param(ds, "priority").unwrap(), 1);
    assert_eq!(cp.param(ds, "rowbuf").unwrap(), 1);
}

#[test]
fn machine_survives_a_dead_prm() {
    // Failure injection: the PRM never polls (its initial tick is the
    // only one, and we never let simulated time reach it by stopping the
    // poll chain — modelled by an absurdly long poll interval). Data-path
    // QoS keeps working; only trigger *actions* are deferred.
    let mut cfg = SystemConfig::small_test();
    cfg.prm_poll = Time::from_secs(3600);
    let mut server = PardServer::new(cfg);
    let ds = server
        .create_ldom(LDomSpec::new("x", vec![0], 16 << 20))
        .unwrap();
    server.install_engine(0, Box::new(CacheFlush::new(0, 64 << 10)));
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(2));
    // The core was started by the PRM's single initial tick; the machine
    // runs and statistics flow even though no further polls happen.
    assert!(server.core_stats(0).stores > 1000);
    let (hits, misses) = server.llc_counts(ds);
    assert!(hits + misses > 0);
}

#[test]
fn zero_waymask_does_not_deadlock_the_cache() {
    // Failure injection: a misprogrammed all-zero way mask must fall back
    // to all ways rather than wedging fills.
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("x", vec![0], 16 << 20))
        .unwrap();
    server.install_engine(0, Box::new(CacheFlush::new(0, 64 << 10)));
    server
        .shell("echo 0 > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
        .unwrap();
    server.launch(ds).unwrap();
    server.run_for(Time::from_ms(2));
    assert!(server.llc_occupancy_bytes(ds) > 0, "fills still land");
}

#[test]
fn oversubscribed_disk_quotas_are_normalised() {
    // Failure injection: quotas summing past 100% are scaled, not panicked.
    let mut server = small();
    for i in 0..2usize {
        server
            .create_ldom(LDomSpec::new(format!("d{i}"), vec![i], 16 << 20).disk_quota(90))
            .unwrap();
        server.install_engine(
            i,
            Box::new(pard_workloads::DiskCopy::new(
                pard_workloads::DiskCopyConfig {
                    disk: i as u8,
                    block_bytes: 1 << 20,
                    count: 64,
                    ..pard_workloads::DiskCopyConfig::default()
                },
            )),
        );
        server.launch(pard::DsId::new(i as u16)).unwrap();
    }
    server.run_for(Time::from_ms(50));
    let p0 = server.disk_progress(pard::DsId::new(0)).bytes_done as f64;
    let p1 = server.disk_progress(pard::DsId::new(1)).bytes_done as f64;
    assert!(p0 > 0.0 && p1 > 0.0);
    let ratio = p0 / p1;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "90/90 normalises to ~50/50: {ratio}"
    );
}

#[test]
fn pardtrigger_rejects_bad_input() {
    let mut server = small();
    server
        .create_ldom(LDomSpec::new("x", vec![0], 16 << 20))
        .unwrap();
    assert!(server
        .shell("pardtrigger /dev/cpa0 -ldom=0 -action=0 -stats=nonexistent -cond=gt,30")
        .is_err());
    assert!(server
        .shell("pardtrigger /dev/cpa9 -ldom=0 -action=0 -stats=miss_rate -cond=gt,30")
        .is_err());
    assert!(server
        .shell("pardtrigger /dev/cpa0 -ldom=0 -action=0 -stats=miss_rate -cond=wat,30")
        .is_err());
    assert!(server.shell("pardtrigger /dev/cpa0 -ldom=0").is_err());
}

#[test]
fn unbound_trigger_interrupts_are_logged_not_fatal() {
    let mut server = small();
    let ds = server
        .create_ldom(LDomSpec::new("x", vec![0], 16 << 20))
        .unwrap();
    // Install the trigger but never bind an action.
    server
        .shell("pardtrigger /dev/cpa0 -ldom=0 -action=0 -stats=miss_rate -cond=ge,0")
        .unwrap();
    {
        let cp = server.llc_cp().clone();
        let mut plane = cp.lock();
        let key = plane.stats().key("miss_rate").unwrap();
        plane.stats().set(ds, key, 99).unwrap();
        plane.evaluate_triggers(ds, Time::ZERO);
    }
    server.run_for(Time::from_ms(1));
    let log = server.shell("logread").unwrap();
    assert!(
        log.contains("interrupt dispatch failed"),
        "missing dispatch-failure log: {log}"
    );
}
