#!/usr/bin/env bash
# Hermetic CI: the workspace must build and test fully offline, and no
# crate manifest may reintroduce a registry dependency.
set -euo pipefail
cd "$(dirname "$0")"

echo "== checking crate manifests for registry dependencies =="
# Path-only policy: every dependency line must be a workspace/path dep.
if grep -rn "rand\|proptest\|criterion\|crossbeam\|parking_lot\|serde" crates/*/Cargo.toml; then
    echo "error: registry dependency found in a crate manifest" >&2
    exit 1
fi
if grep -n "version *= *\"[0-9]" crates/*/Cargo.toml | grep -v "version.workspace"; then
    echo "error: versioned (registry) dependency found in a crate manifest" >&2
    exit 1
fi
echo "ok: path-only dependencies"

echo "== offline release build =="
cargo build --release --offline --workspace --bins --benches --examples

echo "== offline test suite =="
cargo test -q --offline --workspace

echo "CI green"
