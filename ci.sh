#!/usr/bin/env bash
# Hermetic CI: the workspace must build and test fully offline, and no
# crate manifest may reintroduce a registry dependency.
set -euo pipefail
cd "$(dirname "$0")"

echo "== checking crate manifests for registry dependencies =="
# Path-only policy: every dependency line must be a workspace/path dep.
if grep -rn "rand\|proptest\|criterion\|crossbeam\|parking_lot\|serde" crates/*/Cargo.toml; then
    echo "error: registry dependency found in a crate manifest" >&2
    exit 1
fi
if grep -n "version *= *\"[0-9]" crates/*/Cargo.toml | grep -v "version.workspace"; then
    echo "error: versioned (registry) dependency found in a crate manifest" >&2
    exit 1
fi
echo "ok: path-only dependencies"

echo "== offline release build =="
cargo build --release --offline --workspace --bins --benches --examples

echo "== offline test suite =="
cargo test -q --offline --workspace

echo "== parallel-runner determinism under PARD_THREADS=2 =="
# The suite asserts figure output is byte-identical across thread counts;
# run it with a constrained pool to exercise the scheduling seams too.
PARD_THREADS=2 cargo test -q --offline -p pard-bench --test determinism

echo "== event-queue / kernel events-per-sec smoke =="
# Must run to completion, write BENCH_kernel.json (kernel perf record),
# and pass the perf gate: dense-regime ladder speedups >= 1.0x, a
# recorded stats_record_mops, and — via PARD_BENCH_BASELINE — the fresh
# kernel-through-MemCtrl rate within 5% of the committed record, so the
# policy layer on the serve path cannot silently tax the kernel
# (--check exits non-zero otherwise). The committed record is snapshotted
# aside first because the bench rewrites BENCH_kernel.json in place.
baseline="$(mktemp)"
if [ -s BENCH_kernel.json ]; then
    cp BENCH_kernel.json "$baseline"
    export PARD_BENCH_BASELINE="$baseline"
fi
rm -f BENCH_kernel.json
cargo bench --offline -p pard-bench --bench event_queue -- --quick --check
unset PARD_BENCH_BASELINE
rm -f "$baseline"
if [ ! -s BENCH_kernel.json ]; then
    echo "error: event_queue bench did not write BENCH_kernel.json" >&2
    exit 1
fi
if ! grep -q '"stats_record_mops"' BENCH_kernel.json; then
    echo "error: BENCH_kernel.json is missing stats_record_mops" >&2
    exit 1
fi
if ! grep -q '"trace_store"' BENCH_kernel.json; then
    echo "error: BENCH_kernel.json is missing the trace_store record" >&2
    exit 1
fi
echo "ok: BENCH_kernel.json written (perf gate passed)"

echo "== trace+audit smoke: strict-audited fig07 emits clean JSONL =="
# Run in a scratch cwd so the figure's JSON dump cannot clobber the
# committed fig07.json; then schema-validate the trace and demand the
# instrumented layers all show up with the right DS attribution. The run
# is strict-audited: any invariant violation panics the figure binary,
# and the report file must validate clean. Finally the offline auditor
# replays the trace and re-derives the clock and IDE-quota invariants
# (sound here: fig07 is a single-machine, single-threaded run).
repo="$PWD"
scratch="$(mktemp -d)"
(
    cd "$scratch"
    PARD_TRACE=trace.jsonl PARD_AUDIT=strict PARD_AUDIT_FILE=audit.jsonl \
        "$repo/target/release/fig07" --quick >/dev/null
    "$repo/target/release/pard-trace" --check trace.jsonl \
        --require kernel,llc,dram,ide,trigger,prm
    "$repo/target/release/pard-audit" --check audit.jsonl
    "$repo/target/release/pard-audit" --replay trace.jsonl
    # Same figure through the durable paged binary store (`.ptr` sink):
    # both offline tools must accept the binary file directly — format is
    # sniffed by magic — and re-derive the same invariants from it.
    PARD_TRACE=trace.ptr PARD_AUDIT=strict \
        "$repo/target/release/fig07" --quick >/dev/null
    "$repo/target/release/pard-trace" --check trace.ptr \
        --require kernel,llc,dram,ide,trigger,prm
    "$repo/target/release/pard-audit" --replay trace.ptr
)
rm -rf "$scratch"
echo "ok: audited fig07 passes pard-trace --check and pard-audit --check/--replay (both sinks)"

echo "== fig08 golden: default-scale run is byte-identical to the committed JSON =="
# Fig. 8 is the figure whose golden went stale once (a truncating
# duration-scale bug); regenerate it at default scale and demand byte
# identity so drift can never land silently again. (~3 min.)
scratch="$(mktemp -d)"
(
    cd "$scratch"
    "$repo/target/release/fig08" >/dev/null
    cmp fig08.json "$repo/fig08.json"
)
rm -rf "$scratch"
echo "ok: fig08.json reproduced byte-identically"

echo "== fig_fault golden: strict-audited default-scale run matches committed JSON =="
# The resilience figure runs with the audit layer in strict mode: any
# packet-conservation or firing-soundness violation aborts the binary,
# proving the fault hooks degrade service without ever un-conserving
# work. The JSON must also reproduce the committed golden byte-for-byte
# (the fault schedule and recovery trigger are fully deterministic).
scratch="$(mktemp -d)"
(
    cd "$scratch"
    PARD_AUDIT=strict "$repo/target/release/fig_fault" >/dev/null
    cmp fig_fault.json "$repo/fig_fault.json"
)
rm -rf "$scratch"
echo "ok: fig_fault.json reproduced byte-identically under strict audit"

echo "== fig09/fig10 goldens: partitioned-kernel runs match committed JSON at PARD_THREADS=4 =="
# Both figures run on the domain-partitioned conservative-PDES kernel.
# The committed goldens were generated at PARD_THREADS=1; regenerating
# them at PARD_THREADS=4 under strict audit proves the partitioned
# timeline is byte-identical at any worker count and conserves every
# packet while doing it.
scratch="$(mktemp -d)"
(
    cd "$scratch"
    PARD_THREADS=4 PARD_AUDIT=strict "$repo/target/release/fig09" >/dev/null
    PARD_THREADS=4 PARD_AUDIT=strict "$repo/target/release/fig10" >/dev/null
    cmp fig09.json "$repo/fig09.json"
    cmp fig10.json "$repo/fig10.json"
)
rm -rf "$scratch"
echo "ok: fig09.json and fig10.json reproduced byte-identically under strict audit"

echo "== policy-demo goldens: fig_wfq/fig_slo match committed JSON at PARD_THREADS=4 =="
# Both demos run entirely through the programmable policy layer: fig_wfq
# installs the WFQ rank program on the memory controller, fig_slo loads a
# token-bucket admission program onto the I/O bridge mid-run via
# `pardpolicy`. Strict audit + byte identity pins the compiled-program
# data path the same way the built-in figures pin the default path.
scratch="$(mktemp -d)"
(
    cd "$scratch"
    PARD_THREADS=4 PARD_AUDIT=strict "$repo/target/release/fig_wfq" >/dev/null
    PARD_THREADS=4 PARD_AUDIT=strict "$repo/target/release/fig_slo" >/dev/null
    cmp fig_wfq.json "$repo/fig_wfq.json"
    cmp fig_slo.json "$repo/fig_slo.json"
)
rm -rf "$scratch"
echo "ok: fig_wfq.json and fig_slo.json reproduced byte-identically under strict audit"

echo "== fig_fleet golden: federated-fleet sweep matches committed JSON at PARD_THREADS=4 =="
# The rack-scale consolidation sweep runs three whole machines in
# parallel per epoch and re-shards/migrates tenants between epochs; the
# golden pins the whole federation — parallel machine stepping, seeded
# load-balancer splits, calibrated escalation triggers, and the manager's
# serialized reactions — to one byte-exact document at any thread count.
scratch="$(mktemp -d)"
(
    cd "$scratch"
    PARD_THREADS=4 PARD_AUDIT=strict "$repo/target/release/fig_fleet" >/dev/null
    cmp fig_fleet.json "$repo/fig_fleet.json"
)
rm -rf "$scratch"
echo "ok: fig_fleet.json reproduced byte-identically under strict audit"

echo "== golden-coverage gate: every committed fig*.json is documented in EXPERIMENTS.md =="
# A golden that CI compares against but no document explains is how
# stale figures survive reviews: every committed fig*.json at the repo
# root must appear (by file name) in EXPERIMENTS.md's figure table.
missing=0
for golden in fig*.json; do
    if ! grep -q "$golden" EXPERIMENTS.md; then
        echo "error: $golden is committed but never mentioned in EXPERIMENTS.md" >&2
        missing=1
    fi
done
[ "$missing" -eq 0 ]
echo "ok: every committed golden is documented in EXPERIMENTS.md"

echo "== operations doc gate: every PARD_* env var is documented =="
# OPERATIONS.md is the single reference for runtime knobs; any PARD_*
# name referenced in the source tree must have an entry there.
undocumented=0
for var in $(grep -rhoE 'PARD_[A-Z][A-Z_0-9]*' crates/ --include='*.rs' | sort -u); do
    if ! grep -q "$var" OPERATIONS.md; then
        echo "error: $var is used in crates/ but missing from OPERATIONS.md" >&2
        undocumented=1
    fi
done
[ "$undocumented" -eq 0 ]
echo "ok: all PARD_* env vars documented in OPERATIONS.md"

echo "== rustdoc gate: no documentation warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace >/dev/null
echo "ok: cargo doc clean"

echo "CI green"
