//! Disk-bandwidth differentiation (Figure 10 in miniature): two LDoms run
//! `dd`; mid-run the operator gives one of them an 80 % quota with a
//! single `echo` into the IDE control plane.
//!
//! ```sh
//! cargo run -p pard --example disk_isolation --release
//! ```

use pard::prelude::*;
use pard_workloads::{DiskCopy, DiskCopyConfig};

fn main() {
    let mut server = PardServer::new(SystemConfig::asplos15());

    for i in 0..2usize {
        server
            .create_ldom(LDomSpec::new(format!("dd{i}"), vec![i], 1 << 30))
            .expect("ldom");
        server.install_engine(
            i,
            Box::new(DiskCopy::new(DiskCopyConfig {
                disk: i as u8,
                block_bytes: 4 << 20,
                count: 64,
                ..DiskCopyConfig::default()
            })),
        );
        server.launch(DsId::new(i as u16)).expect("launch");
    }

    let sample = |server: &mut PardServer, label: &str| {
        let b0 = server.disk_progress(DsId::new(0)).bytes_done;
        let b1 = server.disk_progress(DsId::new(1)).bytes_done;
        println!(
            "{label}: ldom0 {:>6.1} MB, ldom1 {:>6.1} MB",
            b0 as f64 / 1e6,
            b1 as f64 / 1e6
        );
        (b0, b1)
    };

    server.run_for(Time::from_ms(200));
    let (a0, a1) = sample(&mut server, "t=200 ms (fair sharing)   ");

    // One shell command changes the SLA.
    server
        .shell("echo 80 > /sys/cpa/cpa3/ldoms/ldom0/parameters/bandwidth")
        .expect("echo quota");
    println!("  -> echo 80 > /sys/cpa/cpa3/ldoms/ldom0/parameters/bandwidth");

    server.run_for(Time::from_ms(200));
    let (b0, b1) = sample(&mut server, "t=400 ms (80/20 quota)    ");

    let d0 = (b0 - a0) as f64;
    let d1 = (b1 - a1) as f64;
    println!(
        "\nsecond-phase split: ldom0 {:.0}%, ldom1 {:.0}% (paper: 80/20)",
        d0 / (d0 + d1) * 100.0,
        d1 / (d0 + d1) * 100.0
    );
}
