//! Quickstart: build a PARD server, partition it into two LDoms, run
//! workloads, and read the control planes through the firmware's device
//! file tree.
//!
//! ```sh
//! cargo run -p pard --example quickstart --release
//! ```

use pard::prelude::*;
use pard_workloads::{CacheFlush, Stream, StreamConfig};

fn main() {
    // The paper's Table 2 platform: 4 cores, 4 MB LLC, DDR3-1600.
    let mut server = PardServer::new(SystemConfig::asplos15());

    // The operator view of Figure 3: create LDoms, assign DS-ids,
    // allocate resources — all through the PRM firmware.
    let batch = server
        .create_ldom(LDomSpec::new("batch", vec![0], 1 << 30))
        .expect("create batch LDom");
    let noisy = server
        .create_ldom(LDomSpec::new("noisy", vec![1], 1 << 30))
        .expect("create noisy LDom");

    server.install_engine(
        0,
        Box::new(Stream::new(StreamConfig {
            array_bytes: 8 << 20,
            base: 0x0100_0000,
            compute_per_block: 32,
        })),
    );
    server.install_engine(1, Box::new(CacheFlush::new(0x0100_0000, 8 << 20)));

    server.launch(batch).expect("launch");
    server.launch(noisy).expect("launch");
    server.run_for(Time::from_ms(5));

    println!("After 5 ms of unpartitioned sharing:");
    report(&mut server, &[batch, noisy]);

    // Partition the LLC 12/4 ways with two `echo` commands — the same
    // interface a datacenter operator scripts against.
    server
        .shell("echo 0x0FFF > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
        .expect("echo");
    server
        .shell("echo 0xF000 > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask")
        .expect("echo");
    server.run_for(Time::from_ms(5));

    println!("\nAfter `echo waymask` repartitioning (12 ways vs 4):");
    report(&mut server, &[batch, noisy]);

    println!("\nDevice file tree under /sys/cpa:");
    let listing = server.shell("ls /sys/cpa").expect("ls");
    for cpa in listing.lines() {
        let ident = server.shell(&format!("cat /sys/cpa/{cpa}/ident")).unwrap();
        println!("  {cpa}: {ident}");
    }
}

fn report(server: &mut PardServer, ldoms: &[DsId]) {
    for &ds in ldoms {
        let occ = server.llc_occupancy_bytes(ds) as f64 / (1 << 20) as f64;
        let (hits, misses) = server.llc_counts(ds);
        let bw = server
            .mem_cp()
            .lock()
            .stat(ds, "bandwidth")
            .unwrap_or_default();
        println!("  {ds}: LLC {occ:.2} MB, {hits} hits / {misses} misses, {bw} MB/s DRAM");
    }
}
