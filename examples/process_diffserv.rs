//! Process-level DiffServ (the paper's §10 open problem, implemented):
//! an OS scheduler time-shares two processes on ONE core and loads the
//! DS-id tag register at every context switch, so the LLC control plane
//! partitions the cache *between processes of the same core*.
//!
//! ```sh
//! cargo run -p pard --example process_diffserv --release
//! ```

use pard::prelude::*;
use pard_workloads::{CacheFlush, Leslie3dProxy, TimeShared};

fn main() {
    let mut server = PardServer::new(SystemConfig::asplos15());

    // Two resource principals; both scheduled on core 0.
    server
        .create_ldom(LDomSpec::new("latency-proc", vec![0], 1 << 30))
        .unwrap();
    server
        .create_ldom(LDomSpec::new("batch-proc", vec![], 1 << 30))
        .unwrap();

    server.install_engine(
        0,
        Box::new(TimeShared::new(
            vec![
                (0, Box::new(Leslie3dProxy::new(0x0100_0000))),
                (1, Box::new(CacheFlush::new(0x0100_0000, 8 << 20))),
            ],
            Time::from_us(250), // 250 µs time slices
        )),
    );
    server.launch(DsId::new(0)).unwrap();

    server.run_for(Time::from_ms(10));
    println!("Unpartitioned (both processes share all 16 ways):");
    report(&mut server);

    // Protect the latency-critical *process* with 12 of 16 ways — the
    // same echo interface as LDom-level management, no new hardware.
    server
        .shell("echo 0x0FFF > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
        .unwrap();
    server
        .shell("echo 0xF000 > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask")
        .unwrap();
    server.run_for(Time::from_ms(10));
    println!("\nPer-process partition (12 ways vs 4, one core):");
    report(&mut server);
}

fn report(server: &mut PardServer) {
    for (name, ds) in [("latency-proc", 0u16), ("batch-proc", 1)] {
        let ds = DsId::new(ds);
        let occ = server.llc_occupancy_bytes(ds) as f64 / (1 << 20) as f64;
        let (hits, misses) = server.llc_counts(ds);
        let rate = (misses * 100).checked_div(hits + misses).unwrap_or(0);
        println!("  {name:14} LLC {occ:.2} MB, lifetime miss rate {rate}%");
    }
}
