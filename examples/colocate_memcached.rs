//! Co-locating a latency-critical memcached LDom with batch LDoms — the
//! headline use case (Figure 8 in miniature).
//!
//! Runs the same 20 KRPS point three ways and prints the utilisation /
//! tail-latency trade-off the paper's abstract leads with.
//!
//! ```sh
//! cargo run -p pard --example colocate_memcached --release
//! ```

use pard::prelude::*;
use pard_workloads::{Memcached, MemcachedConfig, Stream, StreamConfig};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Solo,
    Shared,
    Pard,
}

fn run(mode: Mode) -> (f64, f64, f64) {
    let cfg = if mode == Mode::Shared {
        SystemConfig::asplos15().without_pard()
    } else {
        SystemConfig::asplos15()
    };
    let mut server = PardServer::new(cfg);

    let mc = server
        .create_ldom(LDomSpec::new("memcached", vec![0], 1 << 31))
        .expect("ldom");
    server.install_engine(
        0,
        Box::new(Memcached::new(MemcachedConfig {
            rps: 20_000.0,
            warmup: Time::from_ms(20),
            ..MemcachedConfig::default()
        })),
    );
    for core in 1..=3usize {
        server
            .create_ldom(LDomSpec::new(format!("batch{core}"), vec![core], 1 << 30))
            .expect("ldom");
        server.install_engine(
            core,
            Box::new(Stream::new(StreamConfig {
                array_bytes: 16 << 20,
                base: 0x0100_0000,
                compute_per_block: 64,
            })),
        );
    }

    if mode == Mode::Pard {
        // The Figure 9 rule: grow memcached's partition when it thrashes.
        let mut fw = server.firmware().lock();
        fw.pardtrigger(0, mc, 0, "miss_rate", CmpOp::Gt, 30)
            .expect("pardtrigger");
        fw.register_action(
            "grow",
            Action::Script(
                "echo 0xFF00 > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask\n\
                 echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask\n\
                 echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom2/parameters/waymask\n\
                 echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom3/parameters/waymask\n"
                    .to_string(),
            ),
        );
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/triggers/0", "grow")
            .expect("bind");
    }

    server.launch(mc).expect("launch");
    if mode != Mode::Solo {
        for ds in 1..=3u16 {
            server.launch(pard::DsId::new(ds)).expect("launch");
        }
    }
    server.run_for(Time::from_ms(100));

    let report = server.with_engine::<Memcached, _>(0, |m| m.report());
    let util = server.cpu_utilization();
    (report.p95.as_ms(), report.achieved_rps / 1000.0, util)
}

fn main() {
    println!("memcached at 20 KRPS offered, three deployments:\n");
    println!(
        "{:<22}{:>12}{:>14}{:>10}",
        "deployment", "p95 (ms)", "achieved KRPS", "CPU util"
    );
    for (label, mode) in [
        ("solo (dedicated)", Mode::Solo),
        ("co-located, no PARD", Mode::Shared),
        ("co-located + PARD", Mode::Pard),
    ] {
        let (p95, krps, util) = run(mode);
        println!("{label:<22}{p95:>12.3}{krps:>14.1}{:>9.0}%", util * 100.0);
    }
    println!();
    println!("PARD keeps the whole server busy while holding memcached's tail");
    println!("latency orders of magnitude below the unprotected co-location.");
}
