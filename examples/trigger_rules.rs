//! The "trigger ⇒ action" programming methodology end to end:
//! `pardtrigger` installs a hardware trigger, a `pardscript` handler is
//! bound to it through the device file tree, interference fires the
//! trigger, and the firmware's script reprograms the cache — without any
//! host-software involvement.
//!
//! ```sh
//! cargo run -p pard --example trigger_rules --release
//! ```

use pard::prelude::*;
use pard_workloads::{CacheFlush, Leslie3dProxy};

fn main() {
    let mut server = PardServer::new(SystemConfig::asplos15());

    let victim = server
        .create_ldom(LDomSpec::new("victim", vec![0], 1 << 30))
        .expect("ldom");
    let bully = server
        .create_ldom(LDomSpec::new("bully", vec![1], 1 << 30))
        .expect("ldom");
    server.install_engine(0, Box::new(Leslie3dProxy::new(0x0100_0000)));
    server.install_engine(1, Box::new(CacheFlush::new(0x0100_0000, 16 << 20)));

    // Warm the victim alone first (cold-start misses must not count as
    // interference).
    server.launch(victim).expect("launch");
    server.run_for(Time::from_ms(10));

    // Example 1 of the paper's Figure 6, verbatim through the shell:
    server
        .shell("pardtrigger /dev/cpa0 -ldom=0 -action=0 -stats=miss_rate -cond=gt,30")
        .expect("pardtrigger");

    // Example 2: the handler script, registered in the firmware's flash
    // and bound via the trigger leaf.
    server.firmware().lock().register_action(
        "/cpa0_ldom0_t0.sh",
        Action::Script(
            r#"
log "handler: miss rate spiked for ldom $DS"
echo 0x0FF0 > /sys/cpa/cpa$CPA/ldoms/ldom$DS/parameters/waymask
echo 0xF00F > /sys/cpa/cpa$CPA/ldoms/ldom1/parameters/waymask
"#
            .to_string(),
        ),
    );
    server
        .shell("echo /cpa0_ldom0_t0.sh > /sys/cpa/cpa0/ldoms/ldom0/triggers/0")
        .expect("bind");
    let before = server
        .shell("cat /sys/cpa/cpa0/ldoms/ldom0/statistics/miss_rate")
        .unwrap();
    println!("victim alone:   miss_rate = {before}%");

    server.launch(bully).expect("launch");
    server.run_for(Time::from_ms(20));

    let miss = server
        .shell("cat /sys/cpa/cpa0/ldoms/ldom0/statistics/miss_rate")
        .unwrap();
    let mask = server
        .shell("cat /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
        .unwrap();
    println!("after bully:    miss_rate = {miss}%, waymask = {mask}");

    println!("\nfirmware log:");
    for line in server.shell("logread").unwrap().lines() {
        println!("  {line}");
    }
}
