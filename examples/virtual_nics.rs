//! v-NIC demultiplexing (§4.1, "tagging I/O requests" for the from-device
//! direction): the physical NIC's control plane maps MAC addresses to
//! DS-ids, so incoming frames DMA into the right LDom's memory and raise
//! interrupts routed by the per-DS-id APIC tables.
//!
//! ```sh
//! cargo run -p pard --example virtual_nics --release
//! ```

use pard::prelude::*;
use pard_icn::{NetFrame, PardEvent};

const MAC_A: [u8; 6] = [0x02, 0, 0, 0, 0, 0xA];
const MAC_B: [u8; 6] = [0x02, 0, 0, 0, 0, 0xB];

fn main() {
    let mut server = PardServer::new(SystemConfig::asplos15());

    // Two LDoms, each with its own v-NIC (MAC programmed at creation).
    server
        .create_ldom(LDomSpec::new("web-a", vec![0], 1 << 30).with_mac(MAC_A))
        .expect("ldom");
    server
        .create_ldom(LDomSpec::new("web-b", vec![1], 1 << 30).with_mac(MAC_B))
        .expect("ldom");
    // Let the PRM program the v-NIC table.
    server.run_for(Time::from_ms(1));

    // Traffic arrives at the physical NIC: 3 frames for A, 1 for B, and
    // one stray frame for a MAC no v-NIC owns.
    let nic = server.nic_id();
    for (mac, bytes) in [
        (MAC_A, 1500u32),
        (MAC_A, 1500),
        (MAC_B, 900),
        (MAC_A, 300),
        ([0xFF; 6], 64),
    ] {
        server.post(
            nic,
            Time::from_us(10),
            PardEvent::NetFrame(NetFrame {
                dst_mac: mac,
                bytes,
                arrived_at: Time::ZERO,
            }),
        );
    }
    server.run_for(Time::from_ms(2));

    println!("NIC control-plane statistics (per v-NIC):");
    for ds in 0..2u16 {
        let cp = server.nic_cp().lock();
        let frames = cp.stat(DsId::new(ds), "frames").unwrap();
        let bytes = cp.stat(DsId::new(ds), "bytes").unwrap();
        println!("  ldom{ds}: {frames} frames, {bytes} bytes");
    }
    let dropped = server
        .nic_cp()
        .lock()
        .stat(DsId::DEFAULT, "dropped")
        .unwrap();
    println!("  dropped (no matching v-NIC): {dropped}");

    println!("\nPer-DS-id DMA accounting at the I/O bridge:");
    for ds in 0..2u16 {
        let bytes = server
            .bridge_cp()
            .lock()
            .stat(DsId::new(ds), "dma_bytes")
            .unwrap();
        println!("  ldom{ds}: {bytes} bytes of tagged receive DMA");
    }
}
