//! An adaptive resourcing-on-demand policy — the paper's Example 2
//! handler (`update_mask(cur_mask, miss_rate, capacity)`) in full: instead
//! of jumping straight to half the LLC, the handler *grows the partition
//! one way at a time* each time the miss-rate trigger fires, and re-arms
//! the trigger so it can fire again if the miss rate stays high.
//!
//! ```sh
//! cargo run -p pard --example adaptive_policy --release
//! ```

use pard::prelude::*;
use pard_workloads::{CacheFlush, Leslie3dProxy};

fn main() {
    let mut server = PardServer::new(SystemConfig::asplos15());

    let victim = server
        .create_ldom(LDomSpec::new("victim", vec![0], 1 << 30))
        .unwrap();
    server
        .create_ldom(LDomSpec::new("bully", vec![1], 1 << 30))
        .unwrap();
    server.install_engine(0, Box::new(Leslie3dProxy::new(0x0100_0000)));
    server.install_engine(1, Box::new(CacheFlush::new(0x0100_0000, 16 << 20)));

    // Start the victim in a deliberately tiny 2-way partition.
    server
        .shell("echo 0x0003 > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
        .unwrap();
    server.launch(victim).unwrap();
    server.run_for(Time::from_ms(5));

    // Trigger + adaptive native handler. The handler widens the mask by
    // one way per firing and re-arms the trigger, so sustained thrashing
    // keeps growing the partition until the miss rate falls below the
    // threshold — resourcing on demand, not a fixed jump.
    {
        let mut fw = server.firmware().lock();
        fw.pardtrigger(0, victim, 0, "miss_rate", CmpOp::Gt, 25)
            .unwrap();
        let llc_cp = server_cp(&server);
        // A real policy waits for its last adjustment to take effect
        // before adjusting again: 2 ms cooldown between steps.
        let mut last_step = Time::ZERO;
        fw.register_action(
            "update_mask",
            Action::Native(Box::new(move |fw, env| {
                if env.now < last_step + Time::from_ms(2) {
                    // Too soon: re-arm and wait for the next evaluation.
                    let _ = llc_cp.lock().triggers_mut().set_field(env.slot, 5, 0);
                    return;
                }
                last_step = env.now;
                let path = format!(
                    "/sys/cpa/cpa{}/ldoms/ldom{}/parameters/waymask",
                    env.cpa,
                    env.ds.raw()
                );
                let cur: u64 = fw.read(&path).unwrap().parse().unwrap();
                let widened = ((cur << 1) | cur) & 0xFFFF;
                fw.write(&path, &widened.to_string()).unwrap();
                // Confine the aggressor to the complement (always leaving
                // it at least one way) — growth without confinement would
                // protect nothing.
                let complement = (!widened & 0xFFFF).max(0x8000);
                let bully_path = format!("/sys/cpa/cpa{}/ldoms/ldom1/parameters/waymask", env.cpa);
                fw.write(&bully_path, &complement.to_string()).unwrap();
                fw.log(format!(
                    "update_mask: {cur:#06x} -> {widened:#06x} for ldom{} (others {complement:#06x})",
                    env.ds.raw()
                ));
                // Re-arm the hardware trigger so it can fire again while
                // the condition persists (field 5 = the latch bit).
                let _ = llc_cp
                    .lock()
                    .triggers_mut()
                    .set_field(env.slot, 5, 0);
            })),
        );
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/triggers/0", "update_mask")
            .unwrap();
    }

    server.launch(DsId::new(1)).unwrap();

    println!("time    victim waymask   miss%   occupancy");
    for step in 1..=12 {
        server.run_for(Time::from_ms(4));
        let mask = server
            .shell("cat /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
            .unwrap();
        let miss = server
            .shell("cat /sys/cpa/cpa0/ldoms/ldom0/statistics/miss_rate")
            .unwrap();
        let occ = server.llc_occupancy_bytes(victim) as f64 / (1 << 20) as f64;
        println!(
            "{:>4} ms  {:>14}  {:>5}%  {occ:>8.2} MB",
            step * 4,
            format!("{:#06x}", mask.parse::<u64>().unwrap_or(0)),
            miss
        );
    }

    println!("\nfirmware log (mask growth):");
    for line in server.shell("logread").unwrap().lines() {
        if line.contains("update_mask") {
            println!("  {line}");
        }
    }
}

fn server_cp(server: &PardServer) -> pard::CpHandle {
    server.llc_cp().clone()
}
