//! Property-based tests of the control-plane framework.

use pard_cp::{CmpOp, ColumnDef, CpAddr, DsTable, TableSel, Trigger, TriggerTable};
use pard_icn::DsId;
use proptest::prelude::*;

fn any_table_sel() -> impl Strategy<Value = TableSel> {
    prop_oneof![
        Just(TableSel::Parameter),
        Just(TableSel::Statistics),
        Just(TableSel::Trigger),
    ]
}

fn any_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

proptest! {
    /// The Fig. 6 addr-register encoding round-trips for every field value.
    #[test]
    fn cp_addr_round_trips(ds in any::<u16>(), offset in 0u16..(1 << 14), sel in any_table_sel()) {
        let a = CpAddr::new(DsId::new(ds), offset, sel);
        prop_assert_eq!(CpAddr::decode(a.encode()).unwrap(), a);
    }

    /// Comparison operators encode/decode and agree with Rust's semantics.
    #[test]
    fn cmp_ops_agree_with_rust(op in any_cmp_op(), a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(CmpOp::decode(op.encode()).unwrap(), op);
        let expected = match op {
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        };
        prop_assert_eq!(op.eval(a, b), expected);
    }

    /// Table cells hold exactly the last value written, independent of the
    /// write order for other cells.
    #[test]
    fn ds_table_is_a_store(writes in prop::collection::vec((0u16..16, 0usize..3, any::<u64>()), 1..100)) {
        let mut t = DsTable::new(
            "p",
            vec![ColumnDef::new("a"), ColumnDef::new("b"), ColumnDef::new("c")],
            16,
        );
        let mut model = std::collections::HashMap::new();
        for &(ds, col, v) in &writes {
            t.set_by_offset(DsId::new(ds), col, v).unwrap();
            model.insert((ds, col), v);
        }
        for (&(ds, col), &v) in &model {
            prop_assert_eq!(t.get_by_offset(DsId::new(ds), col).unwrap(), v);
        }
    }

    /// Trigger raw-field access round-trips through the CPA encoding for
    /// every field.
    #[test]
    fn trigger_fields_round_trip(
        slot in 0usize..16,
        ds in any::<u16>(),
        col in 0u64..(1 << 14),
        op in any_cmp_op(),
        value in any::<u64>(),
    ) {
        let mut tt = TriggerTable::new(16);
        tt.set_field(slot, 0, u64::from(ds)).unwrap();
        tt.set_field(slot, 1, col).unwrap();
        tt.set_field(slot, 2, op.encode()).unwrap();
        tt.set_field(slot, 3, value).unwrap();
        tt.set_field(slot, 4, 1).unwrap();
        prop_assert_eq!(tt.get_field(slot, 0).unwrap(), u64::from(ds));
        prop_assert_eq!(tt.get_field(slot, 1).unwrap(), col);
        prop_assert_eq!(tt.get_field(slot, 2).unwrap(), op.encode());
        prop_assert_eq!(tt.get_field(slot, 3).unwrap(), value);
        prop_assert_eq!(tt.get_field(slot, 4).unwrap(), 1);
    }

    /// Latching: for any stats sequence, a trigger fires exactly at
    /// rising edges of its condition.
    #[test]
    fn triggers_fire_on_rising_edges(values in prop::collection::vec(0u64..100, 1..100)) {
        let mut tt = TriggerTable::new(4);
        tt.install(0, Trigger::new(DsId::new(0), 0, CmpOp::Gt, 50)).unwrap();
        let mut prev = false;
        for &v in &values {
            let fired = !tt.evaluate(DsId::new(0), &[v]).is_empty();
            let cond = v > 50;
            prop_assert_eq!(fired, cond && !prev, "value {}, prev {}", v, prev);
            prev = cond;
        }
    }
}
