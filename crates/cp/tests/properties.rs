//! Seeded randomized tests of the control-plane framework.

use pard_cp::{CmpOp, ColumnDef, CpAddr, DsTable, TableSel, Trigger, TriggerTable};
use pard_icn::DsId;
use pard_sim::check::{cases, vec_of, DEFAULT_CASES};
use pard_sim::rng::Rng;

const TABLE_SELS: [TableSel; 3] = [TableSel::Parameter, TableSel::Statistics, TableSel::Trigger];
const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Eq,
    CmpOp::Ne,
];

fn pick<T: Copy>(rng: &mut impl Rng, choices: &[T]) -> T {
    choices[rng.gen_range(0..choices.len())]
}

/// The Fig. 6 addr-register encoding round-trips for every field value.
#[test]
fn cp_addr_round_trips() {
    cases("cp.cp_addr_round_trips", DEFAULT_CASES, |rng| {
        let ds = rng.gen_range(0u16..=u16::MAX);
        let offset = rng.gen_range(0u16..(1 << 14));
        let sel = pick(rng, &TABLE_SELS);
        let a = CpAddr::new(DsId::new(ds), offset, sel);
        assert_eq!(CpAddr::decode(a.encode()).unwrap(), a);
    });
}

/// Comparison operators encode/decode and agree with Rust's semantics.
#[test]
fn cmp_ops_agree_with_rust() {
    cases("cp.cmp_ops_agree_with_rust", DEFAULT_CASES, |rng| {
        let op = pick(rng, &CMP_OPS);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        assert_eq!(CmpOp::decode(op.encode()).unwrap(), op);
        let expected = match op {
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        };
        assert_eq!(op.eval(a, b), expected);
    });
}

/// Table cells hold exactly the last value written, independent of the
/// write order for other cells.
#[test]
fn ds_table_is_a_store() {
    cases("cp.ds_table_is_a_store", DEFAULT_CASES, |rng| {
        let writes = vec_of(rng, 1..100, |r| {
            (r.gen_range(0u16..16), r.gen_range(0usize..3), r.next_u64())
        });
        let mut t = DsTable::new(
            "p",
            vec![ColumnDef::new("a"), ColumnDef::new("b"), ColumnDef::new("c")],
            16,
        );
        let mut model = std::collections::HashMap::new();
        for &(ds, col, v) in &writes {
            t.set_by_offset(DsId::new(ds), col, v).unwrap();
            model.insert((ds, col), v);
        }
        for (&(ds, col), &v) in &model {
            assert_eq!(t.get_by_offset(DsId::new(ds), col).unwrap(), v);
        }
    });
}

/// Trigger raw-field access round-trips through the CPA encoding for
/// every field.
#[test]
fn trigger_fields_round_trip() {
    cases("cp.trigger_fields_round_trip", DEFAULT_CASES, |rng| {
        let slot = rng.gen_range(0usize..16);
        let ds = rng.gen_range(0u16..=u16::MAX);
        let col = rng.gen_range(0u64..(1 << 14));
        let op = pick(rng, &CMP_OPS);
        let value = rng.next_u64();
        let mut tt = TriggerTable::new(16);
        tt.set_field(slot, 0, u64::from(ds)).unwrap();
        tt.set_field(slot, 1, col).unwrap();
        tt.set_field(slot, 2, op.encode()).unwrap();
        tt.set_field(slot, 3, value).unwrap();
        tt.set_field(slot, 4, 1).unwrap();
        assert_eq!(tt.get_field(slot, 0).unwrap(), u64::from(ds));
        assert_eq!(tt.get_field(slot, 1).unwrap(), col);
        assert_eq!(tt.get_field(slot, 2).unwrap(), op.encode());
        assert_eq!(tt.get_field(slot, 3).unwrap(), value);
        assert_eq!(tt.get_field(slot, 4).unwrap(), 1);
    });
}

/// Latching: for any stats sequence, a trigger fires exactly at
/// rising edges of its condition.
#[test]
fn triggers_fire_on_rising_edges() {
    cases("cp.triggers_fire_on_rising_edges", DEFAULT_CASES, |rng| {
        let values = vec_of(rng, 1..100, |r| r.gen_range(0u64..100));
        let mut tt = TriggerTable::new(4);
        tt.install(0, Trigger::new(DsId::new(0), 0, CmpOp::Gt, 50))
            .unwrap();
        let mut prev = false;
        for &v in &values {
            let fired = !tt.evaluate(DsId::new(0), &[v]).is_empty();
            let cond = v > 50;
            assert_eq!(fired, cond && !prev, "value {v}, prev {prev}");
            prev = cond;
        }
    });
}

/// The lock-free statistics cells lose no increments under contention:
/// `PARD_THREADS` workers (at least two) hammer [`StatsHandle::add`] over
/// independent random `(ds, column, delta)` streams, and every row must
/// end up exactly equal to a sequential oracle. Run with different
/// `PARD_THREADS` values to vary the interleaving pressure.
///
/// [`StatsHandle::add`]: pard_cp::StatsHandle::add
#[test]
fn stats_cells_concurrent_adds_match_sequential_oracle() {
    use pard_cp::{shared, ControlPlane, CpType};
    use pard_sim::par::{par_map_with, thread_count};

    const ROWS: usize = 8;
    cases("cp.stats_cells_concurrent_adds", 16, |rng| {
        let params = DsTable::new("parameter", vec![ColumnDef::new("enable")], ROWS);
        let stats = DsTable::new(
            "statistics",
            vec![ColumnDef::new("a"), ColumnDef::new("b"), ColumnDef::new("c")],
            ROWS,
        );
        let cp = shared(ControlPlane::new("TEST_CP", CpType::Cache, params, stats, 8));
        let handle = cp.lock().stats_handle();
        let keys = [
            handle.key("a").unwrap(),
            handle.key("b").unwrap(),
            handle.key("c").unwrap(),
        ];
        let workers = thread_count().max(2);
        let streams: Vec<Vec<(u16, usize, u64)>> = (0..workers)
            .map(|_| {
                vec_of(rng, 200..400, |r| {
                    (
                        r.gen_range(0u16..ROWS as u16),
                        r.gen_range(0usize..3),
                        r.gen_range(1u64..1000),
                    )
                })
            })
            .collect();
        let mut oracle = [[0u64; 3]; ROWS];
        for stream in &streams {
            for &(ds, col, v) in stream {
                oracle[ds as usize][col] = oracle[ds as usize][col].wrapping_add(v);
            }
        }
        let work: Vec<_> = streams
            .into_iter()
            .map(|ops| (handle.clone(), ops))
            .collect();
        par_map_with(workers, work, |(h, ops)| {
            for (ds, col, v) in ops {
                h.add(DsId::new(ds), keys[col], v).unwrap();
            }
        });
        for ds in 0..ROWS {
            let row = handle.cells().snapshot_row(DsId::new(ds as u16)).unwrap();
            assert_eq!(&row[..], &oracle[ds][..], "row {ds}");
        }
    });
}
