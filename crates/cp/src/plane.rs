//! The control plane proper: three tables + interrupt line.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pard_icn::DsId;
use pard_sim::sync::{unbounded, Mutex, Receiver, Sender, TryRecvError};
use pard_sim::{audit, trace, Time};

use crate::cells::{StatsCells, StatsHandle};
use crate::error::CpError;
use crate::policy::Program;
use crate::table::DsTable;
use crate::trigger::{Trigger, TriggerTable};

/// The kind of resource a control plane is embedded in.
///
/// The single-character codes match the firmware's `type` file
/// (paper Fig. 6: cache `C`, memory `M`, I/O bridge `B`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpType {
    /// Last-level cache control plane.
    Cache,
    /// Memory-controller control plane.
    Memory,
    /// I/O-bridge control plane.
    Bridge,
    /// Disk (IDE) control plane.
    Io,
    /// Network-interface control plane.
    Nic,
}

impl CpType {
    /// The single-character type code exposed through the device file tree.
    pub fn code(self) -> char {
        match self {
            CpType::Cache => 'C',
            CpType::Memory => 'M',
            CpType::Bridge => 'B',
            CpType::Io => 'I',
            CpType::Nic => 'N',
        }
    }

    /// Encodes the code for the CPA `type` register.
    pub fn encode(self) -> u32 {
        self.code() as u32
    }
}

/// An interrupt raised by a control plane toward the PRM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpInterrupt {
    /// Index of the control-plane adaptor (CPA) that raised the interrupt.
    pub cpa: usize,
    /// DS-id whose trigger fired.
    pub ds: DsId,
    /// Trigger-table slot that fired.
    pub slot: usize,
    /// Simulated time of the firing.
    pub at: Time,
}

/// The sending half of the control-plane-network interrupt wire.
#[derive(Debug, Clone)]
pub struct InterruptLine {
    tx: Sender<CpInterrupt>,
}

impl InterruptLine {
    /// Creates a connected `(line, sink)` pair.
    pub fn channel() -> (InterruptLine, InterruptSink) {
        let (tx, rx) = unbounded();
        (InterruptLine { tx }, InterruptSink { rx })
    }

    /// Raises an interrupt. Lost interrupts (disconnected PRM) are ignored,
    /// like a wire with nothing attached.
    pub fn raise(&self, irq: CpInterrupt) {
        let _ = self.tx.send(irq);
    }
}

/// The receiving half of the interrupt wire, polled by the PRM firmware.
#[derive(Debug)]
pub struct InterruptSink {
    rx: Receiver<CpInterrupt>,
}

impl InterruptSink {
    /// Takes one pending interrupt, if any.
    pub fn try_recv(&self) -> Option<CpInterrupt> {
        match self.rx.try_recv() {
            Ok(irq) => Some(irq),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drains all pending interrupts.
    pub fn drain(&self) -> Vec<CpInterrupt> {
        std::iter::from_fn(|| self.try_recv()).collect()
    }
}

/// A programmable control plane: the basic structure of paper §3 ②,
/// instantiated by each shared resource with its own table schemas.
///
/// # Example
///
/// ```
/// use pard_cp::{ColumnDef, CmpOp, ControlPlane, CpType, DsTable, InterruptLine, Trigger};
/// use pard_icn::DsId;
/// use pard_sim::Time;
///
/// let params = DsTable::new("parameter", vec![ColumnDef::with_default("waymask", 0xFFFF)], 8);
/// let stats = DsTable::new("statistics", vec![ColumnDef::new("miss_rate")], 8);
/// let mut cp = ControlPlane::new("CACHE_CP", CpType::Cache, params, stats, 64);
/// let (line, sink) = InterruptLine::channel();
/// cp.attach(0, line);
///
/// cp.install_trigger(0, Trigger::new(DsId::new(2), 0, CmpOp::Gt, 30)).unwrap();
/// let miss_rate = cp.stats().key("miss_rate").unwrap();
/// cp.stats().set(DsId::new(2), miss_rate, 45).unwrap();
/// cp.evaluate_triggers(DsId::new(2), Time::from_us(100));
/// let irq = sink.try_recv().unwrap();
/// assert_eq!(irq.ds, DsId::new(2));
/// assert_eq!(irq.slot, 0);
/// ```
#[derive(Debug)]
pub struct ControlPlane {
    ident: String,
    cp_type: CpType,
    cpa_index: usize,
    params: DsTable,
    stats: Arc<StatsCells>,
    triggers: TriggerTable,
    generation: Arc<AtomicU64>,
    irq: Option<InterruptLine>,
    policy: Option<Arc<Program>>,
    default_policy: Option<Arc<Program>>,
    policy_epochs: u64,
}

impl ControlPlane {
    /// Creates a control plane with the given identity and tables.
    ///
    /// The statistics `DsTable` only contributes its schema: storage is
    /// re-homed into lock-free [`StatsCells`] so the data path can record
    /// through a [`StatsHandle`] without the `CpHandle` mutex.
    pub fn new(
        ident: impl Into<String>,
        cp_type: CpType,
        params: DsTable,
        stats: DsTable,
        trigger_slots: usize,
    ) -> Self {
        let stats = StatsCells::new(stats.columns().to_vec(), stats.rows());
        ControlPlane {
            ident: ident.into(),
            cp_type,
            cpa_index: usize::MAX,
            params,
            stats: Arc::new(stats),
            triggers: TriggerTable::new(trigger_slots),
            generation: Arc::new(AtomicU64::new(0)),
            irq: None,
            policy: None,
            default_policy: None,
            policy_epochs: 0,
        }
    }

    /// Connects this plane to CPA `cpa_index` with the given interrupt line.
    pub fn attach(&mut self, cpa_index: usize, irq: InterruptLine) {
        self.cpa_index = cpa_index;
        self.irq = Some(irq);
    }

    /// The plane's identity string (e.g. `"CACHE_CP"`).
    pub fn ident(&self) -> &str {
        &self.ident
    }

    /// The plane's resource type.
    pub fn cp_type(&self) -> CpType {
        self.cp_type
    }

    /// The CPA index assigned at [`attach`](Self::attach) time.
    pub fn cpa_index(&self) -> usize {
        self.cpa_index
    }

    /// The parameter table.
    pub fn params(&self) -> &DsTable {
        &self.params
    }

    /// The statistics cells.
    ///
    /// Reads are acquire-loads and writes go straight to the atomics, so
    /// this is usable through a shared reference; multi-column consumers
    /// must take one [`StatsCells::snapshot_row`] per evaluation.
    pub fn stats(&self) -> &StatsCells {
        &self.stats
    }

    /// A cheap cloneable handle for recording statistics without the
    /// `CpHandle` mutex (the data-path hot path).
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle::new(Arc::clone(&self.stats))
    }

    /// The trigger table.
    pub fn triggers(&self) -> &TriggerTable {
        &self.triggers
    }

    /// Mutable trigger table (firmware-side installation path).
    pub fn triggers_mut(&mut self) -> &mut TriggerTable {
        &mut self.triggers
    }

    /// Monotonic counter bumped on every parameter write.
    ///
    /// Data-path components cache parameter values and re-read them only
    /// when the generation changes, keeping the hot path lock-free in
    /// spirit (the RTL reads parameters through a dedicated pipeline port).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A shared watch on the generation counter.
    ///
    /// Data-path components keep a clone and compare it against their
    /// cached value on each access — a single atomic load — re-reading
    /// parameters only when the PRM has reprogrammed something.
    pub fn generation_watch(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.generation)
    }

    /// Reads a parameter cell.
    ///
    /// # Errors
    ///
    /// Propagates table range errors.
    pub fn param(&self, ds: DsId, column: &str) -> Result<u64, CpError> {
        self.params.get(ds, column)
    }

    /// Writes a parameter cell and bumps the generation.
    ///
    /// # Errors
    ///
    /// Propagates table range errors.
    pub fn set_param(&mut self, ds: DsId, column: &str, value: u64) -> Result<(), CpError> {
        self.params.set(ds, column, value)?;
        self.generation.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Reads a statistics cell by column name (acquire load).
    ///
    /// For hot-path reads resolve a [`StatKey`](crate::StatKey) once and
    /// use [`StatsCells::get`]; this name-based form is for tests and
    /// firmware paths where the string lookup is off the data path.
    ///
    /// # Errors
    ///
    /// Propagates table range errors.
    pub fn stat(&self, ds: DsId, column: &str) -> Result<u64, CpError> {
        let key = self.stats.key(column)?;
        self.stats.get(ds, key)
    }

    /// Installs a trigger in `slot`.
    ///
    /// # Errors
    ///
    /// Propagates trigger-table range errors, and rejects (with
    /// [`CpError::TriggerColumnOutOfRange`]) a trigger whose
    /// `stats_column` exceeds the width of this plane's statistics table —
    /// such a comparator could never observe a driven value, so installing
    /// one is a programming error.
    pub fn install_trigger(&mut self, slot: usize, trigger: Trigger) -> Result<(), CpError> {
        let width = self.stats.columns().len();
        if trigger.stats_column >= width {
            return Err(CpError::TriggerColumnOutOfRange {
                column: trigger.stats_column,
                width,
            });
        }
        self.triggers.install(slot, trigger)
    }

    /// Evaluates all triggers watching `ds` against its current statistics
    /// row, raising one interrupt per newly-firing slot. Returns the number
    /// of interrupts raised.
    ///
    /// Fire, re-arm, and skipped-column outcomes are traced under
    /// [`TraceCat::Trigger`](pard_sim::trace::TraceCat::Trigger).
    pub fn evaluate_triggers(&mut self, ds: DsId, now: Time) -> usize {
        // One acquire-consistent snapshot per evaluation: every predicate,
        // trace record, and audit re-check below sees the same row, so a
        // concurrent lock-free recorder can never tear a multi-column
        // comparison (satellite of the cells redesign).
        let Ok(row) = self.stats.snapshot_row(ds) else {
            return 0;
        };
        let outcome = self.triggers.evaluate_detailed(ds, &row);
        if trace::enabled(trace::TraceCat::Trigger) {
            for (what, slots) in [
                ("fire", &outcome.fired),
                ("rearm", &outcome.rearmed),
                ("skip", &outcome.skipped),
            ] {
                for &slot in slots {
                    // The comparison inputs (raw column, smoothed value,
                    // baseline) make premature or missing degradation
                    // firings diagnosable from the trace alone.
                    let (observed, obs_ema, baseline) = self
                        .triggers
                        .get(slot)
                        .map(|t| {
                            (
                                row.get(t.stats_column).copied().unwrap_or(0),
                                t.obs_ema,
                                t.baseline,
                            )
                        })
                        .unwrap_or((0, 0, 0));
                    trace::emit(
                        trace::TraceCat::Trigger,
                        now,
                        ds.raw(),
                        what,
                        &[
                            ("cpa", trace::TraceVal::U(self.cpa_index as u64)),
                            ("slot", trace::TraceVal::U(slot as u64)),
                            ("observed", trace::TraceVal::U(observed)),
                            ("smoothed", trace::TraceVal::U(obs_ema)),
                            ("baseline", trace::TraceVal::U(baseline)),
                        ],
                    );
                }
            }
        }
        if audit::enabled() {
            // Trigger soundness: a slot that fired must have a predicate
            // that re-evaluates true against the very row it fired on —
            // the latch logic may only suppress refires, never invent
            // one. `predicate_holds` is mode-aware (a degradation slot
            // re-checks percent growth over its frozen baseline, which
            // the firing pass left untouched).
            for &slot in &outcome.fired {
                let holds = self.triggers.get(slot).is_some_and(|t| {
                    row.get(t.stats_column)
                        .is_some_and(|&observed| t.predicate_holds(observed))
                });
                if !holds {
                    audit::violation(
                        audit::AuditKind::Trigger,
                        now,
                        ds.raw(),
                        "fired_predicate_false",
                        &[
                            ("cpa", trace::TraceVal::U(self.cpa_index as u64)),
                            ("slot", trace::TraceVal::U(slot as u64)),
                        ],
                    );
                }
            }
        }
        let n = outcome.fired.len();
        if let Some(irq) = &self.irq {
            for slot in outcome.fired {
                irq.raise(CpInterrupt {
                    cpa: self.cpa_index,
                    ds,
                    slot,
                    at: now,
                });
            }
        }
        n
    }

    /// Compiles policy `source` against this plane's schemas without
    /// installing it.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::Policy`] naming the source line and offending
    /// token on any syntax error or unknown column reference.
    pub fn compile_policy(&self, source: &str) -> Result<Program, CpError> {
        Program::parse(source, &self.params, &self.stats)
    }

    /// Compiles and installs `source` as this plane's active policy,
    /// stamping a fresh epoch and bumping the generation so data-path
    /// caches refresh their engines.
    ///
    /// Installation is atomic: on a compile error the previously active
    /// program stays in force.
    ///
    /// # Errors
    ///
    /// Propagates [`compile_policy`](Self::compile_policy) errors.
    pub fn install_policy(&mut self, source: &str) -> Result<(), CpError> {
        let prog = self.compile_policy(source)?;
        self.policy_epochs += 1;
        self.policy = Some(Arc::new(prog.with_epoch(self.policy_epochs)));
        self.generation.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Removes any installed policy, reverting to the built-in default
    /// program, and bumps the generation.
    pub fn clear_policy(&mut self) {
        if self.policy.take().is_some() {
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Sets the built-in default program — the resource's previously
    /// hardcoded behavior re-expressed as policy text. Called once by the
    /// owning component at construction (so the default path dogfoods the
    /// same compiler as operator-installed programs).
    ///
    /// # Errors
    ///
    /// Propagates [`compile_policy`](Self::compile_policy) errors.
    pub fn set_default_policy(&mut self, source: &str) -> Result<(), CpError> {
        let prog = self.compile_policy(source)?;
        self.policy_epochs += 1;
        self.default_policy = Some(Arc::new(prog.with_epoch(self.policy_epochs)));
        self.generation.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// The program the data path should run: the installed policy if any,
    /// else the built-in default.
    pub fn active_policy(&self) -> Option<Arc<Program>> {
        self.policy
            .as_ref()
            .or(self.default_policy.as_ref())
            .map(Arc::clone)
    }

    /// Whether an operator-installed program (not the default) is active.
    pub fn policy_installed(&self) -> bool {
        self.policy.is_some()
    }

    /// The active program's source text (empty when this plane has no
    /// policy at all) — what `/sys/policy/cpa<N>/program` renders.
    pub fn policy_source(&self) -> &str {
        self.policy
            .as_ref()
            .or(self.default_policy.as_ref())
            .map(|p| p.source())
            .unwrap_or("")
    }

    /// Resets both data tables' rows for a departing LDom.
    ///
    /// # Errors
    ///
    /// Propagates table range errors.
    pub fn reset_ds(&mut self, ds: DsId) -> Result<(), CpError> {
        self.params.reset_row(ds)?;
        self.stats.reset_row(ds)?;
        self.generation.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }
}

/// A shareable handle to a control plane.
///
/// The resource's data path and the PRM's programming interface both hold
/// one; contention is negligible because the data path only locks at
/// statistics-window boundaries or parameter-generation changes.
pub type CpHandle = Arc<Mutex<ControlPlane>>;

/// Wraps a control plane in a [`CpHandle`].
pub fn shared(cp: ControlPlane) -> CpHandle {
    Arc::new(Mutex::new(cp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnDef;
    use crate::trigger::CmpOp;

    fn plane() -> ControlPlane {
        let params = DsTable::new(
            "parameter",
            vec![ColumnDef::with_default("waymask", 0xFFFF)],
            4,
        );
        let stats = DsTable::new(
            "statistics",
            vec![ColumnDef::new("miss_rate"), ColumnDef::new("capacity")],
            4,
        );
        ControlPlane::new("CACHE_CP", CpType::Cache, params, stats, 8)
    }

    #[test]
    fn generation_bumps_only_on_param_writes() {
        let mut cp = plane();
        assert_eq!(cp.generation(), 0);
        let miss_rate = cp.stats().key("miss_rate").unwrap();
        let capacity = cp.stats().key("capacity").unwrap();
        cp.stats().set(DsId::new(0), miss_rate, 10).unwrap();
        cp.stats().add(DsId::new(0), capacity, 5).unwrap();
        assert_eq!(cp.generation(), 0);
        cp.set_param(DsId::new(0), "waymask", 0x00FF).unwrap();
        assert_eq!(cp.generation(), 1);
        assert_eq!(cp.param(DsId::new(0), "waymask").unwrap(), 0x00FF);
    }

    #[test]
    fn interrupts_carry_cpa_ds_slot_time() {
        let mut cp = plane();
        let (line, sink) = InterruptLine::channel();
        cp.attach(3, line);
        cp.install_trigger(5, Trigger::new(DsId::new(1), 0, CmpOp::Ge, 30))
            .unwrap();
        let miss_rate = cp.stats().key("miss_rate").unwrap();
        cp.stats().set(DsId::new(1), miss_rate, 30).unwrap();
        let n = cp.evaluate_triggers(DsId::new(1), Time::from_ms(2));
        assert_eq!(n, 1);
        let irq = sink.try_recv().unwrap();
        assert_eq!(irq.cpa, 3);
        assert_eq!(irq.ds, DsId::new(1));
        assert_eq!(irq.slot, 5);
        assert_eq!(irq.at, Time::from_ms(2));
        assert!(sink.try_recv().is_none());
    }

    #[test]
    fn evaluation_without_interrupt_line_is_safe() {
        let mut cp = plane();
        cp.install_trigger(0, Trigger::new(DsId::new(0), 0, CmpOp::Ge, 0))
            .unwrap();
        assert_eq!(cp.evaluate_triggers(DsId::new(0), Time::ZERO), 1);
    }

    #[test]
    fn out_of_range_ds_evaluates_to_nothing() {
        let mut cp = plane();
        assert_eq!(cp.evaluate_triggers(DsId::new(100), Time::ZERO), 0);
    }

    #[test]
    fn install_rejects_columns_beyond_the_stats_table() {
        let mut cp = plane();
        // The fixture's statistics table has 2 columns; column 2 is out.
        let err = cp
            .install_trigger(0, Trigger::new(DsId::new(0), 2, CmpOp::Gt, 0))
            .unwrap_err();
        assert_eq!(
            err,
            CpError::TriggerColumnOutOfRange { column: 2, width: 2 }
        );
        assert!(cp.triggers().get(0).is_none());
        cp.install_trigger(0, Trigger::new(DsId::new(0), 1, CmpOp::Gt, 0))
            .unwrap();
    }

    #[test]
    fn reset_ds_restores_defaults_and_bumps_generation() {
        let mut cp = plane();
        cp.set_param(DsId::new(2), "waymask", 1).unwrap();
        let capacity = cp.stats().key("capacity").unwrap();
        cp.stats().set(DsId::new(2), capacity, 9).unwrap();
        let g = cp.generation();
        cp.reset_ds(DsId::new(2)).unwrap();
        assert_eq!(cp.param(DsId::new(2), "waymask").unwrap(), 0xFFFF);
        assert_eq!(cp.stat(DsId::new(2), "capacity").unwrap(), 0);
        assert!(cp.generation() > g);
    }

    #[test]
    fn drain_collects_multiple() {
        let mut cp = plane();
        let (line, sink) = InterruptLine::channel();
        cp.attach(0, line);
        cp.install_trigger(0, Trigger::new(DsId::new(0), 0, CmpOp::Ge, 0))
            .unwrap();
        cp.install_trigger(1, Trigger::new(DsId::new(0), 1, CmpOp::Ge, 0))
            .unwrap();
        cp.evaluate_triggers(DsId::new(0), Time::ZERO);
        assert_eq!(sink.drain().len(), 2);
    }

    #[test]
    fn type_codes_match_figure6() {
        assert_eq!(CpType::Cache.code(), 'C');
        assert_eq!(CpType::Memory.code(), 'M');
        assert_eq!(CpType::Bridge.code(), 'B');
        assert_eq!(CpType::Cache.encode(), 0x43);
    }

    #[test]
    fn stats_handle_records_without_the_plane_borrow() {
        let cp = plane();
        let handle = cp.stats_handle();
        let miss_rate = handle.key("miss_rate").unwrap();
        handle.add(DsId::new(1), miss_rate, 4).unwrap();
        handle.add(DsId::new(1), miss_rate, 3).unwrap();
        assert_eq!(cp.stat(DsId::new(1), "miss_rate").unwrap(), 7);
        assert_eq!(handle.get(DsId::new(1), miss_rate).unwrap(), 7);
    }

    #[test]
    fn stat_keys_cover_name_and_offset_writes() {
        let cp = plane();
        let miss_rate = cp.stats().key("miss_rate").unwrap();
        cp.stats().set(DsId::new(0), miss_rate, 10).unwrap();
        cp.stats().add(DsId::new(0), miss_rate, 5).unwrap();
        assert_eq!(cp.stat(DsId::new(0), "miss_rate").unwrap(), 15);
        // The CPA write path resolves raw offsets through `key_at`.
        let by_offset = cp.stats().key_at(1).unwrap();
        cp.stats().set(DsId::new(0), by_offset, 9).unwrap();
        assert_eq!(cp.stat(DsId::new(0), "capacity").unwrap(), 9);
        assert!(matches!(
            cp.stats().key_at(9),
            Err(CpError::BadColumn { offset: 9, width: 2, .. })
        ));
    }

    #[test]
    fn policy_install_clear_and_default_manage_epochs_and_generation() {
        let mut cp = plane();
        assert!(cp.active_policy().is_none());
        assert_eq!(cp.policy_source(), "");

        let g = cp.generation();
        cp.set_default_policy("when all do waymask param.waymask")
            .unwrap();
        assert!(cp.generation() > g);
        assert!(!cp.policy_installed());
        let default = cp.active_policy().unwrap();
        assert_eq!(cp.policy_source(), "when all do waymask param.waymask");

        cp.install_policy("when ds == 1 do waymask 0xFF00\nwhen all do waymask param.waymask")
            .unwrap();
        assert!(cp.policy_installed());
        let installed = cp.active_policy().unwrap();
        assert!(installed.epoch() > default.epoch());

        // A bad install leaves the active program untouched.
        let err = cp.install_policy("when all do waymask param.nope").unwrap_err();
        assert!(matches!(err, CpError::Policy { ref token, .. } if token == "nope"));
        assert_eq!(cp.active_policy().unwrap().epoch(), installed.epoch());

        cp.clear_policy();
        assert!(!cp.policy_installed());
        assert_eq!(cp.active_policy().unwrap().epoch(), default.epoch());
    }

    #[test]
    fn shared_handle_is_cloneable() {
        let h = shared(plane());
        let h2 = h.clone();
        h.lock().set_param(DsId::new(0), "waymask", 7).unwrap();
        assert_eq!(h2.lock().param(DsId::new(0), "waymask").unwrap(), 7);
    }
}
