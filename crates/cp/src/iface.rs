//! The CPA programming interface — the 32-byte register file of Fig. 6.
//!
//! The PRM reserves a 64 KB I/O address space for control-plane adaptors
//! (CPAs); each CPA occupies 32 bytes:
//!
//! ```text
//! offset  size  register
//! 0x00    8     IDENT        (first 8 bytes of the identity string)
//! 0x08    4     IDENT_HIGH   (next 4 bytes of the identity string)
//! 0x0C    4     type         (resource type code: 'C', 'M', 'B', ...)
//! 0x10    4     addr         { 16-bit DS-id | 14-bit column offset | 2-bit table }
//! 0x14    4     cmd          (1 = READ, 2 = WRITE)
//! 0x18    8     data
//! ```
//!
//! To write a table cell the driver programs `addr`, fills `data`, then
//! writes WRITE into `cmd`. To read, it programs `addr`, writes READ into
//! `cmd`, then reads `data`.

use pard_icn::DsId;

use crate::error::CpError;
use crate::plane::CpHandle;

/// Size of one CPA register window in bytes.
pub const CPA_BYTES: u64 = 32;

/// Offset of the IDENT register.
pub const REG_IDENT: u64 = 0x00;
/// Offset of the IDENT_HIGH register.
pub const REG_IDENT_HIGH: u64 = 0x08;
/// Offset of the type register.
pub const REG_TYPE: u64 = 0x0C;
/// Offset of the addr register.
pub const REG_ADDR: u64 = 0x10;
/// Offset of the cmd register.
pub const REG_CMD: u64 = 0x14;
/// Offset of the data register.
pub const REG_DATA: u64 = 0x18;

/// The 2-bit table selector inside the `addr` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableSel {
    /// The parameter table.
    Parameter,
    /// The statistics table.
    Statistics,
    /// The trigger table (row = slot index in the DS-id field).
    Trigger,
}

impl TableSel {
    /// Encodes the selector into its 2-bit field value.
    pub fn encode(self) -> u32 {
        match self {
            TableSel::Parameter => 0,
            TableSel::Statistics => 1,
            TableSel::Trigger => 2,
        }
    }

    /// Decodes a 2-bit field value.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::BadTableSelect`] for the reserved encoding `3`.
    pub fn decode(raw: u32) -> Result<Self, CpError> {
        Ok(match raw & 0b11 {
            0 => TableSel::Parameter,
            1 => TableSel::Statistics,
            2 => TableSel::Trigger,
            other => return Err(CpError::BadTableSelect(other as u8)),
        })
    }
}

/// The decoded contents of the CPA `addr` register.
///
/// # Example
///
/// ```
/// use pard_cp::{CpAddr, TableSel};
/// use pard_icn::DsId;
///
/// let a = CpAddr::new(DsId::new(2), 5, TableSel::Statistics);
/// let raw = a.encode();
/// assert_eq!(CpAddr::decode(raw).unwrap(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpAddr {
    /// The table row (a DS-id for parameter/statistics tables, a slot index
    /// for the trigger table).
    pub ds: DsId,
    /// The column offset within the row (14 bits).
    pub offset: u16,
    /// Which table to access.
    pub table: TableSel,
}

impl CpAddr {
    /// Maximum encodable column offset (14 bits).
    pub const MAX_OFFSET: u16 = (1 << 14) - 1;

    /// Creates an address.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds [`CpAddr::MAX_OFFSET`].
    pub fn new(ds: DsId, offset: u16, table: TableSel) -> Self {
        assert!(
            offset <= Self::MAX_OFFSET,
            "column offset exceeds the 14-bit addr field"
        );
        CpAddr { ds, offset, table }
    }

    /// Packs into the 32-bit `addr` register layout:
    /// `[31:16]` DS-id, `[15:2]` offset, `[1:0]` table selector.
    pub fn encode(self) -> u32 {
        (u32::from(self.ds.raw()) << 16) | (u32::from(self.offset) << 2) | self.table.encode()
    }

    /// Unpacks a raw `addr` register value.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::BadTableSelect`] for the reserved table encoding.
    pub fn decode(raw: u32) -> Result<Self, CpError> {
        Ok(CpAddr {
            ds: DsId::new((raw >> 16) as u16),
            offset: ((raw >> 2) & 0x3FFF) as u16,
            table: TableSel::decode(raw)?,
        })
    }
}

/// The CPA `cmd` register values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpCommand {
    /// Latch the addressed cell into `data`.
    Read,
    /// Store `data` into the addressed cell.
    Write,
}

impl CpCommand {
    /// Encodes into the `cmd` register value.
    pub fn encode(self) -> u32 {
        match self {
            CpCommand::Read => 1,
            CpCommand::Write => 2,
        }
    }

    /// Decodes a `cmd` register value.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::BadCommand`] for undefined values.
    pub fn decode(raw: u32) -> Result<Self, CpError> {
        match raw {
            1 => Ok(CpCommand::Read),
            2 => Ok(CpCommand::Write),
            other => Err(CpError::BadCommand(other)),
        }
    }
}

/// One CPA register window: the hardware the PRM's drivers actually touch.
///
/// Holds the plane handle plus the `addr`/`data` latches; writing
/// [`CpCommand`] values into the `cmd` register executes table accesses
/// against the attached control plane.
///
/// # Example
///
/// ```
/// use pard_cp::{ColumnDef, ControlPlane, CpAddr, CpCommand, CpType, CpaRegisterFile, DsTable,
///               TableSel, REG_ADDR, REG_CMD, REG_DATA};
/// use pard_icn::DsId;
///
/// let params = DsTable::new("parameter", vec![ColumnDef::new("waymask")], 8);
/// let stats = DsTable::new("statistics", vec![ColumnDef::new("miss_rate")], 8);
/// let plane = pard_cp::shared(ControlPlane::new("CACHE_CP", CpType::Cache, params, stats, 4));
/// let mut cpa = CpaRegisterFile::new(plane);
///
/// // Program waymask for ds1 via the documented sequence.
/// let addr = CpAddr::new(DsId::new(1), 0, TableSel::Parameter).encode();
/// cpa.write(REG_ADDR, addr.into()).unwrap();
/// cpa.write(REG_DATA, 0x00FF).unwrap();
/// cpa.write(REG_CMD, CpCommand::Write.encode().into()).unwrap();
///
/// // Read it back.
/// cpa.write(REG_CMD, CpCommand::Read.encode().into()).unwrap();
/// assert_eq!(cpa.read(REG_DATA).unwrap(), 0x00FF);
/// ```
#[derive(Debug)]
pub struct CpaRegisterFile {
    plane: CpHandle,
    addr: u32,
    data: u64,
}

impl CpaRegisterFile {
    /// Creates a register file attached to `plane`.
    pub fn new(plane: CpHandle) -> Self {
        CpaRegisterFile {
            plane,
            addr: 0,
            data: 0,
        }
    }

    /// The attached control plane.
    pub fn plane(&self) -> &CpHandle {
        &self.plane
    }

    /// Reads a register.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::BadRegister`] for undefined offsets.
    pub fn read(&self, offset: u64) -> Result<u64, CpError> {
        match offset {
            REG_IDENT => Ok(ident_bytes(&self.plane, 0)),
            REG_IDENT_HIGH => Ok(ident_bytes(&self.plane, 8) & 0xFFFF_FFFF),
            REG_TYPE => Ok(u64::from(self.plane.lock().cp_type().encode())),
            REG_ADDR => Ok(u64::from(self.addr)),
            REG_CMD => Ok(0),
            REG_DATA => Ok(self.data),
            other => Err(CpError::BadRegister(other)),
        }
    }

    /// Writes a register; writing `cmd` executes the latched access.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::BadRegister`] for undefined or read-only offsets
    /// and propagates decode/table errors from command execution.
    pub fn write(&mut self, offset: u64, value: u64) -> Result<(), CpError> {
        match offset {
            REG_ADDR => {
                self.addr = value as u32;
                Ok(())
            }
            REG_DATA => {
                self.data = value;
                Ok(())
            }
            REG_CMD => self.execute(CpCommand::decode(value as u32)?),
            REG_IDENT | REG_IDENT_HIGH | REG_TYPE => Err(CpError::BadRegister(offset)),
            other => Err(CpError::BadRegister(other)),
        }
    }

    fn execute(&mut self, cmd: CpCommand) -> Result<(), CpError> {
        let addr = CpAddr::decode(self.addr)?;
        let mut plane = self.plane.lock();
        match (cmd, addr.table) {
            (CpCommand::Read, TableSel::Parameter) => {
                self.data = plane
                    .params()
                    .get_by_offset(addr.ds, addr.offset as usize)?;
            }
            (CpCommand::Read, TableSel::Statistics) => {
                let stats = plane.stats();
                let key = stats.key_at(addr.offset as usize)?;
                self.data = stats.get(addr.ds, key)?;
            }
            (CpCommand::Read, TableSel::Trigger) => {
                self.data = plane
                    .triggers()
                    .get_field(addr.ds.index(), addr.offset as usize)?;
            }
            (CpCommand::Write, TableSel::Parameter) => {
                // Route through set_param so the generation counter bumps;
                // name_at owns the offset bounds check (BadColumn).
                let column = plane.params().name_at(addr.offset as usize)?;
                plane.set_param(addr.ds, column, self.data)?;
            }
            (CpCommand::Write, TableSel::Statistics) => {
                let stats = plane.stats();
                let key = stats.key_at(addr.offset as usize)?;
                stats.set(addr.ds, key, self.data)?;
            }
            (CpCommand::Write, TableSel::Trigger) => {
                let data = self.data;
                plane
                    .triggers_mut()
                    .set_field(addr.ds.index(), addr.offset as usize, data)?;
            }
        }
        Ok(())
    }
}

fn ident_bytes(plane: &CpHandle, start: usize) -> u64 {
    let plane = plane.lock();
    let bytes = plane.ident().as_bytes();
    let mut out = [0u8; 8];
    for (i, slot) in out.iter_mut().enumerate() {
        if let Some(&b) = bytes.get(start + i) {
            *slot = b;
        }
    }
    u64::from_le_bytes(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{shared, ControlPlane, CpType};
    use crate::table::{ColumnDef, DsTable};

    fn cpa() -> CpaRegisterFile {
        let params = DsTable::new(
            "parameter",
            vec![ColumnDef::new("waymask"), ColumnDef::new("priority")],
            16,
        );
        let stats = DsTable::new(
            "statistics",
            vec![ColumnDef::new("miss_rate"), ColumnDef::new("capacity")],
            16,
        );
        CpaRegisterFile::new(shared(ControlPlane::new(
            "CACHE_CP",
            CpType::Cache,
            params,
            stats,
            8,
        )))
    }

    fn access(cpa: &mut CpaRegisterFile, addr: CpAddr, cmd: CpCommand, data: u64) -> u64 {
        cpa.write(REG_ADDR, addr.encode().into()).unwrap();
        if cmd == CpCommand::Write {
            cpa.write(REG_DATA, data).unwrap();
        }
        cpa.write(REG_CMD, cmd.encode().into()).unwrap();
        cpa.read(REG_DATA).unwrap()
    }

    #[test]
    fn addr_field_packs_per_figure6() {
        let a = CpAddr::new(DsId::new(0xABCD), 0x3FFF, TableSel::Trigger);
        let raw = a.encode();
        assert_eq!(raw >> 16, 0xABCD);
        assert_eq!((raw >> 2) & 0x3FFF, 0x3FFF);
        assert_eq!(raw & 0b11, 2);
        assert_eq!(CpAddr::decode(raw).unwrap(), a);
    }

    #[test]
    fn reserved_table_selector_rejected() {
        assert!(matches!(
            CpAddr::decode(0b11),
            Err(CpError::BadTableSelect(3))
        ));
        assert!(TableSel::decode(3).is_err());
    }

    #[test]
    #[should_panic(expected = "14-bit")]
    fn oversized_offset_panics() {
        let _ = CpAddr::new(DsId::new(0), 0x4000, TableSel::Parameter);
    }

    #[test]
    fn ident_reads_back_as_string_bytes() {
        let cpa = cpa();
        let lo = cpa.read(REG_IDENT).unwrap().to_le_bytes();
        assert_eq!(&lo, b"CACHE_CP");
        let hi = cpa.read(REG_IDENT_HIGH).unwrap();
        assert_eq!(hi, 0); // 8-byte ident fits entirely in IDENT.
        assert_eq!(cpa.read(REG_TYPE).unwrap(), u64::from(b'C'));
    }

    #[test]
    fn parameter_write_read_round_trip() {
        let mut cpa = cpa();
        let addr = CpAddr::new(DsId::new(3), 0, TableSel::Parameter);
        access(&mut cpa, addr, CpCommand::Write, 0xFF00);
        assert_eq!(access(&mut cpa, addr, CpCommand::Read, 0), 0xFF00);
        // The native view agrees, and the generation was bumped.
        let plane = cpa.plane().clone();
        assert_eq!(plane.lock().param(DsId::new(3), "waymask").unwrap(), 0xFF00);
        assert_eq!(plane.lock().generation(), 1);
    }

    #[test]
    fn statistics_access_round_trip() {
        let mut cpa = cpa();
        {
            let plane = cpa.plane().clone();
            let guard = plane.lock();
            let capacity = guard.stats().key("capacity").unwrap();
            guard.stats().set(DsId::new(2), capacity, 77).unwrap();
        }
        let addr = CpAddr::new(DsId::new(2), 1, TableSel::Statistics);
        assert_eq!(access(&mut cpa, addr, CpCommand::Read, 0), 77);
        access(&mut cpa, addr, CpCommand::Write, 0);
        assert_eq!(access(&mut cpa, addr, CpCommand::Read, 0), 0);
    }

    #[test]
    fn statistics_offset_misses_report_bad_column() {
        let mut cpa = cpa();
        let addr = CpAddr::new(DsId::new(0), 9, TableSel::Statistics);
        cpa.write(REG_ADDR, addr.encode().into()).unwrap();
        let err = cpa
            .write(REG_CMD, CpCommand::Read.encode().into())
            .unwrap_err();
        assert!(matches!(
            err,
            CpError::BadColumn {
                table: "statistics",
                offset: 9,
                width: 2,
            }
        ));
        let err = cpa
            .write(REG_CMD, CpCommand::Write.encode().into())
            .unwrap_err();
        assert!(matches!(err, CpError::BadColumn { offset: 9, .. }));
    }

    #[test]
    fn trigger_programming_sequence() {
        let mut cpa = cpa();
        // Program slot 2: ds=4, stats column 0 (miss_rate), Gt, 30, enable.
        let slot = DsId::new(2);
        for (field, value) in [(0u16, 4u64), (1, 0), (2, 0), (3, 30), (4, 1)] {
            let addr = CpAddr::new(slot, field, TableSel::Trigger);
            access(&mut cpa, addr, CpCommand::Write, value);
        }
        let plane = cpa.plane().clone();
        let guard = plane.lock();
        let t = guard.triggers().get(2).expect("trigger installed");
        assert_eq!(t.ds, DsId::new(4));
        assert_eq!(t.stats_column, 0);
        assert_eq!(t.value, 30);
        assert!(t.enabled);
    }

    #[test]
    fn bad_accesses_error() {
        let mut cpa = cpa();
        assert!(cpa.read(0x40).is_err());
        assert!(cpa.write(0x40, 0).is_err());
        assert!(cpa.write(REG_TYPE, 0).is_err());
        assert!(cpa.write(REG_CMD, 99).is_err());
        // Column offset out of schema.
        let addr = CpAddr::new(DsId::new(0), 9, TableSel::Parameter);
        cpa.write(REG_ADDR, addr.encode().into()).unwrap();
        assert!(cpa.write(REG_CMD, CpCommand::Read.encode().into()).is_err());
    }

    #[test]
    fn cmd_register_reads_zero() {
        let cpa = cpa();
        assert_eq!(cpa.read(REG_CMD).unwrap(), 0);
        assert_eq!(cpa.read(REG_ADDR).unwrap(), 0);
    }
}
