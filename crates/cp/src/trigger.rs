//! The trigger table: hardware performance triggers.

use pard_icn::DsId;

use crate::error::CpError;

/// Comparison operator of a trigger condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// Applies the operator.
    #[inline]
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// Encodes the operator for table storage / the CPA interface.
    pub fn encode(self) -> u64 {
        match self {
            CmpOp::Gt => 0,
            CmpOp::Ge => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Eq => 4,
            CmpOp::Ne => 5,
        }
    }

    /// Decodes a table-stored operator.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::BadCommand`] for undefined encodings.
    pub fn decode(raw: u64) -> Result<Self, CpError> {
        Ok(match raw {
            0 => CmpOp::Gt,
            1 => CmpOp::Ge,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Eq,
            5 => CmpOp::Ne,
            other => return Err(CpError::BadCommand(other as u32)),
        })
    }

    /// The shell-style mnemonic used by the `pardtrigger` command
    /// (`gt`, `ge`, `lt`, `le`, `eq`, `ne`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
        }
    }

    /// Parses a shell-style mnemonic.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::UnknownColumn`] (reused as a generic parse error)
    /// for unknown mnemonics.
    pub fn from_mnemonic(s: &str) -> Result<Self, CpError> {
        Ok(match s {
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            other => {
                return Err(CpError::UnknownColumn {
                    table: "trigger",
                    column: other.to_string(),
                })
            }
        })
    }
}

/// How a trigger interprets the monitored statistics column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TriggerMode {
    /// Compare the column's current value against the threshold directly
    /// (the original trigger semantics).
    #[default]
    Level,
    /// Latency-degradation comparison: the slot smooths the column with a
    /// fast EMA (1/2 gain, so a single noisy window of a small integer
    /// latency column cannot swing it) and tracks a slow healthy baseline
    /// (1/8-gain EMA updated only while the condition is false, so the
    /// baseline never chases a degraded value), then compares the percent
    /// growth of the smoothed value over the baseline against the
    /// threshold. A threshold of `50` with [`CmpOp::Ge`] reads "fire when
    /// the column is sustained ≥ 50 % worse than its own recent history"
    /// — the SLA-breach detector the fault-recovery experiments program
    /// on `avg_qlat`.
    DegradationPct,
}

impl TriggerMode {
    /// Encodes the mode for table storage / the CPA interface.
    pub fn encode(self) -> u64 {
        match self {
            TriggerMode::Level => 0,
            TriggerMode::DegradationPct => 1,
        }
    }

    /// Decodes a table-stored mode.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::BadCommand`] for undefined encodings.
    pub fn decode(raw: u64) -> Result<Self, CpError> {
        Ok(match raw {
            0 => TriggerMode::Level,
            1 => TriggerMode::DegradationPct,
            other => return Err(CpError::BadCommand(other as u32)),
        })
    }
}

/// One installed trigger: "when `stats[ds][column] ⋄ value`, raise an
/// interrupt naming this slot".
///
/// Triggers are level-latched: a trigger fires once when its condition
/// becomes true and re-arms only after the condition is observed false
/// again (or the firmware rewrites the slot). This prevents interrupt
/// storms while a condition persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trigger {
    /// The DS-id whose statistics row is monitored.
    pub ds: DsId,
    /// Offset of the monitored column in the statistics table.
    pub stats_column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Comparison threshold (a raw value in [`TriggerMode::Level`], a
    /// percentage in [`TriggerMode::DegradationPct`]).
    pub value: u64,
    /// Whether the trigger participates in evaluation.
    pub enabled: bool,
    /// Internal latch; `true` after firing until the condition clears.
    pub latched: bool,
    /// How the monitored column is interpreted.
    pub mode: TriggerMode,
    /// Self-tracked healthy baseline for [`TriggerMode::DegradationPct`];
    /// `0` until the first non-zero observation seeds it.
    pub baseline: u64,
    /// Fast EMA of the observed column for
    /// [`TriggerMode::DegradationPct`]; `0` until the first non-zero
    /// observation.
    pub obs_ema: u64,
    /// Absolute floor for [`TriggerMode::DegradationPct`]: the smoothed
    /// observation must also reach this value before the slot may fire.
    /// Percent growth over a tiny baseline (a column idling at 1–2
    /// counts) is noise, not degradation; the floor anchors the relative
    /// comparison to a magnitude that matters. `0` disables the floor.
    pub floor: u64,
}

impl Trigger {
    /// Creates an enabled, unlatched level trigger.
    pub fn new(ds: DsId, stats_column: usize, op: CmpOp, value: u64) -> Self {
        Trigger {
            ds,
            stats_column,
            op,
            value,
            enabled: true,
            latched: false,
            mode: TriggerMode::Level,
            baseline: 0,
            obs_ema: 0,
            floor: 0,
        }
    }

    /// Creates an enabled, unlatched latency-degradation trigger that
    /// fires when the column grows at least `pct` percent over its
    /// self-tracked baseline.
    pub fn degradation(ds: DsId, stats_column: usize, pct: u64) -> Self {
        Trigger {
            ds,
            stats_column,
            op: CmpOp::Ge,
            value: pct,
            enabled: true,
            latched: false,
            mode: TriggerMode::DegradationPct,
            baseline: 0,
            obs_ema: 0,
            floor: 0,
        }
    }

    /// Sets the degradation floor (builder style): the smoothed
    /// observation must reach `floor` before the slot may fire.
    #[must_use]
    pub fn with_floor(mut self, floor: u64) -> Self {
        self.floor = floor;
        self
    }

    /// Re-evaluates the predicate against `observed` without touching
    /// latch, baseline, or smoothing state. Used by the evaluation pass
    /// and by the audit layer's firing-soundness re-check (which must
    /// agree with it, mode included). In [`TriggerMode::DegradationPct`]
    /// the smoothed observation (`obs_ema`) is authoritative, not the raw
    /// `observed` value — the re-check after an evaluation pass therefore
    /// reads the same state the pass fired on.
    pub fn predicate_holds(&self, observed: u64) -> bool {
        match self.mode {
            TriggerMode::Level => self.op.eval(observed, self.value),
            TriggerMode::DegradationPct => {
                if self.obs_ema == 0 || self.baseline == 0 || self.obs_ema < self.floor {
                    return false;
                }
                let growth_pct = self
                    .obs_ema
                    .saturating_mul(100)
                    .checked_div(self.baseline)
                    .unwrap_or(0)
                    .saturating_sub(100);
                self.op.eval(growth_pct, self.value)
            }
        }
    }
}

/// The trigger table: a fixed number of trigger slots, as synthesised in
/// the RTL (the paper evaluates 16-, 32- and 64-entry trigger tables).
///
/// # Example
///
/// ```
/// use pard_cp::{CmpOp, Trigger, TriggerTable};
/// use pard_icn::DsId;
///
/// let mut tt = TriggerTable::new(64);
/// tt.install(0, Trigger::new(DsId::new(2), 0, CmpOp::Gt, 30)).unwrap();
/// // stats row for ds2 has column0 = 45 -> fires slot 0
/// let fired = tt.evaluate(DsId::new(2), &[45]);
/// assert_eq!(fired, vec![0]);
/// // Still true: latched, no refire.
/// assert!(tt.evaluate(DsId::new(2), &[45]).is_empty());
/// // Condition clears, then fires again.
/// assert!(tt.evaluate(DsId::new(2), &[10]).is_empty());
/// assert_eq!(tt.evaluate(DsId::new(2), &[99]), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct TriggerTable {
    slots: Vec<Option<Trigger>>,
}

impl TriggerTable {
    /// Creates a table with `slots` empty slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "trigger table needs at least one slot");
        TriggerTable {
            slots: vec![None; slots],
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Installs `trigger` in `slot`, replacing any previous occupant.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::TriggerSlotOutOfRange`] if `slot` is out of range.
    pub fn install(&mut self, slot: usize, trigger: Trigger) -> Result<(), CpError> {
        let len = self.slots.len();
        let cell = self
            .slots
            .get_mut(slot)
            .ok_or(CpError::TriggerSlotOutOfRange { slot, slots: len })?;
        *cell = Some(trigger);
        Ok(())
    }

    /// Clears `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::TriggerSlotOutOfRange`] if `slot` is out of range.
    pub fn clear(&mut self, slot: usize) -> Result<(), CpError> {
        let len = self.slots.len();
        let cell = self
            .slots
            .get_mut(slot)
            .ok_or(CpError::TriggerSlotOutOfRange { slot, slots: len })?;
        *cell = None;
        Ok(())
    }

    /// The trigger in `slot`, if any.
    pub fn get(&self, slot: usize) -> Option<&Trigger> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Installed `(slot, trigger)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Trigger)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (i, t)))
    }

    /// Reads a raw trigger-row field through the CPA programming path.
    ///
    /// Field offsets: `0` = DS-id, `1` = statistics column, `2` = operator
    /// encoding, `3` = threshold value, `4` = enabled, `5` = latched,
    /// `6` = mode encoding ([`TriggerMode`]), `7` = degradation baseline,
    /// `8` = degradation floor. An empty slot reads as all-zeroes with
    /// `enabled = 0`.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range slots or fields.
    pub fn get_field(&self, slot: usize, field: usize) -> Result<u64, CpError> {
        let len = self.slots.len();
        let cell = self
            .slots
            .get(slot)
            .ok_or(CpError::TriggerSlotOutOfRange { slot, slots: len })?;
        let t = match cell {
            Some(t) => *t,
            None => Trigger {
                ds: DsId::DEFAULT,
                stats_column: 0,
                op: CmpOp::Gt,
                value: 0,
                enabled: false,
                latched: false,
                mode: TriggerMode::Level,
                baseline: 0,
                obs_ema: 0,
                floor: 0,
            },
        };
        Ok(match field {
            0 => u64::from(t.ds.raw()),
            1 => t.stats_column as u64,
            2 => t.op.encode(),
            3 => t.value,
            4 => u64::from(t.enabled),
            5 => u64::from(t.latched),
            6 => t.mode.encode(),
            7 => t.baseline,
            8 => t.floor,
            other => {
                return Err(CpError::UnknownColumn {
                    table: "trigger",
                    column: format!("field {other}"),
                })
            }
        })
    }

    /// Writes a raw trigger-row field through the CPA programming path.
    ///
    /// Writing to an empty slot materialises a disabled trigger first; the
    /// `pardtrigger` command programs fields 0–3 and enables the slot last.
    /// Writing `0` to the `latched` field re-arms a fired trigger.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range slots/fields or an undefined
    /// operator encoding.
    pub fn set_field(&mut self, slot: usize, field: usize, value: u64) -> Result<(), CpError> {
        let len = self.slots.len();
        let cell = self
            .slots
            .get_mut(slot)
            .ok_or(CpError::TriggerSlotOutOfRange { slot, slots: len })?;
        let t = cell.get_or_insert(Trigger {
            ds: DsId::DEFAULT,
            stats_column: 0,
            op: CmpOp::Gt,
            value: 0,
            enabled: false,
            latched: false,
            mode: TriggerMode::Level,
            baseline: 0,
            obs_ema: 0,
            floor: 0,
        });
        match field {
            0 => t.ds = DsId::new(value as u16),
            1 => t.stats_column = value as usize,
            2 => t.op = CmpOp::decode(value)?,
            3 => t.value = value,
            4 => t.enabled = value != 0,
            5 => t.latched = value != 0,
            6 => {
                t.mode = TriggerMode::decode(value)?;
                // A reprogrammed interpretation restarts baseline and
                // smoothing state from the next observation.
                t.baseline = 0;
                t.obs_ema = 0;
            }
            7 => t.baseline = value,
            8 => t.floor = value,
            other => {
                return Err(CpError::UnknownColumn {
                    table: "trigger",
                    column: format!("field {other}"),
                })
            }
        }
        Ok(())
    }

    /// Evaluates all triggers watching `ds` against its statistics row,
    /// returning the slots that fire (become true while unlatched).
    ///
    /// Conditions referencing columns beyond `stats_row` are **skipped**:
    /// the comparator has no driven value to observe, so the slot neither
    /// fires nor re-arms. (Earlier revisions read such columns as 0, which
    /// made `Eq 0` / `Lt` triggers fire spuriously.) See
    /// [`evaluate_detailed`](TriggerTable::evaluate_detailed) for the full
    /// per-slot outcome.
    pub fn evaluate(&mut self, ds: DsId, stats_row: &[u64]) -> Vec<usize> {
        self.evaluate_detailed(ds, stats_row).fired
    }

    /// Evaluates all triggers watching `ds`, reporting every slot outcome.
    ///
    /// * `fired` — the condition became true while the slot was unlatched;
    ///   an interrupt should be raised for each of these.
    /// * `rearmed` — a previously latched slot observed its condition false
    ///   and is armed again.
    /// * `skipped` — the slot references a statistics column beyond the
    ///   supplied row, so it was not evaluated and its latch is untouched.
    pub fn evaluate_detailed(&mut self, ds: DsId, stats_row: &[u64]) -> EvalOutcome {
        let mut outcome = EvalOutcome::default();
        for (slot, t) in self.slots.iter_mut().enumerate() {
            let Some(t) = t else { continue };
            if !t.enabled || t.ds != ds {
                continue;
            }
            let Some(observed) = stats_row.get(t.stats_column).copied() else {
                outcome.skipped.push(slot);
                continue;
            };
            let cond = match t.mode {
                TriggerMode::Level => t.op.eval(observed, t.value),
                TriggerMode::DegradationPct => {
                    // Zero observations (idle windows) neither seed nor
                    // erode the baseline: an idle span must not make the
                    // next healthy window look like a degradation.
                    if observed == 0 {
                        false
                    } else {
                        // Fast smoothing first (EMA, 1/2 gain): per-window
                        // latency columns are small noisy integers, and a
                        // single outlier window must not fire the slot; a
                        // sustained shift dominates within a few windows.
                        t.obs_ema = if t.obs_ema == 0 {
                            observed
                        } else {
                            ((t.obs_ema + observed) / 2).max(1)
                        };
                        if t.baseline == 0 {
                            t.baseline = t.obs_ema;
                            false
                        } else {
                            let cond = t.predicate_holds(observed);
                            if !cond {
                                // Track healthy drift only (EMA, 1/8
                                // gain): the baseline never chases the
                                // degraded value, so the slot keeps
                                // firing for the whole episode.
                                t.baseline = ((t.baseline * 7 + t.obs_ema) / 8).max(1);
                            }
                            cond
                        }
                    }
                }
            };
            if cond && !t.latched {
                t.latched = true;
                outcome.fired.push(slot);
            } else if !cond {
                if t.latched {
                    outcome.rearmed.push(slot);
                }
                t.latched = false;
            }
        }
        outcome
    }
}

/// Per-slot result of one [`TriggerTable::evaluate_detailed`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Slots whose condition became true while unlatched.
    pub fired: Vec<usize>,
    /// Previously latched slots whose condition was observed false.
    pub rearmed: Vec<usize>,
    /// Slots skipped because their column is beyond the statistics row.
    pub skipped: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops_evaluate_correctly() {
        assert!(CmpOp::Gt.eval(2, 1));
        assert!(!CmpOp::Gt.eval(1, 1));
        assert!(CmpOp::Ge.eval(1, 1));
        assert!(CmpOp::Lt.eval(0, 1));
        assert!(CmpOp::Le.eval(1, 1));
        assert!(CmpOp::Eq.eval(5, 5));
        assert!(CmpOp::Ne.eval(5, 6));
    }

    #[test]
    fn cmp_op_encoding_round_trips() {
        for op in [
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(CmpOp::decode(op.encode()).unwrap(), op);
            assert_eq!(CmpOp::from_mnemonic(op.mnemonic()).unwrap(), op);
        }
        assert!(CmpOp::decode(99).is_err());
        assert!(CmpOp::from_mnemonic("??").is_err());
    }

    #[test]
    fn triggers_only_watch_their_ds() {
        let mut tt = TriggerTable::new(4);
        tt.install(1, Trigger::new(DsId::new(3), 0, CmpOp::Gt, 10))
            .unwrap();
        assert!(tt.evaluate(DsId::new(2), &[100]).is_empty());
        assert_eq!(tt.evaluate(DsId::new(3), &[100]), vec![1]);
    }

    #[test]
    fn disabled_triggers_stay_silent() {
        let mut tt = TriggerTable::new(2);
        let mut t = Trigger::new(DsId::new(0), 0, CmpOp::Gt, 0);
        t.enabled = false;
        tt.install(0, t).unwrap();
        assert!(tt.evaluate(DsId::new(0), &[5]).is_empty());
    }

    #[test]
    fn missing_column_is_skipped_not_read_as_zero() {
        // Regression: an out-of-range column used to be observed as 0,
        // making `Eq 0` fire spuriously. It must be skipped instead.
        let mut tt = TriggerTable::new(1);
        tt.install(0, Trigger::new(DsId::new(0), 9, CmpOp::Eq, 0))
            .unwrap();
        assert!(tt.evaluate(DsId::new(0), &[1, 2]).is_empty());
        let outcome = tt.evaluate_detailed(DsId::new(0), &[1, 2]);
        assert_eq!(outcome.skipped, vec![0]);
        assert!(outcome.fired.is_empty());
        // A skip leaves the latch untouched: once the row grows wide
        // enough, the trigger fires exactly once.
        assert_eq!(
            tt.evaluate(DsId::new(0), &[1, 2, 0, 0, 0, 0, 0, 0, 0, 0]),
            vec![0]
        );
    }

    #[test]
    fn evaluate_detailed_reports_rearm() {
        let mut tt = TriggerTable::new(2);
        tt.install(0, Trigger::new(DsId::new(1), 0, CmpOp::Gt, 10))
            .unwrap();
        assert_eq!(tt.evaluate_detailed(DsId::new(1), &[20]).fired, vec![0]);
        // Condition still true: latched, nothing reported.
        assert_eq!(
            tt.evaluate_detailed(DsId::new(1), &[20]),
            EvalOutcome::default()
        );
        // Condition clears: the slot re-arms.
        assert_eq!(tt.evaluate_detailed(DsId::new(1), &[5]).rearmed, vec![0]);
        assert_eq!(tt.evaluate_detailed(DsId::new(1), &[99]).fired, vec![0]);
    }

    #[test]
    fn multiple_slots_fire_together() {
        let mut tt = TriggerTable::new(4);
        tt.install(0, Trigger::new(DsId::new(1), 0, CmpOp::Gt, 10))
            .unwrap();
        tt.install(3, Trigger::new(DsId::new(1), 1, CmpOp::Lt, 5))
            .unwrap();
        assert_eq!(tt.evaluate(DsId::new(1), &[20, 1]), vec![0, 3]);
    }

    #[test]
    fn degradation_trigger_fires_on_growth_over_baseline() {
        let mut tt = TriggerTable::new(2);
        tt.install(0, Trigger::degradation(DsId::new(1), 0, 50))
            .unwrap();
        // First non-zero observation seeds smoothing and baseline, no fire.
        assert!(tt.evaluate(DsId::new(1), &[100]).is_empty());
        assert_eq!(tt.get(0).unwrap().baseline, 100);
        assert_eq!(tt.get(0).unwrap().obs_ema, 100);
        // Healthy drift tracks into the smoothed value and baseline.
        assert!(tt.evaluate(DsId::new(1), &[108]).is_empty());
        assert_eq!(tt.get(0).unwrap().obs_ema, 104);
        // A single elevated window is absorbed by the smoothing.
        assert!(tt.evaluate(DsId::new(1), &[150]).is_empty());
        // A sustained jump drives the smoothed value past +50 %: fires,
        // and the baseline stays frozen at its healthy value for the
        // whole degraded episode.
        let healthy = tt.get(0).unwrap().baseline;
        assert_eq!(tt.evaluate(DsId::new(1), &[300]), vec![0]);
        assert_eq!(tt.get(0).unwrap().baseline, healthy);
        // Latched while degraded; the smoothed value needs a couple of
        // healthy windows to decay back under the threshold, then the
        // slot re-arms and refires on the next sustained degradation.
        assert!(tt.evaluate(DsId::new(1), &[300]).is_empty());
        assert!(tt.evaluate(DsId::new(1), &[100]).is_empty());
        assert_eq!(
            tt.evaluate_detailed(DsId::new(1), &[100]).rearmed,
            vec![0]
        );
        assert_eq!(tt.evaluate(DsId::new(1), &[400]), vec![0]);
    }

    #[test]
    fn degradation_trigger_rides_out_window_noise() {
        // Per-window latency columns are small noisy integers; an
        // alternating 10/60 sequence is steady-state noise, not a
        // degradation, and must never fire — while a sustained 10×
        // shift fires immediately.
        let mut tt = TriggerTable::new(1);
        tt.install(0, Trigger::degradation(DsId::new(0), 0, 300))
            .unwrap();
        for observed in [10, 60, 10, 60, 10, 60] {
            assert!(
                tt.evaluate(DsId::new(0), &[observed]).is_empty(),
                "noise window {observed} must not fire"
            );
        }
        assert_eq!(tt.evaluate(DsId::new(0), &[600]), vec![0]);
    }

    #[test]
    fn degradation_trigger_ignores_idle_windows() {
        let mut tt = TriggerTable::new(1);
        tt.install(0, Trigger::degradation(DsId::new(0), 0, 50))
            .unwrap();
        // Idle windows neither seed nor erode the baseline.
        assert!(tt.evaluate(DsId::new(0), &[0]).is_empty());
        assert_eq!(tt.get(0).unwrap().baseline, 0);
        assert!(tt.evaluate(DsId::new(0), &[40]).is_empty());
        assert!(tt.evaluate(DsId::new(0), &[0]).is_empty());
        assert_eq!(tt.get(0).unwrap().baseline, 40);
    }

    #[test]
    fn trigger_mode_fields_round_trip_through_cpa_path() {
        let mut tt = TriggerTable::new(1);
        tt.install(0, Trigger::new(DsId::new(2), 1, CmpOp::Ge, 50))
            .unwrap();
        assert_eq!(tt.get_field(0, 6).unwrap(), 0);
        tt.set_field(0, 6, TriggerMode::DegradationPct.encode())
            .unwrap();
        assert_eq!(tt.get(0).unwrap().mode, TriggerMode::DegradationPct);
        tt.set_field(0, 7, 123).unwrap();
        assert_eq!(tt.get_field(0, 7).unwrap(), 123);
        tt.set_field(0, 8, 40).unwrap();
        assert_eq!(tt.get_field(0, 8).unwrap(), 40);
        // Reprogramming the mode restarts baseline tracking; the floor is
        // configuration, not tracking state, and survives.
        tt.set_field(0, 6, TriggerMode::Level.encode()).unwrap();
        assert_eq!(tt.get_field(0, 7).unwrap(), 0);
        assert_eq!(tt.get_field(0, 8).unwrap(), 40);
        assert!(TriggerMode::decode(9).is_err());
        assert!(tt.set_field(0, 9, 0).is_err());
        assert!(tt.get_field(0, 9).is_err());
    }

    #[test]
    fn install_and_clear_bounds() {
        let mut tt = TriggerTable::new(2);
        assert!(tt
            .install(5, Trigger::new(DsId::new(0), 0, CmpOp::Gt, 0))
            .is_err());
        assert!(tt.clear(5).is_err());
        tt.install(0, Trigger::new(DsId::new(0), 0, CmpOp::Gt, 0))
            .unwrap();
        assert!(tt.get(0).is_some());
        tt.clear(0).unwrap();
        assert!(tt.get(0).is_none());
        assert_eq!(tt.iter().count(), 0);
        assert_eq!(tt.slots(), 2);
    }
}
