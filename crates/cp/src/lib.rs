//! # pard-cp — the programmable control-plane framework
//!
//! PARD's second mechanism (§3 ②): every shared hardware resource embeds a
//! **programmable control plane** that processes DS-id-tagged packets
//! according to tag-based rules. All control planes share one basic
//! structure, instantiated with component-specific table columns:
//!
//! * a **parameter table** holding per-DS-id resource-allocation policy
//!   (LLC way masks, memory address maps and priorities, disk bandwidth),
//! * a **statistics table** holding per-DS-id usage information (hit/miss
//!   counts, bandwidth, average queueing latency),
//! * a **trigger table** holding per-DS-id performance triggers
//!   (`stats column ⋄ value` conditions that raise an interrupt to the
//!   platform resource manager when they become true),
//! * a **programming interface**: a 32-byte register file (Fig. 6) through
//!   which the PRM firmware reads and writes table cells, and
//! * an **interrupt line** to the PRM.
//!
//! The hot data path of a resource (e.g. the LLC lookup pipeline) does not
//! lock the control plane per access: resources cache parameters against a
//! [`generation`](ControlPlane::generation) counter, and statistics live in
//! lock-free sharded [`StatsCells`] that components record into through a
//! cheap [`StatsHandle`] clone (typed [`StatKey`] columns, relaxed
//! increments, acquire snapshot reads — see [`cells`]). The
//! `CpHandle` mutex remains only for structural mutations: parameter
//! writes, trigger install/evaluate, and DS row lifecycle. This mirrors how
//! the RTL hides control-plane work inside the cache pipeline (§7.2).
//!
//! # Paper mapping
//!
//! This crate is mechanism ② of the PAPER.md design overview — the
//! programmable control plane every shared resource embeds — and the
//! substrate of the paper's "trigger ⇒ action" methodology (§5): trigger
//! rows raise interrupts that the PRM firmware (crates/prm) turns into
//! device-file writes back into these same tables. Beyond the paper's
//! constant-threshold comparators, [`TriggerMode::DegradationPct`]
//! detects *relative* latency regressions against a self-learned healthy
//! baseline (smoothed observation, frozen-under-fault baseline, absolute
//! floor — DESIGN.md §11), which drives the fault-recovery figure
//! (`fig_fault`, EXPERIMENTS.md).

#![warn(missing_docs)]

pub mod cells;
mod error;
mod iface;
mod plane;
pub mod policy;
mod table;
mod trigger;

pub use cells::{StatKey, StatsCells, StatsHandle};
pub use error::CpError;
pub use iface::{
    CpAddr, CpCommand, CpaRegisterFile, TableSel, CPA_BYTES, REG_ADDR, REG_CMD, REG_DATA,
    REG_IDENT, REG_IDENT_HIGH, REG_TYPE,
};
pub use plane::{
    shared, ControlPlane, CpHandle, CpInterrupt, CpType, InterruptLine, InterruptSink,
};
pub use policy::{
    Decision, MicroOp, OnFail, Pifo, PolicyEngine, PolicyReq, Program, ProgramBuilder, ReqClass,
};
pub use table::{ColumnDef, DsTable};
pub use trigger::{CmpOp, Trigger, TriggerMode, TriggerTable};
