//! DS-id-indexed tables.

use pard_icn::DsId;

use crate::error::CpError;

/// Describes one column of a [`DsTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name as it appears in the firmware's device file tree
    /// (e.g. `waymask`, `miss_rate`).
    pub name: &'static str,
    /// Default cell value for freshly created rows.
    pub default: u64,
}

impl ColumnDef {
    /// Creates a column with a zero default.
    pub const fn new(name: &'static str) -> Self {
        ColumnDef { name, default: 0 }
    }

    /// Creates a column with an explicit default.
    pub const fn with_default(name: &'static str, default: u64) -> Self {
        ColumnDef { name, default }
    }
}

/// A DS-id-indexed table of `u64` cells — the hardware structure underlying
/// both the parameter and statistics tables of every control plane.
///
/// Rows are indexed by DS-id, columns by a fixed schema chosen when the
/// resource's control plane is instantiated. The CPA programming interface
/// addresses cells as `(ds, column offset)` (Fig. 6); firmware addresses
/// them by column name through the device file tree.
///
/// # Example
///
/// ```
/// use pard_cp::{ColumnDef, DsTable};
/// use pard_icn::DsId;
///
/// let mut t = DsTable::new(
///     "parameter",
///     vec![ColumnDef::with_default("waymask", 0xFFFF), ColumnDef::new("priority")],
///     4,
/// );
/// t.set(DsId::new(2), "waymask", 0x00FF).unwrap();
/// assert_eq!(t.get(DsId::new(2), "waymask").unwrap(), 0x00FF);
/// assert_eq!(t.get(DsId::new(1), "waymask").unwrap(), 0xFFFF);
/// ```
#[derive(Debug, Clone)]
pub struct DsTable {
    name: &'static str,
    columns: Vec<ColumnDef>,
    cells: Vec<u64>,
    rows: usize,
}

impl DsTable {
    /// Creates a table with the given schema and row count.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or `rows` is zero.
    pub fn new(name: &'static str, columns: Vec<ColumnDef>, rows: usize) -> Self {
        assert!(!columns.is_empty(), "a DsTable needs at least one column");
        assert!(rows > 0, "a DsTable needs at least one row");
        let mut cells = Vec::with_capacity(columns.len() * rows);
        for _ in 0..rows {
            cells.extend(columns.iter().map(|c| c.default));
        }
        DsTable {
            name,
            columns,
            cells,
            rows,
        }
    }

    /// The table's name (`"parameter"` or `"statistics"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of rows (maximum DS-ids this control plane supports).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The column schema.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Resolves a column name to its offset.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::UnknownColumn`] for names not in the schema.
    pub fn column_offset(&self, name: &str) -> Result<usize, CpError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| CpError::UnknownColumn {
                table: self.name,
                column: name.to_string(),
            })
    }

    /// Like [`column_offset`](Self::column_offset), but panics on unknown
    /// names.
    ///
    /// For component config caches resolving their own schema's columns at
    /// construction: a missing column there is a wiring bug, and a panic
    /// beats the old `unwrap_or(0)` reads that silently degraded a tenant
    /// to priority 0 / disabled.
    ///
    /// # Panics
    ///
    /// Panics with the table and column name if `name` is not in the schema.
    pub fn must_offset(&self, name: &str) -> usize {
        match self.column_offset(name) {
            Ok(off) => off,
            Err(e) => panic!("{} table is missing required column {name:?}: {e}", self.name),
        }
    }

    /// The column name at `offset` (the CPA `addr` path in reverse).
    ///
    /// # Errors
    ///
    /// Returns [`CpError::BadColumn`] for offsets beyond the schema.
    pub fn name_at(&self, offset: usize) -> Result<&'static str, CpError> {
        self.columns
            .get(offset)
            .map(|c| c.name)
            .ok_or(CpError::BadColumn {
                table: self.name,
                offset,
                width: self.columns.len(),
            })
    }

    fn cell_index(&self, ds: DsId, col: usize) -> Result<usize, CpError> {
        if ds.index() >= self.rows {
            return Err(CpError::DsOutOfRange {
                ds: ds.index(),
                rows: self.rows,
            });
        }
        if col >= self.columns.len() {
            return Err(CpError::BadColumn {
                table: self.name,
                offset: col,
                width: self.columns.len(),
            });
        }
        Ok(ds.index() * self.columns.len() + col)
    }

    /// Reads a cell by column name.
    ///
    /// # Errors
    ///
    /// Returns an error if the DS-id or column is out of range.
    pub fn get(&self, ds: DsId, column: &str) -> Result<u64, CpError> {
        let col = self.column_offset(column)?;
        self.get_by_offset(ds, col)
    }

    /// Reads a cell by column offset (the CPA path).
    ///
    /// # Errors
    ///
    /// Returns an error if the DS-id or offset is out of range.
    pub fn get_by_offset(&self, ds: DsId, col: usize) -> Result<u64, CpError> {
        Ok(self.cells[self.cell_index(ds, col)?])
    }

    /// Writes a cell by column name.
    ///
    /// # Errors
    ///
    /// Returns an error if the DS-id or column is out of range.
    pub fn set(&mut self, ds: DsId, column: &str, value: u64) -> Result<(), CpError> {
        let col = self.column_offset(column)?;
        self.set_by_offset(ds, col, value)
    }

    /// Writes a cell by column offset (the CPA path).
    ///
    /// # Errors
    ///
    /// Returns an error if the DS-id or offset is out of range.
    pub fn set_by_offset(&mut self, ds: DsId, col: usize, value: u64) -> Result<(), CpError> {
        let idx = self.cell_index(ds, col)?;
        self.cells[idx] = value;
        Ok(())
    }

    /// Adds `delta` to a cell by column name (statistics accumulation).
    ///
    /// # Errors
    ///
    /// Returns an error if the DS-id or column is out of range.
    pub fn add(&mut self, ds: DsId, column: &str, delta: u64) -> Result<(), CpError> {
        let col = self.column_offset(column)?;
        let idx = self.cell_index(ds, col)?;
        self.cells[idx] = self.cells[idx].wrapping_add(delta);
        Ok(())
    }

    /// A whole row as a slice, ordered by the column schema.
    ///
    /// # Errors
    ///
    /// Returns an error if the DS-id is out of range.
    pub fn row(&self, ds: DsId) -> Result<&[u64], CpError> {
        if ds.index() >= self.rows {
            return Err(CpError::DsOutOfRange {
                ds: ds.index(),
                rows: self.rows,
            });
        }
        let w = self.columns.len();
        Ok(&self.cells[ds.index() * w..(ds.index() + 1) * w])
    }

    /// Resets a row to column defaults (LDom teardown).
    ///
    /// # Errors
    ///
    /// Returns an error if the DS-id is out of range.
    pub fn reset_row(&mut self, ds: DsId) -> Result<(), CpError> {
        if ds.index() >= self.rows {
            return Err(CpError::DsOutOfRange {
                ds: ds.index(),
                rows: self.rows,
            });
        }
        let w = self.columns.len();
        for (i, c) in self.columns.iter().enumerate() {
            self.cells[ds.index() * w + i] = c.default;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DsTable {
        DsTable::new(
            "statistics",
            vec![
                ColumnDef::new("hit_cnt"),
                ColumnDef::new("miss_cnt"),
                ColumnDef::with_default("quota", 100),
            ],
            8,
        )
    }

    #[test]
    fn defaults_apply_per_row() {
        let t = table();
        for ds in 0..8u16 {
            assert_eq!(t.get(DsId::new(ds), "quota").unwrap(), 100);
            assert_eq!(t.get(DsId::new(ds), "hit_cnt").unwrap(), 0);
        }
    }

    #[test]
    fn set_get_by_name_and_offset_agree() {
        let mut t = table();
        t.set(DsId::new(3), "miss_cnt", 42).unwrap();
        let off = t.column_offset("miss_cnt").unwrap();
        assert_eq!(t.get_by_offset(DsId::new(3), off).unwrap(), 42);
        t.set_by_offset(DsId::new(3), off, 43).unwrap();
        assert_eq!(t.get(DsId::new(3), "miss_cnt").unwrap(), 43);
    }

    #[test]
    fn add_accumulates_and_wraps() {
        let mut t = table();
        t.add(DsId::new(1), "hit_cnt", 5).unwrap();
        t.add(DsId::new(1), "hit_cnt", 7).unwrap();
        assert_eq!(t.get(DsId::new(1), "hit_cnt").unwrap(), 12);
        t.set(DsId::new(1), "hit_cnt", u64::MAX).unwrap();
        t.add(DsId::new(1), "hit_cnt", 1).unwrap();
        assert_eq!(t.get(DsId::new(1), "hit_cnt").unwrap(), 0);
    }

    #[test]
    fn row_slice_follows_schema_order() {
        let mut t = table();
        t.set(DsId::new(2), "hit_cnt", 1).unwrap();
        t.set(DsId::new(2), "miss_cnt", 2).unwrap();
        assert_eq!(t.row(DsId::new(2)).unwrap(), &[1, 2, 100]);
    }

    #[test]
    fn reset_row_restores_defaults() {
        let mut t = table();
        t.set(DsId::new(2), "quota", 5).unwrap();
        t.reset_row(DsId::new(2)).unwrap();
        assert_eq!(t.get(DsId::new(2), "quota").unwrap(), 100);
    }

    #[test]
    fn errors_for_bad_access() {
        let mut t = table();
        assert!(matches!(
            t.get(DsId::new(100), "quota"),
            Err(CpError::DsOutOfRange { ds: 100, rows: 8 })
        ));
        assert!(matches!(
            t.get(DsId::new(0), "nope"),
            Err(CpError::UnknownColumn { .. })
        ));
        assert!(matches!(
            t.get_by_offset(DsId::new(0), 99),
            Err(CpError::BadColumn {
                offset: 99,
                width: 3,
                ..
            })
        ));
        assert_eq!(t.name_at(1).unwrap(), "miss_cnt");
        assert!(matches!(t.name_at(3), Err(CpError::BadColumn { .. })));
        assert!(t.row(DsId::new(9)).is_err());
        assert!(t.reset_row(DsId::new(9)).is_err());
        assert!(t.set(DsId::new(9), "quota", 0).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_schema_panics() {
        let _ = DsTable::new("x", vec![], 1);
    }
}
