//! Control-plane access errors.

use std::error::Error;
use std::fmt;

/// An error produced by a control-plane table or programming-interface
/// access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpError {
    /// The DS-id exceeds the number of table rows this control plane was
    /// synthesised with.
    DsOutOfRange {
        /// The offending DS-id row index.
        ds: usize,
        /// Number of rows available.
        rows: usize,
    },
    /// No column with the requested name or offset exists in the table.
    UnknownColumn {
        /// Table name.
        table: &'static str,
        /// The offending column description.
        column: String,
    },
    /// The `addr` register's 2-bit table selector named a reserved table.
    BadTableSelect(u8),
    /// The `cmd` register held a value that is neither READ nor WRITE.
    BadCommand(u32),
    /// The trigger slot index exceeds the trigger table's capacity.
    TriggerSlotOutOfRange {
        /// The offending slot.
        slot: usize,
        /// Number of slots available.
        slots: usize,
    },
    /// The trigger's statistics-column index exceeds the width of the
    /// plane's statistics table, so the comparator could never observe a
    /// driven value. Rejected at install time as a programming error.
    TriggerColumnOutOfRange {
        /// The offending statistics-column offset.
        column: usize,
        /// Number of statistics columns this plane drives.
        width: usize,
    },
    /// A numeric column offset (the CPA `addr` path or a [`StatKey`])
    /// beyond the table's schema width.
    ///
    /// [`StatKey`]: crate::StatKey
    BadColumn {
        /// Table name.
        table: &'static str,
        /// The offending column offset.
        offset: usize,
        /// Number of columns the table actually has.
        width: usize,
    },
    /// Register-file access at an offset that is not a defined register.
    BadRegister(u64),
    /// A policy program failed to compile or validate at install time.
    ///
    /// Carries the source line and the offending token so shell and
    /// device-tree callers can point at exactly what was wrong — a policy
    /// must never install partially or fall back to defaults silently.
    Policy {
        /// 1-based source line of the offending token.
        line: usize,
        /// The offending token (empty when the rule ended prematurely).
        token: String,
        /// What the compiler expected or rejected.
        message: String,
    },
}

impl fmt::Display for CpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpError::DsOutOfRange { ds, rows } => {
                write!(f, "ds-id {ds} out of range for a {rows}-row table")
            }
            CpError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} in {table} table")
            }
            CpError::BadTableSelect(sel) => write!(f, "reserved table selector {sel}"),
            CpError::BadCommand(cmd) => write!(f, "unknown control-plane command {cmd:#x}"),
            CpError::TriggerSlotOutOfRange { slot, slots } => {
                write!(f, "trigger slot {slot} out of range for {slots} slots")
            }
            CpError::TriggerColumnOutOfRange { column, width } => {
                write!(
                    f,
                    "trigger statistics column {column} out of range for a {width}-column table"
                )
            }
            CpError::BadColumn {
                table,
                offset,
                width,
            } => {
                write!(
                    f,
                    "column offset {offset} out of range for a {width}-column {table} table"
                )
            }
            CpError::BadRegister(off) => write!(f, "no CPA register at offset {off:#x}"),
            CpError::Policy {
                line,
                token,
                message,
            } => {
                if token.is_empty() {
                    write!(f, "policy line {line}: {message}")
                } else {
                    write!(f, "policy line {line}: {message} (at {token:?})")
                }
            }
        }
    }
}

impl Error for CpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CpError::DsOutOfRange { ds: 300, rows: 256 };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("256"));
        let e = CpError::UnknownColumn {
            table: "parameter",
            column: "bogus".into(),
        };
        assert!(e.to_string().contains("bogus"));
        assert!(CpError::BadTableSelect(3).to_string().contains('3'));
        assert!(CpError::BadCommand(9).to_string().contains("0x9"));
        assert!(CpError::BadRegister(0x40).to_string().contains("0x40"));
        let e = CpError::TriggerColumnOutOfRange { column: 9, width: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = CpError::BadColumn {
            table: "statistics",
            offset: 7,
            width: 4,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains("statistics"));
        let e = CpError::Policy {
            line: 3,
            token: "prioritty".into(),
            message: "unknown parameter column".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("prioritty"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(CpError::BadCommand(0));
    }
}
