//! Lock-free sharded statistics cells.
//!
//! The statistics table is the only control-plane structure the *data
//! path* writes on every access (paper Table 1: hit/miss counts, served
//! bytes, queue occupancy). Keeping it inside the `CpHandle` mutex would
//! put a lock on every cache lookup and DRAM issue, so the storage is a
//! flat array of [`AtomicU64`] cells instead:
//!
//! * rows are striped per DS-id at a power-of-two stride (padded to a
//!   cache line, so two DS-ids' counters never share a line),
//! * increments are `Relaxed` read-modify-writes — per-column counters
//!   are independent monotone values, and no control decision is taken
//!   on the writing side,
//! * published values are written with `Release`, and every read path
//!   ([`StatsCells::get`], [`StatsCells::snapshot_row`]) loads with
//!   `Acquire`, so a reader that observes a published value also
//!   observes everything the writer did before publishing it.
//!
//! A reader that needs a *consistent multi-column view* (trigger
//! evaluation, the metrics registry) must take one
//! [`snapshot_row`](StatsCells::snapshot_row) and evaluate against that:
//! each column is loaded exactly once, so a predicate over several
//! columns can never see two different values of the same cell. The
//! snapshot is not a cross-column atomic transaction — between two
//! column loads another core may record — but every value read is one
//! that actually existed, which is all windowed statistics promise.
//!
//! The `CpHandle` mutex still guards everything *structural*: parameter
//! writes (they bump the generation counter), trigger install/evaluate
//! (latch state is read-modify-write over several fields), and DS-id row
//! lifecycle ([`ControlPlane::reset_ds`](crate::ControlPlane::reset_ds)).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pard_icn::DsId;

use crate::error::CpError;
use crate::table::ColumnDef;

/// A validated-on-use typed key for one statistics column.
///
/// Replaces the stringly `set_stat("miss_rate", ...)` lookups and the
/// raw-offset `stats_set_by_offset` pokes of the pre-cells API: resource
/// crates define `const` keys next to their schema (e.g.
/// `pard_cache::STAT_MISS_RATE`), or resolve one at setup time with
/// [`StatsCells::key`]. The key is a plain column offset under the hood
/// — the cells bounds-check it on every access and return
/// [`CpError::BadColumn`] for keys that don't fit the plane's schema, so
/// a key minted for one plane type cannot silently poke past another's
/// columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatKey(u16);

impl StatKey {
    /// A key for the column at `offset` in the plane's statistics schema.
    ///
    /// Intended for `const` schema definitions; the offset is validated
    /// against the actual schema on every access, not here.
    ///
    /// # Panics
    ///
    /// Panics (at compile time in const contexts) if `offset` exceeds the
    /// CPA `addr` register's 14-bit column field.
    pub const fn at(offset: usize) -> Self {
        assert!(offset < (1 << 14), "StatKey offset exceeds the 14-bit CPA column field");
        StatKey(offset as u16)
    }

    /// The column offset this key addresses.
    pub const fn offset(self) -> usize {
        self.0 as usize
    }
}

impl From<StatKey> for usize {
    fn from(key: StatKey) -> usize {
        key.offset()
    }
}

/// Cells per cache line; rows are padded to a multiple of this so
/// concurrent recorders for different DS-ids never false-share.
const LINE_CELLS: usize = 8;

/// The sharded atomic cell array backing one control plane's statistics
/// table.
///
/// Created by [`ControlPlane::new`](crate::ControlPlane::new) from the
/// statistics schema; components reach it without the `CpHandle` mutex
/// through a [`StatsHandle`] clone. See the module docs for the memory
/// ordering contract.
#[derive(Debug)]
pub struct StatsCells {
    columns: Vec<ColumnDef>,
    rows: usize,
    /// Power-of-two row stride in cells (≥ `columns.len()`, padded to a
    /// cache line), so the DS-id → cell index math is a shift, not a
    /// multiply, and rows never straddle each other's lines.
    stride: usize,
    cells: Box<[AtomicU64]>,
}

impl StatsCells {
    /// Builds the cell array for `columns` × `rows`, every cell at its
    /// column default.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or `rows` is zero (same contract as
    /// [`DsTable::new`](crate::DsTable::new)).
    pub fn new(columns: Vec<ColumnDef>, rows: usize) -> Self {
        assert!(!columns.is_empty(), "a statistics table needs at least one column");
        assert!(rows > 0, "a statistics table needs at least one row");
        let stride = columns.len().next_power_of_two().max(LINE_CELLS);
        let cells: Box<[AtomicU64]> = (0..rows * stride)
            .map(|i| {
                let col = i % stride;
                let default = columns.get(col).map_or(0, |c| c.default);
                AtomicU64::new(default)
            })
            .collect();
        StatsCells {
            columns,
            rows,
            stride,
            cells,
        }
    }

    /// Number of DS-id rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The column schema, in offset order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Resolves a column name to a validated [`StatKey`].
    ///
    /// # Errors
    ///
    /// Returns [`CpError::UnknownColumn`] for names not in the schema.
    pub fn key(&self, name: &str) -> Result<StatKey, CpError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(StatKey::at)
            .ok_or_else(|| CpError::UnknownColumn {
                table: "statistics",
                column: name.to_string(),
            })
    }

    /// Validates a raw column offset (the CPA `addr` path) into a key.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::BadColumn`] for offsets beyond the schema.
    pub fn key_at(&self, offset: usize) -> Result<StatKey, CpError> {
        if offset >= self.columns.len() {
            return Err(CpError::BadColumn {
                table: "statistics",
                offset,
                width: self.columns.len(),
            });
        }
        Ok(StatKey::at(offset))
    }

    /// Resolves a column name to its offset (schema introspection; the
    /// firmware's device file tree uses this to build leaf paths).
    ///
    /// # Errors
    ///
    /// Returns [`CpError::UnknownColumn`] for names not in the schema.
    pub fn column_offset(&self, name: &str) -> Result<usize, CpError> {
        self.key(name).map(StatKey::offset)
    }

    #[inline]
    fn cell(&self, ds: DsId, key: StatKey) -> Result<&AtomicU64, CpError> {
        if ds.index() >= self.rows {
            return Err(CpError::DsOutOfRange {
                ds: ds.index(),
                rows: self.rows,
            });
        }
        let col = key.offset();
        if col >= self.columns.len() {
            return Err(CpError::BadColumn {
                table: "statistics",
                offset: col,
                width: self.columns.len(),
            });
        }
        Ok(&self.cells[ds.index() * self.stride + col])
    }

    /// Reads one cell (`Acquire`).
    ///
    /// # Errors
    ///
    /// Returns [`CpError::DsOutOfRange`] / [`CpError::BadColumn`] for
    /// rows or keys beyond this plane's table.
    #[inline]
    pub fn get(&self, ds: DsId, key: StatKey) -> Result<u64, CpError> {
        Ok(self.cell(ds, key)?.load(Ordering::Acquire))
    }

    /// Publishes one cell (`Release`) — the window-rollover write.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::DsOutOfRange`] / [`CpError::BadColumn`] for
    /// rows or keys beyond this plane's table.
    #[inline]
    pub fn set(&self, ds: DsId, key: StatKey, value: u64) -> Result<(), CpError> {
        self.cell(ds, key)?.store(value, Ordering::Release);
        Ok(())
    }

    /// Accumulates into one cell (`Relaxed` wrapping add) — the per-access
    /// hot-path record.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::DsOutOfRange`] / [`CpError::BadColumn`] for
    /// rows or keys beyond this plane's table.
    #[inline]
    pub fn add(&self, ds: DsId, key: StatKey, delta: u64) -> Result<(), CpError> {
        self.cell(ds, key)?.fetch_add(delta, Ordering::Relaxed);
        Ok(())
    }

    /// One acquire-consistent pass over a whole row, in schema order.
    ///
    /// Each column is loaded exactly once; evaluate multi-column
    /// predicates against the returned vector, never against repeated
    /// [`get`](Self::get) calls (a concurrent recorder could slip a new
    /// value in between them).
    ///
    /// # Errors
    ///
    /// Returns [`CpError::DsOutOfRange`] for rows beyond the table.
    pub fn snapshot_row(&self, ds: DsId) -> Result<Vec<u64>, CpError> {
        if ds.index() >= self.rows {
            return Err(CpError::DsOutOfRange {
                ds: ds.index(),
                rows: self.rows,
            });
        }
        let base = ds.index() * self.stride;
        Ok((0..self.columns.len())
            .map(|c| self.cells[base + c].load(Ordering::Acquire))
            .collect())
    }

    /// Alias for [`snapshot_row`](Self::snapshot_row), keeping the
    /// `DsTable`-era call shape (`stats().row(ds)`) working.
    ///
    /// # Errors
    ///
    /// Returns [`CpError::DsOutOfRange`] for rows beyond the table.
    pub fn row(&self, ds: DsId) -> Result<Vec<u64>, CpError> {
        self.snapshot_row(ds)
    }

    /// Resets a row to column defaults (LDom teardown).
    ///
    /// # Errors
    ///
    /// Returns [`CpError::DsOutOfRange`] for rows beyond the table.
    pub fn reset_row(&self, ds: DsId) -> Result<(), CpError> {
        if ds.index() >= self.rows {
            return Err(CpError::DsOutOfRange {
                ds: ds.index(),
                rows: self.rows,
            });
        }
        let base = ds.index() * self.stride;
        for (c, col) in self.columns.iter().enumerate() {
            self.cells[base + c].store(col.default, Ordering::Release);
        }
        Ok(())
    }
}

/// A cheap cloneable recording handle onto one plane's [`StatsCells`].
///
/// Components hold one next to their data-path state and record through
/// it without touching the `CpHandle` mutex:
///
/// ```
/// use pard_cp::{ColumnDef, ControlPlane, CpType, DsTable, StatKey};
/// use pard_icn::DsId;
///
/// const HITS: StatKey = StatKey::at(0);
///
/// let params = DsTable::new("parameter", vec![ColumnDef::new("waymask")], 8);
/// let stats = DsTable::new("statistics", vec![ColumnDef::new("hit_cnt")], 8);
/// let cp = ControlPlane::new("CACHE_CP", CpType::Cache, params, stats, 4);
/// let handle = cp.stats_handle();
///
/// handle.add(DsId::new(2), HITS, 1).unwrap();   // hot path: no lock
/// assert_eq!(cp.stats().get(DsId::new(2), HITS).unwrap(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct StatsHandle {
    cells: Arc<StatsCells>,
}

impl StatsHandle {
    pub(crate) fn new(cells: Arc<StatsCells>) -> Self {
        StatsHandle { cells }
    }

    /// The underlying cells (schema introspection and reads).
    pub fn cells(&self) -> &StatsCells {
        &self.cells
    }

    /// Resolves a column name to a validated [`StatKey`].
    ///
    /// # Errors
    ///
    /// Returns [`CpError::UnknownColumn`] for names not in the schema.
    pub fn key(&self, name: &str) -> Result<StatKey, CpError> {
        self.cells.key(name)
    }

    /// Accumulates into a cell (`Relaxed`; the hot-path record).
    ///
    /// # Errors
    ///
    /// Propagates cell range errors.
    #[inline]
    pub fn add(&self, ds: DsId, key: StatKey, delta: u64) -> Result<(), CpError> {
        self.cells.add(ds, key, delta)
    }

    /// Publishes a cell value (`Release`; the window-rollover write).
    ///
    /// # Errors
    ///
    /// Propagates cell range errors.
    #[inline]
    pub fn set(&self, ds: DsId, key: StatKey, value: u64) -> Result<(), CpError> {
        self.cells.set(ds, key, value)
    }

    /// Reads a cell (`Acquire`).
    ///
    /// # Errors
    ///
    /// Propagates cell range errors.
    #[inline]
    pub fn get(&self, ds: DsId, key: StatKey) -> Result<u64, CpError> {
        self.cells.get(ds, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> StatsCells {
        StatsCells::new(
            vec![
                ColumnDef::new("hit_cnt"),
                ColumnDef::new("miss_cnt"),
                ColumnDef::with_default("quota", 100),
            ],
            8,
        )
    }

    #[test]
    fn stride_is_power_of_two_and_line_padded() {
        let c = cells();
        assert!(c.stride.is_power_of_two());
        assert!(c.stride >= LINE_CELLS);
        // A 9-column schema rounds up to 16.
        let wide = StatsCells::new(
            (0..9).map(|_| ColumnDef::new("c")).collect(),
            2,
        );
        assert_eq!(wide.stride, 16);
    }

    #[test]
    fn defaults_apply_per_row() {
        let c = cells();
        let quota = c.key("quota").unwrap();
        for ds in 0..8u16 {
            assert_eq!(c.get(DsId::new(ds), quota).unwrap(), 100);
        }
    }

    #[test]
    fn add_set_get_round_trip() {
        let c = cells();
        let hits = c.key("hit_cnt").unwrap();
        c.add(DsId::new(3), hits, 5).unwrap();
        c.add(DsId::new(3), hits, 7).unwrap();
        assert_eq!(c.get(DsId::new(3), hits).unwrap(), 12);
        c.set(DsId::new(3), hits, 2).unwrap();
        assert_eq!(c.get(DsId::new(3), hits).unwrap(), 2);
        // Wrapping add, like the old DsTable counters.
        c.set(DsId::new(3), hits, u64::MAX).unwrap();
        c.add(DsId::new(3), hits, 1).unwrap();
        assert_eq!(c.get(DsId::new(3), hits).unwrap(), 0);
    }

    #[test]
    fn snapshot_row_follows_schema_order() {
        let c = cells();
        c.set(DsId::new(2), c.key("hit_cnt").unwrap(), 1).unwrap();
        c.set(DsId::new(2), c.key("miss_cnt").unwrap(), 2).unwrap();
        assert_eq!(c.snapshot_row(DsId::new(2)).unwrap(), vec![1, 2, 100]);
    }

    #[test]
    fn reset_row_restores_defaults() {
        let c = cells();
        let quota = c.key("quota").unwrap();
        c.set(DsId::new(2), quota, 5).unwrap();
        c.reset_row(DsId::new(2)).unwrap();
        assert_eq!(c.get(DsId::new(2), quota).unwrap(), 100);
        assert!(c.reset_row(DsId::new(9)).is_err());
    }

    #[test]
    fn range_errors() {
        let c = cells();
        let hits = c.key("hit_cnt").unwrap();
        assert!(matches!(
            c.get(DsId::new(100), hits),
            Err(CpError::DsOutOfRange { ds: 100, rows: 8 })
        ));
        assert!(matches!(
            c.key_at(99),
            Err(CpError::BadColumn { offset: 99, width: 3, .. })
        ));
        assert!(matches!(
            c.get(DsId::new(0), StatKey::at(99)),
            Err(CpError::BadColumn { .. })
        ));
        assert!(matches!(c.key("nope"), Err(CpError::UnknownColumn { .. })));
        assert!(c.snapshot_row(DsId::new(8)).is_err());
    }

    #[test]
    fn handle_clones_share_the_cells() {
        let cells = Arc::new(cells());
        let a = StatsHandle::new(Arc::clone(&cells));
        let b = a.clone();
        let hits = a.key("hit_cnt").unwrap();
        a.add(DsId::new(1), hits, 3).unwrap();
        b.add(DsId::new(1), hits, 4).unwrap();
        assert_eq!(cells.get(DsId::new(1), hits).unwrap(), 7);
    }

    #[test]
    fn key_offset_round_trips() {
        assert_eq!(StatKey::at(5).offset(), 5);
        assert_eq!(usize::from(StatKey::at(7)), 7);
    }
}
