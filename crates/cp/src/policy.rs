//! Compiled match-action policy programs and the PIFO scheduler primitive.
//!
//! The paper's SDN framing promises *programmable* control planes, but the
//! first cut of this codebase hardcoded every resourcing behavior (strict
//! two-class memory priority, IDE bandwidth quotas, NIC v-NIC enables) as
//! Rust match arms. This module turns those behaviors into **data**:
//!
//! * a [`Program`] is a small match-action table compiled from a textual
//!   rule list (`when <pred> do <action>, ...`). Matches see the DS-id, the
//!   request class, and (optionally) parameter/statistics predicates;
//!   actions come from a fixed micro-op set — set a scheduling rank, mark
//!   urgent, charge a token bucket, set a way mask, drop/defer, bump a
//!   statistic. Column references are validated against the owning plane's
//!   `DsTable` schemas at install time, so a misspelled `priority` is an
//!   install error, never a silently-zeroed tenant.
//! * a [`Pifo`] is a push-in-first-out queue ("Programmable Packet
//!   Scheduling at Line Rate"): entries are pushed with a rank computed by
//!   the program and dequeue lowest-rank-first, FIFO within equal rank.
//!   The DRAM controller's two hardcoded priority classes are one PIFO
//!   with the built-in program `rank 0 urgent / rank 1`.
//! * a [`PolicyEngine`] holds the bounded per-request state the compiled
//!   program needs ("Packet Transactions"): the WFQ virtual clock and
//!   per-DS finish tags behind [`Expr::Wfq`], and per-rule token buckets
//!   behind [`MicroOp::Charge`].
//!
//! Programs are pure data and deterministic: evaluation touches no wall
//! clock and no hashing-ordered iteration, so figures driven by policies
//! stay byte-identical across `PARD_THREADS` settings.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use pard_icn::DsId;
use pard_sim::Time;

use crate::cells::{StatKey, StatsCells};
use crate::error::CpError;
use crate::table::DsTable;
use crate::trigger::CmpOp;

/// Simulated-time units per second (`Time::UNITS_PER_NS` × 1e9), the
/// denominator of the token-bucket refill arithmetic.
const UNITS_PER_SEC: u64 = Time::UNITS_PER_NS * 1_000_000_000;

/// Fixed-point scale for WFQ virtual finish tags: one byte at weight 1
/// advances a flow's finish time by this many virtual ticks.
const WFQ_SCALE: u64 = 16;

/// The request classes a policy predicate can match on.
///
/// Each resource maps its own packet kinds onto these before consulting
/// the engine (the memory controller distinguishes reads, writes,
/// writebacks and DMA; the bridge sees DMA, disk commands and PIO; the
/// NIC sees frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqClass {
    /// A demand memory read.
    Read,
    /// A demand memory write.
    Write,
    /// A cache writeback.
    Writeback,
    /// A DMA transfer.
    Dma,
    /// A disk command.
    Disk,
    /// A programmed-I/O access.
    Pio,
    /// A network frame.
    Frame,
}

impl ReqClass {
    fn parse(tok: &str) -> Option<ReqClass> {
        Some(match tok {
            "read" => ReqClass::Read,
            "write" => ReqClass::Write,
            "writeback" => ReqClass::Writeback,
            "dma" => ReqClass::Dma,
            "disk" => ReqClass::Disk,
            "pio" => ReqClass::Pio,
            "frame" => ReqClass::Frame,
            _ => return None,
        })
    }

    /// The class keyword as it appears in policy source.
    pub fn name(self) -> &'static str {
        match self {
            ReqClass::Read => "read",
            ReqClass::Write => "write",
            ReqClass::Writeback => "writeback",
            ReqClass::Dma => "dma",
            ReqClass::Disk => "disk",
            ReqClass::Pio => "pio",
            ReqClass::Frame => "frame",
        }
    }
}

/// One request presented to a [`PolicyEngine`] for a decision.
#[derive(Debug, Clone, Copy)]
pub struct PolicyReq {
    /// The request's DS-id tag.
    pub ds: DsId,
    /// The request class (resource-specific mapping).
    pub class: ReqClass,
    /// Payload size in bytes (drives `size` expressions and WFQ tags).
    pub size: u64,
}

/// A compiled rank/cost expression over request and table state.
///
/// Arithmetic saturates; division by zero yields zero (all deterministic,
/// no panics on user-authored programs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal.
    Const(u64),
    /// A parameter-table cell of the request's DS row, by resolved offset.
    Param(usize),
    /// A statistics-table cell of the request's DS row, by resolved offset.
    Stat(usize),
    /// The request's payload size in bytes.
    Size,
    /// Saturating addition.
    Add(Box<Expr>, Box<Expr>),
    /// Saturating subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Saturating multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division (`x / 0 == 0`).
    Div(Box<Expr>, Box<Expr>),
    /// Start-time fair queueing over DS-ids: the inner expression is the
    /// flow weight. Only valid in rank position (it mutates the engine's
    /// virtual clock).
    Wfq(Box<Expr>),
}

impl Expr {
    fn uses_stats(&self) -> bool {
        match self {
            Expr::Stat(_) => true,
            Expr::Const(_) | Expr::Param(_) | Expr::Size => false,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.uses_stats() || b.uses_stats()
            }
            Expr::Wfq(w) => w.uses_stats(),
        }
    }

    /// Whether the expression's value depends only on the DS-id's
    /// parameter row — not on the request (`size`), live statistics, or
    /// mutable engine state (`wfq`).
    fn per_ds_pure(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Param(_) => true,
            Expr::Stat(_) | Expr::Size | Expr::Wfq(_) => false,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.per_ds_pure() && b.per_ds_pure()
            }
        }
    }
}

/// What a failed [`MicroOp::Charge`] does to the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnFail {
    /// Deny admission.
    Drop,
    /// Admit, but push the request's rank to the very back of the PIFO
    /// (resources without a PIFO treat deferral as an extra hop delay).
    Defer,
}

/// One action from the fixed micro-op set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// Set the PIFO rank (lower dequeues first).
    Rank(Expr),
    /// Mark the request urgent: urgent entries bypass bus-admission gating
    /// in the memory controller (the old "high priority class" bit).
    Urgent,
    /// Set the request's service weight (quota-style resources read this
    /// as their per-DS share; `0` means "unreserved").
    Weight(Expr),
    /// Deny admission.
    Drop,
    /// Admit at back-of-queue rank (or with an extra hop delay).
    Defer,
    /// Charge `cost` tokens from this rule's per-DS token bucket, refilled
    /// at `rate` tokens/second up to `burst`; on insufficient tokens the
    /// remaining micro-ops are skipped and `on_fail` applies.
    Charge {
        /// Tokens to charge (usually `size`).
        cost: Expr,
        /// Refill rate in tokens per simulated second.
        rate: Expr,
        /// Bucket capacity in tokens.
        burst: Expr,
        /// Applied when the bucket cannot cover `cost`.
        on_fail: OnFail,
    },
    /// Increment a statistics cell of the request's DS row by one.
    Bump(usize),
    /// Set the way mask the request's fill should use (cache planes).
    WayMask(Expr),
}

/// One match clause of a rule predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clause {
    /// Compare the request's DS-id against a literal.
    Ds(CmpOp, u64),
    /// Require an exact request class.
    Class(ReqClass),
    /// Compare a parameter cell (by resolved offset) against a literal.
    Param(usize, CmpOp, u64),
    /// Compare a statistics cell (by resolved offset) against a literal.
    Stat(usize, CmpOp, u64),
}

/// One `when <pred> do <actions>` rule. First matching rule wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Conjunctive match clauses; empty means `when all`.
    pub clauses: Vec<Clause>,
    /// Micro-ops applied in order when the rule matches.
    pub ops: Vec<MicroOp>,
}

impl Rule {
    fn matches(&self, req: &PolicyReq, prow: &[u64], srow: &[u64], now: Time) -> bool {
        self.clauses.iter().all(|c| match *c {
            Clause::Ds(op, v) => op.eval(u64::from(req.ds.raw()), v),
            Clause::Class(cls) => req.class == cls,
            Clause::Param(off, op, v) => {
                op.eval(cell(prow, off, "param_offset_oob", req.ds, now), v)
            }
            Clause::Stat(off, op, v) => {
                op.eval(cell(srow, off, "stat_offset_oob", req.ds, now), v)
            }
        })
    }
}

/// Reads one program-resolved cell offset from a table row.
///
/// Programs are schema-validated at install time, so an out-of-range
/// offset reaching the eval hot path is a contract violation — the table
/// shrank under an installed program, or the caller passed the wrong row
/// — never a tolerable input. It is counted and reported through the
/// audit layer ([`pard_sim::audit::unexpected_event`]: a conservation
/// violation when an auditor is installed, a debug-build panic
/// otherwise); the defined release-mode behavior *after reporting* is to
/// evaluate the cell as 0, which keeps the decision total.
fn cell(row: &[u64], off: usize, kind: &'static str, ds: DsId, now: Time) -> u64 {
    match row.get(off) {
        Some(&v) => v,
        None => {
            pard_sim::audit::unexpected_event("policy", kind, now, ds.raw());
            0
        }
    }
}

/// A compiled, schema-validated match-action program.
///
/// Programs compile from text via [`ControlPlane::compile_policy`]
/// (or [`Program::parse`] directly) and install as data — through the
/// firmware's `/sys/policy/cpa<N>/program` device file, the `pardpolicy`
/// shell verb, or [`ControlPlane::install_policy`]. The plane assigns each
/// installed program a fresh epoch so engines know when to reset their
/// per-flow state.
///
/// [`ControlPlane::compile_policy`]: crate::ControlPlane::compile_policy
/// [`ControlPlane::install_policy`]: crate::ControlPlane::install_policy
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    rules: Vec<Rule>,
    source: String,
    epoch: u64,
    uses_stats: bool,
    per_ds_pure: bool,
}

impl Program {
    /// Compiles `source` against the given parameter schema and statistics
    /// cells, resolving every `param.X` / `stat.X` reference to a column
    /// offset.
    ///
    /// # Grammar
    ///
    /// ```text
    /// program := rule (('\n' | ';') rule)*        # '#' starts a comment
    /// rule    := 'when' pred 'do' action (',' action)*
    /// pred    := 'all' | clause ('&&' clause)*
    /// clause  := 'ds' cmp NUM
    ///          | 'class' '==' (read|write|writeback|dma|disk|pio|frame)
    ///          | 'param' '.' NAME cmp NUM
    ///          | 'stat' '.' NAME cmp NUM
    /// action  := 'rank' expr | 'urgent' | 'weight' expr | 'drop' | 'defer'
    ///          | 'charge' expr 'rate' expr 'burst' expr 'else' ('drop'|'defer')
    ///          | 'bump' 'stat' '.' NAME
    ///          | 'waymask' expr
    /// expr    := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)*
    /// factor  := NUM | 'size' | 'param' '.' NAME | 'stat' '.' NAME
    ///          | 'wfq' '(' expr ')' | '(' expr ')'
    /// cmp     := '==' | '!=' | '<' | '<=' | '>' | '>='
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CpError::Policy`] with the source line and the offending
    /// token for any syntax error or unknown column reference.
    pub fn parse(source: &str, params: &DsTable, stats: &StatsCells) -> Result<Program, CpError> {
        let mut rules = Vec::new();
        for (idx, raw_line) in source.split('\n').enumerate() {
            let line_no = idx + 1;
            for stmt in raw_line.split(';') {
                let stmt = stmt.trim();
                if stmt.is_empty() || stmt.starts_with('#') {
                    continue;
                }
                rules.push(parse_rule(stmt, line_no, params, stats)?);
            }
        }
        if rules.is_empty() {
            return Err(policy_err(
                1,
                "",
                "a policy program needs at least one `when ... do ...` rule",
            ));
        }
        let uses_stats = rules.iter().any(|r| {
            r.clauses.iter().any(|c| matches!(c, Clause::Stat(..)))
                || r.ops.iter().any(|op| match op {
                    MicroOp::Rank(e) | MicroOp::Weight(e) | MicroOp::WayMask(e) => e.uses_stats(),
                    MicroOp::Charge {
                        cost, rate, burst, ..
                    } => cost.uses_stats() || rate.uses_stats() || burst.uses_stats(),
                    _ => false,
                })
        });
        let per_ds_pure = rules.iter().all(|r| {
            r.clauses
                .iter()
                .all(|c| matches!(c, Clause::Ds(..) | Clause::Param(..)))
                && r.ops.iter().all(|op| match op {
                    MicroOp::Rank(e) | MicroOp::Weight(e) | MicroOp::WayMask(e) => e.per_ds_pure(),
                    MicroOp::Urgent | MicroOp::Drop | MicroOp::Defer | MicroOp::Bump(_) => true,
                    // Token buckets are mutable per-request state even
                    // when their operands are constants.
                    MicroOp::Charge { .. } => false,
                })
        });
        Ok(Program {
            rules,
            source: source.to_string(),
            epoch: 0,
            uses_stats,
            per_ds_pure,
        })
    }

    /// The verbatim source text this program compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The install epoch the owning plane stamped (0 until installed).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether any rule reads statistics cells — when false, callers can
    /// skip the per-request statistics snapshot entirely (the hot-path
    /// fast case for all the built-in programs).
    pub fn uses_stats(&self) -> bool {
        self.uses_stats
    }

    /// Whether every decision this program can make is a pure function of
    /// the DS-id and its parameter row — no `class`/`size`/`stat.*`
    /// references, no `wfq(...)`, no token buckets. When true, data paths
    /// may evaluate the program once per DS-id at generation-refresh time
    /// and reuse the cached [`Decision`] for every request (the hot-path
    /// fast case for the built-in memory programs).
    pub fn per_ds_pure(&self) -> bool {
        self.per_ds_pure
    }

    /// The compiled rules, first-match-wins order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub(crate) fn with_epoch(mut self, epoch: u64) -> Program {
        self.epoch = epoch;
        self
    }
}

fn policy_err(line: usize, token: &str, message: impl Into<String>) -> CpError {
    CpError::Policy {
        line,
        token: token.to_string(),
        message: message.into(),
    }
}

fn tokenize(stmt: &str, line: usize) -> Result<Vec<String>, CpError> {
    let mut toks = Vec::new();
    let mut chars = stmt.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut tok = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    tok.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(tok);
        } else if c.is_ascii_digit() {
            let mut tok = String::new();
            while let Some(&c) = chars.peek() {
                // Hex literals keep their `x` and digits; range errors are
                // caught when the number is parsed, with the token intact.
                if c.is_ascii_alphanumeric() {
                    tok.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(tok);
        } else {
            chars.next();
            let second = chars.peek().copied();
            match c {
                '=' if second == Some('=') => {
                    chars.next();
                    toks.push("==".into());
                }
                '!' if second == Some('=') => {
                    chars.next();
                    toks.push("!=".into());
                }
                '<' if second == Some('=') => {
                    chars.next();
                    toks.push("<=".into());
                }
                '>' if second == Some('=') => {
                    chars.next();
                    toks.push(">=".into());
                }
                '&' if second == Some('&') => {
                    chars.next();
                    toks.push("&&".into());
                }
                '<' | '>' | '.' | ',' | '(' | ')' | '+' | '-' | '*' | '/' => {
                    toks.push(c.to_string())
                }
                _ => {
                    return Err(policy_err(
                        line,
                        &c.to_string(),
                        "unexpected character in policy rule",
                    ))
                }
            }
        }
    }
    Ok(toks)
}

/// A token cursor over one rule statement.
struct Cursor<'a> {
    toks: Vec<String>,
    pos: usize,
    line: usize,
    params: &'a DsTable,
    stats: &'a StatsCells,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Result<String, CpError> {
        let tok = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| policy_err(self.line, "", "unexpected end of rule"))?;
        self.pos += 1;
        Ok(tok)
    }

    fn expect(&mut self, lit: &str) -> Result<(), CpError> {
        let tok = self.next().map_err(|_| {
            policy_err(self.line, "", format!("expected {lit:?} before end of rule"))
        })?;
        if tok == lit {
            Ok(())
        } else {
            Err(policy_err(self.line, &tok, format!("expected {lit:?}")))
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.peek() == Some(lit) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn num(&mut self) -> Result<u64, CpError> {
        let tok = self.next()?;
        parse_num(&tok, self.line)
    }

    fn cmp_op(&mut self) -> Result<CmpOp, CpError> {
        let tok = self.next()?;
        Ok(match tok.as_str() {
            "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => return Err(policy_err(self.line, &tok, "expected a comparison operator")),
        })
    }

    /// Parses `. NAME` after `param`/`stat` and resolves it against the
    /// owning table's schema.
    fn column(&mut self, table: Table) -> Result<usize, CpError> {
        self.expect(".")?;
        let name = self.next()?;
        let resolved = match table {
            Table::Param => self.params.column_offset(&name),
            Table::Stat => self.stats.column_offset(&name),
        };
        resolved.map_err(|_| {
            policy_err(
                self.line,
                &name,
                format!(
                    "unknown {} column (policies validate against the plane's schema at install)",
                    match table {
                        Table::Param => "parameter",
                        Table::Stat => "statistics",
                    }
                ),
            )
        })
    }
}

#[derive(Clone, Copy)]
enum Table {
    Param,
    Stat,
}

fn parse_num(tok: &str, line: usize) -> Result<u64, CpError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| policy_err(line, tok, "expected an unsigned number"))
}

fn parse_rule(
    stmt: &str,
    line: usize,
    params: &DsTable,
    stats: &StatsCells,
) -> Result<Rule, CpError> {
    let toks = tokenize(stmt, line)?;
    let mut cur = Cursor {
        toks,
        pos: 0,
        line,
        params,
        stats,
    };
    cur.expect("when")?;
    let clauses = parse_pred(&mut cur)?;
    cur.expect("do")?;
    let mut ops = vec![parse_action(&mut cur)?];
    while cur.eat(",") {
        ops.push(parse_action(&mut cur)?);
    }
    if let Some(extra) = cur.peek() {
        return Err(policy_err(
            line,
            extra,
            "trailing tokens after the action list (separate actions with ',')",
        ));
    }
    Ok(Rule { clauses, ops })
}

fn parse_pred(cur: &mut Cursor<'_>) -> Result<Vec<Clause>, CpError> {
    if cur.eat("all") {
        return Ok(Vec::new());
    }
    let mut clauses = vec![parse_clause(cur)?];
    while cur.eat("&&") {
        clauses.push(parse_clause(cur)?);
    }
    Ok(clauses)
}

fn parse_clause(cur: &mut Cursor<'_>) -> Result<Clause, CpError> {
    let tok = cur.next()?;
    match tok.as_str() {
        "ds" => {
            let op = cur.cmp_op()?;
            Ok(Clause::Ds(op, cur.num()?))
        }
        "class" => {
            cur.expect("==")?;
            let cls = cur.next()?;
            ReqClass::parse(&cls).map(Clause::Class).ok_or_else(|| {
                policy_err(
                    cur.line,
                    &cls,
                    "expected a request class: read, write, writeback, dma, disk, pio or frame",
                )
            })
        }
        "param" => {
            let off = cur.column(Table::Param)?;
            let op = cur.cmp_op()?;
            Ok(Clause::Param(off, op, cur.num()?))
        }
        "stat" => {
            let off = cur.column(Table::Stat)?;
            let op = cur.cmp_op()?;
            Ok(Clause::Stat(off, op, cur.num()?))
        }
        _ => Err(policy_err(
            cur.line,
            &tok,
            "expected a match clause (ds, class, param.X, stat.X) or `all`",
        )),
    }
}

fn parse_action(cur: &mut Cursor<'_>) -> Result<MicroOp, CpError> {
    let tok = cur.next()?;
    match tok.as_str() {
        "rank" => Ok(MicroOp::Rank(parse_expr(cur, true)?)),
        "urgent" => Ok(MicroOp::Urgent),
        "weight" => Ok(MicroOp::Weight(parse_expr(cur, false)?)),
        "drop" => Ok(MicroOp::Drop),
        "defer" => Ok(MicroOp::Defer),
        "charge" => {
            let cost = parse_expr(cur, false)?;
            cur.expect("rate")?;
            let rate = parse_expr(cur, false)?;
            cur.expect("burst")?;
            let burst = parse_expr(cur, false)?;
            cur.expect("else")?;
            let fail = cur.next()?;
            let on_fail = match fail.as_str() {
                "drop" => OnFail::Drop,
                "defer" => OnFail::Defer,
                _ => {
                    return Err(policy_err(
                        cur.line,
                        &fail,
                        "expected `drop` or `defer` after `else`",
                    ))
                }
            };
            Ok(MicroOp::Charge {
                cost,
                rate,
                burst,
                on_fail,
            })
        }
        "bump" => {
            cur.expect("stat")?;
            Ok(MicroOp::Bump(cur.column(Table::Stat)?))
        }
        "waymask" => Ok(MicroOp::WayMask(parse_expr(cur, false)?)),
        _ => Err(policy_err(
            cur.line,
            &tok,
            "expected a micro-op: rank, urgent, weight, drop, defer, charge, bump or waymask",
        )),
    }
}

fn parse_expr(cur: &mut Cursor<'_>, allow_wfq: bool) -> Result<Expr, CpError> {
    let mut lhs = parse_term(cur, allow_wfq)?;
    loop {
        if cur.eat("+") {
            lhs = Expr::Add(Box::new(lhs), Box::new(parse_term(cur, allow_wfq)?));
        } else if cur.eat("-") {
            lhs = Expr::Sub(Box::new(lhs), Box::new(parse_term(cur, allow_wfq)?));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_term(cur: &mut Cursor<'_>, allow_wfq: bool) -> Result<Expr, CpError> {
    let mut lhs = parse_factor(cur, allow_wfq)?;
    loop {
        if cur.eat("*") {
            lhs = Expr::Mul(Box::new(lhs), Box::new(parse_factor(cur, allow_wfq)?));
        } else if cur.eat("/") {
            lhs = Expr::Div(Box::new(lhs), Box::new(parse_factor(cur, allow_wfq)?));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_factor(cur: &mut Cursor<'_>, allow_wfq: bool) -> Result<Expr, CpError> {
    let tok = cur.next()?;
    match tok.as_str() {
        "(" => {
            let inner = parse_expr(cur, allow_wfq)?;
            cur.expect(")")?;
            Ok(inner)
        }
        "size" => Ok(Expr::Size),
        "param" => Ok(Expr::Param(cur.column(Table::Param)?)),
        "stat" => Ok(Expr::Stat(cur.column(Table::Stat)?)),
        "wfq" => {
            if !allow_wfq {
                return Err(policy_err(
                    cur.line,
                    &tok,
                    "wfq(...) is only valid in rank position",
                ));
            }
            cur.expect("(")?;
            // The weight sub-expression must not itself be a wfq: one
            // virtual-clock advance per decision.
            let weight = parse_expr(cur, false)?;
            cur.expect(")")?;
            Ok(Expr::Wfq(Box::new(weight)))
        }
        _ => parse_num(&tok, cur.line).map(Expr::Const).map_err(|_| {
            policy_err(
                cur.line,
                &tok,
                "expected a number, size, param.X, stat.X, wfq(...) or a parenthesised expression",
            )
        }),
    }
}

/// The outcome of evaluating a program against one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// PIFO rank (lower dequeues first).
    pub rank: u64,
    /// Urgent entries bypass bus-admission gating.
    pub urgent: bool,
    /// `false` means the request is denied (dropped).
    pub admit: bool,
    /// `true` means the request was pushed to back-of-queue rank (or,
    /// on unqueued resources, should take an extra hop delay).
    pub deferred: bool,
    /// Service weight for quota-style resources (`0` = unreserved).
    pub weight: u64,
    /// Way mask override for cache planes, when a `waymask` op ran.
    pub waymask: Option<u64>,
    /// Statistics column to increment, when a `bump` op ran.
    pub bump: Option<StatKey>,
}

impl Default for Decision {
    /// The decision for a request no rule matched: admitted, rank 0,
    /// not urgent, unreserved weight.
    fn default() -> Self {
        Decision {
            rank: 0,
            urgent: false,
            admit: true,
            deferred: false,
            weight: 0,
            waymask: None,
            bump: None,
        }
    }
}

/// Per-(rule, DS) token-bucket state, scaled by [`UNITS_PER_SEC`] so the
/// refill arithmetic is exact in integers (no fractional-token loss on
/// frequent small refills).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens_scaled: u64,
    last: Time,
}

/// The per-resource evaluation engine: a program plus the bounded mutable
/// state its micro-ops need (WFQ clock, token buckets).
///
/// Engines are owned by the resource's data path (never shared), so
/// evaluation is lock-free; the owning component refreshes the engine from
/// [`ControlPlane::active_policy`] when the plane's generation changes.
///
/// [`ControlPlane::active_policy`]: crate::ControlPlane::active_policy
#[derive(Debug)]
pub struct PolicyEngine {
    prog: Arc<Program>,
    vtime: u64,
    finish: Vec<u64>,
    buckets: HashMap<(usize, u16), Bucket>,
}

impl PolicyEngine {
    /// Creates an engine running `prog` for up to `max_ds` DS-ids.
    pub fn new(prog: Arc<Program>, max_ds: usize) -> Self {
        PolicyEngine {
            prog,
            vtime: 0,
            finish: vec![0; max_ds.max(1)],
            buckets: HashMap::new(),
        }
    }

    /// The program currently loaded.
    pub fn program(&self) -> &Arc<Program> {
        &self.prog
    }

    /// Swaps in `prog` if its epoch differs from the loaded one, resetting
    /// all per-flow state (virtual clock, finish tags, token buckets).
    pub fn refresh(&mut self, prog: Arc<Program>) {
        if prog.epoch() == self.prog.epoch() {
            return;
        }
        self.vtime = 0;
        self.finish.iter_mut().for_each(|f| *f = 0);
        self.buckets.clear();
        self.prog = prog;
    }

    /// Evaluates the program against one request. `prow`/`srow` are the
    /// request DS-id's parameter and statistics rows in schema order
    /// (`srow` may be empty when [`Program::uses_stats`] is false).
    ///
    /// First matching rule wins; its micro-ops apply in order. A failed
    /// `charge` stops the op list and applies its `else` arm.
    pub fn decide(&mut self, req: &PolicyReq, prow: &[u64], srow: &[u64], now: Time) -> Decision {
        let prog = Arc::clone(&self.prog);
        for (ri, rule) in prog.rules().iter().enumerate() {
            if !rule.matches(req, prow, srow, now) {
                continue;
            }
            let mut d = Decision::default();
            for op in &rule.ops {
                match op {
                    MicroOp::Rank(e) => d.rank = self.eval(e, req, prow, srow, now),
                    MicroOp::Urgent => d.urgent = true,
                    MicroOp::Weight(e) => d.weight = self.eval(e, req, prow, srow, now),
                    MicroOp::Drop => d.admit = false,
                    MicroOp::Defer => {
                        d.deferred = true;
                        d.rank = u64::MAX;
                    }
                    MicroOp::Charge {
                        cost,
                        rate,
                        burst,
                        on_fail,
                    } => {
                        let cost = self.eval(cost, req, prow, srow, now);
                        let rate = self.eval(rate, req, prow, srow, now);
                        let burst = self.eval(burst, req, prow, srow, now);
                        if !self.charge(ri, req.ds, cost, rate, burst, now) {
                            match on_fail {
                                OnFail::Drop => d.admit = false,
                                OnFail::Defer => {
                                    d.deferred = true;
                                    d.rank = u64::MAX;
                                }
                            }
                            break;
                        }
                    }
                    MicroOp::Bump(off) => d.bump = Some(StatKey::at(*off)),
                    MicroOp::WayMask(e) => d.waymask = Some(self.eval(e, req, prow, srow, now)),
                }
            }
            return d;
        }
        Decision::default()
    }

    /// Advances the WFQ virtual clock past a served entry's rank.
    ///
    /// Schedulers call this when dequeuing a PIFO entry whose rank came
    /// from a `wfq(...)` program; it is a no-op for rank values that never
    /// came from the virtual clock (the built-in constant-rank programs).
    #[inline]
    pub fn note_serve(&mut self, rank: u64) {
        if rank != u64::MAX {
            self.vtime = self.vtime.max(rank);
        }
    }

    fn eval(&mut self, e: &Expr, req: &PolicyReq, prow: &[u64], srow: &[u64], now: Time) -> u64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Param(off) => cell(prow, *off, "param_offset_oob", req.ds, now),
            Expr::Stat(off) => cell(srow, *off, "stat_offset_oob", req.ds, now),
            Expr::Size => req.size,
            Expr::Add(a, b) => {
                let a = self.eval(a, req, prow, srow, now);
                a.saturating_add(self.eval(b, req, prow, srow, now))
            }
            Expr::Sub(a, b) => {
                let a = self.eval(a, req, prow, srow, now);
                a.saturating_sub(self.eval(b, req, prow, srow, now))
            }
            Expr::Mul(a, b) => {
                let a = self.eval(a, req, prow, srow, now);
                a.saturating_mul(self.eval(b, req, prow, srow, now))
            }
            Expr::Div(a, b) => {
                let a = self.eval(a, req, prow, srow, now);
                let b = self.eval(b, req, prow, srow, now);
                if b == 0 {
                    0
                } else {
                    a / b
                }
            }
            Expr::Wfq(w) => {
                // Start-time fair queueing: rank is the flow's virtual
                // start tag; the finish tag advances by size/weight.
                let weight = self.eval(w, req, prow, srow, now).max(1);
                let i = req.ds.index().min(self.finish.len() - 1);
                let start = self.vtime.max(self.finish[i]);
                self.finish[i] =
                    start.saturating_add(req.size.saturating_mul(WFQ_SCALE) / weight);
                start
            }
        }
    }

    fn charge(&mut self, rule: usize, ds: DsId, cost: u64, rate: u64, burst: u64, now: Time) -> bool {
        let burst_scaled = burst.saturating_mul(UNITS_PER_SEC);
        let b = self.buckets.entry((rule, ds.raw())).or_insert(Bucket {
            tokens_scaled: burst_scaled,
            last: now,
        });
        let dt = now.units().saturating_sub(b.last.units());
        if dt > 0 {
            let add = (u128::from(rate) * u128::from(dt)).min(u128::from(u64::MAX)) as u64;
            b.tokens_scaled = b.tokens_scaled.saturating_add(add).min(burst_scaled);
            b.last = now;
        }
        let cost_scaled = cost.saturating_mul(UNITS_PER_SEC);
        if b.tokens_scaled >= cost_scaled {
            b.tokens_scaled -= cost_scaled;
            true
        } else {
            false
        }
    }
}

/// A push-in-first-out queue: entries dequeue lowest-rank-first, stable
/// FIFO within equal rank ("Programmable Packet Scheduling at Line Rate").
///
/// The scheduler inspects only the **front bucket** (the lowest present
/// rank) when picking work — with the built-in two-rank memory program
/// this is exactly the old "serve the high queue if non-empty, else the
/// low queue" behavior, which keeps the default figures byte-identical.
#[derive(Debug)]
pub struct Pifo<T> {
    /// Rank buckets, sorted ascending. A sorted `Vec` beats a tree here:
    /// the scheduler only ever touches the front bucket, the distinct-rank
    /// count is bounded by queue depth (small), and — unlike a `BTreeMap`,
    /// whose nodes are freed when the map empties — the `Vec` retains its
    /// capacity across the empty↔non-empty churn of steady-state traffic,
    /// so the memory-controller hot path never allocates per request.
    buckets: Vec<(u64, VecDeque<(T, bool)>)>,
    // Emptied bucket queues are pooled so steady-state single-rank traffic
    // does not allocate per request (the memory-controller hot path).
    pool: Vec<VecDeque<(T, bool)>>,
    len: usize,
    urgent: usize,
}

impl<T> Default for Pifo<T> {
    fn default() -> Self {
        Pifo::new()
    }
}

impl<T> Pifo<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Pifo {
            buckets: Vec::new(),
            pool: Vec::new(),
            len: 0,
            urgent: 0,
        }
    }

    /// Total queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued entries pushed with the urgent mark.
    pub fn urgent_len(&self) -> usize {
        self.urgent
    }

    /// Pushes `item` at `rank`, behind earlier same-rank entries.
    pub fn push(&mut self, rank: u64, urgent: bool, item: T) {
        match self.buckets.binary_search_by_key(&rank, |b| b.0) {
            Ok(i) => self.buckets[i].1.push_back((item, urgent)),
            Err(i) => {
                let mut q = self.pool.pop().unwrap_or_default();
                q.push_back((item, urgent));
                self.buckets.insert(i, (rank, q));
            }
        }
        self.len += 1;
        if urgent {
            self.urgent += 1;
        }
    }

    /// The lowest rank currently queued.
    pub fn front_rank(&self) -> Option<u64> {
        self.buckets.first().map(|b| b.0)
    }

    /// Iterates the front (lowest-rank) bucket in FIFO order.
    pub fn front_iter(&self) -> impl Iterator<Item = &T> {
        self.buckets
            .first()
            .into_iter()
            .flat_map(|b| b.1.iter())
            .map(|(item, _)| item)
    }

    /// Removes and returns the `idx`-th entry of the front bucket along
    /// with its rank (FR-FCFS picks within the scheduler's reorder window).
    pub fn remove_front(&mut self, idx: usize) -> Option<(u64, T)> {
        let (rank, q) = self.buckets.first_mut()?;
        let rank = *rank;
        let (item, urgent) = q.remove(idx)?;
        self.len -= 1;
        if urgent {
            self.urgent -= 1;
        }
        if q.is_empty() {
            let (_, q) = self.buckets.remove(0);
            self.pool.push(q);
        }
        Some((rank, item))
    }
}

/// A fluent builder producing policy source text — the `pardpolicy`
/// programmatic companion to the shell verb.
///
/// # Example
///
/// ```
/// use pard_cp::policy::ProgramBuilder;
///
/// let text = ProgramBuilder::new()
///     .when("param.priority != 0")
///     .rank("0")
///     .urgent()
///     .done()
///     .when("all")
///     .rank("1")
///     .done()
///     .source();
/// assert_eq!(text, "when param.priority != 0 do rank 0, urgent\nwhen all do rank 1");
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    rules: Vec<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Starts a rule with the given predicate text (e.g. `"ds == 2 &&
    /// class == dma"`, or `"all"`).
    pub fn when(self, pred: &str) -> RuleBuilder {
        RuleBuilder {
            builder: self,
            pred: pred.to_string(),
            ops: Vec::new(),
        }
    }

    /// The accumulated program text.
    pub fn source(&self) -> String {
        self.rules.join("\n")
    }
}

/// An in-progress rule of a [`ProgramBuilder`].
#[derive(Debug)]
pub struct RuleBuilder {
    builder: ProgramBuilder,
    pred: String,
    ops: Vec<String>,
}

impl RuleBuilder {
    /// Adds a `rank <expr>` op.
    pub fn rank(mut self, expr: &str) -> Self {
        self.ops.push(format!("rank {expr}"));
        self
    }

    /// Adds an `urgent` op.
    pub fn urgent(mut self) -> Self {
        self.ops.push("urgent".into());
        self
    }

    /// Adds a `weight <expr>` op.
    pub fn weight(mut self, expr: &str) -> Self {
        self.ops.push(format!("weight {expr}"));
        self
    }

    /// Adds a `drop` op.
    pub fn drop_req(mut self) -> Self {
        self.ops.push("drop".into());
        self
    }

    /// Adds a `defer` op.
    pub fn defer(mut self) -> Self {
        self.ops.push("defer".into());
        self
    }

    /// Adds a `charge <cost> rate <rate> burst <burst> else <on_fail>` op.
    pub fn charge(mut self, cost: &str, rate: &str, burst: &str, on_fail: OnFail) -> Self {
        let fail = match on_fail {
            OnFail::Drop => "drop",
            OnFail::Defer => "defer",
        };
        self.ops
            .push(format!("charge {cost} rate {rate} burst {burst} else {fail}"));
        self
    }

    /// Adds a `bump stat.<column>` op.
    pub fn bump(mut self, stat_column: &str) -> Self {
        self.ops.push(format!("bump stat.{stat_column}"));
        self
    }

    /// Adds a `waymask <expr>` op.
    pub fn waymask(mut self, expr: &str) -> Self {
        self.ops.push(format!("waymask {expr}"));
        self
    }

    /// Finishes the rule and returns the builder.
    pub fn done(mut self) -> ProgramBuilder {
        let rule = format!("when {} do {}", self.pred, self.ops.join(", "));
        self.builder.rules.push(rule);
        self.builder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnDef;

    fn schemas() -> (DsTable, StatsCells) {
        let params = DsTable::new(
            "parameter",
            vec![
                ColumnDef::with_default("priority", 0),
                ColumnDef::with_default("bandwidth", 0),
                ColumnDef::with_default("wfq_weight", 1),
            ],
            8,
        );
        let stats = StatsCells::new(
            vec![ColumnDef::new("serv_cnt"), ColumnDef::new("drops")],
            8,
        );
        (params, stats)
    }

    fn req(ds: u16, class: ReqClass, size: u64) -> PolicyReq {
        PolicyReq {
            ds: DsId::new(ds),
            class,
            size,
        }
    }

    #[test]
    fn builtin_two_class_program_reproduces_priority_semantics() {
        let (params, stats) = schemas();
        let prog = Program::parse(
            "when param.priority != 0 do rank 0, urgent\nwhen all do rank 1",
            &params,
            &stats,
        )
        .unwrap();
        assert!(!prog.uses_stats());
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);
        let hi = eng.decide(&req(1, ReqClass::Read, 64), &[1, 0, 1], &[], Time::ZERO);
        assert_eq!((hi.rank, hi.urgent, hi.admit), (0, true, true));
        let lo = eng.decide(&req(2, ReqClass::Read, 64), &[0, 0, 1], &[], Time::ZERO);
        assert_eq!((lo.rank, lo.urgent, lo.admit), (1, false, true));
    }

    #[test]
    fn per_ds_purity_classifies_programs() {
        let (params, stats) = schemas();
        let pure = [
            "when param.priority != 0 do rank 0, urgent\nwhen all do rank 1",
            "when all do rank 0",
            "when ds == 2 do drop\nwhen all do weight param.priority * 4",
        ];
        for src in pure {
            assert!(
                Program::parse(src, &params, &stats).unwrap().per_ds_pure(),
                "{src:?} should be cacheable per DS"
            );
        }
        let impure = [
            "when class == dma do drop\nwhen all do rank 0",
            "when all do rank size",
            "when stat.serv_cnt > 10 do defer\nwhen all do rank 0",
            "when all do rank wfq(param.wfq_weight)",
            "when all do charge size rate 100 burst 10 else drop",
        ];
        for src in impure {
            assert!(
                !Program::parse(src, &params, &stats).unwrap().per_ds_pure(),
                "{src:?} must be interpreted per request"
            );
        }
    }

    #[test]
    fn first_matching_rule_wins() {
        let (params, stats) = schemas();
        let prog = Program::parse(
            "when ds == 3 do drop\nwhen all do rank 7",
            &params,
            &stats,
        )
        .unwrap();
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);
        assert!(!eng.decide(&req(3, ReqClass::Dma, 1), &[], &[], Time::ZERO).admit);
        assert_eq!(
            eng.decide(&req(4, ReqClass::Dma, 1), &[], &[], Time::ZERO).rank,
            7
        );
    }

    #[test]
    fn unmatched_request_gets_the_default_decision() {
        let (params, stats) = schemas();
        let prog = Program::parse("when ds == 9 do drop", &params, &stats).unwrap();
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);
        let d = eng.decide(&req(0, ReqClass::Read, 1), &[], &[], Time::ZERO);
        assert_eq!(d, Decision::default());
    }

    #[test]
    fn shrunk_table_row_under_installed_program_is_reported_not_silent() {
        use pard_sim::audit;

        // A program whose predicate and rank both read resolved param
        // offsets (priority=0, wfq_weight=2), compiled against the full
        // 3-column schema.
        let (params, stats) = schemas();
        let prog = Program::parse(
            "when param.wfq_weight > 0 do rank param.priority\nwhen all do rank param.bandwidth",
            &params,
            &stats,
        )
        .unwrap();
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);

        // Full-width row: offsets resolve, nothing to report.
        let before = audit::unexpected_events();
        let d = eng.decide(&req(1, ReqClass::Read, 64), &[7, 3, 1], &[], Time::ZERO);
        assert_eq!(d.rank, 7);
        assert_eq!(audit::unexpected_events(), before);

        // The table "shrinks" under the installed program: the row the
        // engine is handed no longer covers the compiled offsets. The
        // read must not be a silent zero — it reports through the audit
        // layer (which also debug-panics when no auditor is installed,
        // hence report mode here), then evaluates as 0 so the decision
        // stays total.
        audit::install(audit::AuditConfig::report()).unwrap();
        let violations = audit::violations_total();
        let d = eng.decide(&req(1, ReqClass::Read, 64), &[7], &[], Time::ZERO);
        // wfq_weight read 0 → first rule fails → rank param.bandwidth,
        // also out of range → rank 0.
        assert_eq!(d.rank, 0);
        assert_eq!(
            audit::unexpected_events(),
            before + 2,
            "both out-of-range offset reads must be counted"
        );
        assert_eq!(
            audit::violations_total(),
            violations + 2,
            "an installed auditor must record the contract violation"
        );
        audit::disable();
    }

    #[test]
    fn class_and_stat_predicates_match() {
        let (params, stats) = schemas();
        let prog = Program::parse(
            "when class == writeback do rank 9\nwhen stat.drops > 3 do drop\nwhen all do rank 1",
            &params,
            &stats,
        )
        .unwrap();
        assert!(prog.uses_stats());
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);
        let wb = eng.decide(&req(0, ReqClass::Writeback, 64), &[], &[0, 9], Time::ZERO);
        assert_eq!(wb.rank, 9);
        let dropped = eng.decide(&req(0, ReqClass::Read, 64), &[], &[0, 9], Time::ZERO);
        assert!(!dropped.admit);
        let ok = eng.decide(&req(0, ReqClass::Read, 64), &[], &[0, 2], Time::ZERO);
        assert!(ok.admit);
    }

    #[test]
    fn expression_arithmetic_is_saturating_and_total() {
        let (params, stats) = schemas();
        let prog = Program::parse(
            "when all do rank (size * 2 + param.priority) / param.bandwidth",
            &params,
            &stats,
        )
        .unwrap();
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);
        // bandwidth 0: division by zero evaluates to 0, never panics.
        assert_eq!(
            eng.decide(&req(0, ReqClass::Read, 10), &[4, 0, 1], &[], Time::ZERO).rank,
            0
        );
        assert_eq!(
            eng.decide(&req(0, ReqClass::Read, 10), &[4, 6, 1], &[], Time::ZERO).rank,
            4
        );
    }

    #[test]
    fn wfq_ranks_interleave_by_weight() {
        let (params, stats) = schemas();
        let prog = Program::parse("when all do rank wfq(param.wfq_weight)", &params, &stats)
            .unwrap();
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);
        // ds0 weight 1, ds1 weight 4: four ds1 sends fit before ds0's second.
        let p0 = [0, 0, 1];
        let p1 = [0, 0, 4];
        let a1 = eng.decide(&req(0, ReqClass::Read, 64), &p0, &[], Time::ZERO).rank;
        let b1 = eng.decide(&req(1, ReqClass::Read, 64), &p1, &[], Time::ZERO).rank;
        let a2 = eng.decide(&req(0, ReqClass::Read, 64), &p0, &[], Time::ZERO).rank;
        let b2 = eng.decide(&req(1, ReqClass::Read, 64), &p1, &[], Time::ZERO).rank;
        assert_eq!((a1, b1), (0, 0));
        assert_eq!(a2, 64 * WFQ_SCALE);
        assert_eq!(b2, 64 * WFQ_SCALE / 4);
        assert!(b2 < a2, "the heavier flow's second tag lands earlier");
    }

    #[test]
    fn token_bucket_charges_and_refills_deterministically() {
        let (params, stats) = schemas();
        // 1000 tokens/sec, burst 100, cost 60 per request.
        let prog = Program::parse(
            "when all do charge 60 rate 1000 burst 100 else drop",
            &params,
            &stats,
        )
        .unwrap();
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);
        let r = req(0, ReqClass::Dma, 60);
        assert!(eng.decide(&r, &[], &[], Time::ZERO).admit, "bucket starts full");
        assert!(!eng.decide(&r, &[], &[], Time::ZERO).admit, "40 tokens left");
        // 60 ms at 1000 tokens/sec refills the 20-token shortfall.
        assert!(eng.decide(&r, &[], &[], Time::from_ms(60)).admit);
        assert!(!eng.decide(&r, &[], &[], Time::from_ms(60)).admit);
    }

    #[test]
    fn charge_failure_applies_the_else_arm_and_skips_later_ops() {
        let (params, stats) = schemas();
        let prog = Program::parse(
            "when all do charge 10 rate 0 burst 10 else defer, urgent",
            &params,
            &stats,
        )
        .unwrap();
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);
        let r = req(0, ReqClass::Dma, 10);
        let first = eng.decide(&r, &[], &[], Time::ZERO);
        assert!(first.admit && !first.deferred && first.urgent);
        let second = eng.decide(&r, &[], &[], Time::ZERO);
        assert!(second.admit && second.deferred, "else defer admits at back rank");
        assert_eq!(second.rank, u64::MAX);
        assert!(!second.urgent, "ops after the failed charge are skipped");
    }

    #[test]
    fn bump_and_waymask_surface_in_the_decision() {
        let (params, stats) = schemas();
        let prog = Program::parse(
            "when all do bump stat.drops, waymask 0xFF00",
            &params,
            &stats,
        )
        .unwrap();
        let mut eng = PolicyEngine::new(Arc::new(prog), 8);
        let d = eng.decide(&req(0, ReqClass::Read, 1), &[], &[], Time::ZERO);
        assert_eq!(d.bump, Some(StatKey::at(1)));
        assert_eq!(d.waymask, Some(0xFF00));
    }

    #[test]
    fn unknown_columns_are_install_errors_with_the_offending_token() {
        let (params, stats) = schemas();
        let err = Program::parse("when param.prioritty != 0 do rank 0", &params, &stats)
            .unwrap_err();
        match err {
            CpError::Policy { line, token, .. } => {
                assert_eq!(line, 1);
                assert_eq!(token, "prioritty");
            }
            other => panic!("expected a policy error, got {other:?}"),
        }
        let err = Program::parse(
            "when all do rank 0\nwhen all do bump stat.dorps",
            &params,
            &stats,
        )
        .unwrap_err();
        match err {
            CpError::Policy { line, token, .. } => {
                assert_eq!(line, 2);
                assert_eq!(token, "dorps");
            }
            other => panic!("expected a policy error, got {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_name_line_and_token() {
        let (params, stats) = schemas();
        for (src, want_tok) in [
            ("when all rank 0", "rank"),
            ("when all do frobnicate 3", "frobnicate"),
            ("when all do rank 0xZZ", "0xZZ"),
            ("when class == warp do rank 0", "warp"),
            ("when all do rank wfq(1) extra", "extra"),
            ("when all do weight wfq(1)", "wfq"),
            ("when all do rank 0 @", "@"),
        ] {
            let err = Program::parse(src, &params, &stats).unwrap_err();
            match err {
                CpError::Policy { token, .. } => {
                    assert_eq!(token, want_tok, "source {src:?}")
                }
                other => panic!("expected a policy error for {src:?}, got {other:?}"),
            }
        }
        assert!(Program::parse("", &params, &stats).is_err());
        assert!(Program::parse("# just a comment\n", &params, &stats).is_err());
    }

    #[test]
    fn multibyte_input_is_rejected_not_panicked_on() {
        let (params, stats) = schemas();
        let err = Program::parse("when all do rank 0 ✗", &params, &stats).unwrap_err();
        match err {
            CpError::Policy { token, .. } => assert_eq!(token, "✗"),
            other => panic!("expected a policy error, got {other:?}"),
        }
    }

    #[test]
    fn pifo_is_rank_ordered_and_fifo_within_rank() {
        let mut q: Pifo<&str> = Pifo::new();
        q.push(2, false, "late");
        q.push(1, true, "a");
        q.push(1, false, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.urgent_len(), 1);
        assert_eq!(q.front_rank(), Some(1));
        let front: Vec<_> = q.front_iter().copied().collect();
        assert_eq!(front, ["a", "b"]);
        assert_eq!(q.remove_front(0), Some((1, "a")));
        assert_eq!(q.urgent_len(), 0);
        assert_eq!(q.remove_front(0), Some((1, "b")));
        assert_eq!(q.front_rank(), Some(2));
        assert_eq!(q.remove_front(0), Some((2, "late")));
        assert!(q.is_empty());
        assert_eq!(q.remove_front(0), None);
    }

    #[test]
    fn pifo_front_window_skips_nothing_within_the_bucket() {
        let mut q: Pifo<u32> = Pifo::new();
        for v in 0..5 {
            q.push(0, false, v);
        }
        // Remove the middle entry (FR-FCFS row hit), order otherwise kept.
        assert_eq!(q.remove_front(2), Some((0, 2)));
        let left: Vec<_> = q.front_iter().copied().collect();
        assert_eq!(left, [0, 1, 3, 4]);
    }

    #[test]
    fn engine_refresh_resets_state_only_on_epoch_change() {
        let (params, stats) = schemas();
        let prog = Arc::new(
            Program::parse("when all do rank wfq(1)", &params, &stats)
                .unwrap()
                .with_epoch(1),
        );
        let mut eng = PolicyEngine::new(Arc::clone(&prog), 8);
        eng.decide(&req(0, ReqClass::Read, 64), &[], &[], Time::ZERO);
        let tagged = eng.decide(&req(0, ReqClass::Read, 64), &[], &[], Time::ZERO);
        assert!(tagged.rank > 0);
        eng.refresh(Arc::clone(&prog));
        let same = eng.decide(&req(0, ReqClass::Read, 64), &[], &[], Time::ZERO);
        assert!(same.rank > tagged.rank, "same epoch keeps flow state");
        let reinstalled = Arc::new(Program::clone(&prog).with_epoch(2));
        eng.refresh(reinstalled);
        let fresh = eng.decide(&req(0, ReqClass::Read, 64), &[], &[], Time::ZERO);
        assert_eq!(fresh.rank, 0, "new epoch resets the virtual clock");
    }

    #[test]
    fn builder_round_trips_through_the_parser() {
        let (params, stats) = schemas();
        let text = ProgramBuilder::new()
            .when("ds == 2 && class == dma")
            .charge("size", "1000000", "65536", OnFail::Drop)
            .bump("drops")
            .done()
            .when("all")
            .rank("wfq(param.wfq_weight)")
            .done()
            .source();
        let prog = Program::parse(&text, &params, &stats).unwrap();
        assert_eq!(prog.rules().len(), 2);
        assert_eq!(prog.source(), text);
    }

    #[test]
    fn comments_and_semicolons_split_rules() {
        let (params, stats) = schemas();
        let prog = Program::parse(
            "# header comment\nwhen ds == 1 do rank 0; when all do rank 1",
            &params,
            &stats,
        )
        .unwrap();
        assert_eq!(prog.rules().len(), 2);
    }
}
