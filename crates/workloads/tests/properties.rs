//! Seeded randomized tests of the workload engines.

use pard_sim::check::{cases, DEFAULT_CASES};
use pard_sim::rng::Rng;
use pard_sim::Time;
use pard_workloads::{
    by_name, CacheFlush, Memcached, MemcachedConfig, Op, Stream, StreamConfig, TimeShared,
    WorkloadEngine,
};

/// Collects the addresses an engine touches under an idealised core.
fn addresses(engine: &mut dyn WorkloadEngine, n: usize) -> Vec<u64> {
    let mut now = Time::ZERO;
    let mut out = Vec::new();
    while out.len() < n {
        match engine.next_op(now) {
            Op::Load { addr, .. } | Op::Store { addr } => {
                out.push(addr.raw());
                now += Time::from_ns(10);
            }
            Op::Compute(c) => now += Time::from_units(c * 2),
            Op::IdleUntil(t) => now = now.max(t),
            Op::SetTag(_) => now += Time::from_ns(10),
            Op::Disk { .. } => now += Time::from_us(100),
            Op::Halt => break,
        }
    }
    out
}

/// STREAM touches exactly its three arrays, line-aligned, and every
/// address stays within the configured footprint.
#[test]
fn stream_addresses_stay_in_bounds() {
    cases("workloads.stream_addresses_stay_in_bounds", DEFAULT_CASES, |rng| {
        let arrays_kb = rng.gen_range(1u64..64);
        let base_mb = rng.gen_range(0u64..64);
        let bytes = arrays_kb * 1024;
        let base = base_mb << 20;
        let mut s = Stream::new(StreamConfig {
            array_bytes: bytes,
            base,
            compute_per_block: 4,
        });
        for a in addresses(&mut s, 500) {
            assert!(a >= base);
            assert!(a < base + 3 * bytes);
            assert_eq!(a % 64, 0);
        }
    });
}

/// CacheFlush covers its whole buffer exactly once per pass, in order.
#[test]
fn cacheflush_covers_every_line() {
    cases("workloads.cacheflush_covers_every_line", DEFAULT_CASES, |rng| {
        let lines = rng.gen_range(1u64..128);
        let mut f = CacheFlush::new(0x1000, lines * 64);
        let addrs = addresses(&mut f, lines as usize);
        let expected: Vec<u64> = (0..lines).map(|i| 0x1000 + i * 64).collect();
        assert_eq!(addrs, expected);
        assert_eq!(f.passes(), 1);
    });
}

/// Memcached sojourn measurements never go backwards in time and the
/// reported percentiles are ordered, for any load level.
#[test]
fn memcached_reports_are_internally_consistent() {
    cases("workloads.memcached_reports_consistent", 64, |rng| {
        let rps = rng.gen_range(1_000.0f64..200_000.0);
        let mut m = Memcached::new(MemcachedConfig {
            rps,
            items: 32,
            value_lines: 8,
            buffer_lines: 4,
            meta_loads: 2,
            warmup: Time::ZERO,
            ..MemcachedConfig::default()
        });
        let mut now = Time::ZERO;
        while now < Time::from_ms(2) {
            match m.next_op(now) {
                Op::Compute(c) => now += Time::from_units(c * 2),
                Op::IdleUntil(t) => now = now.max(t),
                Op::Halt => break,
                _ => now += Time::from_ns(20),
            }
        }
        let r = m.report();
        assert!(r.mean <= r.max);
        assert!(r.p95 <= r.p99);
        assert!(r.p99 <= r.max);
    });
}

/// TimeShared preserves the inner engines' work: every load/store it
/// forwards comes from the active process, and tags strictly alternate
/// between switches for two CPU-bound processes.
#[test]
fn timeshared_interleaves_fairly() {
    cases("workloads.timeshared_interleaves_fairly", 64, |rng| {
        let slice_us = rng.gen_range(10u64..200);
        let mut e = TimeShared::new(
            vec![
                (1, Box::new(CacheFlush::new(0, 4096))),
                (2, Box::new(CacheFlush::new(0x10000, 4096))),
            ],
            Time::from_us(slice_us),
        );
        let mut now = Time::ZERO;
        let mut tag = 0u16;
        let mut per_tag = [0u64; 3];
        while now < Time::from_ms(2) {
            match e.next_op(now) {
                Op::SetTag(t) => {
                    assert_ne!(t, tag, "switch must change the tag");
                    tag = t;
                    now += Time::from_ns(100);
                }
                Op::Store { addr } => {
                    // Address region identifies the process: tags must match.
                    let owner = if addr.raw() < 0x10000 { 1 } else { 2 };
                    assert_eq!(owner, tag, "work under the wrong tag");
                    per_tag[usize::from(tag)] += 1;
                    now += Time::from_ns(10);
                }
                Op::Compute(c) => now += Time::from_units(c * 2),
                Op::IdleUntil(t) => now = now.max(t),
                _ => now += Time::from_ns(10),
            }
        }
        // Round robin with equal slices: within 30% of each other.
        let (a, b) = (per_tag[1] as f64, per_tag[2] as f64);
        assert!(a > 0.0 && b > 0.0);
        assert!((a / b - 1.0).abs() < 0.3, "unfair split {a} vs {b}");
    });
}

#[test]
fn factory_names_are_stable() {
    for &name in pard_workloads::known_workloads() {
        assert!(by_name(name).is_some());
    }
}
