//! The DiskCopy (`dd`) workload of Figure 10.

use pard_icn::{DiskKind, LAddr};
use pard_sim::Time;

use crate::op::{Op, WorkloadEngine};

/// Configuration of the [`DiskCopy`] engine.
#[derive(Debug, Clone)]
pub struct DiskCopyConfig {
    /// Target disk.
    pub disk: u8,
    /// Block size per request (`bs=32M` in the paper's command line).
    pub block_bytes: u64,
    /// Number of blocks (`count=16`).
    pub count: u64,
    /// Transfer direction (the paper writes: `of=/dev/sdb`).
    pub kind: DiskKind,
    /// DMA buffer base address.
    pub buffer: u64,
}

impl Default for DiskCopyConfig {
    fn default() -> Self {
        DiskCopyConfig {
            disk: 1,
            block_bytes: 32 * 1024 * 1024,
            count: 16,
            kind: DiskKind::Write,
            buffer: 0x0800_0000,
        }
    }
}

/// `dd if=/dev/zero of=/dev/sdb bs=32M count=16`: issues `count`
/// back-to-back disk requests of `block_bytes` each, with a little compute
/// between them (the `dd` user-space loop), then halts.
pub struct DiskCopy {
    cfg: DiskCopyConfig,
    issued: u64,
    post_block: bool,
    finished_at: Option<Time>,
}

impl DiskCopy {
    /// Creates the engine.
    pub fn new(cfg: DiskCopyConfig) -> Self {
        DiskCopy {
            cfg,
            issued: 0,
            post_block: false,
            finished_at: None,
        }
    }

    /// Blocks issued so far.
    pub fn blocks_issued(&self) -> u64 {
        self.issued
    }

    /// Completion time of the whole copy, once finished.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }
}

impl WorkloadEngine for DiskCopy {
    fn name(&self) -> &str {
        "diskcopy"
    }

    fn next_op(&mut self, now: Time) -> Op {
        if self.post_block {
            // Previous Disk op completed; small syscall-return compute.
            self.post_block = false;
            return Op::Compute(5_000);
        }
        if self.issued == self.cfg.count {
            if self.finished_at.is_none() {
                self.finished_at = Some(now);
            }
            return Op::Halt;
        }
        self.issued += 1;
        self.post_block = true;
        Op::Disk {
            disk: self.cfg.disk,
            kind: self.cfg.kind,
            buffer: LAddr::new(self.cfg.buffer),
            bytes: self.cfg.block_bytes,
        }
    }

    crate::impl_engine_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_count_blocks_then_halts() {
        let mut dd = DiskCopy::new(DiskCopyConfig {
            count: 3,
            block_bytes: 1024,
            ..DiskCopyConfig::default()
        });
        let mut disks = 0;
        let mut now = Time::ZERO;
        loop {
            match dd.next_op(now) {
                Op::Disk { bytes, .. } => {
                    assert_eq!(bytes, 1024);
                    disks += 1;
                    now += Time::from_us(10);
                }
                Op::Compute(_) => now += Time::from_ns(100),
                Op::Halt => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(disks, 3);
        assert_eq!(dd.blocks_issued(), 3);
        assert_eq!(dd.finished_at(), Some(now));
        // Halt is sticky.
        assert_eq!(dd.next_op(now), Op::Halt);
    }

    #[test]
    fn paper_default_is_512_mb() {
        let cfg = DiskCopyConfig::default();
        assert_eq!(cfg.block_bytes * cfg.count, 512 * 1024 * 1024);
    }
}
