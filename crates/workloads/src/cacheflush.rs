//! The CacheFlush microbenchmark.

use pard_icn::LAddr;
use pard_sim::Time;

use crate::op::{Op, WorkloadEngine};

/// CacheFlush: stores to every line of a buffer larger than the LLC, in a
/// loop — the LLC-thrashing microbenchmark the paper runs in LDom2 of the
/// Figure 7 experiment.
pub struct CacheFlush {
    base: u64,
    lines: u64,
    cursor: u64,
    passes: u64,
}

impl CacheFlush {
    /// Creates a flusher over `buffer_bytes` starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_bytes` is not a non-zero multiple of 64.
    pub fn new(base: u64, buffer_bytes: u64) -> Self {
        assert!(
            buffer_bytes >= 64 && buffer_bytes.is_multiple_of(64),
            "buffer must be a non-zero multiple of the line size"
        );
        CacheFlush {
            base,
            lines: buffer_bytes / 64,
            cursor: 0,
            passes: 0,
        }
    }

    /// Completed passes over the buffer.
    pub fn passes(&self) -> u64 {
        self.passes
    }
}

impl WorkloadEngine for CacheFlush {
    fn name(&self) -> &str {
        "cacheflush"
    }

    fn next_op(&mut self, _now: Time) -> Op {
        let addr = LAddr::new(self.base + self.cursor * 64);
        self.cursor += 1;
        if self.cursor == self.lines {
            self.cursor = 0;
            self.passes += 1;
        }
        Op::Store { addr }
    }

    crate::impl_engine_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_every_line_then_wraps() {
        let mut f = CacheFlush::new(0x1000, 192);
        let addrs: Vec<u64> = (0..4)
            .map(|_| match f.next_op(Time::ZERO) {
                Op::Store { addr } => addr.raw(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x1000]);
        assert_eq!(f.passes(), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the line size")]
    fn bad_buffer_panics() {
        let _ = CacheFlush::new(0, 65);
    }
}
