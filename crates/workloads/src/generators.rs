//! Random-process generators: Zipf popularity, Poisson arrivals.
//!
//! Both samplers draw from the first-party [`Rng`] trait. Two construction
//! styles are supported: the classic `(seed, stream)` pair that derives an
//! independent named stream, and [`Zipf::from_rng`] /
//! [`PoissonArrivals::from_rng`], which fork a child generator off any
//! `&mut impl Rng` — the composable boundary for callers that manage their
//! own seeding hierarchy.

use pard_sim::rng::{stream_rng, Rng, Xoshiro256pp};
use pard_sim::Time;

/// Forks an independent child generator off `parent`.
fn fork(parent: &mut impl Rng) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(parent.next_u64())
}

/// A Zipf(s) sampler over `0..n` using precomputed cumulative weights.
///
/// Item `k` (0-based) has weight `(k+1)^-s`; sampling is a binary search
/// over the cumulative distribution — exact, not approximate.
///
/// # Example
///
/// ```
/// use pard_workloads::Zipf;
/// let mut z = Zipf::new(1000, 1.4, 42, "doc");
/// let mut hits0 = 0;
/// for _ in 0..1000 {
///     if z.sample() == 0 { hits0 += 1; }
/// }
/// assert!(hits0 > 100, "rank 0 must be very popular, got {hits0}");
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    rng: Xoshiro256pp,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `s`, seeded
    /// deterministically from `(seed, stream)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite and non-negative.
    pub fn new(n: u64, s: f64, seed: u64, stream: &str) -> Self {
        Self::with_rng(n, s, stream_rng(seed, stream))
    }

    /// Creates a sampler whose randomness forks off `rng`, leaving the
    /// parent reusable for further derivations.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite and non-negative.
    pub fn from_rng(n: u64, s: f64, rng: &mut impl Rng) -> Self {
        Self::with_rng(n, s, fork(rng))
    }

    fn with_rng(n: u64, s: f64, rng: Xoshiro256pp) -> Self {
        assert!(n > 0, "Zipf needs a non-empty universe");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf, rng }
    }

    /// Number of items.
    pub fn universe(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws one item rank (0 = most popular).
    pub fn sample(&mut self) -> u64 {
        let u = self.rng.gen_f64();
        // partition_point: first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// The probability mass of the `k` most popular items.
    pub fn top_mass(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[(k.min(self.universe()) - 1) as usize]
        }
    }
}

/// A Poisson arrival process: exponential inter-arrival times at a fixed
/// rate.
///
/// # Example
///
/// ```
/// use pard_workloads::PoissonArrivals;
/// use pard_sim::Time;
/// let mut p = PoissonArrivals::new(10_000.0, 7, "doc");
/// let first = p.next_arrival();
/// let second = p.next_arrival();
/// assert!(second > first);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
    next: Time,
    rng: Xoshiro256pp,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_sec` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn new(rate_per_sec: f64, seed: u64, stream: &str) -> Self {
        Self::with_rng(rate_per_sec, stream_rng(seed, stream))
    }

    /// Creates a process whose randomness forks off `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn from_rng(rate_per_sec: f64, rng: &mut impl Rng) -> Self {
        Self::with_rng(rate_per_sec, fork(rng))
    }

    fn with_rng(rate_per_sec: f64, rng: Xoshiro256pp) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        PoissonArrivals {
            rate_per_sec,
            next: Time::ZERO,
            rng,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Returns the next arrival's absolute time and advances the process.
    pub fn next_arrival(&mut self) -> Time {
        let u = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap_secs = -u.ln() / self.rate_per_sec;
        let gap = Time::from_units((gap_secs * 4e9).max(1.0) as u64);
        self.next += gap;
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_mass_concentrates_at_the_head() {
        let z = Zipf::new(2500, 1.6, 1, "t");
        // The shape that drives the memcached model: hot head, long tail.
        assert!(z.top_mass(160) > 0.80, "top 160 items carry most mass");
        assert!(z.top_mass(2500) > 0.999);
        assert!(z.top_mass(0) == 0.0);
        assert!(z.top_mass(1) > z.top_mass(0));
    }

    #[test]
    fn zipf_sampling_matches_mass() {
        let mut z = Zipf::new(100, 1.2, 2, "t");
        let n = 20_000;
        let mut top10 = 0u64;
        for _ in 0..n {
            if z.sample() < 10 {
                top10 += 1;
            }
        }
        let expected = z.top_mass(10);
        let observed = top10 as f64 / n as f64;
        assert!(
            (observed - expected).abs() < 0.02,
            "observed {observed:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0, 3, "t");
        assert!((z.top_mass(5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn from_rng_forks_independent_children() {
        let mut parent = stream_rng(9, "parent");
        let mut a = Zipf::from_rng(50, 1.0, &mut parent);
        let mut b = Zipf::from_rng(50, 1.0, &mut parent);
        let sa: Vec<u64> = (0..32).map(|_| a.sample()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.sample()).collect();
        assert_ne!(sa, sb, "siblings must not replay each other");

        // Rebuilding from an identical parent replays exactly.
        let mut parent2 = stream_rng(9, "parent");
        let mut a2 = Zipf::from_rng(50, 1.0, &mut parent2);
        let sa2: Vec<u64> = (0..32).map(|_| a2.sample()).collect();
        assert_eq!(sa, sa2);
    }

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut p = PoissonArrivals::new(1_000_000.0, 4, "t"); // 1/µs
        let n = 10_000;
        let mut last = Time::ZERO;
        for _ in 0..n {
            last = p.next_arrival();
        }
        let mean_gap_us = last.as_us() / n as f64;
        assert!(
            (0.9..=1.1).contains(&mean_gap_us),
            "mean gap {mean_gap_us:.3} µs, expected ~1"
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = PoissonArrivals::new(1e9, 5, "t");
        let mut last = Time::ZERO;
        for _ in 0..1000 {
            let t = p.next_arrival();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn poisson_from_rng_is_reproducible() {
        let mut parent = stream_rng(3, "poisson.parent");
        let mut p = PoissonArrivals::from_rng(1e6, &mut parent);
        let seq: Vec<u64> = (0..16).map(|_| p.next_arrival().units()).collect();
        let mut parent2 = stream_rng(3, "poisson.parent");
        let mut p2 = PoissonArrivals::from_rng(1e6, &mut parent2);
        let seq2: Vec<u64> = (0..16).map(|_| p2.next_arrival().units()).collect();
        assert_eq!(seq, seq2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0, 0, "t");
    }
}
