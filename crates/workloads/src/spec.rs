//! Footprint/intensity proxies for the SPEC CPU2006 workloads of Figure 7.
//!
//! The paper runs 437.leslie3d and 470.lbm in LDom0/LDom1 of the dynamic-
//! partitioning demo; their role there is purely to exhibit distinct LLC
//! occupancy and memory-bandwidth signatures. The proxies reproduce the
//! published characteristics:
//!
//! * **437.leslie3d** — a line-sweep fluid-dynamics stencil: moderate
//!   working set with strong reuse (its occupancy curve in Figure 7
//!   plateaus around 1.5–2 MB) and moderate bandwidth.
//! * **470.lbm** — lattice-Boltzmann: a large streaming footprint with
//!   heavy store traffic, occupying whatever cache it is given and
//!   sustaining high bandwidth.

use pard_icn::LAddr;
use pard_sim::Time;

use crate::op::{Op, WorkloadEngine};

/// Proxy for SPEC CPU2006 437.leslie3d: repeated stencil sweeps over a
/// ~1.75 MB working set with compute between accesses.
pub struct Leslie3dProxy {
    base: u64,
    lines: u64,
    cursor: u64,
    step: u8,
}

impl Leslie3dProxy {
    /// Working set of the proxy in bytes.
    pub const WORKING_SET: u64 = 1_792 * 1024;

    /// Creates the proxy with its data at `base`.
    pub fn new(base: u64) -> Self {
        Leslie3dProxy {
            base,
            lines: Self::WORKING_SET / 64,
            cursor: 0,
            step: 0,
        }
    }
}

impl WorkloadEngine for Leslie3dProxy {
    fn name(&self) -> &str {
        "437.leslie3d"
    }

    fn next_op(&mut self, _now: Time) -> Op {
        // Stencil: load centre, load neighbour, store centre, compute.
        let op = match self.step {
            0 => Op::Load {
                addr: LAddr::new(self.base + self.cursor * 64),
                blocking: false,
            },
            1 => {
                let neighbour = (self.cursor + 128) % self.lines;
                Op::Load {
                    addr: LAddr::new(self.base + neighbour * 64),
                    blocking: false,
                }
            }
            2 => Op::Store {
                addr: LAddr::new(self.base + self.cursor * 64),
            },
            _ => Op::Compute(220),
        };
        self.step += 1;
        if self.step == 4 {
            self.step = 0;
            self.cursor = (self.cursor + 1) % self.lines;
        }
        op
    }

    crate::impl_engine_any!();
}

/// Proxy for SPEC CPU2006 470.lbm: streaming over a 24 MB lattice with
/// store-heavy traffic and little compute per element.
pub struct LbmProxy {
    base: u64,
    lines: u64,
    cursor: u64,
    step: u8,
}

impl LbmProxy {
    /// Streaming footprint of the proxy in bytes.
    pub const FOOTPRINT: u64 = 24 * 1024 * 1024;

    /// Creates the proxy with its lattice at `base`.
    pub fn new(base: u64) -> Self {
        LbmProxy {
            base,
            lines: Self::FOOTPRINT / 64,
            cursor: 0,
            step: 0,
        }
    }
}

impl WorkloadEngine for LbmProxy {
    fn name(&self) -> &str {
        "470.lbm"
    }

    fn next_op(&mut self, _now: Time) -> Op {
        // Collide-and-stream: load cell, store cell, store neighbour, brief compute.
        let op = match self.step {
            0 => Op::Load {
                addr: LAddr::new(self.base + self.cursor * 64),
                blocking: false,
            },
            1 => Op::Store {
                addr: LAddr::new(self.base + self.cursor * 64),
            },
            2 => {
                let neighbour = (self.cursor + 512) % self.lines;
                Op::Store {
                    addr: LAddr::new(self.base + neighbour * 64),
                }
            }
            _ => Op::Compute(60),
        };
        self.step += 1;
        if self.step == 4 {
            self.step = 0;
            self.cursor = (self.cursor + 1) % self.lines;
        }
        op
    }

    crate::impl_engine_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addresses(engine: &mut dyn WorkloadEngine, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < n {
            match engine.next_op(Time::ZERO) {
                Op::Load { addr, .. } | Op::Store { addr } => out.push(addr.raw()),
                Op::Compute(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        out
    }

    #[test]
    fn leslie_stays_within_its_working_set() {
        let mut e = Leslie3dProxy::new(0x100_0000);
        for a in addresses(&mut e, 10_000) {
            assert!(a >= 0x100_0000);
            assert!(a < 0x100_0000 + Leslie3dProxy::WORKING_SET);
        }
    }

    #[test]
    fn lbm_covers_a_large_footprint() {
        let mut e = LbmProxy::new(0);
        let addrs = addresses(&mut e, 60_000);
        let max = addrs.iter().max().unwrap();
        assert!(*max >= 1024 * 1024, "footprint too small: {max:#x}");
        assert!(*max < LbmProxy::FOOTPRINT);
    }

    #[test]
    fn lbm_is_store_heavier_than_leslie() {
        fn store_fraction(e: &mut dyn WorkloadEngine) -> f64 {
            let mut loads = 0u32;
            let mut stores = 0u32;
            for _ in 0..4000 {
                match e.next_op(Time::ZERO) {
                    Op::Load { .. } => loads += 1,
                    Op::Store { .. } => stores += 1,
                    _ => {}
                }
            }
            f64::from(stores) / f64::from(loads + stores)
        }
        let mut lbm = LbmProxy::new(0);
        let mut leslie = Leslie3dProxy::new(0);
        assert!(store_fraction(&mut lbm) > store_fraction(&mut leslie));
    }
}
