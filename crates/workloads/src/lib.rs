//! # pard-workloads — the evaluation workloads
//!
//! The paper evaluates PARD with memcached (CloudSuite), SPEC CPU2006
//! workloads (437.leslie3d, 470.lbm), and microbenchmarks (STREAM,
//! CacheFlush, DiskCopy). Since this reproduction cannot boot the real
//! binaries, each workload is a **workload engine**: a state machine that
//! emits a stream of architectural operations ([`Op`]) — compute spans,
//! tagged loads/stores, disk requests — which the simulated cores execute
//! against the real cache/memory/I/O models.
//!
//! Engine fidelity targets (documented per engine):
//!
//! * [`Memcached`] — closed-loop request server with Poisson arrivals and
//!   Zipf-popular items; service time emerges from the memory system, so
//!   LLC contention translates into tail-latency exactly as in Figure 8.
//! * [`Stream`] — the STREAM triad: sequential load/load/store sweeps over
//!   arrays far larger than the LLC.
//! * [`CacheFlush`] — writes every line of a buffer larger than the LLC in
//!   a loop (the paper's LLC-thrashing microbenchmark of Figure 7).
//! * [`Leslie3dProxy`] / [`LbmProxy`] — footprint/intensity proxies for the
//!   two SPEC workloads of Figure 7.
//! * [`DiskCopy`] — `dd if=/dev/zero of=/dev/sdb bs=32M count=16`
//!   (Figure 10).
//! * [`BootThen`] — wraps any engine with an "OS boot" warm-up phase, for
//!   the Figure 7 launch timeline.
//! * [`TimeShared`] — a round-robin OS-scheduler model that retags the
//!   core per process and parks blocked processes off the rotation,
//!   implementing the paper's "process-level DiffServ" open problem (§10).
//!
//! For the rack-scale fleet experiment, [`RateProfile`] /
//! [`ModulatedArrivals`] model diurnal + flash-crowd tenant traffic, and
//! [`Memcached::with_arrivals`] runs the server against such a source with
//! a load-balancer dispatch scale.
//!
//! # Paper mapping
//!
//! These engines are the workload substitutions of PAPER.md §1 (gem5 +
//! real binaries → parameterised state machines): each row of that table
//! explains why the proxy preserves the behaviour its figure measures,
//! and DESIGN.md §5 records the one-time calibration. The engines drive
//! every experiment in EXPERIMENTS.md, including the fault-recovery
//! figure (`fig_fault`), whose three LDoms run [`Leslie3dProxy`],
//! [`LbmProxy`], and [`DiskCopy`] concurrently.

#![warn(missing_docs)]

mod arrivals;
mod boot;
mod cacheflush;
mod chase;
mod diskcopy;
mod factory;
mod generators;
mod memcached;
mod op;
mod spec;
mod stream;
mod timeshare;

pub use arrivals::{ArrivalSource, FlashCrowd, ModulatedArrivals, RateProfile, NEVER};
pub use boot::BootThen;
pub use cacheflush::CacheFlush;
pub use chase::PointerChase;
pub use diskcopy::{DiskCopy, DiskCopyConfig};
pub use factory::{by_name, known_workloads};
pub use generators::{PoissonArrivals, Zipf};
pub use memcached::{Memcached, MemcachedConfig, MemcachedReport};
pub use op::{Op, WorkloadEngine};
pub use spec::{LbmProxy, Leslie3dProxy};
pub use stream::{Stream, StreamConfig};
pub use timeshare::TimeShared;
