//! The "boot OS, then run the application" wrapper of Figure 7.

use pard_icn::LAddr;
use pard_sim::Time;

use crate::op::{Op, WorkloadEngine};

/// Phase of a [`BootThen`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BootPhase {
    Booting,
    Running,
}

/// Wraps an application engine with an OS-boot warm-up phase.
///
/// Figure 7's timeline shows each LDom booting Linux ("Boot OS" →
/// "Bash Ready") before its application starts. The boot phase is modelled
/// as a mix of compute and scattered kernel-image/page-table accesses over
/// a 48 MB range, lasting for the configured duration *from the engine's
/// first operation* — so three LDoms launched at different times each show
/// a boot ramp followed by the application signature, as in the figure.
pub struct BootThen {
    phase: BootPhase,
    boot_duration: Time,
    started_at: Option<Time>,
    cursor: u64,
    step: u8,
    inner: Box<dyn WorkloadEngine>,
}

impl BootThen {
    /// Wraps `inner` with a boot phase of `boot_duration`.
    pub fn new(boot_duration: Time, inner: Box<dyn WorkloadEngine>) -> Self {
        BootThen {
            phase: BootPhase::Booting,
            boot_duration,
            started_at: None,
            cursor: 0,
            step: 0,
            inner,
        }
    }

    /// Whether the boot phase has finished ("Bash Ready").
    pub fn is_booted(&self) -> bool {
        self.phase == BootPhase::Running
    }

    /// Access to the wrapped application engine.
    pub fn inner(&self) -> &dyn WorkloadEngine {
        self.inner.as_ref()
    }

    /// Mutable access to the wrapped application engine.
    pub fn inner_mut(&mut self) -> &mut dyn WorkloadEngine {
        self.inner.as_mut()
    }
}

impl WorkloadEngine for BootThen {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_op(&mut self, now: Time) -> Op {
        if self.phase == BootPhase::Running {
            return self.inner.next_op(now);
        }
        let started = *self.started_at.get_or_insert(now);
        if now >= started + self.boot_duration {
            self.phase = BootPhase::Running;
            return self.inner.next_op(now);
        }
        // Kernel bring-up: sparse strided touches + decompress-ish compute.
        let op = if self.step < 2 {
            let addr = (self.cursor * 4096 + u64::from(self.step) * 64) % (48 * 1024 * 1024);
            Op::Load {
                addr: LAddr::new(addr),
                blocking: false,
            }
        } else {
            Op::Compute(4_000)
        };
        self.step += 1;
        if self.step == 3 {
            self.step = 0;
            self.cursor += 1;
        }
        op
    }

    crate::impl_engine_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cacheflush::CacheFlush;

    #[test]
    fn boots_then_hands_over() {
        let mut e = BootThen::new(
            Time::from_us(100),
            Box::new(CacheFlush::new(0x9000_0000, 128)),
        );
        assert!(!e.is_booted());
        // During boot: no stores at the app's address.
        let op = e.next_op(Time::ZERO);
        assert!(matches!(op, Op::Load { .. }));
        // After the boot duration elapses, the inner engine takes over.
        let op = e.next_op(Time::from_us(200));
        assert!(e.is_booted());
        match op {
            Op::Store { addr } => assert_eq!(addr.raw(), 0x9000_0000),
            other => panic!("expected inner store, got {other:?}"),
        }
        assert_eq!(e.name(), "cacheflush");
    }

    #[test]
    fn boot_clock_starts_at_first_op() {
        let mut e = BootThen::new(Time::from_us(100), Box::new(CacheFlush::new(0, 128)));
        // First op at t = 1 ms: boot runs until 1 ms + 100 µs.
        e.next_op(Time::from_ms(1));
        e.next_op(Time::from_ms(1) + Time::from_us(50));
        assert!(!e.is_booted());
        e.next_op(Time::from_ms(1) + Time::from_us(101));
        assert!(e.is_booted());
    }

    #[test]
    fn inner_access() {
        let mut e = BootThen::new(Time::ZERO, Box::new(CacheFlush::new(0, 128)));
        e.next_op(Time::ZERO);
        assert!(e.inner().as_any().downcast_ref::<CacheFlush>().is_some());
        assert!(e
            .inner_mut()
            .as_any_mut()
            .downcast_mut::<CacheFlush>()
            .is_some());
    }
}
