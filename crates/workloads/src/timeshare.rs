//! Process-level time sharing on one core (the paper's §10 open problem).

use pard_sim::Time;

use crate::op::{Op, WorkloadEngine};

/// One scheduled "process": an engine plus the DS-id its traffic carries.
struct Slot {
    ds: u16,
    engine: Box<dyn WorkloadEngine>,
    halted: bool,
    /// `Some(t)`: blocked until simulated time `t` (the engine returned
    /// [`Op::IdleUntil`] into the future); the scheduler skips the slot
    /// without burning its slice.
    wake: Option<Time>,
}

/// A round-robin OS scheduler model: time-shares several workload engines
/// on one core, writing the core's **DS-id tag register on every context
/// switch** (via [`Op::SetTag`]).
///
/// This demonstrates the paper's "process-level DiffServ" open problem:
/// with the OS loading the tag register per process, the shared-resource
/// control planes differentiate *processes* of one core exactly as they
/// differentiate LDoms — per-process LLC way masks, memory priorities,
/// and statistics, with no other hardware change.
///
/// Scheduling model: fixed time slices; a context switch costs
/// `switch_cycles` of compute plus the tag-register write. Engines that
/// [`Op::Halt`] drop out of the rotation; when all have halted the
/// combinator halts.
///
/// Blocking: an engine returning [`Op::IdleUntil`] into the future is
/// *blocked*, not scheduled — the core rotates to the next runnable
/// process instead of idling, exactly like an OS parking a process on a
/// timer. The core only truly idles (forwards `IdleUntil` of the earliest
/// wake) when every process is blocked. This is what lets many mostly-idle
/// tenants share one core in the fleet's consolidation experiment.
pub struct TimeShared {
    slots: Vec<Slot>,
    slice: Time,
    switch_cycles: u64,
    active: usize,
    slice_end: Time,
    started: bool,
    switches: u64,
}

impl TimeShared {
    /// Creates a scheduler over `(ds_id, engine)` pairs with the given
    /// time slice.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or the slice is zero.
    pub fn new(processes: Vec<(u16, Box<dyn WorkloadEngine>)>, slice: Time) -> Self {
        assert!(!processes.is_empty(), "need at least one process");
        assert!(slice > Time::ZERO, "slice must be non-zero");
        TimeShared {
            slots: processes
                .into_iter()
                .map(|(ds, engine)| Slot {
                    ds,
                    engine,
                    halted: false,
                    wake: None,
                })
                .collect(),
            slice,
            switch_cycles: 4_000, // ~2 µs of kernel scheduling work
            active: 0,
            slice_end: Time::ZERO,
            started: false,
            switches: 0,
        }
    }

    /// Context switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The DS-id currently on the core.
    pub fn current_ds(&self) -> u16 {
        self.slots[self.active].ds
    }

    /// Appends a process to the rotation (fleet migration: admitting a
    /// tenant onto this core).
    pub fn add_process(&mut self, ds: u16, engine: Box<dyn WorkloadEngine>) {
        self.slots.push(Slot {
            ds,
            engine,
            halted: false,
            wake: None,
        });
    }

    /// Permanently removes `ds` from the rotation (fleet migration: the
    /// source machine retiring a drained tenant). Returns whether a live
    /// process carried that DS-id.
    pub fn retire(&mut self, ds: u16) -> bool {
        let mut found = false;
        for s in &mut self.slots {
            if s.ds == ds && !s.halted {
                s.halted = true;
                s.wake = None;
                found = true;
            }
        }
        found
    }

    /// Runs `f` against the live engine scheduled under `ds`, downcast to
    /// `T`. Returns `None` when no live slot carries `ds` or its engine is
    /// not a `T`. The slot's wake timer is cleared: external mutation (a
    /// re-shard changing the arrival scale) may have made it runnable.
    pub fn with_engine_of<T: 'static, R>(
        &mut self,
        ds: u16,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let slot = self.slots.iter_mut().find(|s| s.ds == ds && !s.halted)?;
        let engine = slot.engine.as_any_mut().downcast_mut::<T>()?;
        let r = f(engine);
        slot.wake = None;
        Some(r)
    }

    fn next_runnable(&self, from: usize) -> Option<usize> {
        let n = self.slots.len();
        (1..=n)
            .map(|k| (from + k) % n)
            .find(|&i| !self.slots[i].halted && self.slots[i].wake.is_none())
    }

    fn clear_expired_wakes(&mut self, now: Time) {
        for s in &mut self.slots {
            if matches!(s.wake, Some(w) if w <= now) {
                s.wake = None;
            }
        }
    }
}

impl WorkloadEngine for TimeShared {
    fn name(&self) -> &str {
        "timeshared"
    }

    fn next_op(&mut self, now: Time) -> Op {
        if !self.started {
            // First dispatch: load the first process's tag.
            self.started = true;
            self.slice_end = now + self.slice;
            return Op::SetTag(self.slots[self.active].ds);
        }

        self.clear_expired_wakes(now);

        if self.slots.iter().all(|s| s.halted) {
            return Op::Halt;
        }

        // Preemption point: slice expired or current process halted/blocked.
        let cur = &self.slots[self.active];
        if now >= self.slice_end || cur.halted || cur.wake.is_some() {
            match self.next_runnable(self.active) {
                Some(next) => {
                    let switching_process = next != self.active;
                    self.active = next;
                    self.slice_end = now + self.slice;
                    if switching_process {
                        self.switches += 1;
                        return Op::SetTag(self.slots[self.active].ds);
                    }
                    // Sole runnable process: charge the timer tick only.
                    return Op::Compute(self.switch_cycles / 4);
                }
                None => {
                    // Every live process is blocked: the core truly idles
                    // until the earliest wake.
                    return match self
                        .slots
                        .iter()
                        .filter(|s| !s.halted)
                        .filter_map(|s| s.wake)
                        .min()
                    {
                        Some(w) => Op::IdleUntil(w),
                        None => Op::Halt,
                    };
                }
            }
        }

        let slot = &mut self.slots[self.active];
        match slot.engine.next_op(now) {
            Op::Halt => {
                slot.halted = true;
                // Recurse to pick the next process (bounded: one level).
                self.next_op(now)
            }
            Op::IdleUntil(t) if t > now => {
                // The process parks on a timer: block it and rotate
                // instead of idling the whole core (bounded recursion —
                // the blocked slot cannot be re-picked this call).
                slot.wake = Some(t);
                self.next_op(now)
            }
            op => op,
        }
    }

    crate::impl_engine_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cacheflush::CacheFlush;
    use crate::diskcopy::{DiskCopy, DiskCopyConfig};
    use pard_icn::DiskKind;

    fn drive(e: &mut TimeShared, until: Time) -> Vec<(u16, u64)> {
        // Returns (tag, ops-under-that-tag) segments.
        let mut now = Time::ZERO;
        let mut segments: Vec<(u16, u64)> = Vec::new();
        let mut tag = u16::MAX;
        while now < until {
            match e.next_op(now) {
                Op::SetTag(t) => {
                    tag = t;
                    segments.push((t, 0));
                    now += Time::from_ns(50);
                }
                Op::Halt => break,
                Op::Compute(c) => now += Time::from_units(c * 2),
                Op::IdleUntil(t) => now = now.max(t),
                _ => {
                    if let Some(last) = segments.last_mut() {
                        last.1 += 1;
                    }
                    assert_ne!(tag, u16::MAX, "ops before first dispatch");
                    now += Time::from_ns(10);
                }
            }
        }
        segments
    }

    #[test]
    fn round_robin_alternates_tags() {
        let mut e = TimeShared::new(
            vec![
                (1, Box::new(CacheFlush::new(0, 4096))),
                (2, Box::new(CacheFlush::new(0, 4096))),
            ],
            Time::from_us(50),
        );
        let segments = drive(&mut e, Time::from_ms(1));
        assert!(segments.len() >= 4, "several slices: {segments:?}");
        // Tags alternate 1, 2, 1, 2...
        for pair in segments.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "adjacent slices differ");
        }
        // Both processes made progress.
        let ops1: u64 = segments.iter().filter(|s| s.0 == 1).map(|s| s.1).sum();
        let ops2: u64 = segments.iter().filter(|s| s.0 == 2).map(|s| s.1).sum();
        assert!(ops1 > 100 && ops2 > 100);
        assert!(e.switches() >= 3);
    }

    #[test]
    fn halted_processes_leave_the_rotation() {
        // Process 1 halts quickly (a one-block DiskCopy never completes
        // without a disk, so use count 0 which halts immediately).
        let quick = DiskCopy::new(DiskCopyConfig {
            count: 0,
            ..DiskCopyConfig::default()
        });
        let mut e = TimeShared::new(
            vec![
                (1, Box::new(quick)),
                (2, Box::new(CacheFlush::new(0, 4096))),
            ],
            Time::from_us(20),
        );
        let segments = drive(&mut e, Time::from_ms(1));
        // Process 1 halts immediately; the rotation collapses to process 2
        // and never switches back.
        assert_eq!(segments.last().unwrap().0, 2, "{segments:?}");
        let ops1: u64 = segments.iter().filter(|s| s.0 == 1).map(|s| s.1).sum();
        let ops2: u64 = segments.iter().filter(|s| s.0 == 2).map(|s| s.1).sum();
        assert_eq!(ops1, 0, "halted process issued work: {segments:?}");
        assert!(ops2 > 1000);
    }

    #[test]
    fn all_halted_halts_the_combinator() {
        let done = || {
            Box::new(DiskCopy::new(DiskCopyConfig {
                count: 0,
                kind: DiskKind::Write,
                ..DiskCopyConfig::default()
            })) as Box<dyn WorkloadEngine>
        };
        let mut e = TimeShared::new(vec![(1, done()), (2, done())], Time::from_us(10));
        let mut now = Time::ZERO;
        let mut halted = false;
        for _ in 0..50 {
            match e.next_op(now) {
                Op::Halt => {
                    halted = true;
                    break;
                }
                Op::Compute(c) => now += Time::from_units(c * 2),
                _ => now += Time::from_ns(10),
            }
        }
        assert!(halted);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_schedule_panics() {
        let _ = TimeShared::new(vec![], Time::from_us(10));
    }
}
