//! A pointer-chasing latency microbenchmark.

use pard_icn::LAddr;
use pard_sim::rng::splitmix64;
use pard_sim::stats::OnlineStats;
use pard_sim::Time;

use crate::op::{Op, WorkloadEngine};

/// Dependent-load pointer chasing over a large region: every load's
/// address derives from the previous one, so each load exposes the full
/// memory latency (no overlap). The classic measurement workload for
/// end-to-end load latency — and therefore the cleanest way to observe
/// PARD's memory-priority DiffServ from software.
///
/// The engine measures its own per-load latency from the timestamps the
/// core hands it ([`PointerChase::mean_load_latency`]).
pub struct PointerChase {
    base: u64,
    lines: u64,
    state: u64,
    pending: Option<LAddr>,
    last_issue: Option<Time>,
    latency: OnlineStats,
    loads: u64,
    compute_between: u64,
}

impl PointerChase {
    /// Creates a chaser over `region_bytes` at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one line.
    pub fn new(base: u64, region_bytes: u64, seed: u64) -> Self {
        assert!(region_bytes >= 64, "region must hold at least one line");
        PointerChase {
            base,
            lines: region_bytes / 64,
            state: splitmix64(seed | 1),
            pending: None,
            last_issue: None,
            latency: OnlineStats::new(),
            loads: 0,
            compute_between: 0,
        }
    }

    /// Adds fixed compute between loads (duty-cycle control).
    pub fn with_compute(mut self, cycles: u64) -> Self {
        self.compute_between = cycles;
        self
    }

    /// Loads completed.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Mean end-to-end load latency observed so far.
    pub fn mean_load_latency(&self) -> Time {
        Time::from_units(self.latency.mean() as u64)
    }

    /// Population standard deviation of the load latency.
    pub fn latency_std_dev_ns(&self) -> f64 {
        self.latency.std_dev() / Time::UNITS_PER_NS as f64
    }
}

impl WorkloadEngine for PointerChase {
    fn name(&self) -> &str {
        "pointer-chase"
    }

    fn next_op(&mut self, now: Time) -> Op {
        if let Some(issued) = self.last_issue.take() {
            // The previous blocking load just completed.
            self.latency.record((now - issued).units() as f64);
            self.loads += 1;
            if self.compute_between > 0 {
                // Emit the inter-load compute before the next pointer.
                self.state = splitmix64(self.state);
                let line = self.state % self.lines;
                let addr = LAddr::new(self.base + line * 64);
                // Schedule: compute now, load next call.
                self.pending = Some(addr);
                return Op::Compute(self.compute_between);
            }
        }
        if let Some(addr) = self.pending.take() {
            self.last_issue = Some(now);
            return Op::Load {
                addr,
                blocking: true,
            };
        }
        self.state = splitmix64(self.state);
        let line = self.state % self.lines;
        self.last_issue = Some(now);
        Op::Load {
            addr: LAddr::new(self.base + line * 64),
            blocking: true,
        }
    }

    crate::impl_engine_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(e: &mut PointerChase, n: usize, latency: Time) {
        let mut now = Time::ZERO;
        let mut issued = 0;
        while issued < n {
            match e.next_op(now) {
                Op::Load { blocking, .. } => {
                    assert!(blocking);
                    issued += 1;
                    now += latency;
                }
                Op::Compute(c) => now += Time::from_units(c * 2),
                other => panic!("unexpected {other:?}"),
            }
        }
        // One more call records the final load's completion.
        let _ = e.next_op(now);
    }

    #[test]
    fn measures_the_load_latency_it_sees() {
        let mut e = PointerChase::new(0, 1 << 20, 7);
        drive(&mut e, 100, Time::from_ns(150));
        assert_eq!(e.loads(), 100);
        let mean = e.mean_load_latency();
        assert_eq!(mean, Time::from_ns(150));
        assert_eq!(e.latency_std_dev_ns(), 0.0);
    }

    #[test]
    fn compute_between_loads_does_not_pollute_the_measurement() {
        let mut e = PointerChase::new(0, 1 << 20, 7).with_compute(1_000);
        drive(&mut e, 50, Time::from_ns(200));
        assert_eq!(e.mean_load_latency(), Time::from_ns(200));
    }

    #[test]
    fn addresses_stay_in_region_and_vary() {
        let mut e = PointerChase::new(0x1000, 64 * 64, 9);
        let mut seen = std::collections::HashSet::new();
        let mut now = Time::ZERO;
        for _ in 0..200 {
            if let Op::Load { addr, .. } = e.next_op(now) {
                assert!(addr.raw() >= 0x1000);
                assert!(addr.raw() < 0x1000 + 64 * 64);
                assert!(addr.is_line_aligned());
                seen.insert(addr.raw());
            }
            now += Time::from_ns(100);
        }
        assert!(
            seen.len() > 16,
            "walk must visit many lines: {}",
            seen.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn tiny_region_panics() {
        let _ = PointerChase::new(0, 32, 1);
    }
}
