//! The STREAM triad microbenchmark.

use pard_icn::LAddr;
use pard_sim::Time;

use crate::op::{Op, WorkloadEngine};

/// Configuration of the [`Stream`] engine.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Size of each of the three arrays in bytes.
    pub array_bytes: u64,
    /// Base address of the first array (the other two follow contiguously).
    pub base: u64,
    /// Compute cycles per 64-byte block (the triad multiply-adds).
    pub compute_per_block: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            array_bytes: 16 * 1024 * 1024,
            base: 0x1000_0000,
            compute_per_block: 16,
        }
    }
}

/// STREAM triad: `c[i] = a[i] + s * b[i]` swept repeatedly over arrays far
/// larger than the LLC.
///
/// Per 64-byte block the engine emits two non-blocking loads (the `a` and
/// `b` lines), one store (the `c` line), and a small compute span —
/// exactly the memory shape of the real kernel. The arrays are re-swept
/// forever, continuously evicting other LDoms' LLC blocks (the
/// interference source of Figures 8 and 9).
pub struct Stream {
    cfg: StreamConfig,
    block: u64,
    blocks_per_array: u64,
    step: u8,
    sweeps: u64,
}

impl Stream {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if the array size is not a multiple of 64 bytes or is empty.
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(
            cfg.array_bytes >= 64 && cfg.array_bytes.is_multiple_of(64),
            "array size must be a non-zero multiple of the line size"
        );
        Stream {
            blocks_per_array: cfg.array_bytes / 64,
            block: 0,
            step: 0,
            sweeps: 0,
            cfg,
        }
    }

    /// Completed full sweeps over the arrays.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    fn addr(&self, array: u64) -> LAddr {
        LAddr::new(self.cfg.base + array * self.cfg.array_bytes + self.block * 64)
    }
}

impl WorkloadEngine for Stream {
    fn name(&self) -> &str {
        "stream"
    }

    fn next_op(&mut self, _now: Time) -> Op {
        let op = match self.step {
            0 => Op::Load {
                addr: self.addr(0),
                blocking: false,
            },
            1 => Op::Load {
                addr: self.addr(1),
                blocking: false,
            },
            2 => Op::Store { addr: self.addr(2) },
            _ => Op::Compute(self.cfg.compute_per_block),
        };
        self.step += 1;
        if self.step == 4 {
            self.step = 0;
            self.block += 1;
            if self.block == self.blocks_per_array {
                self.block = 0;
                self.sweeps += 1;
            }
        }
        op
    }

    crate::impl_engine_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_pattern_repeats() {
        let mut s = Stream::new(StreamConfig {
            array_bytes: 128,
            base: 0,
            compute_per_block: 4,
        });
        // Block 0: load a[0], load b[0], store c[0], compute.
        assert_eq!(
            s.next_op(Time::ZERO),
            Op::Load {
                addr: LAddr::new(0),
                blocking: false
            }
        );
        assert_eq!(
            s.next_op(Time::ZERO),
            Op::Load {
                addr: LAddr::new(128),
                blocking: false
            }
        );
        assert_eq!(
            s.next_op(Time::ZERO),
            Op::Store {
                addr: LAddr::new(256)
            }
        );
        assert_eq!(s.next_op(Time::ZERO), Op::Compute(4));
        // Block 1 advances by one line.
        assert_eq!(
            s.next_op(Time::ZERO),
            Op::Load {
                addr: LAddr::new(64),
                blocking: false
            }
        );
    }

    #[test]
    fn sweeps_wrap_around() {
        let mut s = Stream::new(StreamConfig {
            array_bytes: 128,
            base: 0,
            compute_per_block: 1,
        });
        for _ in 0..8 {
            s.next_op(Time::ZERO);
        }
        assert_eq!(s.sweeps(), 1);
        // After wrapping we are back at block 0.
        assert_eq!(
            s.next_op(Time::ZERO),
            Op::Load {
                addr: LAddr::new(0),
                blocking: false
            }
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the line size")]
    fn unaligned_array_panics() {
        let _ = Stream::new(StreamConfig {
            array_bytes: 100,
            base: 0,
            compute_per_block: 1,
        });
    }
}
