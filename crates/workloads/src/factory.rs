//! A by-name workload factory for harnesses and shells.

use pard_sim::Time;

use crate::boot::BootThen;
use crate::cacheflush::CacheFlush;
use crate::diskcopy::{DiskCopy, DiskCopyConfig};
use crate::memcached::{Memcached, MemcachedConfig};
use crate::op::WorkloadEngine;
use crate::spec::{LbmProxy, Leslie3dProxy};
use crate::stream::{Stream, StreamConfig};

/// Builds a workload engine from a name, with sensible defaults — the
/// vocabulary experiment harnesses and operator tooling use.
///
/// Recognised names (case-insensitive):
/// `stream`, `cacheflush`, `leslie3d` (or `437.leslie3d`), `lbm`
/// (or `470.lbm`), `diskcopy` (or `dd`), `memcached`. Prefixing a name
/// with `boot+` wraps it in a 200 ms OS-boot phase (Figure 7 style).
///
/// Returns `None` for unknown names.
///
/// # Example
///
/// ```
/// let engine = pard_workloads::by_name("boot+470.lbm").expect("known workload");
/// assert_eq!(engine.name(), "470.lbm");
/// assert!(pard_workloads::by_name("nfs-server").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Box<dyn WorkloadEngine>> {
    let lower = name.to_ascii_lowercase();
    if let Some(inner) = lower.strip_prefix("boot+") {
        return by_name(inner).map(|engine| {
            Box::new(BootThen::new(Time::from_ms(200), engine)) as Box<dyn WorkloadEngine>
        });
    }
    // Workload data regions default to 16 MiB into the LDom, clear of the
    // memcached model's metadata/buffer regions.
    const BASE: u64 = 0x0100_0000;
    Some(match lower.as_str() {
        "stream" => Box::new(Stream::new(StreamConfig {
            base: BASE,
            ..StreamConfig::default()
        })),
        "cacheflush" => Box::new(CacheFlush::new(BASE, 8 << 20)),
        "leslie3d" | "437.leslie3d" => Box::new(Leslie3dProxy::new(BASE)),
        "lbm" | "470.lbm" => Box::new(LbmProxy::new(BASE)),
        "diskcopy" | "dd" => Box::new(DiskCopy::new(DiskCopyConfig::default())),
        "memcached" => Box::new(Memcached::new(MemcachedConfig::default())),
        _ => return None,
    })
}

/// The names [`by_name`] recognises (canonical forms).
pub fn known_workloads() -> &'static [&'static str] {
    &[
        "stream",
        "cacheflush",
        "leslie3d",
        "lbm",
        "diskcopy",
        "memcached",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn every_known_name_builds_and_runs() {
        for &name in known_workloads() {
            let mut e = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            // Must produce an op without panicking.
            let op = e.next_op(Time::ZERO);
            assert!(!matches!(op, Op::Halt), "{name} halted immediately");
        }
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(by_name("437.LESLIE3D").unwrap().name(), "437.leslie3d");
        assert_eq!(by_name("dd").unwrap().name(), "diskcopy");
    }

    #[test]
    fn boot_prefix_wraps() {
        let e = by_name("boot+stream").unwrap();
        assert_eq!(e.name(), "stream");
        assert!(e.as_any().downcast_ref::<BootThen>().is_some());
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(by_name("").is_none());
        assert!(by_name("boot+").is_none());
        assert!(by_name("quake3").is_none());
    }
}
