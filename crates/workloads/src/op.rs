//! The operation vocabulary emitted by workload engines.

use std::any::Any;

use pard_icn::{DiskKind, LAddr};
use pard_sim::Time;

/// One architectural operation for a simulated core to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Pure computation for the given number of CPU cycles.
    Compute(u64),
    /// A data load. `blocking` loads stall the core until the data
    /// returns (pointer chases, dependent reads); non-blocking loads are
    /// issued up to the core's memory-level parallelism (streaming).
    Load {
        /// LDom-physical address.
        addr: LAddr,
        /// Whether the core must wait for this load before continuing.
        blocking: bool,
    },
    /// A data store (write-allocate; completes from the core's view
    /// immediately, the memory system handles the dirty data).
    Store {
        /// LDom-physical address.
        addr: LAddr,
    },
    /// Sleep until the given absolute time (request pacing, think time).
    IdleUntil(Time),
    /// A disk transfer; the core blocks until the completion interrupt.
    Disk {
        /// Target disk.
        disk: u8,
        /// Transfer direction.
        kind: DiskKind,
        /// DMA buffer base (LDom-physical).
        buffer: LAddr,
        /// Transfer length in bytes.
        bytes: u64,
    },
    /// Loads the core's DS-id tag register — what a PARD-aware OS
    /// scheduler does on a context switch, enabling **process-level
    /// DiffServ** (one of the paper's §10 open problems): two processes on
    /// one core carry different DS-ids, so the shared-resource control
    /// planes differentiate them individually.
    SetTag(u16),
    /// The workload is finished; the core goes idle permanently.
    Halt,
}

/// A workload: a state machine emitting [`Op`]s.
///
/// The core calls [`next_op`](WorkloadEngine::next_op) whenever it is ready
/// to issue the next operation; `now` is the core's current (virtual)
/// time. Because blocking operations are executed strictly in order, an
/// engine observes the *completion* time of its previous blocking op as
/// the `now` of the following `next_op` call — which is how the memcached
/// engine measures response times without extra plumbing.
///
/// `Send` is required because the core hosting an engine may be moved to a
/// partitioned-kernel worker thread; only one thread drives an engine at a
/// time.
pub trait WorkloadEngine: Send + 'static {
    /// Engine name for diagnostics.
    fn name(&self) -> &str;

    /// Produces the next operation.
    fn next_op(&mut self, now: Time) -> Op;

    /// Upcast for harness-side downcasting (reading engine reports).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements the [`Any`] plumbing of [`WorkloadEngine`].
#[macro_export]
macro_rules! impl_engine_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Vec<Op>);
    impl WorkloadEngine for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn next_op(&mut self, _now: Time) -> Op {
            self.0.pop().unwrap_or(Op::Halt)
        }
        crate::impl_engine_any!();
    }

    #[test]
    fn engines_are_downcastable() {
        let mut e: Box<dyn WorkloadEngine> = Box::new(Fixed(vec![Op::Compute(1)]));
        assert_eq!(e.next_op(Time::ZERO), Op::Compute(1));
        assert_eq!(e.next_op(Time::ZERO), Op::Halt);
        assert!(e.as_any().downcast_ref::<Fixed>().is_some());
        assert!(e.as_any_mut().downcast_mut::<Fixed>().is_some());
    }

    #[test]
    fn ops_are_compact() {
        assert!(std::mem::size_of::<Op>() <= 32);
    }
}
