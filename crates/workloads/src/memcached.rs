//! The memcached server model.

use pard_icn::LAddr;
use pard_sim::stats::LatencySample;
use pard_sim::Time;

use crate::arrivals::ArrivalSource;
use crate::generators::{PoissonArrivals, Zipf};
use crate::op::{Op, WorkloadEngine};

/// Configuration of the [`Memcached`] engine.
///
/// The paper runs memcached and its load client in one LDom sharing a CPU
/// core (§7.1.2), so this engine models the *pair*: Poisson request
/// arrivals, per-request client + server compute, and the server's memory
/// traffic over a Zipf-popular value store. Service time is **not** a
/// parameter — it emerges from the memory system, which is exactly what
/// makes LLC contention show up as tail latency (Figure 8).
#[derive(Debug, Clone)]
pub struct MemcachedConfig {
    /// Offered load in requests per second.
    pub rps: f64,
    /// Number of items in the value store.
    pub items: u64,
    /// Zipf popularity exponent.
    pub zipf_s: f64,
    /// Cache lines read per item access (the value payload).
    pub value_lines: u64,
    /// Hash-table / connection-metadata loads per request.
    pub meta_loads: u64,
    /// Client-side compute per request, in cycles (request generation,
    /// socket handling).
    pub client_compute: u64,
    /// Server-side hash/dispatch compute per request, in cycles.
    pub hash_compute: u64,
    /// Server-side response compute per request, in cycles.
    pub resp_compute: u64,
    /// Base LDom-physical address of the value store.
    pub store_base: u64,
    /// Base of the metadata region.
    pub meta_base: u64,
    /// Size of the metadata region in bytes.
    pub meta_bytes: u64,
    /// Socket/kernel buffer stores per request (response assembly and
    /// network-stack traffic). These cycle through a ring larger than the
    /// L1 but much smaller than the LLC, which keeps the L1 from
    /// unrealistically pinning hot values across requests.
    pub buffer_lines: u64,
    /// Base of the buffer ring.
    pub buffer_base: u64,
    /// Size of the buffer ring in bytes.
    pub buffer_ring_bytes: u64,
    /// Samples recorded before this time are discarded (warm-up).
    pub warmup: Time,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for MemcachedConfig {
    fn default() -> Self {
        MemcachedConfig {
            rps: 20_000.0,
            items: 2_500,
            zipf_s: 1.6,
            value_lines: 240,
            meta_loads: 20,
            client_compute: 28_000,
            hash_compute: 10_000,
            resp_compute: 32_000,
            store_base: 0x0400_0000, // 64 MiB in
            meta_base: 0x0200_0000,  // 32 MiB in
            meta_bytes: 2 * 1024 * 1024,
            buffer_lines: 192,
            buffer_base: 0x0100_0000, // 16 MiB in
            buffer_ring_bytes: 128 * 1024,
            warmup: Time::from_ms(20),
            seed: 1,
        }
    }
}

/// Summary of a memcached run.
#[derive(Debug, Clone)]
pub struct MemcachedReport {
    /// Requests completed after warm-up.
    pub completed: u64,
    /// Mean response time.
    pub mean: Time,
    /// 95th-percentile response time (the paper's tail metric).
    pub p95: Time,
    /// 99th-percentile response time.
    pub p99: Time,
    /// Maximum response time.
    pub max: Time,
    /// Achieved throughput in requests/second over the measured span.
    pub achieved_rps: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the next request's arrival time.
    Idle,
    /// Client-side request generation.
    Client,
    /// Server hash + dispatch.
    Hash,
    /// Metadata loads remaining.
    Meta(u64),
    /// Value lines remaining for the current item.
    Value(u64),
    /// Buffer stores remaining (socket/kernel traffic).
    Buffer(u64),
    /// Response construction; `next_op` after this records the sojourn.
    Resp,
}

/// The memcached workload engine. See [`MemcachedConfig`].
pub struct Memcached {
    cfg: MemcachedConfig,
    arrivals: ArrivalSource,
    zipf: Zipf,
    meta_rng: Zipf,
    phase: Phase,
    current_arrival: Time,
    next_arrival: Time,
    item_base: u64,
    item_bytes: u64,
    buffer_cursor: u64,
    sojourns: LatencySample,
    completed: u64,
    first_sample_at: Time,
    last_sample_at: Time,
}

impl Memcached {
    /// Creates the engine with the classic fixed-rate Poisson arrivals at
    /// `cfg.rps`.
    pub fn new(cfg: MemcachedConfig) -> Self {
        let arrivals =
            ArrivalSource::Poisson(PoissonArrivals::new(cfg.rps, cfg.seed, "memcached.arrivals"));
        Self::with_arrivals(cfg, arrivals)
    }

    /// Creates the engine over an explicit arrival source (the fleet uses
    /// diurnal/flash-crowd [`ArrivalSource::Modulated`] processes here;
    /// `cfg.rps` is then ignored in favour of the source's rate profile).
    pub fn with_arrivals(cfg: MemcachedConfig, mut arrivals: ArrivalSource) -> Self {
        let next_arrival = arrivals.next_arrival();
        let item_bytes = cfg.value_lines * 64;
        Memcached {
            zipf: Zipf::new(cfg.items, cfg.zipf_s, cfg.seed, "memcached.items"),
            meta_rng: Zipf::new(cfg.meta_bytes / 64, 0.0, cfg.seed, "memcached.meta"),
            arrivals,
            phase: Phase::Idle,
            current_arrival: Time::ZERO,
            next_arrival,
            item_base: 0,
            item_bytes,
            buffer_cursor: 0,
            sojourns: LatencySample::new(),
            completed: 0,
            first_sample_at: Time::ZERO,
            last_sample_at: Time::ZERO,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemcachedConfig {
        &self.cfg
    }

    /// Sets the dispatch scale on the arrival source (the load balancer's
    /// traffic share for this replica). Scaling up a fully drained replica
    /// re-draws the parked arrival so the engine wakes.
    ///
    /// # Panics
    ///
    /// Panics if the engine was built with fixed-rate arrivals ([`new`](Self::new)).
    pub fn set_arrival_scale(&mut self, scale: f64) {
        self.arrivals.set_scale(scale);
        if scale > 0.0 && self.next_arrival >= crate::arrivals::NEVER {
            self.next_arrival = self.arrivals.next_arrival();
        }
    }

    /// Takes the sojourn samples accumulated since the last call, leaving
    /// the cumulative counters (completed, span) untouched. The fleet
    /// drains this once per epoch to build per-tier distributions.
    pub fn take_sample(&mut self) -> LatencySample {
        std::mem::take(&mut self.sojourns)
    }

    /// Builds the run report (consumes nothing; callable at any point).
    pub fn report(&mut self) -> MemcachedReport {
        let span = self.last_sample_at.saturating_sub(self.first_sample_at);
        let achieved = if span > Time::ZERO && self.completed > 1 {
            (self.completed - 1) as f64 / span.as_secs()
        } else {
            0.0
        };
        MemcachedReport {
            completed: self.completed,
            mean: self.sojourns.mean(),
            p95: self.sojourns.percentile(0.95),
            p99: self.sojourns.percentile(0.99),
            max: self.sojourns.max(),
            achieved_rps: achieved,
        }
    }

    fn finish_request(&mut self, now: Time) {
        if now >= self.cfg.warmup {
            let sojourn = now.saturating_sub(self.current_arrival);
            self.sojourns.record(sojourn);
            if self.completed == 0 {
                self.first_sample_at = now;
            }
            self.last_sample_at = now;
            self.completed += 1;
        }
    }
}

impl WorkloadEngine for Memcached {
    fn name(&self) -> &str {
        "memcached"
    }

    fn next_op(&mut self, now: Time) -> Op {
        match self.phase {
            Phase::Idle => {
                if now < self.next_arrival {
                    return Op::IdleUntil(self.next_arrival);
                }
                // A request has arrived (possibly long ago: it queued).
                self.current_arrival = self.next_arrival;
                self.next_arrival = self.arrivals.next_arrival();
                self.phase = Phase::Client;
                Op::Compute(self.cfg.client_compute)
            }
            Phase::Client => {
                self.phase = Phase::Hash;
                Op::Compute(self.cfg.hash_compute)
            }
            Phase::Hash => {
                // Pick the item now; metadata then value accesses follow.
                let rank = self.zipf.sample();
                self.item_base = self.cfg.store_base + rank * self.item_bytes;
                self.phase = Phase::Meta(self.cfg.meta_loads);
                self.next_op(now)
            }
            Phase::Meta(0) => {
                self.phase = Phase::Value(self.cfg.value_lines);
                self.next_op(now)
            }
            Phase::Meta(n) => {
                self.phase = Phase::Meta(n - 1);
                let line = self.meta_rng.sample();
                Op::Load {
                    addr: LAddr::new(self.cfg.meta_base + line * 64),
                    blocking: true,
                }
            }
            Phase::Value(0) => {
                self.phase = Phase::Buffer(self.cfg.buffer_lines);
                self.next_op(now)
            }
            Phase::Value(n) => {
                self.phase = Phase::Value(n - 1);
                let offset = (self.cfg.value_lines - n) * 64;
                Op::Load {
                    addr: LAddr::new(self.item_base + offset),
                    blocking: true,
                }
            }
            Phase::Buffer(0) => {
                self.phase = Phase::Resp;
                Op::Compute(self.cfg.resp_compute)
            }
            Phase::Buffer(n) => {
                self.phase = Phase::Buffer(n - 1);
                let ring_lines = (self.cfg.buffer_ring_bytes / 64).max(1);
                let line = self.buffer_cursor % ring_lines;
                self.buffer_cursor += 1;
                Op::Store {
                    addr: LAddr::new(self.cfg.buffer_base + line * 64),
                }
            }
            Phase::Resp => {
                // The response compute has completed: the request is done.
                self.finish_request(now);
                self.phase = Phase::Idle;
                self.next_op(now)
            }
        }
    }

    crate::impl_engine_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Memcached {
        Memcached::new(MemcachedConfig {
            rps: 1_000_000.0, // 1 req/µs so tests run fast
            items: 16,
            value_lines: 4,
            meta_loads: 2,
            buffer_lines: 2,
            warmup: Time::ZERO,
            ..MemcachedConfig::default()
        })
    }

    /// Drives the engine with an idealised core: compute advances time,
    /// loads cost `load_latency`.
    fn drive(eng: &mut Memcached, until: Time, load_latency: Time) -> Time {
        let mut now = Time::ZERO;
        while now < until {
            match eng.next_op(now) {
                Op::Compute(c) => now += Time::from_units(c * 2),
                Op::Load { .. } => now += load_latency,
                Op::Store { .. } => now += Time::from_ns(1),
                Op::IdleUntil(t) => now = now.max(t),
                Op::Disk { .. } | Op::SetTag(_) | Op::Halt => break,
            }
        }
        now
    }

    #[test]
    fn requests_complete_and_are_measured() {
        let mut eng = tiny();
        drive(&mut eng, Time::from_ms(1), Time::from_ns(20));
        let report = eng.report();
        assert!(report.completed > 10, "got {}", report.completed);
        assert!(report.p95 >= report.mean || report.completed < 20);
        assert!(report.max >= report.p95);
    }

    #[test]
    fn slower_memory_means_higher_tail_latency() {
        // Low enough load that the queue stays stable in both runs.
        let cfg = MemcachedConfig {
            rps: 20_000.0,
            items: 16,
            value_lines: 100,
            meta_loads: 2,
            buffer_lines: 2,
            warmup: Time::ZERO,
            ..MemcachedConfig::default()
        };
        let mut fast = Memcached::new(cfg.clone());
        let mut slow = Memcached::new(cfg);
        drive(&mut fast, Time::from_ms(20), Time::from_ns(15));
        drive(&mut slow, Time::from_ms(20), Time::from_ns(200));
        let f = fast.report();
        let s = slow.report();
        assert!(s.p95 > f.p95, "slow {:?} !> fast {:?}", s.p95, f.p95);
    }

    #[test]
    fn overload_explodes_queueing_delay() {
        // Service time > inter-arrival time: sojourn grows without bound.
        let mut eng = Memcached::new(MemcachedConfig {
            rps: 100_000.0, // 10 µs between requests
            items: 16,
            value_lines: 100,
            meta_loads: 0,
            client_compute: 20_000, // 10 µs of compute alone
            hash_compute: 20_000,
            resp_compute: 20_000,
            warmup: Time::ZERO,
            seed: 3,
            ..MemcachedConfig::default()
        });
        drive(&mut eng, Time::from_ms(20), Time::from_ns(50));
        let r = eng.report();
        assert!(
            r.p95 > Time::from_ms(1),
            "expected queueing blow-up, got p95 {:?}",
            r.p95
        );
    }

    #[test]
    fn addresses_stay_in_configured_regions() {
        let mut eng = tiny();
        let store = eng.cfg.store_base;
        let meta = eng.cfg.meta_base;
        let meta_end = meta + eng.cfg.meta_bytes;
        let buf = eng.cfg.buffer_base;
        let buf_end = buf + eng.cfg.buffer_ring_bytes;
        let mut now = Time::ZERO;
        for _ in 0..500 {
            match eng.next_op(now) {
                Op::Load { addr, blocking } => {
                    assert!(blocking);
                    let a = addr.raw();
                    assert!(
                        (a >= store) || (a >= meta && a < meta_end),
                        "stray load address {a:#x}"
                    );
                    now += Time::from_ns(10);
                }
                Op::Store { addr } => {
                    let a = addr.raw();
                    assert!((a >= buf) && (a < buf_end), "stray store address {a:#x}");
                    now += Time::from_ns(1);
                }
                Op::Compute(c) => now += Time::from_units(c * 2),
                Op::IdleUntil(t) => now = now.max(t),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn warmup_discards_early_samples() {
        let mut eng = Memcached::new(MemcachedConfig {
            rps: 1_000_000.0,
            items: 4,
            value_lines: 1,
            meta_loads: 0,
            warmup: Time::from_ms(100),
            ..MemcachedConfig::default()
        });
        drive(&mut eng, Time::from_ms(1), Time::from_ns(10));
        assert_eq!(eng.report().completed, 0, "all samples inside warm-up");
    }
}
