//! Non-homogeneous arrival processes for the fleet's tenant population.
//!
//! The rack-scale consolidation experiment (`pard-fleet`, fig_fleet)
//! drives each tenant with traffic shaped like a real service's: a
//! diurnal sinusoid (day/night load swing) with optional **flash crowds**
//! (a promotion, a news spike) multiplying the rate over a window. Both
//! shapes compose into a [`RateProfile`]; [`ModulatedArrivals`] samples a
//! non-homogeneous Poisson process with that rate by *thinning*: candidate
//! arrivals are drawn at the profile's peak rate and accepted with
//! probability `rate(t) / peak` — exact for any bounded rate function,
//! and deterministic given the seed.
//!
//! A [`ModulatedArrivals`] also carries a **dispatch scale** in `[0, 1]`,
//! the load balancer's per-machine traffic share for the tenant: the fleet
//! manager re-shards a tenant by scaling one machine's replica down and
//! another's up, without disturbing either RNG stream. Scale 0 (a drained
//! replica) yields no arrivals and consumes no randomness, so a later
//! scale-up resumes the stream exactly where it paused.

use pard_sim::rng::{stream_rng, Rng, Xoshiro256pp};
use pard_sim::Time;

use crate::generators::PoissonArrivals;

/// Arrival time returned by a fully drained process (scale 0): far enough
/// in the future that no bounded experiment reaches it, while leaving
/// headroom for `Time` arithmetic.
pub const NEVER: Time = Time::from_units(u64::MAX / 4);

/// A flash-crowd window: the rate is multiplied by `multiplier` for
/// `start <= t < end`.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Window start (absolute simulated time).
    pub start: Time,
    /// Window end (exclusive).
    pub end: Time,
    /// Rate multiplier over the window (≥ 0; > 1 is a crowd, < 1 an
    /// outage-shaped dip).
    pub multiplier: f64,
}

/// A deterministic, time-varying request-rate profile.
#[derive(Debug, Clone)]
pub struct RateProfile {
    /// Baseline rate in requests per second.
    pub base_rps: f64,
    /// Diurnal swing amplitude in `[0, 1)`: the rate oscillates between
    /// `base * (1 - a)` and `base * (1 + a)`.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sinusoid (a simulated "day").
    pub diurnal_period: Time,
    /// Phase offset in fractions of a period (tenants peak at different
    /// hours).
    pub diurnal_phase: f64,
    /// Flash-crowd windows (may overlap; multipliers compose).
    pub flash: Vec<FlashCrowd>,
}

impl RateProfile {
    /// A flat profile: plain Poisson at `base_rps`.
    pub fn constant(base_rps: f64) -> Self {
        RateProfile {
            base_rps,
            diurnal_amplitude: 0.0,
            diurnal_period: Time::from_ms(100),
            diurnal_phase: 0.0,
            flash: Vec::new(),
        }
    }

    /// The instantaneous rate at absolute time `t`, in requests/second.
    pub fn rate_at(&self, t: Time) -> f64 {
        let cycles = t.units() as f64 / self.diurnal_period.units().max(1) as f64;
        let angle = std::f64::consts::TAU * (cycles + self.diurnal_phase);
        let mut rate = self.base_rps * (1.0 + self.diurnal_amplitude * angle.sin());
        for f in &self.flash {
            if t >= f.start && t < f.end {
                rate *= f.multiplier;
            }
        }
        rate.max(0.0)
    }

    /// An upper bound on [`rate_at`](Self::rate_at) over all time — the thinning
    /// envelope. Overlapping flash windows are bounded conservatively by
    /// the product of all multipliers above 1.
    pub fn peak(&self) -> f64 {
        let mut peak = self.base_rps * (1.0 + self.diurnal_amplitude);
        for f in &self.flash {
            if f.multiplier > 1.0 {
                peak *= f.multiplier;
            }
        }
        peak
    }
}

/// A non-homogeneous Poisson arrival process over a [`RateProfile`],
/// sampled by thinning, with a load-balancer dispatch scale.
#[derive(Debug, Clone)]
pub struct ModulatedArrivals {
    profile: RateProfile,
    peak: f64,
    scale: f64,
    next: Time,
    rng: Xoshiro256pp,
}

impl ModulatedArrivals {
    /// Creates the process, seeded deterministically from `(seed, stream)`.
    ///
    /// # Panics
    ///
    /// Panics if the profile's peak rate is not strictly positive or its
    /// amplitude is outside `[0, 1)`.
    pub fn new(profile: RateProfile, seed: u64, stream: &str) -> Self {
        Self::with_rng(profile, stream_rng(seed, stream))
    }

    /// Creates the process, forking its randomness off `rng`.
    pub fn from_rng(profile: RateProfile, rng: &mut impl Rng) -> Self {
        Self::with_rng(profile, Xoshiro256pp::seed_from_u64(rng.next_u64()))
    }

    fn with_rng(profile: RateProfile, rng: Xoshiro256pp) -> Self {
        assert!(
            profile.peak() > 0.0,
            "rate profile must have a positive peak"
        );
        assert!(
            (0.0..1.0).contains(&profile.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        ModulatedArrivals {
            peak: profile.peak(),
            profile,
            scale: 1.0,
            next: Time::ZERO,
            rng,
        }
    }

    /// The current dispatch scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Sets the dispatch scale (the load balancer's traffic share for
    /// this replica).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is outside `[0, 1]` — the thinning envelope is
    /// computed for at most the full profile rate.
    pub fn set_scale(&mut self, scale: f64) {
        assert!(
            (0.0..=1.0).contains(&scale),
            "dispatch scale must be in [0, 1], got {scale}"
        );
        self.scale = scale;
    }

    /// The profile driving this process.
    pub fn profile(&self) -> &RateProfile {
        &self.profile
    }

    /// Fast-forwards the process so no arrival is generated before `t`,
    /// without consuming randomness. A replica admitted mid-run (fleet
    /// re-shard or migration) must start its stream at the machine's
    /// current time: the process otherwise replays every arrival since
    /// time zero as an instantaneous — and entirely fictitious — backlog.
    pub fn skip_until(&mut self, t: Time) {
        if self.next < t {
            self.next = t;
        }
    }

    /// Returns the next arrival's absolute time and advances the process.
    /// With scale 0 returns [`NEVER`] without consuming randomness.
    pub fn next_arrival(&mut self) -> Time {
        if self.scale <= 0.0 {
            return NEVER;
        }
        loop {
            let u = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let gap_secs = -u.ln() / self.peak;
            self.next += Time::from_units((gap_secs * 4e9).max(1.0) as u64);
            let rate = self.profile.rate_at(self.next) * self.scale;
            if rate > 0.0 && self.rng.gen_f64() < rate / self.peak {
                return self.next;
            }
        }
    }
}

/// The arrival source a request-serving engine draws from: the classic
/// fixed-rate process, or the fleet's modulated one.
#[derive(Debug, Clone)]
pub enum ArrivalSource {
    /// Homogeneous Poisson at a fixed rate.
    Poisson(PoissonArrivals),
    /// Non-homogeneous (diurnal + flash-crowd), load-balancer scaled.
    Modulated(ModulatedArrivals),
}

impl ArrivalSource {
    /// Returns the next arrival's absolute time and advances the process.
    pub fn next_arrival(&mut self) -> Time {
        match self {
            ArrivalSource::Poisson(p) => p.next_arrival(),
            ArrivalSource::Modulated(m) => m.next_arrival(),
        }
    }

    /// Sets the dispatch scale.
    ///
    /// # Panics
    ///
    /// Panics on a fixed-rate source — only modulated processes carry a
    /// dispatch scale, and scaling must never be silently ignored.
    pub fn set_scale(&mut self, scale: f64) {
        match self {
            ArrivalSource::Poisson(_) => {
                panic!("dispatch scale requires a modulated arrival source")
            }
            ArrivalSource::Modulated(m) => m.set_scale(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_in(arr: &mut ModulatedArrivals, from: Time, to: Time) -> u64 {
        let mut n = 0;
        loop {
            let t = arr.next_arrival();
            if t >= to {
                return n;
            }
            if t >= from {
                n += 1;
            }
        }
    }

    #[test]
    fn constant_profile_matches_poisson_rate() {
        let mut arr = ModulatedArrivals::new(RateProfile::constant(100_000.0), 7, "t");
        let n = count_in(&mut arr, Time::ZERO, Time::from_ms(100));
        // 100 kRPS over 100 ms ≈ 10 000 arrivals.
        assert!((9_000..=11_000).contains(&n), "got {n}");
    }

    #[test]
    fn diurnal_swing_moves_load_between_half_periods() {
        let profile = RateProfile {
            base_rps: 200_000.0,
            diurnal_amplitude: 0.8,
            diurnal_period: Time::from_ms(40),
            diurnal_phase: 0.0,
            flash: Vec::new(),
        };
        let mut arr = ModulatedArrivals::new(profile, 11, "t");
        let up = count_in(&mut arr, Time::ZERO, Time::from_ms(20));
        let mut arr2 = ModulatedArrivals::new(
            RateProfile {
                base_rps: 200_000.0,
                diurnal_amplitude: 0.8,
                diurnal_period: Time::from_ms(40),
                diurnal_phase: 0.0,
                flash: Vec::new(),
            },
            11,
            "t",
        );
        // Skip the first half-period, then count the second.
        let _ = count_in(&mut arr2, Time::ZERO, Time::from_ms(20));
        let down = count_in(&mut arr2, Time::from_ms(20), Time::from_ms(40));
        assert!(
            up as f64 > 2.0 * down as f64,
            "sin>0 half must far outweigh sin<0 half: {up} vs {down}"
        );
    }

    #[test]
    fn flash_crowd_multiplies_the_window() {
        let profile = RateProfile {
            base_rps: 50_000.0,
            diurnal_amplitude: 0.0,
            diurnal_period: Time::from_ms(100),
            diurnal_phase: 0.0,
            flash: vec![FlashCrowd {
                start: Time::from_ms(10),
                end: Time::from_ms(20),
                multiplier: 4.0,
            }],
        };
        let mut arr = ModulatedArrivals::new(profile, 3, "t");
        let before = count_in(&mut arr, Time::ZERO, Time::from_ms(10));
        let during = count_in(&mut arr, Time::from_ms(10), Time::from_ms(20));
        assert!(
            during as f64 > 2.5 * before as f64,
            "flash window must spike: {before} -> {during}"
        );
    }

    #[test]
    fn scale_zero_pauses_without_consuming_randomness() {
        let profile = RateProfile::constant(10_000.0);
        let mut a = ModulatedArrivals::new(profile.clone(), 5, "t");
        let mut b = ModulatedArrivals::new(profile, 5, "t");
        let head: Vec<Time> = (0..8).map(|_| a.next_arrival()).collect();
        // b pauses for a while mid-stream, then resumes.
        let mut resumed: Vec<Time> = (0..3).map(|_| b.next_arrival()).collect();
        b.set_scale(0.0);
        for _ in 0..5 {
            assert_eq!(b.next_arrival(), NEVER);
        }
        b.set_scale(1.0);
        resumed.extend((0..5).map(|_| b.next_arrival()));
        assert_eq!(head, resumed, "pause must not shift the stream");
    }

    #[test]
    fn replays_exactly_for_equal_seeds() {
        let p = RateProfile {
            base_rps: 80_000.0,
            diurnal_amplitude: 0.5,
            diurnal_period: Time::from_ms(30),
            diurnal_phase: 0.25,
            flash: vec![FlashCrowd {
                start: Time::from_ms(5),
                end: Time::from_ms(9),
                multiplier: 3.0,
            }],
        };
        let seq = |seed| {
            let mut m = ModulatedArrivals::new(p.clone(), seed, "replay");
            (0..64).map(|_| m.next_arrival().units()).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }

    #[test]
    #[should_panic(expected = "dispatch scale")]
    fn out_of_range_scale_panics() {
        let mut m = ModulatedArrivals::new(RateProfile::constant(1.0), 1, "t");
        m.set_scale(1.5);
    }
}
