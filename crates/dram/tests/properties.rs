//! Property-based tests of the DRAM models.

use pard_dram::{Bank, DramGeometry, DramTiming, RankTracker};
use pard_icn::MAddr;
use pard_sim::Time;
use proptest::prelude::*;

proptest! {
    /// Address decomposition stays within the organisation's bounds and
    /// is consistent: same row+bank => same 1 KB-aligned region.
    #[test]
    fn decompose_is_bounded_and_consistent(addr in any::<u64>()) {
        let g = DramGeometry::table2();
        let loc = g.decompose(MAddr::new(addr));
        prop_assert!(loc.bank < g.total_banks());
        prop_assert!(loc.rank < g.ranks);
        prop_assert_eq!(loc.rank, loc.bank / g.banks_per_rank);
        prop_assert!(u64::from(loc.col_offset) < u64::from(g.row_bytes));
        // Same row base => identical (bank, row).
        let base = addr % g.capacity_bytes / 1024 * 1024;
        let loc2 = g.decompose(MAddr::new(base));
        prop_assert_eq!((loc.bank, loc.row), (loc2.bank, loc2.row));
    }

    /// Bank scheduling obeys causality and the JEDEC floor: data is never
    /// ready before tCL, and a conflict never beats a hit issued at the
    /// same instant.
    #[test]
    fn bank_timing_has_jedec_floors(rows in prop::collection::vec(0u64..8, 1..50)) {
        let t = DramTiming::ddr3_1600_11();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        let mut now = Time::from_us(1);
        for &row in &rows {
            now += Time::from_ns(100);
            let hit_predicted = bank.would_hit(row, false);
            let svc = bank.schedule(row, now, false, false, &t, &mut rank);
            prop_assert!(svc.data_ready >= now + t.tcl, "tCL floor violated");
            prop_assert_eq!(svc.row_hit, hit_predicted);
            if svc.row_hit {
                prop_assert_eq!(svc.data_ready, now + t.tcl);
            } else {
                prop_assert!(svc.data_ready >= now + t.trcd + t.tcl);
            }
            prop_assert!(svc.bank_free >= now);
            // After scheduling, the row is open (normal buffer).
            prop_assert!(bank.would_hit(row, false));
        }
    }

    /// The high-priority row buffer is invisible to low-priority requests
    /// and immune to them, for any interleaving.
    #[test]
    fn hp_buffer_isolation(low_rows in prop::collection::vec(0u64..100, 1..50)) {
        let t = DramTiming::ddr3_1600_11();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        // High priority pins row 7777 in the HP buffer.
        bank.schedule(7777, Time::from_us(1), true, true, &t, &mut rank);
        let mut now = Time::from_us(2);
        for &row in &low_rows {
            now += Time::from_ns(100);
            bank.schedule(row, now, false, false, &t, &mut rank);
            prop_assert!(!bank.would_hit(7777, false), "low priority saw the HP row");
            prop_assert!(bank.would_hit(7777, true), "HP row was disturbed");
        }
    }

    /// Activates within a rank are always spaced by at least tRRD.
    #[test]
    fn trrd_spacing_holds(gaps in prop::collection::vec(0u64..50, 1..50)) {
        let t = DramTiming::ddr3_1600_11();
        let mut rank = RankTracker::default();
        let mut now = Time::from_us(1);
        let mut last: Option<Time> = None;
        for &g in &gaps {
            now += Time::from_ns(g);
            let act = rank.activate_ok(now, &t);
            if let Some(prev) = last {
                prop_assert!(act >= prev + t.trrd);
            }
            prop_assert!(act >= now);
            last = Some(act);
        }
    }
}
