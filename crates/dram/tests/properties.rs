//! Seeded randomized tests of the DRAM models.

use pard_dram::{Bank, DramGeometry, DramTiming, RankTracker};
use pard_icn::MAddr;
use pard_sim::check::{cases, vec_of, DEFAULT_CASES};
use pard_sim::rng::Rng;
use pard_sim::Time;

/// Address decomposition stays within the organisation's bounds and
/// is consistent: same row+bank => same 1 KB-aligned region.
#[test]
fn decompose_is_bounded_and_consistent() {
    cases("dram.decompose_is_bounded_and_consistent", DEFAULT_CASES, |rng| {
        let addr = rng.next_u64();
        let g = DramGeometry::table2();
        let loc = g.decompose(MAddr::new(addr));
        assert!(loc.bank < g.total_banks());
        assert!(loc.rank < g.ranks);
        assert_eq!(loc.rank, loc.bank / g.banks_per_rank);
        assert!(u64::from(loc.col_offset) < u64::from(g.row_bytes));
        // Same row base => identical (bank, row).
        let base = addr % g.capacity_bytes / 1024 * 1024;
        let loc2 = g.decompose(MAddr::new(base));
        assert_eq!((loc.bank, loc.row), (loc2.bank, loc2.row));
    });
}

/// Bank scheduling obeys causality and the JEDEC floor: data is never
/// ready before tCL, and a conflict never beats a hit issued at the
/// same instant.
#[test]
fn bank_timing_has_jedec_floors() {
    cases("dram.bank_timing_has_jedec_floors", DEFAULT_CASES, |rng| {
        let rows = vec_of(rng, 1..50, |r| r.gen_range(0u64..8));
        let t = DramTiming::ddr3_1600_11();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        let mut now = Time::from_us(1);
        for &row in &rows {
            now += Time::from_ns(100);
            let hit_predicted = bank.would_hit(row, false);
            let svc = bank.schedule(row, now, false, false, &t, &mut rank);
            assert!(svc.data_ready >= now + t.tcl, "tCL floor violated");
            assert_eq!(svc.row_hit, hit_predicted);
            if svc.row_hit {
                assert_eq!(svc.data_ready, now + t.tcl);
            } else {
                assert!(svc.data_ready >= now + t.trcd + t.tcl);
            }
            assert!(svc.bank_free >= now);
            // After scheduling, the row is open (normal buffer).
            assert!(bank.would_hit(row, false));
        }
    });
}

/// The high-priority row buffer is invisible to low-priority requests
/// and immune to them, for any interleaving.
#[test]
fn hp_buffer_isolation() {
    cases("dram.hp_buffer_isolation", DEFAULT_CASES, |rng| {
        let low_rows = vec_of(rng, 1..50, |r| r.gen_range(0u64..100));
        let t = DramTiming::ddr3_1600_11();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        // High priority pins row 7777 in the HP buffer.
        bank.schedule(7777, Time::from_us(1), true, true, &t, &mut rank);
        let mut now = Time::from_us(2);
        for &row in &low_rows {
            now += Time::from_ns(100);
            bank.schedule(row, now, false, false, &t, &mut rank);
            assert!(!bank.would_hit(7777, false), "low priority saw the HP row");
            assert!(bank.would_hit(7777, true), "HP row was disturbed");
        }
    });
}

/// Activates within a rank are always spaced by at least tRRD.
#[test]
fn trrd_spacing_holds() {
    cases("dram.trrd_spacing_holds", DEFAULT_CASES, |rng| {
        let gaps = vec_of(rng, 1..50, |r| r.gen_range(0u64..50));
        let t = DramTiming::ddr3_1600_11();
        let mut rank = RankTracker::default();
        let mut now = Time::from_us(1);
        let mut last: Option<Time> = None;
        for &g in &gaps {
            now += Time::from_ns(g);
            let act = rank.activate_ok(now, &t);
            if let Some(prev) = last {
                assert!(act >= prev + t.trrd);
            }
            assert!(act >= now);
            last = Some(act);
        }
    });
}
