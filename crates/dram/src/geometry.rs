//! DRAM organisation and machine-address decomposition.

use pard_icn::MAddr;

/// Location of a machine-physical address within the DRAM organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAddr {
    /// Flat bank index across ranks (`rank * banks_per_rank + bank`).
    pub bank: u32,
    /// Rank index.
    pub rank: u32,
    /// Row within the bank.
    pub row: u64,
    /// Byte offset within the row (column address × bus width).
    pub col_offset: u32,
}

/// DRAM organisation (Table 2: 1 channel, 2 ranks × 8 banks, 1 KB rows,
/// 8 GB total).
///
/// Consecutive rows interleave across banks so that streaming accesses
/// exploit bank-level parallelism — the conventional open-page mapping.
///
/// # Example
///
/// ```
/// use pard_dram::DramGeometry;
/// use pard_icn::MAddr;
///
/// let g = DramGeometry::table2();
/// assert_eq!(g.total_banks(), 16);
/// let a = g.decompose(MAddr::new(1024));
/// let b = g.decompose(MAddr::new(2048));
/// assert_ne!(a.bank, b.bank, "adjacent rows land in different banks");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramGeometry {
    /// Number of ranks on the channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u32,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
}

impl DramGeometry {
    /// The paper's Table 2 configuration: 8 GB, one channel, 2 ranks ×
    /// 8 banks, 1 KB row buffer.
    pub fn table2() -> Self {
        DramGeometry {
            ranks: 2,
            banks_per_rank: 8,
            row_bytes: 1024,
            capacity_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// Total banks across all ranks.
    pub fn total_banks(&self) -> u32 {
        self.ranks * self.banks_per_rank
    }

    /// Decomposes a machine address into its bank/row/column location.
    pub fn decompose(&self, addr: MAddr) -> BankAddr {
        let wrapped = addr.raw() % self.capacity_bytes;
        let row_id = wrapped / u64::from(self.row_bytes);
        let bank = (row_id % u64::from(self.total_banks())) as u32;
        let row = row_id / u64::from(self.total_banks());
        BankAddr {
            bank,
            rank: bank / self.banks_per_rank,
            row,
            col_offset: (wrapped % u64::from(self.row_bytes)) as u32,
        }
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_organisation() {
        let g = DramGeometry::table2();
        assert_eq!(g.total_banks(), 16);
        assert_eq!(g.row_bytes, 1024);
    }

    #[test]
    fn same_row_same_bank() {
        let g = DramGeometry::table2();
        let a = g.decompose(MAddr::new(0));
        let b = g.decompose(MAddr::new(1023));
        assert_eq!((a.bank, a.row), (b.bank, b.row));
        assert_eq!(b.col_offset, 1023);
    }

    #[test]
    fn rows_interleave_across_all_banks_before_repeating() {
        let g = DramGeometry::table2();
        let banks: Vec<u32> = (0..16u64)
            .map(|i| g.decompose(MAddr::new(i * 1024)).bank)
            .collect();
        let unique: std::collections::HashSet<_> = banks.iter().collect();
        assert_eq!(unique.len(), 16);
        // The 17th row wraps to bank 0, next row index.
        let wrap = g.decompose(MAddr::new(16 * 1024));
        assert_eq!(wrap.bank, 0);
        assert_eq!(wrap.row, 1);
    }

    #[test]
    fn rank_derivation() {
        let g = DramGeometry::table2();
        assert_eq!(g.decompose(MAddr::new(0)).rank, 0);
        assert_eq!(g.decompose(MAddr::new(8 * 1024)).rank, 1);
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let g = DramGeometry::table2();
        let a = g.decompose(MAddr::new(5));
        let b = g.decompose(MAddr::new(g.capacity_bytes + 5));
        assert_eq!(a, b);
    }
}
