//! Bank and rank state machines.

use pard_sim::Time;

use crate::timing::DramTiming;

/// One DRAM bank: the normal row buffer, the **extra high-priority row
/// buffer** (paper §4.2: "we add one extra row buffer into each DRAM chip
/// for high-priority memory requests"), and the timing state needed to
/// compute command schedules.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bank {
    /// Row currently open in the normal buffer.
    pub open_row: Option<u64>,
    /// Row currently open in the high-priority buffer.
    pub open_row_hp: Option<u64>,
    /// Time until which the bank is busy with the previous command.
    pub busy_until: Time,
    /// Start time of the most recent activate (for tRAS).
    pub last_activate: Time,
}

/// Outcome of scheduling one access on a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankService {
    /// When the first data beat is ready on the pins.
    pub data_ready: Time,
    /// Whether the access hit an open row.
    pub row_hit: bool,
    /// When the bank can accept its next column command (tCCD after this
    /// one; the data burst itself streams from the sense amplifiers).
    pub bank_free: Time,
}

impl Bank {
    /// Whether an access to `row` would hit an open row buffer.
    ///
    /// High-priority requests may hit either buffer; low-priority requests
    /// only the normal buffer (they cannot see — or disturb — the
    /// high-priority buffer).
    pub fn would_hit(&self, row: u64, high_priority: bool) -> bool {
        if self.open_row == Some(row) {
            return true;
        }
        high_priority && self.open_row_hp == Some(row)
    }

    /// Whether the bank can accept a new command at `now`.
    pub fn ready_at(&self, now: Time) -> bool {
        self.busy_until <= now
    }

    /// Schedules an access to `row` starting no earlier than `start`,
    /// updating row buffers and activate bookkeeping. The caller accounts
    /// for data-bus occupancy and sets [`Bank::busy_until`].
    ///
    /// `use_hp_buffer` selects the high-priority buffer for any activate
    /// this access needs (granted by the control plane's row-buffer mask).
    pub fn schedule(
        &mut self,
        row: u64,
        start: Time,
        high_priority: bool,
        use_hp_buffer: bool,
        timing: &DramTiming,
        rank: &mut RankTracker,
    ) -> BankService {
        if self.would_hit(row, high_priority) {
            return BankService {
                data_ready: start + timing.tcl,
                row_hit: true,
                bank_free: start + timing.tccd,
            };
        }

        // Which buffer are we (re)filling?
        let target_open = if use_hp_buffer {
            self.open_row_hp
        } else {
            self.open_row
        };

        let act_start = if target_open.is_some() {
            // Precharge the old row first, respecting tRAS.
            let prech_ok = start.max(self.last_activate + timing.tras);
            rank.activate_ok(prech_ok + timing.trp, timing)
        } else {
            rank.activate_ok(start, timing)
        };
        self.last_activate = act_start;
        if use_hp_buffer {
            self.open_row_hp = Some(row);
        } else {
            self.open_row = Some(row);
        }
        BankService {
            data_ready: act_start + timing.trcd + timing.tcl,
            row_hit: false,
            bank_free: act_start + timing.trcd + timing.tccd,
        }
    }
}

/// Per-rank activate spacing (tRRD).
#[derive(Debug, Clone, Copy, Default)]
pub struct RankTracker {
    last_activate: Option<Time>,
}

impl RankTracker {
    /// Returns the earliest activate time ≥ `earliest` that respects tRRD,
    /// and records it.
    pub fn activate_ok(&mut self, earliest: Time, timing: &DramTiming) -> Time {
        let t = match self.last_activate {
            Some(prev) => earliest.max(prev + timing.trrd),
            None => earliest,
        };
        self.last_activate = Some(t);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_icn::mem_cycles;

    fn t() -> DramTiming {
        DramTiming::ddr3_1600_11()
    }

    #[test]
    fn row_hit_costs_only_cas() {
        let timing = t();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        bank.open_row = Some(7);
        let s = bank.schedule(7, Time::from_ns(100), false, false, &timing, &mut rank);
        assert!(s.row_hit);
        assert_eq!(s.data_ready, Time::from_ns(100) + timing.tcl);
    }

    #[test]
    fn empty_bank_pays_activate_plus_cas() {
        let timing = t();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        let s = bank.schedule(3, Time::from_ns(100), false, false, &timing, &mut rank);
        assert!(!s.row_hit);
        assert_eq!(s.data_ready, Time::from_ns(100) + timing.trcd + timing.tcl);
        assert_eq!(bank.open_row, Some(3));
    }

    #[test]
    fn row_conflict_pays_precharge_too() {
        let timing = t();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        // Open row 1 at t=1000ns (sets last_activate).
        bank.schedule(1, Time::from_ns(1000), false, false, &timing, &mut rank);
        let act = bank.last_activate;
        // Conflict long after tRAS has elapsed.
        let start = act + Time::from_ns(100);
        let s = bank.schedule(2, start, false, false, &timing, &mut rank);
        assert!(!s.row_hit);
        assert_eq!(s.data_ready, start + timing.trp + timing.trcd + timing.tcl);
        assert_eq!(bank.open_row, Some(2));
    }

    #[test]
    fn tras_delays_early_precharge() {
        let timing = t();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        bank.schedule(1, Time::from_ns(1000), false, false, &timing, &mut rank);
        let act = bank.last_activate;
        // Immediately conflict: precharge must wait until act + tRAS.
        let s = bank.schedule(2, act + mem_cycles(1), false, false, &timing, &mut rank);
        assert_eq!(
            s.data_ready,
            act + timing.tras + timing.trp + timing.trcd + timing.tcl
        );
    }

    #[test]
    fn high_priority_buffer_survives_low_priority_conflicts() {
        let timing = t();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        // High-priority opens row 5 in the HP buffer.
        bank.schedule(5, Time::from_ns(1000), true, true, &timing, &mut rank);
        assert_eq!(bank.open_row_hp, Some(5));
        // Low-priority stream opens rows 1, 2 in the normal buffer.
        bank.schedule(1, Time::from_us(1), false, false, &timing, &mut rank);
        bank.schedule(2, Time::from_us(2), false, false, &timing, &mut rank);
        // High-priority returns to row 5: still a hit.
        let s = bank.schedule(5, Time::from_us(3), true, true, &timing, &mut rank);
        assert!(s.row_hit, "HP row buffer was not disturbed");
    }

    #[test]
    fn low_priority_cannot_hit_hp_buffer() {
        let timing = t();
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        bank.schedule(5, Time::from_ns(1000), true, true, &timing, &mut rank);
        assert!(!bank.would_hit(5, false));
        assert!(bank.would_hit(5, true));
    }

    #[test]
    fn trrd_spaces_activates_within_a_rank() {
        let timing = t();
        let mut rank = RankTracker::default();
        let a = rank.activate_ok(Time::from_ns(100), &timing);
        let b = rank.activate_ok(Time::from_ns(100), &timing);
        assert_eq!(a, Time::from_ns(100));
        assert_eq!(b, a + timing.trrd);
    }
}
