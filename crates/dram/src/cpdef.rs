//! The memory control-plane definition (Fig. 5 / Table 3).

use pard_cp::{ColumnDef, ControlPlane, CpType, DsTable, StatKey};

/// Parameter-table columns of the memory control plane.
///
/// * `addr_base` / `addr_limit` — LDom-physical → machine-physical mapping
///   (base + bounded offset); default identity with an unbounded limit,
/// * `priority` — scheduling class (0 = low, 1 = high),
/// * `rowbuf` — row-buffer mask bit: 1 grants use of the per-bank
///   high-priority row buffer,
/// * `compress` — 1 enables the MXT-style compression engine for this
///   DS-id's transfers (the paper's §8 functionality extension: an IBM
///   MXT-like engine programmed to compress packets for designated DS-id
///   sets only),
/// * `wfq_weight` — fair-queueing weight read by `wfq(param.wfq_weight)`
///   rank expressions in installed policy programs (default 1; unused by
///   the built-in strict-priority program).
pub const MEM_PARAM_COLUMNS: &[&str] = &[
    "addr_base",
    "addr_limit",
    "priority",
    "rowbuf",
    "compress",
    "wfq_weight",
];

/// The built-in memory policy: the paper's §4.2 strict two-class
/// arbitration re-expressed as a match-action program. Rank 0 (urgent) is
/// the old high-priority queue, rank 1 the low queue; the PIFO serves the
/// lowest present rank FIFO-within-rank, which is exactly
/// "high-priority first, FR-FCFS within the class".
pub const MEM_DEFAULT_POLICY: &str =
    "when param.priority != 0 do rank 0, urgent\nwhen all do rank 1";

/// The baseline (no-control-plane) program of Figure 11's "w/o PARD"
/// controller: a single class, in-order service.
pub const MEM_BASELINE_POLICY: &str = "when all do rank 0";

/// Statistics-table columns of the memory control plane.
///
/// * `avg_qlat` — average queueing delay over the last window, in memory
///   cycles (the paper's `avgQLat`),
/// * `serv_cnt` — cumulative served requests (`ServCnt`),
/// * `bandwidth` — bytes moved per second over the last window, in MB/s,
/// * `row_hits` — cumulative row-buffer hits (ablation observability),
/// * `comp_saved` — cumulative bus bytes saved by the compression engine.
pub const MEM_STATS_COLUMNS: &[&str] = &[
    "avg_qlat",
    "serv_cnt",
    "bandwidth",
    "row_hits",
    "comp_saved",
];

/// Key of `avg_qlat` in the statistics table.
pub const MSTAT_AVG_QLAT: StatKey = StatKey::at(0);
/// Key of `serv_cnt`.
pub const MSTAT_SERV_CNT: StatKey = StatKey::at(1);
/// Key of `bandwidth`.
pub const MSTAT_BANDWIDTH: StatKey = StatKey::at(2);
/// Key of `row_hits`.
pub const MSTAT_ROW_HITS: StatKey = StatKey::at(3);
/// Key of `comp_saved`.
pub const MSTAT_COMP_SAVED: StatKey = StatKey::at(4);

/// Builds the memory control plane.
///
/// # Example
///
/// ```
/// use pard_icn::DsId;
/// let cp = pard_dram::mem_control_plane(256, 64);
/// assert_eq!(cp.ident(), "MEMORY_CP");
/// assert_eq!(cp.param(DsId::new(1), "priority").unwrap(), 0);
/// ```
pub fn mem_control_plane(max_ds: usize, trigger_slots: usize) -> ControlPlane {
    let params = DsTable::new(
        "parameter",
        vec![
            ColumnDef::new("addr_base"),
            ColumnDef::with_default("addr_limit", u64::MAX),
            ColumnDef::new("priority"),
            ColumnDef::new("rowbuf"),
            ColumnDef::new("compress"),
            ColumnDef::with_default("wfq_weight", 1),
        ],
        max_ds,
    );
    let stats = DsTable::new(
        "statistics",
        MEM_STATS_COLUMNS
            .iter()
            .map(|name| ColumnDef::new(name))
            .collect(),
        max_ds,
    );
    ControlPlane::new("MEMORY_CP", CpType::Memory, params, stats, trigger_slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_icn::DsId;

    #[test]
    fn schema_offsets_match_constants() {
        let cp = mem_control_plane(8, 4);
        let stats = cp.stats();
        assert_eq!(stats.key("avg_qlat").unwrap(), MSTAT_AVG_QLAT);
        assert_eq!(stats.key("serv_cnt").unwrap(), MSTAT_SERV_CNT);
        assert_eq!(stats.key("bandwidth").unwrap(), MSTAT_BANDWIDTH);
        assert_eq!(stats.key("row_hits").unwrap(), MSTAT_ROW_HITS);
        assert_eq!(stats.key("comp_saved").unwrap(), MSTAT_COMP_SAVED);
    }

    #[test]
    fn default_mapping_is_identity_unbounded() {
        let cp = mem_control_plane(8, 4);
        assert_eq!(cp.param(DsId::new(3), "addr_base").unwrap(), 0);
        assert_eq!(cp.param(DsId::new(3), "addr_limit").unwrap(), u64::MAX);
        assert_eq!(cp.param(DsId::new(3), "rowbuf").unwrap(), 0);
        assert_eq!(cp.param(DsId::new(3), "wfq_weight").unwrap(), 1);
    }

    #[test]
    fn builtin_policies_compile_against_the_schema() {
        let cp = mem_control_plane(8, 4);
        assert!(cp.compile_policy(MEM_DEFAULT_POLICY).is_ok());
        assert!(cp.compile_policy(MEM_BASELINE_POLICY).is_ok());
    }
}
