//! The memory-controller component (Fig. 5).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pard_cp::policy::{Decision, Pifo, PolicyEngine, PolicyReq, Program, ReqClass};
use pard_cp::{shared, CpHandle, StatsHandle};
use pard_icn::{to_mem_cycles, DsId, MemPacket, MemResp, PardEvent, TickKind, MEM_CYCLE};
use pard_sim::stats::{LatencySample, WindowedCounter};
use pard_sim::trace::{self, TraceCat, TraceVal};
use pard_sim::fault::{self, FaultClass};
use pard_sim::{audit, Component, Ctx, Time};

use crate::bank::{Bank, RankTracker};
use crate::cpdef::{
    mem_control_plane, MEM_BASELINE_POLICY, MEM_DEFAULT_POLICY, MSTAT_AVG_QLAT, MSTAT_BANDWIDTH,
    MSTAT_COMP_SAVED, MSTAT_ROW_HITS, MSTAT_SERV_CNT,
};
use crate::geometry::{BankAddr, DramGeometry};
use crate::timing::DramTiming;

/// Configuration of the [`MemCtrl`] component.
#[derive(Debug, Clone)]
pub struct MemCtrlConfig {
    /// DDR timing parameters.
    pub timing: DramTiming,
    /// DRAM organisation.
    pub geometry: DramGeometry,
    /// Statistics-window length.
    pub window: Time,
    /// DS-id rows in the control-plane tables.
    pub max_ds: usize,
    /// Trigger-table slots.
    pub trigger_slots: usize,
    /// Whether the control plane's priority queues and high-priority row
    /// buffers are active on the data path. `false` models the baseline
    /// ("w/o control plane") memory controller of Figure 11: a stock
    /// MIG-style controller that services requests **in order** from a
    /// single queue, so every request queues behind all earlier ones.
    pub priorities_enabled: bool,
    /// Whether to record the per-request queueing-delay distribution
    /// (costs memory; used by the Figure 11 harness).
    pub record_queueing: bool,
    /// FR-FCFS lookahead window of the single-queue scheduler used when
    /// `priorities_enabled` is false. The default (16) models a competent
    /// conventional controller (the gem5-style baseline of Figure 8); the
    /// Figure 11 harness sets 2 to model the stock MIG-style controller
    /// the paper's FPGA baseline used.
    pub baseline_window: usize,
}

impl Default for MemCtrlConfig {
    fn default() -> Self {
        MemCtrlConfig {
            timing: DramTiming::ddr3_1600_11(),
            geometry: DramGeometry::table2(),
            window: Time::from_us(50),
            max_ds: 256,
            trigger_slots: 64,
            priorities_enabled: true,
            record_queueing: false,
            baseline_window: 16,
        }
    }
}

/// Summary of recorded queueing delays, split by priority class.
#[derive(Debug, Clone)]
pub struct QueueingStats {
    /// Delays of high-priority requests, in memory cycles.
    pub high: Vec<u64>,
    /// Delays of low-priority requests, in memory cycles.
    pub low: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    pkt: MemPacket,
    loc: BankAddr,
    enqueued_at: Time,
    high: bool,
    use_hp_buffer: bool,
}

/// The DDR3 memory controller with its embedded control plane.
///
/// Request flow (Fig. 5):
///
/// 1. The DS-id selects address mapping and scheduling treatment: the
///    plane's active match-action [`Program`] assigns each request a PIFO
///    rank (the built-in program re-expresses the paper's two priority
///    classes as ranks 0/1).
/// 2. The LDom-physical address is translated to a DRAM physical address.
/// 3. The request enters the [`Pifo`] at its assigned rank.
/// 4. The arbiter serves the lowest present rank, FR-FCFS within it, among
///    requests whose banks are ready — with the built-in program this is
///    exactly *high-priority first, FR-FCFS within a class*.
/// 5. Statistics update and trigger checks happen at window boundaries.
pub struct MemCtrl {
    cfg: MemCtrlConfig,
    cp: CpHandle,
    gen_watch: Arc<AtomicU64>,
    cached_gen: u64,
    /// Flat per-DS parameter rows in schema order (stride `pstride`),
    /// refreshed on generation change. Offsets below are resolved once at
    /// construction against the plane's schema — a missing column is a
    /// loud wiring bug, never a silent zero.
    prows: Vec<u64>,
    pstride: usize,
    base_off: usize,
    limit_off: usize,
    rowbuf_off: usize,
    compress_off: usize,
    engine: PolicyEngine,
    /// Per-DS decisions memoized at refresh time when the active program
    /// is [`Program::per_ds_pure`] (both built-in memory programs are):
    /// the per-request path then reduces to one indexed copy. Empty when
    /// the program must be interpreted per request.
    dec_cache: Vec<Decision>,
    baseline: Arc<Program>,
    banks: Vec<Bank>,
    ranks: Vec<RankTracker>,
    bus_free_at: Time,
    queue: Pifo<Pending>,
    wb_q: VecDeque<Pending>,
    policy_dropped: u64,
    tick_armed: bool,
    next_tick_at: Time,
    window_armed: bool,
    // Per-DS window statistics.
    qlat_sum: Vec<u64>,
    qlat_cnt: Vec<u64>,
    win_bytes: Vec<u64>,
    active_ds: Vec<bool>,
    /// Lock-free recording path for the cumulative counters
    /// (`serv_cnt`/`row_hits`/`comp_saved`); the `cp` mutex is only taken
    /// at window boundaries.
    stats: StatsHandle,
    /// Measures the real span of each statistics window, so bandwidth
    /// divides by the time actually covered rather than the configured
    /// width (they differ when a window closes irregularly).
    window_clock: WindowedCounter,
    // Figure 11 recorders.
    rec_high: LatencySample,
    rec_low: LatencySample,
    // Per-DS-id recorders (fig_fault phase measurements).
    rec_ds: Vec<LatencySample>,
    served_total: u64,
}

impl MemCtrl {
    /// Creates a controller and returns it with its control-plane handle.
    pub fn new(cfg: MemCtrlConfig) -> (Self, CpHandle) {
        let cp = shared(mem_control_plane(cfg.max_ds, cfg.trigger_slots));
        let (gen_watch, stats, pstride, base_off, limit_off, rowbuf_off, compress_off) = {
            let mut guard = cp.lock();
            // The previously hardcoded two-class arbitration, as data: the
            // default program compiles through the same pipeline as
            // operator-installed policies.
            guard
                .set_default_policy(MEM_DEFAULT_POLICY)
                .expect("built-in memory policy compiles");
            let p = guard.params();
            (
                guard.generation_watch(),
                guard.stats_handle(),
                p.columns().len(),
                p.must_offset("addr_base"),
                p.must_offset("addr_limit"),
                p.must_offset("rowbuf"),
                p.must_offset("compress"),
            )
        };
        let baseline = Arc::new(
            cp.lock()
                .compile_policy(MEM_BASELINE_POLICY)
                .expect("baseline memory policy compiles"),
        );
        let initial = if cfg.priorities_enabled {
            cp.lock()
                .active_policy()
                .expect("default policy installed above")
        } else {
            Arc::clone(&baseline)
        };
        let nbanks = cfg.geometry.total_banks() as usize;
        let nranks = cfg.geometry.ranks as usize;
        let ctrl = MemCtrl {
            gen_watch,
            cached_gen: u64::MAX,
            prows: vec![0; cfg.max_ds * pstride],
            pstride,
            base_off,
            limit_off,
            rowbuf_off,
            compress_off,
            engine: PolicyEngine::new(initial, cfg.max_ds),
            dec_cache: Vec::new(),
            baseline,
            banks: vec![Bank::default(); nbanks],
            ranks: vec![RankTracker::default(); nranks],
            bus_free_at: Time::ZERO,
            queue: Pifo::new(),
            wb_q: VecDeque::new(),
            policy_dropped: 0,
            tick_armed: false,
            next_tick_at: Time::MAX,
            window_armed: false,
            qlat_sum: vec![0; cfg.max_ds],
            qlat_cnt: vec![0; cfg.max_ds],
            win_bytes: vec![0; cfg.max_ds],
            active_ds: vec![false; cfg.max_ds],
            stats,
            window_clock: WindowedCounter::new(),
            rec_high: LatencySample::new(),
            rec_low: LatencySample::new(),
            rec_ds: vec![LatencySample::new(); cfg.max_ds],
            served_total: 0,
            cp: cp.clone(),
            cfg,
        };
        (ctrl, cp)
    }

    /// The control-plane handle.
    pub fn control_plane(&self) -> &CpHandle {
        &self.cp
    }

    /// Total requests served.
    pub fn served_total(&self) -> u64 {
        self.served_total
    }

    /// Current queue depths `(urgent, rest)` — with the built-in program
    /// these are the paper's high and low priority classes.
    pub fn queue_depths(&self) -> (usize, usize) {
        let urgent = self.queue.urgent_len();
        (urgent, self.queue.len() - urgent)
    }

    /// Requests denied by a `drop` micro-op of the active policy (the
    /// built-in programs never drop).
    pub fn policy_dropped(&self) -> u64 {
        self.policy_dropped
    }

    /// Current write-buffer depth.
    pub fn write_queue_depth(&self) -> usize {
        self.wb_q.len()
    }

    /// The recorded queueing-delay samples in memory cycles (requires
    /// [`MemCtrlConfig::record_queueing`]).
    pub fn queueing_stats(&self) -> QueueingStats {
        let to_cycles = |s: &LatencySample| -> Vec<u64> {
            let mut s = s.clone();
            s.cdf()
                .into_iter()
                .flat_map(|(t, _)| std::iter::once(to_mem_cycles(t)))
                .collect()
        };
        QueueingStats {
            high: to_cycles(&self.rec_high),
            low: to_cycles(&self.rec_low),
        }
    }

    /// Mean queueing delay in memory cycles per priority class
    /// `(high, low)`.
    pub fn mean_queueing_cycles(&self) -> (f64, f64) {
        (
            self.rec_high.mean().as_ns() / self.cfg.timing.tck.as_ns(),
            self.rec_low.mean().as_ns() / self.cfg.timing.tck.as_ns(),
        )
    }

    /// Raw per-class latency samples (for CDF plotting).
    pub fn queueing_samples(&self) -> (&LatencySample, &LatencySample) {
        (&self.rec_high, &self.rec_low)
    }

    /// Drains and returns the queueing-delay samples recorded for `ds`
    /// since the last drain (requires [`MemCtrlConfig::record_queueing`]).
    /// Draining at phase boundaries gives per-phase percentiles — the
    /// fault experiments drain before/during/after an injection window.
    pub fn take_ds_queueing(&mut self, ds: DsId) -> LatencySample {
        let i = ds.index().min(self.cfg.max_ds - 1);
        std::mem::take(&mut self.rec_ds[i])
    }

    fn refresh_params(&mut self) {
        let gen = self.gen_watch.load(Ordering::Acquire);
        if gen == self.cached_gen {
            return;
        }
        let cp = self.cp.lock();
        for i in 0..self.cfg.max_ds {
            let row = cp
                .params()
                .row(DsId::new(i as u16))
                .expect("parameter table sized to max_ds rows");
            self.prows[i * self.pstride..(i + 1) * self.pstride].copy_from_slice(row);
        }
        // Baseline mode models the stock controller of Figure 11: no
        // control plane, so installed policies are ignored too.
        let prog = if self.cfg.priorities_enabled {
            cp.active_policy()
                .expect("memctrl sets a default policy at construction")
        } else {
            Arc::clone(&self.baseline)
        };
        self.engine.refresh(prog);
        self.dec_cache.clear();
        if self.engine.program().per_ds_pure() {
            // The request fields below are never read by a per-DS-pure
            // program; `decide` is a function of the parameter row alone.
            for i in 0..self.cfg.max_ds {
                let req = PolicyReq {
                    ds: DsId::new(i as u16),
                    class: ReqClass::Read,
                    size: 0,
                };
                let prow = &self.prows[i * self.pstride..(i + 1) * self.pstride];
                self.dec_cache
                    .push(self.engine.decide(&req, prow, &[], Time::ZERO));
            }
        }
        self.cached_gen = gen;
    }

    fn on_mem_req(&mut self, pkt: MemPacket, ctx: &mut Ctx<'_, PardEvent>) {
        #[cfg(feature = "prof")]
        let _t = crate::ctrl::prof::Scope::new(1);
        self.refresh_params();
        if audit::enabled() {
            // The controller is the terminal consumer of both the LLC →
            // DRAM ("mem") and the device → bridge → DRAM ("dma")
            // conservation domains.
            let domain = if pkt.dma { "dma" } else { "mem" };
            audit::packet_retire(
                domain,
                pkt.reply_to.raw(),
                pkt.id.0,
                pkt.ds.raw(),
                ctx.now(),
                "memctrl",
            );
        }
        let i = pkt.ds.index().min(self.cfg.max_ds - 1);
        self.active_ds[i] = true;

        let row = i * self.pstride;
        // LDom-physical -> machine-physical translation (parameter table).
        let limit = self.prows[row + self.limit_off].max(1);
        let base = self.prows[row + self.base_off];
        let maddr = pard_icn::MAddr::new(base.wrapping_add(pkt.addr.raw() % limit));
        let loc = self.cfg.geometry.decompose(maddr);

        // The active match-action program assigns the scheduling
        // treatment: rank + urgency with the built-in two-class program,
        // WFQ tags / drops / token-bucket charges with installed ones.
        // Per-DS-pure programs were evaluated once at refresh time.
        let decision = if let Some(cached) = self.dec_cache.get(i) {
            *cached
        } else {
            let class = if pkt.kind == pard_icn::MemKind::Writeback {
                ReqClass::Writeback
            } else if pkt.dma {
                ReqClass::Dma
            } else if pkt.kind == pard_icn::MemKind::Write {
                ReqClass::Write
            } else {
                ReqClass::Read
            };
            let req = PolicyReq {
                ds: DsId::new(i as u16),
                class,
                size: u64::from(pkt.size),
            };
            let srow = if self.engine.program().uses_stats() {
                self.stats
                    .cells()
                    .snapshot_row(req.ds)
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            let prow = &self.prows[row..row + self.pstride];
            self.engine.decide(&req, prow, &srow, ctx.now())
        };
        if let Some(key) = decision.bump {
            let _ = self.stats.add(DsId::new(i as u16), key, 1);
        }
        if !decision.admit {
            // A policy drop is a terminal denial: the packet was already
            // retired on arrival above, and requesters waiting on a
            // response get an immediate one so they never hang.
            self.policy_dropped += 1;
            if trace::enabled(TraceCat::Dram) {
                trace::emit(
                    TraceCat::Dram,
                    ctx.now(),
                    pkt.ds.raw(),
                    "drop",
                    &[("bytes", TraceVal::U(u64::from(pkt.size)))],
                );
            }
            if pkt.kind.wants_response() {
                let resp = MemResp {
                    id: pkt.id,
                    ds: pkt.ds,
                    addr: pkt.addr,
                    llc_hit: false,
                };
                ctx.send_at(pkt.reply_to, ctx.now(), PardEvent::MemResp(resp));
            }
            return;
        }

        let high = decision.urgent;
        let use_hp_buffer = self.cfg.priorities_enabled && self.prows[row + self.rowbuf_off] != 0;
        let pending = Pending {
            pkt,
            loc,
            enqueued_at: ctx.now(),
            high,
            use_hp_buffer,
        };
        // Writebacks drain from a separate write buffer with read priority
        // (standard controller practice); demand reads never queue behind
        // them.
        if pkt.kind == pard_icn::MemKind::Writeback {
            self.wb_q.push_back(pending);
        } else {
            self.queue.push(decision.rank, high, pending);
        }
        if trace::enabled(TraceCat::Dram) {
            trace::emit(
                TraceCat::Dram,
                ctx.now(),
                pkt.ds.raw(),
                "queue",
                &[
                    ("bank", TraceVal::U(u64::from(loc.bank))),
                    ("high", TraceVal::B(high)),
                    ("bytes", TraceVal::U(u64::from(pkt.size))),
                ],
            );
        }
        self.arm_tick(ctx);
    }

    /// Arms (or pulls forward) the scheduler wake-up. A request arriving
    /// while the controller sleeps until a far-future bank-ready time must
    /// be able to issue at the next cycle edge, so an earlier tick is
    /// scheduled alongside; stale ticks are harmless (they arbitrate and
    /// find nothing new to do).
    fn arm_tick(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        let at = ctx.now().align_up(MEM_CYCLE);
        if self.tick_armed && self.next_tick_at <= at {
            return;
        }
        self.tick_armed = true;
        self.next_tick_at = at;
        ctx.send_at(ctx.self_id(), at, PardEvent::Tick(TickKind::Dram));
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        #[cfg(feature = "prof")]
        let _t = crate::ctrl::prof::Scope::new(0);
        let now = ctx.now();
        if self.next_tick_at <= now {
            self.tick_armed = false;
            self.next_tick_at = Time::MAX;
        }

        // Data-bus admission: a column command only issues if its data
        // slot is not hopelessly behind the bus schedule — otherwise the
        // command queue stalls, which is where bus-bound queueing delay
        // comes from on real controllers. With the control plane enabled,
        // urgent entries (the built-in program's high class) bypass the
        // gate: the controller reserves data slots for them (the
        // data-path half of DiffServ).
        let gated = if self.cfg.priorities_enabled && self.queue.urgent_len() > 0 {
            false
        } else {
            !self.queue.is_empty() || !self.wb_q.is_empty()
        };
        if gated && self.bus_free_at > now + self.cfg.timing.tcl {
            let resume = (self.bus_free_at - self.cfg.timing.tcl).align_up(MEM_CYCLE);
            if !self.tick_armed || resume < self.next_tick_at {
                self.tick_armed = true;
                self.next_tick_at = resume;
                ctx.send_at(ctx.self_id(), resume, PardEvent::Tick(TickKind::Dram));
            }
            return;
        }

        // The arbiter serves the PIFO's lowest present rank, FR-FCFS
        // within it. With the built-in program that is §4.2 verbatim:
        // urgent entries rank 0, the rest rank 1, so while any
        // high-priority request is pending the low class does not issue —
        // which is what buys the 5.6x for high priority at the cost of
        // the paper's +33.6% for low priority. The baseline program ranks
        // everything 0: strict in-order service from one queue, like the
        // stock controller.
        //
        // FR-FCFS over a bounded reorder window: prefer a ready row-hit
        // among the first `window` entries of the front rank bucket, else
        // the oldest ready entry. Only the front bucket is inspected — a
        // lower rank must fully stall before the next rank gets a turn.
        fn pifo_pick(
            q: &mut Pifo<Pending>,
            banks: &[Bank],
            now: Time,
            window: usize,
        ) -> Option<(u64, Pending)> {
            let mut pick = None;
            for (i, p) in q.front_iter().enumerate().take(window) {
                let bank = &banks[p.loc.bank as usize];
                if !bank.ready_at(now) {
                    continue;
                }
                if bank.would_hit(p.loc.row, p.high) {
                    pick = Some(i);
                    break;
                }
                if pick.is_none() {
                    pick = Some(i);
                }
            }
            pick.and_then(|i| q.remove_front(i))
        }
        fn fr_fcfs_pick(
            q: &mut VecDeque<Pending>,
            banks: &[Bank],
            now: Time,
            window: usize,
        ) -> Option<Pending> {
            let mut pick = None;
            for (i, p) in q.iter().enumerate().take(window) {
                let bank = &banks[p.loc.bank as usize];
                if !bank.ready_at(now) {
                    continue;
                }
                if bank.would_hit(p.loc.row, p.high) {
                    pick = Some(i);
                    break;
                }
                if pick.is_none() {
                    pick = Some(i);
                }
            }
            pick.and_then(|i| q.remove(i))
        }

        const CLASS_WINDOW: usize = 16;
        // Forced write drain: if the write buffer is deep, writes take a
        // turn even while reads are pending (real controllers bound their
        // write occupancy the same way).
        let mut chosen = if self.wb_q.len() > 64 {
            fr_fcfs_pick(&mut self.wb_q, &self.banks, now, CLASS_WINDOW)
        } else {
            None
        };
        if chosen.is_none() {
            let window = if self.cfg.priorities_enabled {
                CLASS_WINDOW
            } else {
                self.cfg.baseline_window
            };
            if let Some((rank, p)) = pifo_pick(&mut self.queue, &self.banks, now, window) {
                // WFQ-ranked programs advance their virtual clock on
                // service. Per-DS-pure programs (decision cache active)
                // cannot contain `wfq`, so their virtual clock is dead
                // state — skip the bookkeeping on that hot path.
                if self.dec_cache.is_empty() {
                    self.engine.note_serve(rank);
                }
                chosen = Some(p);
            }
        }
        // Otherwise the write buffer drains when no read can issue.
        if chosen.is_none() {
            chosen = fr_fcfs_pick(&mut self.wb_q, &self.banks, now, CLASS_WINDOW);
        }

        if let Some(p) = chosen {
            self.serve(p, now, ctx);
        }

        if !self.queue.is_empty() || !self.wb_q.is_empty() {
            let next = self.next_interesting_time(now);
            if !self.tick_armed || next < self.next_tick_at || self.next_tick_at <= now {
                self.tick_armed = true;
                self.next_tick_at = next;
                ctx.send_at(ctx.self_id(), next, PardEvent::Tick(TickKind::Dram));
            }
        } else {
            self.tick_armed = false;
            self.next_tick_at = Time::MAX;
        }
    }

    fn next_interesting_time(&self, now: Time) -> Time {
        #[cfg(feature = "prof")]
        let _n = crate::ctrl::prof::Scope::new(1);
        // Earliest time a schedulable request's bank frees, but no sooner
        // than the next memory cycle. Only requests the arbiter could
        // actually pick next matter: the reorder window of the PIFO's
        // front rank bucket (lower ranks fully shadow higher ones), plus
        // the write buffer when it could drain.
        let floor = (now + MEM_CYCLE).align_up(MEM_CYCLE);
        let mut earliest = Time::MAX;
        let mut consider = |p: &Pending| {
            let b = &self.banks[p.loc.bank as usize];
            let t = if b.busy_until <= now {
                floor
            } else {
                b.busy_until.align_up(MEM_CYCLE)
            };
            earliest = earliest.min(t);
        };
        const WINDOW: usize = 16;
        if !self.queue.is_empty() {
            let window = if self.cfg.priorities_enabled {
                WINDOW
            } else {
                self.cfg.baseline_window
            };
            self.queue.front_iter().take(window).for_each(&mut consider);
        }
        let _ = &mut consider;
        if earliest == Time::MAX || self.wb_q.len() > 64 {
            for p in self.wb_q.iter().take(WINDOW) {
                let b = &self.banks[p.loc.bank as usize];
                let t = if b.busy_until <= now {
                    floor
                } else {
                    b.busy_until.align_up(MEM_CYCLE)
                };
                earliest = earliest.min(t);
            }
        }
        earliest.max(floor)
    }

    fn serve(&mut self, p: Pending, now: Time, ctx: &mut Ctx<'_, PardEvent>) {
        #[cfg(feature = "prof")]
        let _t = crate::ctrl::prof::Scope::new(2);
        let timing = self.cfg.timing;
        let rank = p.loc.rank as usize;
        let bank_idx = p.loc.bank as usize;
        let service = self.banks[bank_idx].schedule(
            p.loc.row,
            now,
            p.high,
            p.use_hp_buffer,
            &timing,
            &mut self.ranks[rank],
        );

        // MXT-style compression (paper §8): transfers of DS-ids with the
        // `compress` parameter set move half the bus beats (2:1 typical
        // MXT ratio), modelled as halved burst counts. Enabled per DS-id,
        // differentiated like every other PARD service.
        let raw_bursts = timing.bursts_for(p.pkt.size);
        let i0 = p.pkt.ds.index().min(self.cfg.max_ds - 1);
        let compress_on = self.prows[i0 * self.pstride + self.compress_off] != 0;
        let nbursts = if self.cfg.priorities_enabled && compress_on {
            let compressed = raw_bursts.div_ceil(2);
            let saved = (raw_bursts - compressed) * u64::from(timing.burst_bytes());
            let _ = self
                .stats
                .add(DsId::new(i0 as u16), MSTAT_COMP_SAVED, saved);
            compressed
        } else {
            raw_bursts
        };
        let mut transfer = timing.burst_time() * nbursts;
        if fault::enabled(FaultClass::Dram) {
            // Injected bank slowdown / transient stall: the extra service
            // latency rides on the transfer, so it extends data-bus
            // occupancy (and the bank hold for long bursts) and
            // backpressures the command queues — no packet is created,
            // dropped, or reordered.
            transfer += fault::dram_extra_delay(u32::from(p.loc.bank), now);
        }
        let mut data_done = service.data_ready + transfer;
        // Data-bus serialisation across banks.
        if self.bus_free_at > service.data_ready {
            data_done += self.bus_free_at - service.data_ready;
        }
        self.bus_free_at = data_done;
        // A single-burst access frees the bank after tCCD (DDR allows
        // back-to-back column commands); a long DMA burst streams from the
        // sense amplifiers and holds the bank to the end.
        self.banks[bank_idx].busy_until = if nbursts <= 1 {
            service.bank_free
        } else {
            data_done
        };

        // Statistics: queueing delay is enqueue -> command issue.
        let qdelay = now - p.enqueued_at;
        let i = p.pkt.ds.index().min(self.cfg.max_ds - 1);
        self.qlat_sum[i] += qdelay.units();
        self.qlat_cnt[i] += 1;
        self.win_bytes[i] += u64::from(p.pkt.size);
        // Cumulative counters go straight into the lock-free stats cells;
        // the window-rate columns (avg_qlat, bandwidth) still need the
        // local epoch accumulators above.
        let ds_row = DsId::new(i as u16);
        let _ = self.stats.add(ds_row, MSTAT_SERV_CNT, 1);
        if service.row_hit {
            let _ = self.stats.add(ds_row, MSTAT_ROW_HITS, 1);
        }
        self.served_total += 1;
        if trace::enabled(TraceCat::Dram) {
            trace::emit(
                TraceCat::Dram,
                now,
                p.pkt.ds.raw(),
                "issue",
                &[
                    ("bank", TraceVal::U(u64::from(p.loc.bank))),
                    ("qdelay_cycles", TraceVal::U(to_mem_cycles(qdelay))),
                    ("row_hit", TraceVal::B(service.row_hit)),
                    ("high", TraceVal::B(p.high)),
                ],
            );
        }
        if self.cfg.record_queueing {
            if p.high {
                self.rec_high.record(qdelay);
            } else {
                self.rec_low.record(qdelay);
            }
            self.rec_ds[i].record(qdelay);
        }

        if p.pkt.kind.wants_response() {
            let resp = MemResp {
                id: p.pkt.id,
                ds: p.pkt.ds,
                addr: p.pkt.addr,
                llc_hit: false,
            };
            ctx.send_at(p.pkt.reply_to, data_done, PardEvent::MemResp(resp));
        }
    }

    fn arm_window(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        if !self.window_armed {
            self.window_armed = true;
            self.window_clock.open_window_at(ctx.now());
            let window = self.cfg.window;
            ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
        }
    }

    fn on_window(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        let now = ctx.now();
        // Divide by the real span of the window just closed: a window that
        // closes irregularly (e.g. a delayed tick) must not be rated as if
        // it covered the configured width.
        self.window_clock.roll(now);
        let span = self.window_clock.last_window_span();
        let secs = if span == Time::ZERO {
            self.cfg.window.as_secs()
        } else {
            span.as_secs()
        };
        let mut window_bytes_total = 0u64;
        {
            let mut cp = self.cp.lock();
            for i in 0..self.cfg.max_ds {
                if !self.active_ds[i] {
                    continue;
                }
                let ds = DsId::new(i as u16);
                if let Some(avg_units) = self.qlat_sum[i].checked_div(self.qlat_cnt[i]) {
                    let avg_cycles = avg_units / MEM_CYCLE.units();
                    let _ = cp.stats().set(ds, MSTAT_AVG_QLAT, avg_cycles);
                }
                let mbps = (self.win_bytes[i] as f64 / secs / 1e6) as u64;
                let _ = cp.stats().set(ds, MSTAT_BANDWIDTH, mbps);
                cp.evaluate_triggers(ds, now);
                self.qlat_sum[i] = 0;
                self.qlat_cnt[i] = 0;
                window_bytes_total += self.win_bytes[i];
                self.win_bytes[i] = 0;
            }
        }
        if audit::enabled() {
            // Windowed-bandwidth ceiling: the bytes served in a window
            // cannot exceed what the data bus can physically move in its
            // real span. MXT compression halves bus beats, so delivered
            // (uncompressed) bytes may reach 2x the wire rate; one extra
            // max-size DMA chunk of slack absorbs window-edge transfers.
            let timing = self.cfg.timing;
            let peak_bps =
                f64::from(timing.burst_bytes()) / timing.burst_time().as_secs().max(1e-12);
            let ceiling = (2.0 * peak_bps * secs) as u64 + (128 << 10);
            if window_bytes_total > ceiling {
                audit::violation(
                    audit::AuditKind::Quota,
                    now,
                    u16::MAX,
                    "dram_bandwidth_ceiling",
                    &[
                        ("window_bytes", TraceVal::U(window_bytes_total)),
                        ("ceiling_bytes", TraceVal::U(ceiling)),
                    ],
                );
            }
        }
        let window = self.cfg.window;
        ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
    }
}

impl Component<PardEvent> for MemCtrl {
    fn name(&self) -> &str {
        "memctrl"
    }

    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        self.arm_window(ctx);
        match ev {
            PardEvent::MemReq(pkt) => self.on_mem_req(pkt, ctx),
            PardEvent::Tick(TickKind::Dram) => self.on_tick(ctx),
            PardEvent::Tick(TickKind::CpWindow) => self.on_window(ctx),
            PardEvent::MemResp(_) => {} // loop-back responses are ignorable
            other => audit::unexpected_event(
                "memctrl",
                other.kind_label(),
                ctx.now(),
                other.ds().map_or(u16::MAX, DsId::raw),
            ),
        }
    }

    pard_sim::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_icn::{LAddr, MemKind, PacketId};
    use pard_sim::{ComponentId, Simulation};

    struct Collector {
        responses: Vec<(PacketId, Time)>,
    }

    impl Component<PardEvent> for Collector {
        fn name(&self) -> &str {
            "collector"
        }
        fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
            if let PardEvent::MemResp(r) = ev {
                self.responses.push((r.id, ctx.now()));
            }
        }
        pard_sim::impl_as_any!();
    }

    struct Rig {
        sim: Simulation<PardEvent>,
        ctrl: ComponentId,
        collector: ComponentId,
        cp: CpHandle,
    }

    fn rig(cfg: MemCtrlConfig) -> Rig {
        let mut sim = Simulation::new();
        let (ctrl, cp) = MemCtrl::new(cfg);
        let ctrl = sim.add_component(Box::new(ctrl));
        let collector = sim.add_component(Box::new(Collector {
            responses: Vec::new(),
        }));
        Rig {
            sim,
            ctrl,
            collector,
            cp,
        }
    }

    fn read(rig: &Rig, id: u64, ds: u16, addr: u64) -> PardEvent {
        PardEvent::MemReq(MemPacket {
            id: PacketId(id),
            ds: DsId::new(ds),
            addr: LAddr::new(addr),
            kind: MemKind::Read,
            size: 64,
            reply_to: rig.collector,
            issued_at: Time::ZERO,
            dma: false,
        })
    }

    #[test]
    fn single_read_latency_is_activate_cas_burst() {
        let mut r = rig(MemCtrlConfig::default());
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 1, 0, 0));
        r.sim.run_until(Time::from_us(1));
        let t = DramTiming::ddr3_1600_11();
        r.sim.with_component::<Collector, _, _>(r.collector, |c| {
            assert_eq!(c.responses.len(), 1);
            let (_, at) = c.responses[0];
            assert_eq!(at, t.trcd + t.tcl + t.burst_time());
        });
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut r = rig(MemCtrlConfig::default());
        // Same row twice, then a different row in the same bank.
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 1, 0, 0));
        r.sim.run_until(Time::from_us(1));
        let t0 = Time::from_us(1);
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 2, 0, 64));
        r.sim.run_until(Time::from_us(2));
        let t1 = Time::from_us(2);
        // 16 KB stride = same bank (16 banks x 1 KB rows), different row.
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 3, 0, 16 * 1024));
        r.sim.run_until(Time::from_us(3));
        r.sim.with_component::<Collector, _, _>(r.collector, |c| {
            let hit_latency = c.responses[1].1 - t0;
            let miss_latency = c.responses[2].1 - t1;
            assert!(
                hit_latency < miss_latency,
                "row hit {hit_latency:?} !< row miss {miss_latency:?}"
            );
        });
    }

    #[test]
    fn address_translation_separates_ldoms() {
        let mut r = rig(MemCtrlConfig::default());
        {
            let mut cp = r.cp.lock();
            cp.set_param(DsId::new(1), "addr_base", 0).unwrap();
            cp.set_param(DsId::new(1), "addr_limit", 1 << 30).unwrap();
            cp.set_param(DsId::new(2), "addr_base", 1 << 30).unwrap();
            cp.set_param(DsId::new(2), "addr_limit", 1 << 30).unwrap();
        }
        // Both LDoms read "address 0"; they land in different DRAM rows,
        // observable through bank behaviour: ds2's read of laddr 0 should
        // open a different row than ds1's (no row hit).
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 1, 1, 0));
        r.sim.run_until(Time::from_us(1));
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 2, 2, 0));
        r.sim.run_until(Time::from_us(2));
        let t = DramTiming::ddr3_1600_11();
        r.sim.with_component::<Collector, _, _>(r.collector, |c| {
            // ds2 at 1 GiB maps to bank 0 row 65536: same bank as ds1's
            // row 0 (1 GiB / 1 KiB / 16 banks = 65536) -> row conflict.
            let lat = c.responses[1].1 - Time::from_us(1);
            assert!(lat >= t.trp + t.trcd + t.tcl, "expected a row conflict");
        });
    }

    #[test]
    fn high_priority_jumps_the_queue() {
        let cfg = MemCtrlConfig {
            record_queueing: true,
            ..MemCtrlConfig::default()
        };
        let mut r = rig(cfg);
        {
            let mut cp = r.cp.lock();
            cp.set_param(DsId::new(7), "priority", 1).unwrap();
            cp.set_param(DsId::new(7), "rowbuf", 1).unwrap();
        }
        // Flood with low-priority traffic to one bank region, inject
        // high-priority requests mid-stream.
        for i in 0..50u64 {
            r.sim
                .post(r.ctrl, Time::from_ns(i), read(&r, i, 1, (i % 4) * 64));
        }
        for i in 0..5u64 {
            r.sim.post(
                r.ctrl,
                Time::from_ns(200 + i),
                read(&r, 100 + i, 7, 1024 + i * 64),
            );
        }
        r.sim.run_until(Time::from_us(50));
        r.sim.with_component::<MemCtrl, _, _>(r.ctrl, |m| {
            let (high, low) = m.mean_queueing_cycles();
            assert!(
                high < low,
                "high-priority mean {high:.1} !< low-priority mean {low:.1}"
            );
            assert_eq!(m.served_total(), 55);
            assert_eq!(m.queue_depths(), (0, 0));
        });
    }

    #[test]
    fn baseline_mode_ignores_priorities() {
        let cfg = MemCtrlConfig {
            priorities_enabled: false,
            record_queueing: true,
            ..MemCtrlConfig::default()
        };
        let mut r = rig(cfg);
        {
            let mut cp = r.cp.lock();
            cp.set_param(DsId::new(7), "priority", 1).unwrap();
        }
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 1, 7, 0));
        r.sim.run_until(Time::from_us(1));
        r.sim.with_component::<MemCtrl, _, _>(r.ctrl, |m| {
            let stats = m.queueing_stats();
            assert!(stats.high.is_empty(), "everything is low in baseline");
            assert!(!stats.low.is_empty());
        });
    }

    #[test]
    fn writebacks_get_no_response_but_count() {
        let mut r = rig(MemCtrlConfig::default());
        let wb = PardEvent::MemReq(MemPacket {
            id: PacketId(1),
            ds: DsId::new(1),
            addr: LAddr::new(0),
            kind: MemKind::Writeback,
            size: 64,
            reply_to: r.collector,
            issued_at: Time::ZERO,
            dma: false,
        });
        r.sim.post(r.ctrl, Time::ZERO, wb);
        r.sim.run_until(Time::from_us(1));
        r.sim.with_component::<Collector, _, _>(r.collector, |c| {
            assert!(c.responses.is_empty());
        });
        r.sim
            .with_component::<MemCtrl, _, _>(r.ctrl, |m| assert_eq!(m.served_total(), 1));
    }

    #[test]
    fn window_publishes_statistics() {
        let cfg = MemCtrlConfig {
            window: Time::from_us(10),
            ..MemCtrlConfig::default()
        };
        let mut r = rig(cfg);
        for i in 0..16u64 {
            r.sim
                .post(r.ctrl, Time::from_ns(i * 10), read(&r, i, 3, i * 1024));
        }
        r.sim.run_until(Time::from_us(40));
        let cp = r.cp.lock();
        assert_eq!(cp.stat(DsId::new(3), "serv_cnt").unwrap(), 16);
        // 16 x 64B in one window; bandwidth was recorded in some window.
        // (value may be 0 in later windows; serv_cnt is cumulative).
        assert!(cp.stat(DsId::new(3), "row_hits").is_ok());
    }

    #[test]
    fn compression_halves_burst_occupancy_for_designated_ds() {
        // The §8 MXT extension: identical DMA bursts, one DS-id compressed.
        let mut r = rig(MemCtrlConfig::default());
        r.cp.lock().set_param(DsId::new(2), "compress", 1).unwrap();
        let burst = |id, ds| {
            PardEvent::MemReq(MemPacket {
                id: PacketId(id),
                ds: DsId::new(ds),
                addr: LAddr::new(0),
                kind: MemKind::Read,
                size: 4096,
                reply_to: r.collector,
                issued_at: Time::ZERO,
                dma: true,
            })
        };
        r.sim.post(r.ctrl, Time::ZERO, burst(1, 1));
        r.sim.run_until(Time::from_us(2));
        r.sim.post(r.ctrl, Time::ZERO, burst(2, 2));
        r.sim.run_until(Time::from_us(4));
        r.sim.with_component::<Collector, _, _>(r.collector, |c| {
            let plain = c.responses[0].1;
            let compressed = c.responses[1].1 - Time::from_us(2);
            assert!(
                compressed < plain,
                "compressed {compressed:?} !< plain {plain:?}"
            );
        });
        // The saved bytes show up in the statistics table at the window.
        r.sim.run_until(Time::from_ms(1));
        assert_eq!(r.cp.lock().stat(DsId::new(2), "comp_saved").unwrap(), 2048);
        assert_eq!(r.cp.lock().stat(DsId::new(1), "comp_saved").unwrap(), 0);
    }

    #[test]
    fn installed_wfq_policy_favors_the_heavier_flow() {
        let cfg = MemCtrlConfig {
            record_queueing: true,
            ..MemCtrlConfig::default()
        };
        let mut r = rig(cfg);
        {
            let mut cp = r.cp.lock();
            cp.set_param(DsId::new(1), "wfq_weight", 1).unwrap();
            cp.set_param(DsId::new(2), "wfq_weight", 8).unwrap();
            cp.install_policy("when all do rank wfq(param.wfq_weight)")
                .unwrap();
        }
        // An interleaved backlog from both DS-ids arrives at once; the
        // weight-8 flow's start tags advance 8x slower, so its requests
        // consistently outrank (and outrun) the weight-1 flow's.
        for i in 0..40u64 {
            r.sim.post(r.ctrl, Time::from_ns(i), read(&r, i, 1, i * 64));
            r.sim
                .post(r.ctrl, Time::from_ns(i), read(&r, 100 + i, 2, (1 << 20) | (i * 64)));
        }
        r.sim.run_until(Time::from_us(50));
        r.sim.with_component::<MemCtrl, _, _>(r.ctrl, |m| {
            let light = m.take_ds_queueing(DsId::new(1)).mean();
            let heavy = m.take_ds_queueing(DsId::new(2)).mean();
            assert!(
                heavy < light,
                "weight-8 mean queueing {heavy:?} !< weight-1 mean {light:?}"
            );
        });
    }

    #[test]
    fn installed_drop_policy_denies_with_immediate_response() {
        let mut r = rig(MemCtrlConfig::default());
        r.cp.lock()
            .install_policy("when ds == 5 do drop\nwhen all do rank 0")
            .unwrap();
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 1, 5, 0));
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 2, 1, 64));
        r.sim.run_until(Time::from_us(1));
        r.sim.with_component::<Collector, _, _>(r.collector, |c| {
            // Both requesters got responses: the denial immediately, the
            // admitted one after DRAM service.
            assert_eq!(c.responses.len(), 2);
            assert_eq!(c.responses[0], (PacketId(1), Time::ZERO));
        });
        r.sim.with_component::<MemCtrl, _, _>(r.ctrl, |m| {
            assert_eq!(m.policy_dropped(), 1);
            assert_eq!(m.served_total(), 1);
        });
    }

    #[test]
    fn clearing_an_installed_policy_reverts_to_the_builtin() {
        let mut r = rig(MemCtrlConfig::default());
        r.cp.lock()
            .install_policy("when all do drop")
            .unwrap();
        r.sim.post(r.ctrl, Time::ZERO, read(&r, 1, 1, 0));
        r.sim.run_until(Time::from_us(1));
        r.cp.lock().clear_policy();
        r.sim.post(r.ctrl, Time::from_us(1), read(&r, 2, 1, 64));
        r.sim.run_until(Time::from_us(2));
        r.sim.with_component::<MemCtrl, _, _>(r.ctrl, |m| {
            assert_eq!(m.policy_dropped(), 1);
            assert_eq!(m.served_total(), 1);
        });
    }

    #[test]
    fn dma_bursts_occupy_the_bus_longer() {
        let mut r = rig(MemCtrlConfig::default());
        let burst = PardEvent::MemReq(MemPacket {
            id: PacketId(1),
            ds: DsId::new(1),
            addr: LAddr::new(0),
            kind: MemKind::Read,
            size: 4096,
            reply_to: r.collector,
            issued_at: Time::ZERO,
            dma: true,
        });
        r.sim.post(r.ctrl, Time::ZERO, burst);
        r.sim.run_until(Time::from_us(2));
        let t = DramTiming::ddr3_1600_11();
        r.sim.with_component::<Collector, _, _>(r.collector, |c| {
            let (_, at) = c.responses[0];
            assert_eq!(at, t.trcd + t.tcl + t.burst_time() * 64);
        });
    }
}

/// Crude section profiler, enabled by the `prof` feature (dev only).
#[cfg(feature = "prof")]
pub mod prof {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    pub static NS: [AtomicU64; 6] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];
    pub static CALLS: [AtomicU64; 6] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    pub struct Scope {
        which: usize,
        start: Instant,
    }
    impl Scope {
        pub fn new(which: usize) -> Self {
            Scope {
                which,
                start: Instant::now(),
            }
        }
    }
    impl Drop for Scope {
        fn drop(&mut self) {
            NS[self.which].fetch_add(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            CALLS[self.which].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Dumps and resets the counters.
    pub fn dump() {
        for (i, name) in ["on_tick", "next_interesting_time", "serve"]
            .iter()
            .enumerate()
        {
            let ns = NS[i].swap(0, Ordering::Relaxed);
            let calls = CALLS[i].swap(0, Ordering::Relaxed);
            eprintln!(
                "{name}: {calls} calls, {:.1} ms total, {:.0} ns/call",
                ns as f64 / 1e6,
                ns as f64 / calls.max(1) as f64
            );
        }
    }
}
