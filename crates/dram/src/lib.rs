//! # pard-dram — the memory controller and its control plane
//!
//! Implements the paper's Figure 5: a DDR3-1600 memory controller whose
//! control plane provides, per DS-id:
//!
//! * **address mapping** — each fully-virtualised LDom sees a physical
//!   address space starting at zero; the parameter table holds the base /
//!   limit pair that translates LDom-physical to DRAM-physical addresses,
//! * **scheduling priority** — requests enter one of two priority queues;
//!   the arbiter serves *high-priority first*, then FR-FCFS [Rixner et al.]
//!   within a class,
//! * **row-buffer mask bits** — each bank carries one extra row buffer
//!   reserved for high-priority requests (the paper's nod to NEC VCM), so
//!   low-priority streams cannot destroy high-priority row locality,
//! * **statistics** — per-DS-id average queueing latency, served-request
//!   count, and bandwidth, feeding `memory latency ⇒ …` triggers (Table 3).
//!
//! The controller also exposes the per-request queueing-delay distribution
//! that Figure 11 plots (baseline vs. high/low priority with the control
//! plane enabled).
//!
//! # Paper mapping
//!
//! | paper | here |
//! |---|---|
//! | Fig. 5 (memory control plane, MEMORY_CP, cpa1) | `cpdef` tables |
//! | §3.3 per-LDom base/limit translation | parameter-table address map |
//! | §3.3 priority queues + FR-FCFS | the arbiter in `ctrl` |
//! | §3.3 reserved high-priority row buffer | per-bank HP buffer in `bank` |
//! | Table 3 `memory latency ⇒ …` triggers | `avg_qlat` / `bandwidth` columns |
//! | Fig. 11 queueing-delay CDF | the controller's delay distribution |

#![warn(missing_docs)]

mod bank;
mod cpdef;
mod ctrl;
mod geometry;
mod timing;

pub use bank::{Bank, RankTracker};
pub use cpdef::{
    mem_control_plane, MEM_BASELINE_POLICY, MEM_DEFAULT_POLICY, MEM_PARAM_COLUMNS,
    MEM_STATS_COLUMNS, MSTAT_AVG_QLAT, MSTAT_BANDWIDTH, MSTAT_COMP_SAVED, MSTAT_ROW_HITS,
    MSTAT_SERV_CNT,
};
pub use ctrl::{MemCtrl, MemCtrlConfig, QueueingStats};
pub use geometry::{BankAddr, DramGeometry};
pub use timing::DramTiming;

/// Re-export of the dev profiler dump (enabled by the `prof` feature).
#[cfg(feature = "prof")]
pub use ctrl::prof::dump as ctrl_prof_dump;
