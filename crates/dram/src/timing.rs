//! DDR3 timing parameters.

use pard_icn::{mem_cycles, MEM_CYCLE};
use pard_sim::Time;

/// DDR3 timing parameters (Table 2: DDR3-1600 11-11-11, Micron
/// MT41J512M8-class 4 Gbit chips).
///
/// All values are stored as [`Time`] (quarter-nanoseconds), already rounded
/// to memory-cycle multiples where JEDEC specifies cycles.
///
/// # Example
///
/// ```
/// use pard_dram::DramTiming;
/// let t = DramTiming::ddr3_1600_11();
/// assert_eq!(t.tcl.as_ns(), 13.75);
/// assert_eq!(t.burst_time().as_ns(), 5.0); // BL8 on an 8n-prefetch bus
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Memory-bus clock period (tCK).
    pub tck: Time,
    /// RAS-to-CAS delay (activate → read/write).
    pub trcd: Time,
    /// CAS latency (read → first data).
    pub tcl: Time,
    /// Row-precharge time.
    pub trp: Time,
    /// Minimum row-active time (activate → precharge).
    pub tras: Time,
    /// Activate-to-activate delay, different banks of the same rank.
    pub trrd: Time,
    /// Column-command spacing (CAS-to-CAS, same bank).
    pub tccd: Time,
    /// Burst length in beats.
    pub burst_len: u32,
    /// Data-bus width in bytes.
    pub bus_bytes: u32,
}

impl DramTiming {
    /// The paper's Table 2 configuration: DDR3-1600 11-11-11,
    /// tRCD = tCL = tRP = 13.75 ns, tRAS = 35 ns, tRRD = 6 ns, BL8.
    pub fn ddr3_1600_11() -> Self {
        DramTiming {
            tck: MEM_CYCLE,
            trcd: mem_cycles(11),
            tcl: mem_cycles(11),
            trp: mem_cycles(11),
            tras: Time::from_ns(35),
            trrd: Time::from_ns(6),
            tccd: mem_cycles(4),
            burst_len: 8,
            bus_bytes: 8,
        }
    }

    /// Time to stream one burst on the data bus: `BL/2 × tCK` on a
    /// double-data-rate bus.
    pub fn burst_time(&self) -> Time {
        self.tck * u64::from(self.burst_len / 2)
    }

    /// Bytes delivered per burst.
    pub fn burst_bytes(&self) -> u32 {
        self.burst_len * self.bus_bytes
    }

    /// Number of bursts needed for a payload of `bytes`.
    pub fn bursts_for(&self, bytes: u32) -> u64 {
        u64::from(bytes.div_ceil(self.burst_bytes()).max(1))
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr3_1600_11()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let t = DramTiming::ddr3_1600_11();
        assert_eq!(t.tck.as_ns(), 1.25);
        assert_eq!(t.trcd.as_ns(), 13.75);
        assert_eq!(t.trp.as_ns(), 13.75);
        assert_eq!(t.tras.as_ns(), 35.0);
        assert_eq!(t.trrd.as_ns(), 6.0);
    }

    #[test]
    fn burst_math() {
        let t = DramTiming::ddr3_1600_11();
        assert_eq!(t.burst_bytes(), 64);
        assert_eq!(t.bursts_for(64), 1);
        assert_eq!(t.bursts_for(65), 2);
        assert_eq!(t.bursts_for(4096), 64);
        assert_eq!(t.bursts_for(1), 1);
        assert_eq!(t.burst_time(), mem_cycles(4));
    }
}
