//! Seeded randomized tests of the I/O subsystem's pure logic.

use pard_icn::DsId;
use pard_io::{mac_to_u64, u64_to_mac, ApicRoutes};
use pard_sim::check::{bytes, cases, vec_of, DEFAULT_CASES};
use pard_sim::rng::Rng;
use pard_sim::ComponentId;

/// MAC packing round-trips for any address.
#[test]
fn mac_codec_round_trips() {
    cases("io.mac_codec_round_trips", DEFAULT_CASES, |rng| {
        let mac = bytes::<6, _>(rng);
        assert_eq!(u64_to_mac(mac_to_u64(mac)), mac);
    });
}

/// Packed MACs stay within 48 bits and are injective on random pairs.
#[test]
fn mac_packing_is_48_bit_and_injective() {
    cases("io.mac_packing_is_48_bit_and_injective", DEFAULT_CASES, |rng| {
        let a = bytes::<6, _>(rng);
        let b = bytes::<6, _>(rng);
        let pa = mac_to_u64(a);
        let pb = mac_to_u64(b);
        assert!(pa < (1u64 << 48));
        assert_eq!(pa == pb, a == b);
    });
}

/// APIC route tables behave like a map keyed by DS-id, for any
/// interleaving of set/clear operations.
#[test]
fn apic_routes_are_a_map() {
    cases("io.apic_routes_are_a_map", DEFAULT_CASES, |rng| {
        let ops = vec_of(rng, 1..100, |r| {
            (
                r.gen_range(0u16..16),
                r.gen_range(0u32..8),
                r.gen_bool(0.5),
            )
        });
        let routes = ApicRoutes::new(16);
        let mut model = std::collections::HashMap::new();
        for &(ds, core, clear) in &ops {
            if clear {
                routes.clear(DsId::new(ds));
                model.remove(&ds);
            } else {
                routes.set(DsId::new(ds), ComponentId::from_raw(core));
                model.insert(ds, core);
            }
            for d in 0..16u16 {
                let expected = model.get(&d).map(|&c| ComponentId::from_raw(c));
                assert_eq!(routes.get(DsId::new(d)), expected);
            }
        }
    });
}
