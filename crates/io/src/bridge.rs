//! The I/O bridge and its control plane.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pard_cp::policy::{Decision, PolicyEngine, PolicyReq, ReqClass};
use pard_cp::{shared, ColumnDef, ControlPlane, CpHandle, CpType, DsTable, StatKey, StatsHandle};
use pard_icn::{cpu_cycles, DsId, PardEvent, TickKind};
use pard_sim::trace::{self, TraceCat, TraceVal};
use pard_sim::{audit, Component, ComponentId, Ctx, Time};

/// Configuration of the [`IoBridge`].
#[derive(Debug, Clone)]
pub struct IoBridgeConfig {
    /// Latency added per forwarded packet (PCIe-ish hop).
    pub hop_latency: Time,
    /// Statistics-window length.
    pub window: Time,
    /// DS-id rows in the control-plane tables.
    pub max_ds: usize,
    /// Trigger-table slots.
    pub trigger_slots: usize,
}

impl Default for IoBridgeConfig {
    fn default() -> Self {
        IoBridgeConfig {
            hop_latency: cpu_cycles(200),
            window: Time::from_us(100),
            max_ds: 256,
            trigger_slots: 16,
        }
    }
}

/// The built-in bridge policy: traffic for a disabled DS-id is dropped,
/// everything else forwards — the pre-policy `enable` gate re-expressed as
/// a match-action program. Installed programs can add per-class admission
/// control (e.g. a token-bucket `charge … else defer` on DMA only).
pub const BRIDGE_DEFAULT_POLICY: &str = "when param.enable == 0 do drop\nwhen all do rank 0";

/// Key of `dma_bytes` in the bridge statistics table.
pub const BSTAT_DMA_BYTES: StatKey = StatKey::at(0);
/// Key of `reqs`.
pub const BSTAT_REQS: StatKey = StatKey::at(1);

/// Builds the I/O-bridge control plane (`type` code `B`, Fig. 6).
///
/// Parameters: `enable` (1 = forward traffic for the DS-id; 0 = drop — the
/// bridge-level isolation knob). Statistics: per-DS-id `dma_bytes` and
/// `reqs` over the run.
pub fn bridge_control_plane(max_ds: usize, trigger_slots: usize) -> ControlPlane {
    let params = DsTable::new(
        "parameter",
        vec![ColumnDef::with_default("enable", 1)],
        max_ds,
    );
    let stats = DsTable::new(
        "statistics",
        vec![ColumnDef::new("dma_bytes"), ColumnDef::new("reqs")],
        max_ds,
    );
    ControlPlane::new("BRIDGE_CP", CpType::Bridge, params, stats, trigger_slots)
}

/// The I/O bridge: the accounting hop between cores, devices, and memory.
///
/// * Core-to-device traffic ([`PardEvent::DiskReq`], [`PardEvent::Pio`]) is
///   forwarded to the IDE controller.
/// * Device-to-memory DMA ([`PardEvent::MemReq`] with `dma = true`) is
///   forwarded to the memory controller, accumulating per-DS-id byte
///   counts in the control plane's statistics table. Responses flow from
///   the memory controller straight back to the device (`reply_to` is
///   preserved), so the bridge is a one-way accounting hop.
pub struct IoBridge {
    cfg: IoBridgeConfig,
    cp: CpHandle,
    /// Lock-free accounting path into the control plane's stats cells.
    stats: StatsHandle,
    gen_watch: Arc<AtomicU64>,
    cached_gen: u64,
    /// Parameter rows cached flat against the generation counter, so the
    /// per-packet policy decision takes no lock.
    prows: Vec<u64>,
    pstride: usize,
    engine: PolicyEngine,
    ide: ComponentId,
    mem_ctrl: ComponentId,
    /// Per-window activity marker: which DS-ids saw DMA this window (the
    /// rollover only evaluates triggers for rows that moved).
    win_reqs: Vec<u64>,
    dropped: u64,
    window_armed: bool,
}

impl IoBridge {
    /// Creates a bridge and returns it with its control-plane handle.
    pub fn new(cfg: IoBridgeConfig) -> (Self, CpHandle) {
        let cp = shared(bridge_control_plane(cfg.max_ds, cfg.trigger_slots));
        let (gen_watch, stats, pstride, initial) = {
            let mut guard = cp.lock();
            guard
                .set_default_policy(BRIDGE_DEFAULT_POLICY)
                .expect("built-in bridge policy compiles against its own schema");
            (
                guard.generation_watch(),
                guard.stats_handle(),
                guard.params().columns().len(),
                guard
                    .active_policy()
                    .expect("default policy installed above"),
            )
        };
        let bridge = IoBridge {
            stats,
            gen_watch,
            cached_gen: u64::MAX,
            prows: vec![0; cfg.max_ds * pstride],
            pstride,
            engine: PolicyEngine::new(initial, cfg.max_ds),
            ide: ComponentId::UNWIRED,
            mem_ctrl: ComponentId::UNWIRED,
            win_reqs: vec![0; cfg.max_ds],
            dropped: 0,
            window_armed: false,
            cp: cp.clone(),
            cfg,
        };
        (bridge, cp)
    }

    /// Wires the downstream IDE controller.
    pub fn set_ide(&mut self, id: ComponentId) {
        self.ide = id;
    }

    /// Wires the memory controller.
    pub fn set_mem_ctrl(&mut self, id: ComponentId) {
        self.mem_ctrl = id;
    }

    /// The control-plane handle.
    pub fn control_plane(&self) -> &CpHandle {
        &self.cp
    }

    /// Packets dropped because their DS-id was disabled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Evaluates the active policy against one packet. Out-of-table
    /// DS-ids forward with the default decision (admitted, undeferred) —
    /// the bridge cannot police rows it has no table state for.
    fn decide(&mut self, ds: DsId, class: ReqClass, size: u64, now: Time) -> Decision {
        let gen = self.gen_watch.load(Ordering::Acquire);
        if gen != self.cached_gen {
            let cp = self.cp.lock();
            for i in 0..self.cfg.max_ds {
                let row = cp
                    .params()
                    .row(DsId::new(i as u16))
                    .expect("parameter table is sized to max_ds rows");
                self.prows[i * self.pstride..(i + 1) * self.pstride].copy_from_slice(row);
            }
            self.engine.refresh(
                cp.active_policy()
                    .expect("bridge plane always carries a default policy"),
            );
            self.cached_gen = gen;
        }
        let i = ds.index();
        if i >= self.cfg.max_ds {
            return Decision::default();
        }
        let req = PolicyReq { ds, class, size };
        let srow = if self.engine.program().uses_stats() {
            self.stats.cells().snapshot_row(ds).unwrap_or_default()
        } else {
            Vec::new()
        };
        let prow = &self.prows[i * self.pstride..(i + 1) * self.pstride];
        let decision = self.engine.decide(&req, prow, &srow, now);
        if let Some(key) = decision.bump {
            let _ = self.stats.add(ds, key, 1);
        }
        decision
    }

    /// The forwarding hop for a decision: `defer` doubles the latency (the
    /// bridge has no queue to push to the back of, so deferral is modelled
    /// as an extra hop).
    fn hop_for(&self, decision: Decision) -> Time {
        if decision.deferred {
            self.cfg.hop_latency + self.cfg.hop_latency
        } else {
            self.cfg.hop_latency
        }
    }

    fn account(&mut self, ds: DsId, bytes: u64) {
        if ds.index() < self.cfg.max_ds {
            // Straight into the lock-free cells; win_reqs only marks the
            // row active for trigger evaluation at rollover.
            let _ = self.stats.add(ds, BSTAT_DMA_BYTES, bytes);
            let _ = self.stats.add(ds, BSTAT_REQS, 1);
            self.win_reqs[ds.index()] += 1;
        }
    }

    fn on_window(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        let now = ctx.now();
        {
            let mut cp = self.cp.lock();
            for i in 0..self.cfg.max_ds {
                if self.win_reqs[i] == 0 {
                    continue;
                }
                cp.evaluate_triggers(DsId::new(i as u16), now);
                self.win_reqs[i] = 0;
            }
        }
        let window = self.cfg.window;
        ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
    }
}

impl Component<PardEvent> for IoBridge {
    fn name(&self) -> &str {
        "io-bridge"
    }

    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        if !self.window_armed {
            self.window_armed = true;
            let window = self.cfg.window;
            ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
        }
        match ev {
            PardEvent::DiskReq(req) => {
                let decision = self.decide(req.ds, ReqClass::Disk, req.bytes, ctx.now());
                if decision.admit {
                    if audit::enabled() {
                        audit::packet_hop(
                            "disk",
                            req.reply_to.raw(),
                            req.id.0,
                            req.ds.raw(),
                            ctx.now(),
                            "bridge",
                        );
                    }
                    let hop = self.hop_for(decision);
                    ctx.send(self.ide, hop, PardEvent::DiskReq(req));
                } else {
                    if audit::enabled() {
                        audit::packet_drop("disk", req.reply_to.raw(), req.id.0);
                    }
                    self.dropped += 1;
                }
            }
            PardEvent::Pio(pio) => {
                let decision = self.decide(pio.ds, ReqClass::Pio, 0, ctx.now());
                if decision.admit {
                    let hop = self.hop_for(decision);
                    ctx.send(self.ide, hop, PardEvent::Pio(pio));
                } else {
                    self.dropped += 1;
                }
            }
            PardEvent::MemReq(pkt) => {
                debug_assert!(pkt.dma, "non-DMA memory traffic through the bridge");
                let decision = self.decide(pkt.ds, ReqClass::Dma, u64::from(pkt.size), ctx.now());
                if decision.admit {
                    if audit::enabled() {
                        audit::packet_hop(
                            "dma",
                            pkt.reply_to.raw(),
                            pkt.id.0,
                            pkt.ds.raw(),
                            ctx.now(),
                            "bridge",
                        );
                    }
                    self.account(pkt.ds, u64::from(pkt.size));
                    if trace::enabled(TraceCat::Io) {
                        trace::emit(
                            TraceCat::Io,
                            ctx.now(),
                            pkt.ds.raw(),
                            "dma",
                            &[("bytes", TraceVal::U(u64::from(pkt.size)))],
                        );
                    }
                    let hop = self.hop_for(decision);
                    ctx.send(self.mem_ctrl, hop, PardEvent::MemReq(pkt));
                } else {
                    if audit::enabled() {
                        audit::packet_drop("dma", pkt.reply_to.raw(), pkt.id.0);
                    }
                    self.dropped += 1;
                    if trace::enabled(TraceCat::Io) {
                        trace::emit(
                            TraceCat::Io,
                            ctx.now(),
                            pkt.ds.raw(),
                            "drop",
                            &[("bytes", TraceVal::U(u64::from(pkt.size)))],
                        );
                    }
                }
            }
            PardEvent::Tick(TickKind::CpWindow) => self.on_window(ctx),
            other => audit::unexpected_event(
                "bridge",
                other.kind_label(),
                ctx.now(),
                other.ds().map_or(u16::MAX, DsId::raw),
            ),
        }
    }

    pard_sim::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_icn::{DiskKind, DiskRequest, LAddr, MemKind, MemPacket, PacketId};
    use pard_sim::Simulation;

    struct Sink {
        disk_reqs: u64,
        mem_reqs: u64,
    }

    impl Component<PardEvent> for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn handle(&mut self, ev: PardEvent, _ctx: &mut Ctx<'_, PardEvent>) {
            match ev {
                PardEvent::DiskReq(_) => self.disk_reqs += 1,
                PardEvent::MemReq(_) => self.mem_reqs += 1,
                _ => {}
            }
        }
        pard_sim::impl_as_any!();
    }

    fn rig() -> (Simulation<PardEvent>, ComponentId, ComponentId, CpHandle) {
        let mut sim = Simulation::new();
        let (mut bridge, cp) = IoBridge::new(IoBridgeConfig {
            max_ds: 8,
            ..IoBridgeConfig::default()
        });
        let sink = sim.add_component(Box::new(Sink {
            disk_reqs: 0,
            mem_reqs: 0,
        }));
        bridge.set_ide(sink);
        bridge.set_mem_ctrl(sink);
        let bridge = sim.add_component(Box::new(bridge));
        (sim, bridge, sink, cp)
    }

    fn disk_req(ds: u16, reply: ComponentId) -> PardEvent {
        PardEvent::DiskReq(DiskRequest {
            id: PacketId(1),
            ds: DsId::new(ds),
            disk: 0,
            kind: DiskKind::Write,
            buffer: LAddr::ZERO,
            bytes: 4096,
            reply_to: reply,
            issued_at: Time::ZERO,
        })
    }

    fn dma(ds: u16, reply: ComponentId, size: u32) -> PardEvent {
        PardEvent::MemReq(MemPacket {
            id: PacketId(2),
            ds: DsId::new(ds),
            addr: LAddr::ZERO,
            kind: MemKind::Read,
            size,
            reply_to: reply,
            issued_at: Time::ZERO,
            dma: true,
        })
    }

    #[test]
    fn forwards_and_accounts_dma_traffic() {
        let (mut sim, bridge, sink, cp) = rig();
        sim.post(bridge, Time::ZERO, disk_req(1, sink));
        sim.post(bridge, Time::ZERO, dma(1, sink, 4096));
        sim.post(bridge, Time::ZERO, dma(1, sink, 4096));
        sim.run_until(Time::from_ms(1));
        sim.with_component::<Sink, _, _>(sink, |s| {
            assert_eq!(s.disk_reqs, 1);
            assert_eq!(s.mem_reqs, 2);
        });
        let cp = cp.lock();
        assert_eq!(cp.stat(DsId::new(1), "dma_bytes").unwrap(), 8192);
        assert_eq!(cp.stat(DsId::new(1), "reqs").unwrap(), 2);
    }

    #[test]
    fn token_bucket_policy_gates_dma_admission() {
        let (mut sim, bridge, sink, cp) = rig();
        // 4 KB burst bucket on DMA only: the second back-to-back 4 KB DMA
        // burst overflows it and is dropped; disk requests are untouched.
        cp.lock()
            .install_policy(
                "when param.enable == 0 do drop\n\
                 when class == dma do charge size rate 1000000 burst 4096 else drop\n\
                 when all do rank 0",
            )
            .unwrap();
        sim.post(bridge, Time::ZERO, dma(1, sink, 4096));
        sim.post(bridge, Time::ZERO, dma(1, sink, 4096));
        sim.post(bridge, Time::ZERO, disk_req(1, sink));
        sim.run_until(Time::from_ms(1));
        sim.with_component::<Sink, _, _>(sink, |s| {
            assert_eq!(s.mem_reqs, 1, "second DMA burst over the bucket drops");
            assert_eq!(s.disk_reqs, 1, "disk path is not charged");
        });
        sim.with_component::<IoBridge, _, _>(bridge, |b| assert_eq!(b.dropped(), 1));
    }

    #[test]
    fn defer_policy_doubles_the_forwarding_hop() {
        struct TimedSink {
            arrivals: Vec<Time>,
        }
        impl Component<PardEvent> for TimedSink {
            fn name(&self) -> &str {
                "timed-sink"
            }
            fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
                if matches!(ev, PardEvent::MemReq(_)) {
                    self.arrivals.push(ctx.now());
                }
            }
            pard_sim::impl_as_any!();
        }

        let mut sim = Simulation::new();
        let hop = Time::from_us(1);
        let (mut bridge, cp) = IoBridge::new(IoBridgeConfig {
            max_ds: 8,
            hop_latency: hop,
            ..IoBridgeConfig::default()
        });
        let sink = sim.add_component(Box::new(TimedSink { arrivals: Vec::new() }));
        bridge.set_ide(sink);
        bridge.set_mem_ctrl(sink);
        let bridge = sim.add_component(Box::new(bridge));
        cp.lock().install_policy("when all do defer").unwrap();
        sim.post(bridge, Time::ZERO, dma(1, sink, 64));
        sim.run_until(Time::from_ms(1));
        sim.with_component::<TimedSink, _, _>(sink, |s| {
            assert_eq!(s.arrivals, vec![hop + hop], "deferred DMA takes two hops");
        });
    }

    #[test]
    fn disabled_ds_is_dropped() {
        let (mut sim, bridge, sink, cp) = rig();
        cp.lock().set_param(DsId::new(2), "enable", 0).unwrap();
        sim.post(bridge, Time::ZERO, disk_req(2, sink));
        sim.post(bridge, Time::ZERO, dma(2, sink, 64));
        sim.run_until(Time::from_ms(1));
        sim.with_component::<Sink, _, _>(sink, |s| {
            assert_eq!(s.disk_reqs, 0);
            assert_eq!(s.mem_reqs, 0);
        });
        sim.with_component::<IoBridge, _, _>(bridge, |b| assert_eq!(b.dropped(), 2));
    }
}
