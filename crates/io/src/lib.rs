//! # pard-io — the I/O subsystem
//!
//! Implements the paper's §4.1 I/O tagging mechanisms and the I/O-side
//! control planes:
//!
//! * [`IoBridge`] — the hop between cores, devices, and memory; carries a
//!   control plane accounting per-DS-id DMA traffic,
//! * [`IdeCtrl`] — the disk controller: per-channel **DMA engines with tag
//!   registers** (initialised by the DS-id riding on the driver's
//!   descriptor write, then attached to every data transfer), per-DS-id
//!   **bandwidth quotas** programmed through its control plane (the
//!   Figure 10 experiment), and completion interrupts tagged with the DMA
//!   engine's DS-id,
//! * [`Apic`] — the augmented interrupt controller with one **interrupt
//!   route table per DS-id**: a tagged interrupt is delivered to the core
//!   that the firmware routed for that LDom,
//! * [`Nic`] — the multi-queue NIC virtualised into v-NICs: an incoming
//!   frame's destination MAC selects a v-NIC, whose tag register supplies
//!   the DS-id for the receive DMA and interrupt.
//!
//! # Paper mapping
//!
//! Implements the I/O half of the PAPER.md design overview: the paper's
//! §4.1 tagging points (DMA-engine tag registers, per-DS-id interrupt
//! routing, v-NIC MAC demux) and the IDE/bridge control planes evaluated
//! in Figure 10 (see EXPERIMENTS.md). The IDE quota engine and the NIC
//! receive path also host two of the four fault classes (`ide_degrade`,
//! `nic_flap` — DESIGN.md §11): degradation scales the granted quantum
//! and drops are routed through the existing accounted-drop counters, so
//! the conservation auditor stays green under `PARD_AUDIT=strict`.

#![warn(missing_docs)]

mod apic;
mod bridge;
mod ide;
mod nic;

pub use apic::{Apic, ApicRoutes, VEC_IDE, VEC_NIC};
pub use bridge::{
    bridge_control_plane, IoBridge, IoBridgeConfig, BRIDGE_DEFAULT_POLICY, BSTAT_DMA_BYTES,
    BSTAT_REQS,
};
pub use ide::{
    ide_control_plane, DiskProgress, IdeConfig, IdeCtrl, IDE_DEFAULT_POLICY, ISTAT_BANDWIDTH,
    ISTAT_BYTES, ISTAT_DROPS, ISTAT_REQS,
};
pub use nic::{
    mac_to_u64, nic_control_plane, u64_to_mac, Nic, NicConfig, NIC_DEFAULT_POLICY, NSTAT_BYTES,
    NSTAT_DROPPED, NSTAT_FRAMES,
};
