//! The IDE disk controller: DMA tag registers + bandwidth quotas.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pard_cp::policy::{PolicyEngine, PolicyReq, ReqClass};
use pard_cp::{shared, ColumnDef, ControlPlane, CpHandle, CpType, DsTable, StatKey, StatsHandle};
use pard_icn::DsId;
use pard_icn::{
    DiskDone, DiskKind, DiskRequest, LAddr, MemKind, MemPacket, PacketIdGen, PardEvent, PioResp,
    TickKind,
};
use pard_sim::stats::WindowedCounter;
use pard_sim::trace::{self, TraceCat, TraceVal};
use pard_sim::fault::{self, FaultClass};
use pard_sim::{audit, Component, ComponentId, Ctx, Time};

use crate::apic::ide_interrupt;

/// Device-register offset of the DMA descriptor register: a PIO write here
/// initialises the channel's DMA tag register from the write's DS-id
/// (paper §4.1 step 1).
pub const REG_DESC: u64 = 8;

/// Configuration of the [`IdeCtrl`].
#[derive(Debug, Clone)]
pub struct IdeConfig {
    /// DMA channels (Table 2: a 4-channel IDE controller).
    pub channels: u32,
    /// Attached disks (Table 2: 8 disks).
    pub disks: u32,
    /// Aggregate sustained controller bandwidth in bytes/second.
    pub aggregate_bandwidth: f64,
    /// Service-loop quantum: bandwidth is granted per quantum according to
    /// the per-DS-id quotas.
    pub quantum: Time,
    /// DMA burst size toward memory.
    pub dma_chunk: u32,
    /// Statistics-window length.
    pub window: Time,
    /// DS-id rows in the control-plane tables.
    pub max_ds: usize,
    /// Trigger-table slots.
    pub trigger_slots: usize,
}

impl Default for IdeConfig {
    fn default() -> Self {
        IdeConfig {
            channels: 4,
            disks: 8,
            aggregate_bandwidth: 640e6, // 8 disks x 80 MB/s
            quantum: Time::from_us(100),
            dma_chunk: 64 * 1024,
            window: Time::from_ms(1),
            max_ds: 256,
            trigger_slots: 16,
        }
    }
}

/// The built-in IDE policy: each DS-id's service weight is its `bandwidth`
/// quota parameter — the pre-policy quota engine re-expressed as a one-rule
/// match-action program. Weight 0 means "fair share of the leftover".
pub const IDE_DEFAULT_POLICY: &str = "when all do weight param.bandwidth";

/// Key of `bandwidth` in the IDE statistics table.
pub const ISTAT_BANDWIDTH: StatKey = StatKey::at(0);
/// Key of `bytes`.
pub const ISTAT_BYTES: StatKey = StatKey::at(1);
/// Key of `reqs`.
pub const ISTAT_REQS: StatKey = StatKey::at(2);
/// Key of `drops`.
pub const ISTAT_DROPS: StatKey = StatKey::at(3);

/// Builds the IDE control plane (`type` code `I`).
///
/// Parameters: `bandwidth` — the DS-id's share of controller bandwidth in
/// percent; `0` means "fair share of whatever explicit quotas leave over"
/// (the initial state of the Figure 10 experiment). Statistics:
/// `bandwidth` (MB/s over the last window), `bytes`, `reqs`, and `drops`
/// (requests aborted by injected quota-engine faults — zero outside
/// fault experiments).
pub fn ide_control_plane(max_ds: usize, trigger_slots: usize) -> ControlPlane {
    let params = DsTable::new("parameter", vec![ColumnDef::new("bandwidth")], max_ds);
    let stats = DsTable::new(
        "statistics",
        vec![
            ColumnDef::new("bandwidth"),
            ColumnDef::new("bytes"),
            ColumnDef::new("reqs"),
            ColumnDef::new("drops"),
        ],
        max_ds,
    );
    ControlPlane::new("IDE_CP", CpType::Io, params, stats, trigger_slots)
}

#[derive(Debug)]
struct ActiveReq {
    req: DiskRequest,
    /// DS-id captured from the channel's DMA tag register at descriptor
    /// time; tags every transfer and the completion interrupt.
    tag: DsId,
    remaining: u64,
    next_buf_offset: u64,
}

/// Per-DS-id progress snapshot (observability for Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskProgress {
    /// Bytes transferred in total.
    pub bytes_done: u64,
    /// Requests completed.
    pub requests_done: u64,
}

/// The IDE controller component.
///
/// Disk requests are queued per DS-id. Every service quantum the
/// controller distributes `aggregate_bandwidth × quantum` bytes among the
/// DS-ids with queued work, proportionally to their `bandwidth` quota from
/// the control plane (unquota'd DS-ids share the remainder equally —
/// "sharing without partitioning"). Data movement generates DS-id-tagged
/// DMA traffic through the I/O bridge, and completions raise DS-id-tagged
/// interrupts through the APIC (§4.1).
pub struct IdeCtrl {
    cfg: IdeConfig,
    cp: CpHandle,
    /// Lock-free read path into the statistics cells, for policy programs
    /// whose weight expressions reference `stat.*` columns.
    stats: StatsHandle,
    gen_watch: Arc<AtomicU64>,
    cached_gen: u64,
    /// Per-DS-id service weights, computed by the policy engine (the
    /// built-in program reduces them to the `bandwidth` quota column).
    quotas: Vec<u64>,
    /// Flat copy of the parameter table (`max_ds` rows × `pstride`),
    /// refreshed on generation change.
    prows: Vec<u64>,
    pstride: usize,
    engine: PolicyEngine,
    tag_regs: Vec<DsId>,
    queues: Vec<VecDeque<ActiveReq>>,
    bridge: ComponentId,
    apic: ComponentId,
    ids: PacketIdGen,
    tick_armed: bool,
    window_armed: bool,
    win_bytes: Vec<u64>,
    cum_bytes: Vec<u64>,
    cum_reqs: Vec<u64>,
    cum_drops: Vec<u64>,
    active_ds: Vec<bool>,
    /// Tracks the real span of each closed statistics window so bandwidth
    /// divides by observed time, not the configured width.
    window_clock: WindowedCounter,
}

impl IdeCtrl {
    /// Creates a controller and returns it with its control-plane handle.
    pub fn new(cfg: IdeConfig) -> (Self, CpHandle) {
        let cp = shared(ide_control_plane(cfg.max_ds, cfg.trigger_slots));
        let (gen_watch, stats, pstride, initial) = {
            let mut guard = cp.lock();
            guard
                .set_default_policy(IDE_DEFAULT_POLICY)
                .expect("built-in IDE policy compiles against its own schema");
            (
                guard.generation_watch(),
                guard.stats_handle(),
                guard.params().columns().len(),
                guard
                    .active_policy()
                    .expect("default policy installed above"),
            )
        };
        let ide = IdeCtrl {
            gen_watch,
            stats,
            cached_gen: u64::MAX,
            quotas: vec![0; cfg.max_ds],
            prows: vec![0; cfg.max_ds * pstride],
            pstride,
            engine: PolicyEngine::new(initial, cfg.max_ds),
            tag_regs: vec![DsId::DEFAULT; cfg.channels as usize],
            queues: (0..cfg.max_ds).map(|_| VecDeque::new()).collect(),
            bridge: ComponentId::UNWIRED,
            apic: ComponentId::UNWIRED,
            ids: PacketIdGen::new(),
            tick_armed: false,
            window_armed: false,
            win_bytes: vec![0; cfg.max_ds],
            cum_bytes: vec![0; cfg.max_ds],
            cum_reqs: vec![0; cfg.max_ds],
            cum_drops: vec![0; cfg.max_ds],
            active_ds: vec![false; cfg.max_ds],
            window_clock: WindowedCounter::new(),
            cp: cp.clone(),
            cfg,
        };
        (ide, cp)
    }

    /// Wires the I/O bridge (for DMA memory traffic).
    pub fn set_bridge(&mut self, id: ComponentId) {
        self.bridge = id;
    }

    /// Wires the APIC (for completion interrupts).
    pub fn set_apic(&mut self, id: ComponentId) {
        self.apic = id;
    }

    /// The control-plane handle.
    pub fn control_plane(&self) -> &CpHandle {
        &self.cp
    }

    /// Progress snapshot for `ds`.
    pub fn progress(&self, ds: DsId) -> DiskProgress {
        DiskProgress {
            bytes_done: self.cum_bytes.get(ds.index()).copied().unwrap_or(0),
            requests_done: self.cum_reqs.get(ds.index()).copied().unwrap_or(0),
        }
    }

    /// The DMA tag register of `channel` (test observability for §4.1).
    pub fn tag_register(&self, channel: u32) -> DsId {
        self.tag_regs[channel as usize]
    }

    /// Re-derives the per-DS-id service weights from the active policy.
    ///
    /// Parameter rows and the program itself refresh only on a
    /// generation change; the weight evaluation additionally re-runs
    /// every quantum when the program reads `stat.*` columns (so
    /// stat-reactive policies track live usage).
    fn refresh_params(&mut self, now: Time) {
        let gen = self.gen_watch.load(Ordering::Acquire);
        if gen == self.cached_gen && !self.engine.program().uses_stats() {
            return;
        }
        if gen != self.cached_gen {
            let cp = self.cp.lock();
            for i in 0..self.cfg.max_ds {
                let row = cp
                    .params()
                    .row(DsId::new(i as u16))
                    .expect("parameter table is sized to max_ds rows");
                self.prows[i * self.pstride..(i + 1) * self.pstride].copy_from_slice(row);
            }
            self.engine.refresh(
                cp.active_policy()
                    .expect("IDE plane always carries a default policy"),
            );
            self.cached_gen = gen;
        }
        let live_stats = self.engine.program().uses_stats();
        for i in 0..self.cfg.max_ds {
            let ds = DsId::new(i as u16);
            let req = PolicyReq {
                ds,
                class: ReqClass::Disk,
                size: 0,
            };
            let srow = if live_stats {
                self.stats.cells().snapshot_row(ds).unwrap_or_default()
            } else {
                Vec::new()
            };
            let prow = &self.prows[i * self.pstride..(i + 1) * self.pstride];
            self.quotas[i] = self.engine.decide(&req, prow, &srow, now).weight;
        }
    }

    fn channel_of(&self, disk: u8) -> usize {
        (u32::from(disk) % self.cfg.channels) as usize
    }

    fn on_disk_req(&mut self, req: DiskRequest, ctx: &mut Ctx<'_, PardEvent>) {
        if audit::enabled() {
            // The controller is the terminal consumer of the core → bridge
            // → IDE ("disk") conservation domain.
            audit::packet_retire(
                "disk",
                req.reply_to.raw(),
                req.id.0,
                req.ds.raw(),
                ctx.now(),
                "ide",
            );
        }
        // The descriptor write initialises the channel's DMA tag register
        // with the DS-id that rode on the write (§4.1 step 1) …
        let ch = self.channel_of(req.disk);
        self.tag_regs[ch] = req.ds;
        // … and the engine uses that register to tag all data transfers.
        let tag = self.tag_regs[ch];
        let i = tag.index().min(self.cfg.max_ds - 1);
        self.active_ds[i] = true;
        self.queues[i].push_back(ActiveReq {
            remaining: req.bytes,
            next_buf_offset: 0,
            req,
            tag,
        });
        self.arm_tick(ctx);
    }

    fn arm_tick(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        if self.tick_armed {
            return;
        }
        self.tick_armed = true;
        let quantum = self.cfg.quantum;
        ctx.send(ctx.self_id(), quantum, PardEvent::Tick(TickKind::Ide));
    }

    /// Computes each active DS-id's share of the quantum in percent.
    fn shares(&self, active: &[usize]) -> Vec<(usize, f64)> {
        let explicit_sum: u64 = active.iter().map(|&i| self.quotas[i]).sum();
        let implicit_count = active.iter().filter(|&&i| self.quotas[i] == 0).count();
        let norm = explicit_sum.max(100) as f64;
        let leftover = (100u64.saturating_sub(explicit_sum)) as f64;
        active
            .iter()
            .map(|&i| {
                let share = if self.quotas[i] > 0 {
                    self.quotas[i] as f64 / norm * 100.0
                } else if implicit_count > 0 {
                    leftover / implicit_count as f64
                } else {
                    0.0
                };
                (i, share)
            })
            .collect()
    }

    /// Injected quota-engine request drops: at each scheduling
    /// opportunity every queued head request is considered once; a hit
    /// aborts it. The aborted request completes immediately with the
    /// bytes moved so far — the issuing engine never hangs, every DMA
    /// packet already injected still retires normally, and the `disk`
    /// conservation domain is untouched (its packets retire on arrival).
    fn apply_fault_drops(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        let now = ctx.now();
        for i in 0..self.cfg.max_ds {
            if self.queues[i].is_empty() || !fault::ide_should_drop(now) {
                continue;
            }
            let dropped = self.queues[i].pop_front().expect("non-empty queue");
            self.cum_drops[i] += 1;
            let moved = dropped.req.bytes - dropped.remaining;
            if trace::enabled(TraceCat::Ide) {
                trace::emit(
                    TraceCat::Ide,
                    now,
                    dropped.tag.raw(),
                    "drop",
                    &[("bytes_moved", TraceVal::U(moved))],
                );
            }
            let done = DiskDone {
                id: dropped.req.id,
                ds: dropped.tag,
                bytes: moved,
            };
            if audit::enabled() {
                audit::irq_inject(crate::apic::VEC_IDE, dropped.tag.raw());
            }
            ctx.send(
                self.apic,
                Time::ZERO,
                PardEvent::Interrupt(ide_interrupt(dropped.tag, done)),
            );
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        self.tick_armed = false;
        self.refresh_params(ctx.now());
        if fault::enabled(FaultClass::Ide) {
            self.apply_fault_drops(ctx);
        }

        let active: Vec<usize> = (0..self.cfg.max_ds)
            .filter(|&i| !self.queues[i].is_empty())
            .collect();
        if active.is_empty() {
            return;
        }

        let mut quantum_bytes = self.cfg.aggregate_bandwidth * self.cfg.quantum.as_secs();
        if fault::enabled(FaultClass::Ide) {
            // Injected quota-engine degradation: the whole quantum
            // shrinks. The overgrant audit ceiling below derives from the
            // same (degraded) value, so the quota invariant stays sound
            // under fault.
            quantum_bytes *= f64::from(fault::ide_quota_pct(ctx.now())) / 100.0;
        }
        let mut granted_total = 0u64;
        for (i, share_pct) in self.shares(&active) {
            let mut budget = (quantum_bytes * share_pct / 100.0) as u64;
            if trace::enabled(TraceCat::Ide) {
                trace::emit(
                    TraceCat::Ide,
                    ctx.now(),
                    i as u16,
                    "grant",
                    &[
                        ("share_pct", TraceVal::F(share_pct)),
                        ("budget_bytes", TraceVal::U(budget)),
                    ],
                );
            }
            while budget > 0 {
                let Some(head) = self.queues[i].front_mut() else {
                    break;
                };
                let granted = budget.min(head.remaining);
                head.remaining -= granted;
                budget -= granted;
                granted_total += granted;
                self.win_bytes[i] += granted;
                self.cum_bytes[i] += granted;

                // Generate the DS-id-tagged DMA traffic for this slice.
                let mut moved = 0u64;
                while moved < granted {
                    let chunk = (granted - moved).min(u64::from(self.cfg.dma_chunk)) as u32;
                    let kind = match head.req.kind {
                        DiskKind::Write => MemKind::Read, // memory -> device
                        DiskKind::Read => MemKind::Write, // device -> memory
                    };
                    let pkt = MemPacket {
                        id: self.ids.next_id(),
                        ds: head.tag,
                        addr: LAddr::new(head.req.buffer.raw() + head.next_buf_offset),
                        kind,
                        size: chunk,
                        reply_to: ctx.self_id(),
                        issued_at: ctx.now(),
                        dma: true,
                    };
                    if audit::enabled() {
                        audit::packet_inject(
                            "dma",
                            pkt.reply_to.raw(),
                            pkt.id.0,
                            pkt.ds.raw(),
                            ctx.now(),
                        );
                    }
                    ctx.send(self.bridge, Time::ZERO, PardEvent::MemReq(pkt));
                    head.next_buf_offset += u64::from(chunk);
                    moved += u64::from(chunk);
                }

                if head.remaining == 0 {
                    let finished = self.queues[i].pop_front().expect("head exists");
                    self.cum_reqs[i] += 1;
                    if trace::enabled(TraceCat::Ide) {
                        trace::emit(
                            TraceCat::Ide,
                            ctx.now(),
                            finished.tag.raw(),
                            "done",
                            &[("bytes", TraceVal::U(finished.req.bytes))],
                        );
                    }
                    let done = DiskDone {
                        id: finished.req.id,
                        ds: finished.tag,
                        bytes: finished.req.bytes,
                    };
                    if audit::enabled() {
                        audit::irq_inject(crate::apic::VEC_IDE, finished.tag.raw());
                    }
                    ctx.send(
                        self.apic,
                        Time::ZERO,
                        PardEvent::Interrupt(ide_interrupt(finished.tag, done)),
                    );
                } else {
                    break; // budget exhausted on the head request
                }
            }
        }

        if audit::enabled() {
            // Quota soundness: the shares computed for one quantum are
            // normalised to 100%, so the bytes granted in this tick can
            // never exceed the controller's aggregate quantum budget
            // (+1 byte of float-truncation slack).
            let ceiling = quantum_bytes as u64 + 1;
            if granted_total > ceiling {
                audit::violation(
                    audit::AuditKind::Quota,
                    ctx.now(),
                    u16::MAX,
                    "ide_quantum_overgrant",
                    &[
                        ("granted_bytes", TraceVal::U(granted_total)),
                        ("quantum_bytes", TraceVal::U(ceiling)),
                    ],
                );
            }
        }

        if self.queues.iter().any(|q| !q.is_empty()) {
            self.arm_tick(ctx);
        }
    }

    fn on_window(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        let now = ctx.now();
        self.window_clock.roll(now);
        let span = self.window_clock.last_window_span();
        let secs = if span == Time::ZERO {
            self.cfg.window.as_secs()
        } else {
            span.as_secs()
        };
        {
            let mut cp = self.cp.lock();
            for i in 0..self.cfg.max_ds {
                if !self.active_ds[i] {
                    continue;
                }
                let ds = DsId::new(i as u16);
                let mbps = (self.win_bytes[i] as f64 / secs / 1e6) as u64;
                // Published window-latched (not live): fault experiments
                // sample `bytes`/`drops` at phase boundaries and expect
                // the value frozen at the last rollover.
                let _ = cp.stats().set(ds, ISTAT_BANDWIDTH, mbps);
                let _ = cp.stats().set(ds, ISTAT_BYTES, self.cum_bytes[i]);
                let _ = cp.stats().set(ds, ISTAT_REQS, self.cum_reqs[i]);
                let _ = cp.stats().set(ds, ISTAT_DROPS, self.cum_drops[i]);
                cp.evaluate_triggers(ds, now);
                self.win_bytes[i] = 0;
            }
        }
        let window = self.cfg.window;
        ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
    }
}

impl Component<PardEvent> for IdeCtrl {
    fn name(&self) -> &str {
        "ide"
    }

    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        if !self.window_armed {
            self.window_armed = true;
            self.window_clock.open_window_at(ctx.now());
            let window = self.cfg.window;
            ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
        }
        match ev {
            PardEvent::DiskReq(req) => self.on_disk_req(req, ctx),
            PardEvent::Tick(TickKind::Ide) => self.on_tick(ctx),
            PardEvent::Tick(TickKind::CpWindow) => self.on_window(ctx),
            PardEvent::Pio(pio) => {
                // Device-register access; the descriptor register updates
                // the channel tag register (channel 0 for simplicity).
                if pio.reg == REG_DESC && pio.write.is_some() {
                    self.tag_regs[0] = pio.ds;
                }
                let resp = PioResp {
                    id: pio.id,
                    value: pio.write.unwrap_or(0x50),
                };
                ctx.send(pio.reply_to, Time::ZERO, PardEvent::PioResp(resp));
            }
            PardEvent::MemResp(_) => {
                // DMA read data returning from memory; transfer pacing is
                // bandwidth-driven, so nothing to do.
            }
            other => audit::unexpected_event(
                "ide",
                other.kind_label(),
                ctx.now(),
                other.ds().map_or(u16::MAX, DsId::raw),
            ),
        }
    }

    pard_sim::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_icn::PacketId;
    use pard_sim::Simulation;

    struct Sink {
        dma_bytes_by_ds: Vec<u64>,
        interrupts: Vec<DsId>,
    }

    impl Component<PardEvent> for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn handle(&mut self, ev: PardEvent, _ctx: &mut Ctx<'_, PardEvent>) {
            match ev {
                PardEvent::MemReq(pkt) => {
                    self.dma_bytes_by_ds[pkt.ds.index()] += u64::from(pkt.size);
                }
                PardEvent::Interrupt(irq) => self.interrupts.push(irq.ds),
                _ => {}
            }
        }
        pard_sim::impl_as_any!();
    }

    struct Rig {
        sim: Simulation<PardEvent>,
        ide: ComponentId,
        sink: ComponentId,
        cp: CpHandle,
    }

    fn rig() -> Rig {
        let mut sim = Simulation::new();
        let (mut ide, cp) = IdeCtrl::new(IdeConfig {
            max_ds: 8,
            aggregate_bandwidth: 100e6, // 100 MB/s
            quantum: Time::from_us(100),
            ..IdeConfig::default()
        });
        let sink = sim.add_component(Box::new(Sink {
            dma_bytes_by_ds: vec![0; 8],
            interrupts: Vec::new(),
        }));
        ide.set_bridge(sink);
        ide.set_apic(sink);
        let ide = sim.add_component(Box::new(ide));
        Rig { sim, ide, sink, cp }
    }

    fn dd(rig: &Rig, id: u64, ds: u16, bytes: u64) -> PardEvent {
        PardEvent::DiskReq(DiskRequest {
            id: PacketId(id),
            ds: DsId::new(ds),
            disk: 1,
            kind: DiskKind::Write,
            buffer: LAddr::ZERO,
            bytes,
            reply_to: rig.sink,
            issued_at: Time::ZERO,
        })
    }

    #[test]
    fn equal_share_without_quotas() {
        let mut r = rig();
        let total = 1_000_000u64; // 1 MB each
        r.sim.post(r.ide, Time::ZERO, dd(&r, 1, 1, total));
        r.sim.post(r.ide, Time::ZERO, dd(&r, 2, 2, total));
        // 100 MB/s shared: 2 MB total takes ~20 ms; run 12 ms and compare.
        r.sim.run_until(Time::from_ms(12));
        r.sim.with_component::<IdeCtrl, _, _>(r.ide, |ide| {
            let p1 = ide.progress(DsId::new(1)).bytes_done;
            let p2 = ide.progress(DsId::new(2)).bytes_done;
            assert!(p1 > 0 && p2 > 0);
            let ratio = p1 as f64 / p2 as f64;
            assert!((0.95..=1.05).contains(&ratio), "unfair split: {ratio}");
        });
    }

    #[test]
    fn quota_shifts_bandwidth_80_20() {
        let mut r = rig();
        r.cp.lock()
            .set_param(DsId::new(1), "bandwidth", 80)
            .unwrap();
        let total = 10_000_000u64;
        r.sim.post(r.ide, Time::ZERO, dd(&r, 1, 1, total));
        r.sim.post(r.ide, Time::ZERO, dd(&r, 2, 2, total));
        r.sim.run_until(Time::from_ms(50));
        r.sim.with_component::<IdeCtrl, _, _>(r.ide, |ide| {
            let p1 = ide.progress(DsId::new(1)).bytes_done as f64;
            let p2 = ide.progress(DsId::new(2)).bytes_done as f64;
            let share = p1 / (p1 + p2);
            assert!(
                (0.75..=0.85).contains(&share),
                "expected ~80% share, got {share:.3}"
            );
        });
    }

    #[test]
    fn installed_policy_reshapes_quotas() {
        let mut r = rig();
        // No `bandwidth` quota is programmed; the installed program alone
        // gives DS 1 an 80% service weight.
        r.cp.lock()
            .install_policy("when ds == 1 do weight 80\nwhen all do weight 0")
            .unwrap();
        let total = 10_000_000u64;
        r.sim.post(r.ide, Time::ZERO, dd(&r, 1, 1, total));
        r.sim.post(r.ide, Time::ZERO, dd(&r, 2, 2, total));
        r.sim.run_until(Time::from_ms(50));
        r.sim.with_component::<IdeCtrl, _, _>(r.ide, |ide| {
            let p1 = ide.progress(DsId::new(1)).bytes_done as f64;
            let p2 = ide.progress(DsId::new(2)).bytes_done as f64;
            let share = p1 / (p1 + p2);
            assert!(
                (0.75..=0.85).contains(&share),
                "expected ~80% share, got {share:.3}"
            );
        });
    }

    #[test]
    fn clearing_an_installed_policy_restores_the_quota_column() {
        let mut r = rig();
        {
            let mut cp = r.cp.lock();
            cp.set_param(DsId::new(1), "bandwidth", 80).unwrap();
            // An installed flat policy overrides the quota column …
            cp.install_policy("when all do weight 0").unwrap();
            cp.clear_policy();
            // … but clearing reverts to the built-in quota-column program.
        }
        let total = 10_000_000u64;
        r.sim.post(r.ide, Time::ZERO, dd(&r, 1, 1, total));
        r.sim.post(r.ide, Time::ZERO, dd(&r, 2, 2, total));
        r.sim.run_until(Time::from_ms(50));
        r.sim.with_component::<IdeCtrl, _, _>(r.ide, |ide| {
            let p1 = ide.progress(DsId::new(1)).bytes_done as f64;
            let p2 = ide.progress(DsId::new(2)).bytes_done as f64;
            let share = p1 / (p1 + p2);
            assert!(
                (0.75..=0.85).contains(&share),
                "expected ~80% share, got {share:.3}"
            );
        });
    }

    #[test]
    fn completion_interrupt_carries_dma_tag() {
        let mut r = rig();
        r.sim.post(r.ide, Time::ZERO, dd(&r, 9, 3, 10_000));
        r.sim.run_until(Time::from_ms(5));
        r.sim.with_component::<Sink, _, _>(r.sink, |s| {
            assert_eq!(s.interrupts, vec![DsId::new(3)]);
            assert_eq!(s.dma_bytes_by_ds[3], 10_000);
        });
    }

    #[test]
    fn descriptor_write_sets_tag_register() {
        let mut r = rig();
        r.sim.post(r.ide, Time::ZERO, dd(&r, 1, 5, 1));
        r.sim.run_until(Time::from_ms(1));
        r.sim.with_component::<IdeCtrl, _, _>(r.ide, |ide| {
            // disk 1 -> channel 1.
            assert_eq!(ide.tag_register(1), DsId::new(5));
        });
    }

    #[test]
    fn stats_table_reports_bandwidth() {
        let mut r = rig();
        r.sim.post(r.ide, Time::ZERO, dd(&r, 1, 1, 50_000_000));
        r.sim.run_until(Time::from_ms(10));
        let cp = r.cp.lock();
        let mbps = cp.stat(DsId::new(1), "bandwidth").unwrap();
        // Alone on a 100 MB/s controller: ~100 MB/s.
        assert!((90..=110).contains(&mbps), "got {mbps} MB/s");
    }
}
