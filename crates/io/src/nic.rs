//! The multi-queue NIC virtualised into v-NICs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pard_cp::policy::{PolicyEngine, PolicyReq, ReqClass};
use pard_cp::{shared, ColumnDef, ControlPlane, CpHandle, CpType, DsTable, StatKey, StatsHandle};
use pard_icn::{
    DsId, InterruptPacket, LAddr, MemKind, MemPacket, NetFrame, PacketIdGen, PardEvent, TickKind,
};
use pard_sim::fault::{self, FaultClass};
use pard_sim::{audit, Component, ComponentId, Ctx, Time};

use crate::apic::VEC_NIC;

/// Packs a MAC address into a `u64` for parameter-table storage.
///
/// # Example
///
/// ```
/// let mac = [0x02, 0x00, 0x00, 0x00, 0x00, 0x07];
/// let raw = pard_io::mac_to_u64(mac);
/// assert_eq!(pard_io::u64_to_mac(raw), mac);
/// ```
pub fn mac_to_u64(mac: [u8; 6]) -> u64 {
    let mut out = 0u64;
    for b in mac {
        out = (out << 8) | u64::from(b);
    }
    out
}

/// Unpacks a parameter-table MAC back into bytes.
pub fn u64_to_mac(raw: u64) -> [u8; 6] {
    let mut mac = [0u8; 6];
    for (i, b) in mac.iter_mut().enumerate() {
        *b = ((raw >> (8 * (5 - i))) & 0xFF) as u8;
    }
    mac
}

/// The built-in NIC policy: a frame for a disabled v-NIC is dropped, all
/// others are admitted — the pre-policy `enabled` gate re-expressed as a
/// match-action program. Installed programs can add admission control
/// (token-bucket `charge … else drop`) per v-NIC.
pub const NIC_DEFAULT_POLICY: &str = "when param.enabled == 0 do drop\nwhen all do rank 0";

/// Key of `frames` in the NIC statistics table.
pub const NSTAT_FRAMES: StatKey = StatKey::at(0);
/// Key of `bytes`.
pub const NSTAT_BYTES: StatKey = StatKey::at(1);
/// Key of `dropped`.
pub const NSTAT_DROPPED: StatKey = StatKey::at(2);

/// Builds the NIC control plane (`type` code `N`).
///
/// Each DS-id row *is* a v-NIC: `mac` (the v-NIC's MAC address), `enabled`,
/// and `rx_base` (LDom-physical base of the receive ring). Statistics:
/// `frames`, `bytes` per v-NIC; drops are accounted to the default row.
pub fn nic_control_plane(max_ds: usize, trigger_slots: usize) -> ControlPlane {
    let params = DsTable::new(
        "parameter",
        vec![
            ColumnDef::new("mac"),
            ColumnDef::new("enabled"),
            ColumnDef::new("rx_base"),
        ],
        max_ds,
    );
    let stats = DsTable::new(
        "statistics",
        vec![
            ColumnDef::new("frames"),
            ColumnDef::new("bytes"),
            ColumnDef::new("dropped"),
        ],
        max_ds,
    );
    ControlPlane::new("NIC_CP", CpType::Nic, params, stats, trigger_slots)
}

/// Configuration of the [`Nic`].
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Receive-ring size per v-NIC (offsets wrap modulo this).
    pub rx_ring_bytes: u64,
    /// Statistics-window length.
    pub window: Time,
    /// DS-id rows (= maximum v-NICs).
    pub max_ds: usize,
    /// Trigger-table slots.
    pub trigger_slots: usize,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            rx_ring_bytes: 1 << 20,
            window: Time::from_ms(1),
            max_ds: 256,
            trigger_slots: 16,
        }
    }
}

/// The physical NIC with its control plane of v-NIC tag registers.
///
/// An incoming frame's destination MAC selects a v-NIC; the v-NIC's DS-id
/// (its table row) tags the receive DMA into the LDom's ring and the
/// completion interrupt (paper §4.1, "tagging I/O requests" for the
/// from-device direction).
pub struct Nic {
    cfg: NicConfig,
    cp: CpHandle,
    /// Lock-free read path into the statistics cells, for policy programs
    /// matching on `stat.*` columns.
    stats: StatsHandle,
    gen_watch: Arc<AtomicU64>,
    cached_gen: u64,
    /// Flat copy of the parameter table (`max_ds` rows × `pstride`),
    /// refreshed on generation change.
    prows: Vec<u64>,
    pstride: usize,
    mac_off: usize,
    rx_base_off: usize,
    engine: PolicyEngine,
    rx_offsets: Vec<u64>,
    bridge: ComponentId,
    apic: ComponentId,
    observer: Option<ComponentId>,
    ids: PacketIdGen,
    win_frames: Vec<u64>,
    win_bytes: Vec<u64>,
    dropped: u64,
    window_armed: bool,
}

impl Nic {
    /// Creates a NIC and returns it with its control-plane handle.
    pub fn new(cfg: NicConfig) -> (Self, CpHandle) {
        let cp = shared(nic_control_plane(cfg.max_ds, cfg.trigger_slots));
        let (gen_watch, stats, pstride, mac_off, rx_base_off, initial) = {
            let mut guard = cp.lock();
            guard
                .set_default_policy(NIC_DEFAULT_POLICY)
                .expect("built-in NIC policy compiles against its own schema");
            (
                guard.generation_watch(),
                guard.stats_handle(),
                guard.params().columns().len(),
                guard.params().must_offset("mac"),
                guard.params().must_offset("rx_base"),
                guard
                    .active_policy()
                    .expect("default policy installed above"),
            )
        };
        let nic = Nic {
            gen_watch,
            stats,
            cached_gen: u64::MAX,
            prows: vec![0; cfg.max_ds * pstride],
            pstride,
            mac_off,
            rx_base_off,
            engine: PolicyEngine::new(initial, cfg.max_ds),
            rx_offsets: vec![0; cfg.max_ds],
            bridge: ComponentId::UNWIRED,
            apic: ComponentId::UNWIRED,
            observer: None,
            ids: PacketIdGen::new(),
            win_frames: vec![0; cfg.max_ds],
            win_bytes: vec![0; cfg.max_ds],
            dropped: 0,
            window_armed: false,
            cp: cp.clone(),
            cfg,
        };
        (nic, cp)
    }

    /// Wires the I/O bridge for receive DMA.
    pub fn set_bridge(&mut self, id: ComponentId) {
        self.bridge = id;
    }

    /// Wires the APIC for receive interrupts.
    pub fn set_apic(&mut self, id: ComponentId) {
        self.apic = id;
    }

    /// Optional observer that receives each demultiplexed frame (tests,
    /// network workloads).
    pub fn set_observer(&mut self, id: ComponentId) {
        self.observer = Some(id);
    }

    /// The control-plane handle.
    pub fn control_plane(&self) -> &CpHandle {
        &self.cp
    }

    /// Frames dropped because no enabled v-NIC matched.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn refresh_params(&mut self) {
        let gen = self.gen_watch.load(Ordering::Acquire);
        if gen == self.cached_gen {
            return;
        }
        {
            let cp = self.cp.lock();
            for i in 0..self.cfg.max_ds {
                let row = cp
                    .params()
                    .row(DsId::new(i as u16))
                    .expect("parameter table is sized to max_ds rows");
                self.prows[i * self.pstride..(i + 1) * self.pstride].copy_from_slice(row);
            }
            self.engine.refresh(
                cp.active_policy()
                    .expect("NIC plane always carries a default policy"),
            );
        }
        self.cached_gen = gen;
    }

    /// Demultiplexes a destination MAC to its v-NIC row. Matching is by
    /// MAC alone; whether the matched v-NIC accepts the frame is the
    /// policy program's decision (the built-in program drops when
    /// `enabled == 0`). With duplicate MACs the lowest row wins.
    fn vnic_for(&self, mac: [u8; 6]) -> Option<usize> {
        let raw = mac_to_u64(mac);
        (0..self.cfg.max_ds).find(|&i| self.prows[i * self.pstride + self.mac_off] == raw)
    }

    fn on_frame(&mut self, frame: NetFrame, ctx: &mut Ctx<'_, PardEvent>) {
        self.refresh_params();
        if fault::enabled(FaultClass::Nic) && fault::nic_frame_lost(ctx.now()) {
            // Injected link flap: the frame is lost before any DMA or
            // interrupt is generated, so no conservation domain ever
            // sees it — only the drop counter does.
            self.dropped += 1;
            return;
        }
        let Some(i) = self.vnic_for(frame.dst_mac) else {
            self.dropped += 1;
            return;
        };
        let ds = DsId::new(i as u16);
        let req = PolicyReq {
            ds,
            class: ReqClass::Frame,
            size: u64::from(frame.bytes),
        };
        let srow = if self.engine.program().uses_stats() {
            self.stats.cells().snapshot_row(ds).unwrap_or_default()
        } else {
            Vec::new()
        };
        let prow = &self.prows[i * self.pstride..(i + 1) * self.pstride];
        let decision = self.engine.decide(&req, prow, &srow, ctx.now());
        if let Some(key) = decision.bump {
            let _ = self.stats.add(ds, key, 1);
        }
        if !decision.admit {
            self.dropped += 1;
            return;
        }
        self.win_frames[i] += 1;
        self.win_bytes[i] += u64::from(frame.bytes);

        // Receive DMA into the LDom's ring, tagged with the v-NIC's DS-id.
        let offset = self.rx_offsets[i];
        self.rx_offsets[i] = (offset + u64::from(frame.bytes))
            .checked_rem(self.cfg.rx_ring_bytes.max(1))
            .unwrap_or(0);
        let pkt = MemPacket {
            id: self.ids.next_id(),
            ds,
            addr: LAddr::new(self.prows[i * self.pstride + self.rx_base_off] + offset),
            kind: MemKind::Write,
            size: frame.bytes,
            reply_to: ctx.self_id(),
            issued_at: ctx.now(),
            dma: true,
        };
        if audit::enabled() {
            audit::packet_inject("dma", pkt.reply_to.raw(), pkt.id.0, pkt.ds.raw(), ctx.now());
        }
        ctx.send(self.bridge, Time::ZERO, PardEvent::MemReq(pkt));

        // Tagged receive interrupt through the APIC.
        let irq = InterruptPacket {
            ds,
            vector: VEC_NIC,
            disk_done: None,
        };
        if audit::enabled() {
            audit::irq_inject(VEC_NIC, ds.raw());
        }
        ctx.send(self.apic, Time::ZERO, PardEvent::Interrupt(irq));

        if let Some(obs) = self.observer {
            // Forward the demuxed frame to the observer (tests, network
            // workloads); its v-NIC attribution is visible in the stats.
            ctx.send(obs, Time::ZERO, PardEvent::NetFrame(frame));
        }
    }

    fn on_window(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        let now = ctx.now();
        {
            let mut cp = self.cp.lock();
            for i in 0..self.cfg.max_ds {
                if self.win_frames[i] == 0 {
                    continue;
                }
                let ds = DsId::new(i as u16);
                // Window-latched on purpose: fault experiments sample
                // `frames` at phase boundaries and expect the last
                // rollover's value, not a live counter.
                let _ = cp.stats().add(ds, NSTAT_FRAMES, self.win_frames[i]);
                let _ = cp.stats().add(ds, NSTAT_BYTES, self.win_bytes[i]);
                cp.evaluate_triggers(ds, now);
                self.win_frames[i] = 0;
                self.win_bytes[i] = 0;
            }
            let _ = cp.stats().set(DsId::DEFAULT, NSTAT_DROPPED, self.dropped);
        }
        let window = self.cfg.window;
        ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
    }
}

impl Component<PardEvent> for Nic {
    fn name(&self) -> &str {
        "nic"
    }

    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        if !self.window_armed {
            self.window_armed = true;
            let window = self.cfg.window;
            ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
        }
        match ev {
            PardEvent::NetFrame(frame) => self.on_frame(frame, ctx),
            PardEvent::Tick(TickKind::CpWindow) => self.on_window(ctx),
            PardEvent::MemResp(_) => {} // DMA ack; ring pacing not modelled
            other => audit::unexpected_event(
                "nic",
                other.kind_label(),
                ctx.now(),
                other.ds().map_or(u16::MAX, DsId::raw),
            ),
        }
    }

    pard_sim::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_sim::Simulation;

    struct Sink {
        dma_by_ds: Vec<u64>,
        irqs: Vec<DsId>,
    }

    impl Component<PardEvent> for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn handle(&mut self, ev: PardEvent, _ctx: &mut Ctx<'_, PardEvent>) {
            match ev {
                PardEvent::MemReq(pkt) => self.dma_by_ds[pkt.ds.index()] += u64::from(pkt.size),
                PardEvent::Interrupt(irq) => self.irqs.push(irq.ds),
                _ => {}
            }
        }
        pard_sim::impl_as_any!();
    }

    const MAC_LDOM2: [u8; 6] = [0x02, 0, 0, 0, 0, 2];

    fn rig() -> (Simulation<PardEvent>, ComponentId, ComponentId, CpHandle) {
        let mut sim = Simulation::new();
        let (mut nic, cp) = Nic::new(NicConfig {
            max_ds: 8,
            ..NicConfig::default()
        });
        let sink = sim.add_component(Box::new(Sink {
            dma_by_ds: vec![0; 8],
            irqs: Vec::new(),
        }));
        nic.set_bridge(sink);
        nic.set_apic(sink);
        let nic = sim.add_component(Box::new(nic));
        {
            let mut cp = cp.lock();
            cp.set_param(DsId::new(2), "mac", mac_to_u64(MAC_LDOM2))
                .unwrap();
            cp.set_param(DsId::new(2), "enabled", 1).unwrap();
            cp.set_param(DsId::new(2), "rx_base", 0x10000).unwrap();
        }
        (sim, nic, sink, cp)
    }

    fn frame(mac: [u8; 6], bytes: u32) -> PardEvent {
        PardEvent::NetFrame(NetFrame {
            dst_mac: mac,
            bytes,
            arrived_at: Time::ZERO,
        })
    }

    #[test]
    fn frames_demux_to_vnic_and_tag_dma() {
        let (mut sim, nic, sink, _cp) = rig();
        sim.post(nic, Time::ZERO, frame(MAC_LDOM2, 1500));
        sim.post(nic, Time::ZERO, frame(MAC_LDOM2, 500));
        sim.run_until(Time::from_ms(2));
        sim.with_component::<Sink, _, _>(sink, |s| {
            assert_eq!(s.dma_by_ds[2], 2000, "rx DMA tagged with v-NIC ds");
            assert_eq!(s.irqs, vec![DsId::new(2), DsId::new(2)]);
        });
    }

    #[test]
    fn unknown_mac_is_dropped_and_counted() {
        let (mut sim, nic, sink, cp) = rig();
        sim.post(nic, Time::ZERO, frame([0xFF; 6], 100));
        sim.run_until(Time::from_ms(2));
        sim.with_component::<Sink, _, _>(sink, |s| assert!(s.irqs.is_empty()));
        sim.with_component::<Nic, _, _>(nic, |n| assert_eq!(n.dropped(), 1));
        assert_eq!(cp.lock().stat(DsId::DEFAULT, "dropped").unwrap(), 1);
    }

    #[test]
    fn disabled_vnic_drops() {
        let (mut sim, nic, _sink, cp) = rig();
        cp.lock().set_param(DsId::new(2), "enabled", 0).unwrap();
        sim.post(nic, Time::ZERO, frame(MAC_LDOM2, 100));
        sim.run_until(Time::from_ms(1));
        sim.with_component::<Nic, _, _>(nic, |n| assert_eq!(n.dropped(), 1));
    }

    #[test]
    fn installed_admission_policy_rate_limits_frames() {
        let (mut sim, nic, sink, cp) = rig();
        // 1500-byte burst bucket refilled at 1 KB/s: of three back-to-back
        // 1000-byte frames only the first fits.
        cp.lock()
            .install_policy(
                "when param.enabled == 0 do drop\n\
                 when all do charge size rate 1000 burst 1500 else drop",
            )
            .unwrap();
        for _ in 0..3 {
            sim.post(nic, Time::ZERO, frame(MAC_LDOM2, 1000));
        }
        sim.run_until(Time::from_ms(2));
        sim.with_component::<Nic, _, _>(nic, |n| assert_eq!(n.dropped(), 2));
        sim.with_component::<Sink, _, _>(sink, |s| assert_eq!(s.dma_by_ds[2], 1000));
    }

    #[test]
    fn clearing_an_installed_policy_restores_the_enabled_gate() {
        let (mut sim, nic, _sink, cp) = rig();
        {
            let mut cp = cp.lock();
            cp.install_policy("when all do drop").unwrap();
            cp.clear_policy();
        }
        sim.post(nic, Time::ZERO, frame(MAC_LDOM2, 100));
        sim.run_until(Time::from_ms(1));
        sim.with_component::<Nic, _, _>(nic, |n| assert_eq!(n.dropped(), 0));
    }

    #[test]
    fn stats_accumulate_per_vnic() {
        let (mut sim, nic, _sink, cp) = rig();
        for _ in 0..3 {
            sim.post(nic, Time::ZERO, frame(MAC_LDOM2, 1000));
        }
        sim.run_until(Time::from_ms(3));
        let cp = cp.lock();
        assert_eq!(cp.stat(DsId::new(2), "frames").unwrap(), 3);
        assert_eq!(cp.stat(DsId::new(2), "bytes").unwrap(), 3000);
    }

    #[test]
    fn mac_codec_round_trips() {
        for mac in [[0u8; 6], [0xFF; 6], [1, 2, 3, 4, 5, 6]] {
            assert_eq!(u64_to_mac(mac_to_u64(mac)), mac);
        }
    }
}
