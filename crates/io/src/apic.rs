//! The DS-id-routed interrupt controller.

use std::sync::Arc;

use pard_icn::{cpu_cycles, DsId, InterruptPacket, PardEvent};
use pard_sim::sync::Mutex;
use pard_sim::{audit, Component, ComponentId, Ctx, Time};

/// Interrupt vector used by IDE completions.
pub const VEC_IDE: u8 = 14;
/// Interrupt vector used by NIC receive notifications.
pub const VEC_NIC: u8 = 11;

/// The per-DS-id interrupt route tables, shared between the [`Apic`]
/// component and the PRM firmware that programs them.
///
/// PARD duplicates the APIC's route table per DS-id (§4.1): when a device
/// raises an interrupt tagged with a DS-id, the APIC uses that DS-id's
/// table to pick the destination core.
///
/// # Example
///
/// ```
/// use pard_io::ApicRoutes;
/// use pard_icn::DsId;
/// use pard_sim::ComponentId;
///
/// let routes = ApicRoutes::new(8);
/// routes.set(DsId::new(2), ComponentId::from_raw(5));
/// assert_eq!(routes.get(DsId::new(2)), Some(ComponentId::from_raw(5)));
/// assert_eq!(routes.get(DsId::new(3)), None);
/// ```
#[derive(Debug, Clone)]
pub struct ApicRoutes {
    tables: Arc<Mutex<Vec<Option<ComponentId>>>>,
}

impl ApicRoutes {
    /// Creates empty route tables for DS-ids `0..max_ds`.
    pub fn new(max_ds: usize) -> Self {
        ApicRoutes {
            tables: Arc::new(Mutex::new(vec![None; max_ds])),
        }
    }

    /// Routes `ds`-tagged interrupts to `core`.
    pub fn set(&self, ds: DsId, core: ComponentId) {
        let mut t = self.tables.lock();
        if ds.index() < t.len() {
            t[ds.index()] = Some(core);
        }
    }

    /// Clears the route for `ds`.
    pub fn clear(&self, ds: DsId) {
        let mut t = self.tables.lock();
        if ds.index() < t.len() {
            t[ds.index()] = None;
        }
    }

    /// The destination core for `ds`, if routed.
    pub fn get(&self, ds: DsId) -> Option<ComponentId> {
        self.tables.lock().get(ds.index()).copied().flatten()
    }
}

/// The augmented APIC component.
///
/// Receives [`InterruptPacket`]s from devices, consults the per-DS-id
/// route table, and forwards the interrupt to the routed core after the
/// interrupt-delivery latency. Unrouted interrupts are dropped and counted
/// (a real system would fault to the PRM).
pub struct Apic {
    routes: ApicRoutes,
    delivery_latency: Time,
    delivered: u64,
    dropped: u64,
}

impl Apic {
    /// Creates an APIC with the given shared route tables.
    pub fn new(routes: ApicRoutes) -> Self {
        Apic {
            routes,
            delivery_latency: cpu_cycles(100),
            delivered: 0,
            dropped: 0,
        }
    }

    /// Interrupts delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Interrupts dropped for lack of a route.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Component<PardEvent> for Apic {
    fn name(&self) -> &str {
        "apic"
    }

    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        let pkt = match ev {
            PardEvent::Interrupt(pkt) => pkt,
            other => {
                audit::unexpected_event(
                    "apic",
                    other.kind_label(),
                    ctx.now(),
                    other.ds().map_or(u16::MAX, DsId::raw),
                );
                return;
            }
        };
        match self.routes.get(pkt.ds) {
            Some(core) => {
                if audit::enabled() {
                    audit::irq_settle(pkt.vector, pkt.ds.raw(), ctx.now(), "routed");
                }
                self.delivered += 1;
                ctx.send(core, self.delivery_latency, PardEvent::Interrupt(pkt));
            }
            None => {
                if audit::enabled() {
                    audit::irq_settle(pkt.vector, pkt.ds.raw(), ctx.now(), "dropped");
                }
                self.dropped += 1;
            }
        }
    }

    pard_sim::impl_as_any!();
}

/// Builds an interrupt packet for a disk completion.
pub(crate) fn ide_interrupt(ds: DsId, done: pard_icn::DiskDone) -> InterruptPacket {
    InterruptPacket {
        ds,
        vector: VEC_IDE,
        disk_done: Some(done),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_icn::DiskDone;
    use pard_icn::PacketId;
    use pard_sim::Simulation;

    struct CoreStub {
        interrupts: Vec<InterruptPacket>,
    }

    impl Component<PardEvent> for CoreStub {
        fn name(&self) -> &str {
            "corestub"
        }
        fn handle(&mut self, ev: PardEvent, _ctx: &mut Ctx<'_, PardEvent>) {
            if let PardEvent::Interrupt(pkt) = ev {
                self.interrupts.push(pkt);
            }
        }
        pard_sim::impl_as_any!();
    }

    #[test]
    fn interrupts_follow_the_ds_route_table() {
        let mut sim: Simulation<PardEvent> = Simulation::new();
        let routes = ApicRoutes::new(8);
        let apic = sim.add_component(Box::new(Apic::new(routes.clone())));
        let core_a = sim.add_component(Box::new(CoreStub { interrupts: vec![] }));
        let core_b = sim.add_component(Box::new(CoreStub { interrupts: vec![] }));
        routes.set(DsId::new(1), core_a);
        routes.set(DsId::new(2), core_b);

        for ds in [1u16, 2, 2, 3] {
            sim.post(
                apic,
                Time::ZERO,
                PardEvent::Interrupt(ide_interrupt(
                    DsId::new(ds),
                    DiskDone {
                        id: PacketId(u64::from(ds)),
                        ds: DsId::new(ds),
                        bytes: 0,
                    },
                )),
            );
        }
        sim.run();

        sim.with_component::<CoreStub, _, _>(core_a, |c| assert_eq!(c.interrupts.len(), 1));
        sim.with_component::<CoreStub, _, _>(core_b, |c| assert_eq!(c.interrupts.len(), 2));
        sim.with_component::<Apic, _, _>(apic, |a| {
            assert_eq!(a.delivered(), 3);
            assert_eq!(a.dropped(), 1, "ds3 has no route");
        });
    }

    #[test]
    fn routes_can_be_reprogrammed_and_cleared() {
        let routes = ApicRoutes::new(4);
        let a = ComponentId::from_raw(1);
        let b = ComponentId::from_raw(2);
        routes.set(DsId::new(0), a);
        routes.set(DsId::new(0), b);
        assert_eq!(routes.get(DsId::new(0)), Some(b));
        routes.clear(DsId::new(0));
        assert_eq!(routes.get(DsId::new(0)), None);
        // Out-of-range is a no-op.
        routes.set(DsId::new(100), a);
        assert_eq!(routes.get(DsId::new(100)), None);
    }
}
