//! Whole-system configuration.

use pard_cache::LlcConfig;
use pard_dram::MemCtrlConfig;
use pard_io::{IdeConfig, IoBridgeConfig, NicConfig};
use pard_sim::Time;

use crate::core_model::CoreConfig;

/// Configuration of a whole PARD server.
///
/// [`SystemConfig::asplos15`] reproduces the paper's Table 2 platform:
/// four 2 GHz out-of-order x86 cores with 64 KB 2-way L1s, a shared 4 MB
/// 16-way LLC (20-cycle hit), 8 GB DDR3-1600 11-11-11 (one channel, two
/// ranks of eight banks, 1 KB rows), a 4-channel IDE controller with eight
/// disks, and a PRM with four control-plane adaptors.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of CPU cores.
    pub cores: usize,
    /// Per-core configuration.
    pub core: CoreConfig,
    /// Shared LLC configuration.
    pub llc: LlcConfig,
    /// Memory-controller configuration.
    pub mem: MemCtrlConfig,
    /// I/O-bridge configuration.
    pub bridge: IoBridgeConfig,
    /// IDE-controller configuration.
    pub ide: IdeConfig,
    /// NIC configuration.
    pub nic: NicConfig,
    /// PRM firmware polling interval (the trigger ⇒ action reaction
    /// latency floor; the PRM runs at 100 MHz).
    pub prm_poll: Time,
    /// Maximum DS-ids across all control planes.
    pub max_ds: usize,
    /// Master switch for PARD's differentiated data-path mechanisms
    /// (memory priority queues + high-priority row buffers). With this
    /// `false` the machine behaves like a conventional server: tags are
    /// still carried (for statistics), but nothing acts on them — the
    /// paper's "without PARD" baseline.
    pub pard_enabled: bool,
}

impl SystemConfig {
    /// The paper's Table 2 evaluation platform.
    pub fn asplos15() -> Self {
        SystemConfig::default()
    }

    /// A smaller, faster-to-simulate platform for tests: two cores, a
    /// 256 KB LLC, 64 MB of memory, short statistics windows.
    pub fn small_test() -> Self {
        let mut cfg = SystemConfig {
            cores: 2,
            ..SystemConfig::default()
        };
        cfg.llc = LlcConfig {
            geometry: pard_cache::CacheGeometry::new(256 * 1024, 16, 64),
            window: Time::from_us(20),
            max_ds: 16,
            ..LlcConfig::default()
        };
        cfg.mem = MemCtrlConfig {
            window: Time::from_us(20),
            max_ds: 16,
            ..MemCtrlConfig::default()
        };
        cfg.bridge = IoBridgeConfig {
            max_ds: 16,
            ..IoBridgeConfig::default()
        };
        cfg.ide = IdeConfig {
            max_ds: 16,
            ..IdeConfig::default()
        };
        cfg.nic = NicConfig {
            max_ds: 16,
            ..NicConfig::default()
        };
        cfg.prm_poll = Time::from_us(20);
        cfg.max_ds = 16;
        cfg
    }

    /// Disables the differentiated data path (the "without PARD"
    /// baseline).
    pub fn without_pard(mut self) -> Self {
        self.pard_enabled = false;
        self.mem.priorities_enabled = false;
        self
    }

    /// Sets consistent `max_ds` across every control plane.
    pub fn with_max_ds(mut self, max_ds: usize) -> Self {
        self.max_ds = max_ds;
        self.llc.max_ds = max_ds;
        self.mem.max_ds = max_ds;
        self.bridge.max_ds = max_ds;
        self.ide.max_ds = max_ds;
        self.nic.max_ds = max_ds;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cores: 4,
            core: CoreConfig::default(),
            llc: LlcConfig::default(),
            mem: MemCtrlConfig::default(),
            bridge: IoBridgeConfig::default(),
            ide: IdeConfig::default(),
            nic: NicConfig::default(),
            prm_poll: Time::from_us(100),
            max_ds: 256,
            pard_enabled: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_platform_shape() {
        let cfg = SystemConfig::asplos15();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.llc.geometry.size_bytes(), 4 * 1024 * 1024);
        assert_eq!(cfg.llc.geometry.ways(), 16);
        assert_eq!(cfg.core.l1.size_bytes(), 64 * 1024);
        assert_eq!(cfg.mem.geometry.total_banks(), 16);
        assert_eq!(cfg.ide.channels, 4);
        assert_eq!(cfg.ide.disks, 8);
        assert!(cfg.pard_enabled);
    }

    #[test]
    fn without_pard_disables_memory_priorities() {
        let cfg = SystemConfig::asplos15().without_pard();
        assert!(!cfg.pard_enabled);
        assert!(!cfg.mem.priorities_enabled);
    }

    #[test]
    fn with_max_ds_propagates() {
        let cfg = SystemConfig::asplos15().with_max_ds(32);
        assert_eq!(cfg.llc.max_ds, 32);
        assert_eq!(cfg.mem.max_ds, 32);
        assert_eq!(cfg.bridge.max_ds, 32);
        assert_eq!(cfg.ide.max_ds, 32);
        assert_eq!(cfg.nic.max_ds, 32);
    }
}
