//! Whole-system configuration.

use pard_cache::LlcConfig;
use pard_dram::MemCtrlConfig;
use pard_io::{IdeConfig, IoBridgeConfig, NicConfig};
use pard_sim::Time;

use crate::core_model::CoreConfig;

/// Configuration of a whole PARD server.
///
/// [`SystemConfig::asplos15`] reproduces the paper's Table 2 platform:
/// four 2 GHz out-of-order x86 cores with 64 KB 2-way L1s, a shared 4 MB
/// 16-way LLC (20-cycle hit), 8 GB DDR3-1600 11-11-11 (one channel, two
/// ranks of eight banks, 1 KB rows), a 4-channel IDE controller with eight
/// disks, and a PRM with four control-plane adaptors.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of CPU cores.
    pub cores: usize,
    /// Per-core configuration.
    pub core: CoreConfig,
    /// Shared LLC configuration.
    pub llc: LlcConfig,
    /// Memory-controller configuration.
    pub mem: MemCtrlConfig,
    /// I/O-bridge configuration.
    pub bridge: IoBridgeConfig,
    /// IDE-controller configuration.
    pub ide: IdeConfig,
    /// NIC configuration.
    pub nic: NicConfig,
    /// PRM firmware polling interval (the trigger ⇒ action reaction
    /// latency floor; the PRM runs at 100 MHz).
    pub prm_poll: Time,
    /// Maximum DS-ids across all control planes.
    pub max_ds: usize,
    /// Master switch for PARD's differentiated data-path mechanisms
    /// (memory priority queues + high-priority row buffers). With this
    /// `false` the machine behaves like a conventional server: tags are
    /// still carried (for statistics), but nothing acts on them — the
    /// paper's "without PARD" baseline.
    pub pard_enabled: bool,
    /// Experiment seed. Workload engines and traffic injectors derive
    /// their named streams from it via
    /// [`pard_sim::rng::stream_rng`]`(seed, "<stream>")`, so two servers
    /// built from equal configs replay identical randomness.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's Table 2 evaluation platform.
    pub fn asplos15() -> Self {
        SystemConfig::default()
    }

    /// A fluent builder starting from the Table 2 platform.
    ///
    /// # Example
    ///
    /// ```
    /// use pard::prelude::*;
    /// let cfg = SystemConfig::builder()
    ///     .cores(2)
    ///     .llc_geometry(1 << 20, 8, 64)
    ///     .seed(7)
    ///     .build();
    /// assert_eq!(cfg.cores, 2);
    /// assert_eq!(cfg.llc.geometry.ways(), 8);
    /// ```
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig::default(),
        }
    }

    /// A smaller, faster-to-simulate platform for tests: two cores, a
    /// 256 KB LLC, 64 MB of memory, short statistics windows.
    pub fn small_test() -> Self {
        let mut cfg = SystemConfig {
            cores: 2,
            ..SystemConfig::default()
        };
        cfg.llc = LlcConfig {
            geometry: pard_cache::CacheGeometry::new(256 * 1024, 16, 64),
            window: Time::from_us(20),
            max_ds: 16,
            ..LlcConfig::default()
        };
        cfg.mem = MemCtrlConfig {
            window: Time::from_us(20),
            max_ds: 16,
            ..MemCtrlConfig::default()
        };
        cfg.bridge = IoBridgeConfig {
            max_ds: 16,
            ..IoBridgeConfig::default()
        };
        cfg.ide = IdeConfig {
            max_ds: 16,
            ..IdeConfig::default()
        };
        cfg.nic = NicConfig {
            max_ds: 16,
            ..NicConfig::default()
        };
        cfg.prm_poll = Time::from_us(20);
        cfg.max_ds = 16;
        cfg
    }

    /// Disables the differentiated data path (the "without PARD"
    /// baseline).
    pub fn without_pard(mut self) -> Self {
        self.pard_enabled = false;
        self.mem.priorities_enabled = false;
        self
    }

    /// Sets consistent `max_ds` across every control plane.
    pub fn with_max_ds(mut self, max_ds: usize) -> Self {
        self.max_ds = max_ds;
        self.llc.max_ds = max_ds;
        self.mem.max_ds = max_ds;
        self.bridge.max_ds = max_ds;
        self.ide.max_ds = max_ds;
        self.nic.max_ds = max_ds;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cores: 4,
            core: CoreConfig::default(),
            llc: LlcConfig::default(),
            mem: MemCtrlConfig::default(),
            bridge: IoBridgeConfig::default(),
            ide: IdeConfig::default(),
            nic: NicConfig::default(),
            prm_poll: Time::from_us(100),
            max_ds: 256,
            pard_enabled: true,
            seed: 0,
        }
    }
}

/// Fluent constructor for [`SystemConfig`], obtained from
/// [`SystemConfig::builder`]. Every setter returns `self`; finish with
/// [`build`](SystemConfigBuilder::build).
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Sets the number of CPU cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cfg.cores = cores;
        self
    }

    /// Sets the shared LLC's geometry (total bytes, associativity, line
    /// size).
    pub fn llc_geometry(mut self, size_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        self.cfg.llc.geometry = pard_cache::CacheGeometry::new(size_bytes, ways, line_bytes);
        self
    }

    /// Sets the control planes' statistics window.
    pub fn stats_window(mut self, window: Time) -> Self {
        self.cfg.llc.window = window;
        self.cfg.mem.window = window;
        self
    }

    /// Sets the DRAM timing parameters.
    pub fn dram_timing(mut self, timing: pard_dram::DramTiming) -> Self {
        self.cfg.mem.timing = timing;
        self
    }

    /// Sets the DRAM organisation.
    pub fn dram_geometry(mut self, geometry: pard_dram::DramGeometry) -> Self {
        self.cfg.mem.geometry = geometry;
        self
    }

    /// Sets the PRM firmware polling interval.
    pub fn prm_poll(mut self, poll: Time) -> Self {
        self.cfg.prm_poll = poll;
        self
    }

    /// Sets `max_ds` consistently across every control plane.
    pub fn max_ds(mut self, max_ds: usize) -> Self {
        self.cfg = self.cfg.with_max_ds(max_ds);
        self
    }

    /// Enables or disables the differentiated data path.
    pub fn pard_enabled(mut self, enabled: bool) -> Self {
        self.cfg.pard_enabled = enabled;
        if !enabled {
            self.cfg.mem.priorities_enabled = false;
        }
        self
    }

    /// Sets the experiment seed for derived RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SystemConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_platform_shape() {
        let cfg = SystemConfig::asplos15();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.llc.geometry.size_bytes(), 4 * 1024 * 1024);
        assert_eq!(cfg.llc.geometry.ways(), 16);
        assert_eq!(cfg.core.l1.size_bytes(), 64 * 1024);
        assert_eq!(cfg.mem.geometry.total_banks(), 16);
        assert_eq!(cfg.ide.channels, 4);
        assert_eq!(cfg.ide.disks, 8);
        assert!(cfg.pard_enabled);
    }

    #[test]
    fn without_pard_disables_memory_priorities() {
        let cfg = SystemConfig::asplos15().without_pard();
        assert!(!cfg.pard_enabled);
        assert!(!cfg.mem.priorities_enabled);
    }

    #[test]
    fn with_max_ds_propagates() {
        let cfg = SystemConfig::asplos15().with_max_ds(32);
        assert_eq!(cfg.llc.max_ds, 32);
        assert_eq!(cfg.mem.max_ds, 32);
        assert_eq!(cfg.bridge.max_ds, 32);
        assert_eq!(cfg.ide.max_ds, 32);
        assert_eq!(cfg.nic.max_ds, 32);
    }

    #[test]
    fn builder_defaults_match_the_preset() {
        let built = SystemConfig::builder().build();
        let preset = SystemConfig::asplos15();
        assert_eq!(built.cores, preset.cores);
        assert_eq!(built.max_ds, preset.max_ds);
        assert_eq!(built.seed, preset.seed);
        assert_eq!(built.llc.geometry.size_bytes(), preset.llc.geometry.size_bytes());
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = SystemConfig::builder()
            .cores(8)
            .llc_geometry(2 << 20, 8, 64)
            .stats_window(Time::from_us(50))
            .prm_poll(Time::from_us(10))
            .max_ds(64)
            .pard_enabled(false)
            .seed(1234)
            .build();
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.llc.geometry.size_bytes(), 2 << 20);
        assert_eq!(cfg.llc.geometry.ways(), 8);
        assert_eq!(cfg.llc.window, Time::from_us(50));
        assert_eq!(cfg.mem.window, Time::from_us(50));
        assert_eq!(cfg.prm_poll, Time::from_us(10));
        assert_eq!(cfg.nic.max_ds, 64);
        assert!(!cfg.pard_enabled);
        assert!(!cfg.mem.priorities_enabled);
        assert_eq!(cfg.seed, 1234);
    }
}
