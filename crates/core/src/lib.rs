//! # pard — Programmable Architecture for Resourcing-on-Demand
//!
//! A full-system reproduction of *"Supporting Differentiated Services in
//! Computers via Programmable Architecture for Resourcing-on-Demand
//! (PARD)"* (ASPLOS 2015) as a cycle-level architectural simulator.
//!
//! PARD applies software-defined-networking principles to the
//! *intra-computer network*: every memory / I/O / interrupt packet carries
//! a DS-id tag; programmable control planes inside the LLC, memory
//! controller, I/O bridge, IDE controller, and NIC process packets
//! differentially by tag; and a platform resource manager (PRM) running a
//! Linux-like firmware exposes every control plane as a device file tree
//! with a "trigger ⇒ action" programming methodology.
//!
//! This crate is the assembly point: [`SystemConfig`] describes the
//! paper's Table 2 platform, [`PardServer`] wires cores, caches, DRAM,
//! I/O, and the PRM onto the simulation kernel, and [`Core`] is the
//! tag-registered CPU model that executes
//! [workload engines](pard_workloads::WorkloadEngine).
//!
//! ## Quickstart
//!
//! ```
//! use pard::{LDomSpec, PardServer, SystemConfig};
//! use pard_sim::Time;
//! use pard_workloads::{Stream, StreamConfig};
//!
//! // A four-core Table 2 server.
//! let mut server = PardServer::new(SystemConfig::asplos15());
//!
//! // Create an LDom on core 0 with 512 MiB and run STREAM in it.
//! let ds = server
//!     .create_ldom(LDomSpec::new("demo", vec![0], 512 << 20))
//!     .unwrap();
//! server.install_engine(0, Box::new(Stream::new(StreamConfig::default())));
//! server.launch(ds).unwrap();
//!
//! server.run_for(Time::from_ms(1));
//! assert!(server.llc_occupancy_bytes(ds) > 0);
//! ```
//!
//! # Paper mapping
//!
//! This crate is the paper's §4 "prototype machine": it assembles the
//! mechanism crates into the Table 2 platform ([`SystemConfig::asplos15`],
//! with [`SystemConfig::small_test`] as the scaled CI variant) — cores
//! with per-hardware-thread DS-id tag registers (§3.1), the tagged LLC
//! (cpa0), the DDR3 controller (cpa1), the I/O bridge (cpa2), IDE (cpa3),
//! and NIC (cpa4), all wired to the PRM. [`PardServer::shell`] is the
//! paper's operator console (§5, Fig. 6): `echo`/`cat` on the device
//! file tree, `pardtrigger`, and pardscript execution land here.

#![warn(missing_docs)]

mod config;
mod core_model;
mod server;

pub use config::{SystemConfig, SystemConfigBuilder};
pub use core_model::{Core, CoreConfig, CoreStats};
pub use server::PardServer;

// The vocabulary types users need, re-exported from the sub-crates.
pub use pard_cp::{CmpOp, CpHandle, CpType, Trigger, TriggerMode};
pub use pard_icn::{DsId, LAddr, MAddr, PardEvent};
pub use pard_prm::{Action, FwHandle, LDomSpec, Priority};
pub use pard_sim::Time;

/// The one-line import for building and driving a PARD server.
///
/// ```
/// use pard::prelude::*;
///
/// let cfg = SystemConfig::builder().cores(2).seed(7).build();
/// let server = PardServer::new(cfg);
/// assert_eq!(server.now(), Time::ZERO);
/// ```
pub mod prelude {
    pub use crate::config::{SystemConfig, SystemConfigBuilder};
    pub use crate::core_model::{Core, CoreConfig, CoreStats};
    pub use crate::server::PardServer;
    pub use pard_cp::{
        CmpOp, CpHandle, CpType, StatKey, StatsCells, StatsHandle, Trigger, TriggerMode,
    };
    pub use pard_icn::{DsId, LAddr, MAddr, PardEvent};
    pub use pard_prm::{Action, FwHandle, LDomSpec, Priority};
    pub use pard_sim::rng::{stream_rng, Rng, Xoshiro256pp};
    pub use pard_sim::Time;
}

/// The sub-crates, re-exported for deep access.
pub mod subsystems {
    pub use pard_cache as cache;
    pub use pard_cp as cp;
    pub use pard_dram as dram;
    pub use pard_icn as icn;
    pub use pard_io as io;
    pub use pard_prm as prm;
    pub use pard_sim as sim;
    pub use pard_workloads as workloads;
}
