//! The assembled PARD server.

use pard_cache::Llc;
use pard_cp::CpHandle;
use pard_dram::{MemCtrl, QueueingStats};
use pard_icn::{Crossbar, DomainPlan, DsId, PardEvent, TickKind};
use pard_io::{Apic, ApicRoutes, IdeCtrl, IoBridge, Nic};
use pard_prm::{Firmware, FirmwareConfig, FwError, FwHandle, LDomSpec, MetricsSnapshot, Prm};
use pard_sim::trace::{self, TraceCat, TraceVal};
use pard_sim::{audit, ComponentId, PartitionedSimulation, Simulation, Time};
use pard_workloads::WorkloadEngine;

use crate::config::SystemConfig;
use crate::core_model::{Core, CoreStats};

/// Domain of the PRM — the barrier-serialized control domain (its trigger
/// predicates read statistics owned by the other domains).
const CTL_DOMAIN: u32 = 0;
/// Domain of the cores, crossbar, APIC, I/O bridge, IDE, and NIC.
const CPU_DOMAIN: u32 = 1;
/// Domain of the LLC and the memory controller (same-cycle coupled by
/// zero-latency writeback pushes, so they must share a domain).
const MEM_DOMAIN: u32 = 2;

/// Which kernel drives the machine: every `PardServer` starts sequential;
/// [`PardServer::partition`] moves it onto the conservative parallel
/// kernel. Both deliver the identical `(time, seq)` schedule.
enum Backend {
    Seq(Simulation<PardEvent>),
    Part(PartitionedSimulation<PardEvent>),
}

impl Backend {
    fn run_until(&mut self, deadline: Time) {
        match self {
            Backend::Seq(s) => s.run_until(deadline),
            Backend::Part(p) => p.run_until(deadline),
        }
    }

    fn run_for(&mut self, span: Time) {
        match self {
            Backend::Seq(s) => s.run_for(span),
            Backend::Part(p) => p.run_for(span),
        }
    }

    fn now(&self) -> Time {
        match self {
            Backend::Seq(s) => s.now(),
            Backend::Part(p) => p.now(),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            Backend::Seq(s) => s.events_processed(),
            Backend::Part(p) => p.events_processed(),
        }
    }

    fn post(&mut self, dst: ComponentId, delay: Time, ev: PardEvent) {
        match self {
            Backend::Seq(s) => s.post(dst, delay, ev),
            Backend::Part(p) => p.post(dst, delay, ev),
        }
    }

    fn with_component<T: 'static, F, R>(&mut self, id: ComponentId, f: F) -> R
    where
        F: FnOnce(&mut T) -> R,
    {
        match self {
            Backend::Seq(s) => s.with_component(id, f),
            Backend::Part(p) => p.with_component(id, f),
        }
    }
}

/// A fully wired PARD server: cores + LLC + DRAM + I/O + PRM on the
/// simulation kernel.
///
/// Construction mirrors the paper's Figure 2: every shared resource gets a
/// control plane, every control plane is registered with the PRM firmware
/// as a CPA (cpa0 = LLC, cpa1 = memory, cpa2 = I/O bridge, cpa3 = IDE —
/// matching the `cpa3` disk-bandwidth path of Figure 10 — cpa4 = NIC), and
/// the firmware's device file tree is ready for `cat`/`echo`/`pardtrigger`.
///
/// See the [crate-level example](crate) for usage.
pub struct PardServer {
    backend: Backend,
    plan: DomainPlan,
    cores: Vec<ComponentId>,
    llc: ComponentId,
    mem: ComponentId,
    #[allow(dead_code)]
    bridge: ComponentId,
    ide: ComponentId,
    nic: ComponentId,
    #[allow(dead_code)]
    apic: ComponentId,
    prm: ComponentId,
    fw: FwHandle,
    llc_cp: CpHandle,
    mem_cp: CpHandle,
    bridge_cp: CpHandle,
    ide_cp: CpHandle,
    nic_cp: CpHandle,
}

impl PardServer {
    /// Builds and wires the whole machine.
    pub fn new(cfg: SystemConfig) -> Self {
        // Arm the tracer from `PARD_TRACE` / `PARD_TRACE_FILTER` and the
        // invariant auditor from `PARD_AUDIT` / `PARD_AUDIT_FILE` before
        // any component can emit (idempotent; no-ops when the env is
        // unset). A fresh server is a fresh conservation scope: clear any
        // ledger entries a previous machine on this thread left in flight.
        trace::init_from_env();
        audit::init_from_env();
        audit::begin_run();
        // Same fresh-run discipline for the fault layer: reset its
        // per-thread deterministic state (NIC loss RNG, IDE drop counter)
        // so a plan installed before construction replays identically.
        pard_sim::fault::begin_run();
        let mut sim: Simulation<PardEvent> = Simulation::new();

        // The kernel event loop is instrumented through the simulation's
        // event hook so the raw kernel stays hook-free when neither the
        // tracer nor the auditor wants deliveries.
        sim.set_event_hook(Self::kernel_hook());

        // Memory controller.
        let mem_cfg = pard_dram::MemCtrlConfig {
            priorities_enabled: cfg.pard_enabled && cfg.mem.priorities_enabled,
            ..cfg.mem.clone()
        };
        let (mem_ctrl, mem_cp) = MemCtrl::new(mem_cfg);
        let mem = sim.add_component(Box::new(mem_ctrl));

        // Shared LLC.
        let (mut llc_model, llc_cp) = Llc::new(cfg.llc.clone());
        llc_model.set_mem_ctrl(mem);
        let llc = sim.add_component(Box::new(llc_model));

        // Request crossbar between the cores and the LLC (Fig. 1); the
        // per-hop latency that CoreConfig::link_to_llc names is spent
        // here, so cores send into the crossbar with zero extra delay.
        let crossbar = sim.add_component(Box::new(Crossbar::new(
            pard_icn::CrossbarConfig {
                latency: cfg.core.link_to_llc,
                ..pard_icn::CrossbarConfig::default()
            },
            llc,
        )));

        // Interrupt fabric.
        let routes = ApicRoutes::new(cfg.max_ds);
        let apic = sim.add_component(Box::new(Apic::new(routes.clone())));

        // I/O bridge, IDE, NIC (wired after registration).
        let (bridge_model, bridge_cp) = IoBridge::new(cfg.bridge.clone());
        let bridge = sim.add_component(Box::new(bridge_model));
        let (ide_model, ide_cp) = IdeCtrl::new(cfg.ide.clone());
        let ide = sim.add_component(Box::new(ide_model));
        let (nic_model, nic_cp) = Nic::new(cfg.nic.clone());
        let nic = sim.add_component(Box::new(nic_model));

        sim.with_component::<IoBridge, _, _>(bridge, |b| {
            b.set_ide(ide);
            b.set_mem_ctrl(mem);
        });
        sim.with_component::<IdeCtrl, _, _>(ide, |i| {
            i.set_bridge(bridge);
            i.set_apic(apic);
        });
        sim.with_component::<Nic, _, _>(nic, |n| {
            n.set_bridge(bridge);
            n.set_apic(apic);
        });

        // Cores (their LLC port is the crossbar; the hop latency lives
        // there, so the cores' own link delay is zero).
        let core_cfg = crate::core_model::CoreConfig {
            link_to_llc: Time::ZERO,
            ..cfg.core.clone()
        };
        let cores: Vec<ComponentId> = (0..cfg.cores)
            .map(|i| {
                sim.add_component(Box::new(Core::new(
                    format!("core{i}"),
                    core_cfg.clone(),
                    crossbar,
                    bridge,
                )))
            })
            .collect();

        // PRM firmware: register the CPAs in the canonical order.
        let mut fw = Firmware::new(FirmwareConfig {
            mem_capacity: cfg.mem.geometry.capacity_bytes,
            max_ds: cfg.max_ds,
        });
        fw.register_cpa(llc_cp.clone()); // cpa0 — CACHE_CP
        fw.register_cpa(mem_cp.clone()); // cpa1 — MEMORY_CP
        fw.register_cpa(bridge_cp.clone()); // cpa2 — BRIDGE_CP
        fw.register_cpa(ide_cp.clone()); // cpa3 — IDE_CP (Figure 10)
        fw.register_cpa(nic_cp.clone()); // cpa4 — NIC_CP
        fw.set_cores(cores.clone());
        fw.set_apic_routes(routes);
        let fw = fw.into_handle();

        let prm = sim.add_component(Box::new(Prm::new(fw.clone(), cfg.prm_poll)));
        sim.post(prm, Time::ZERO, PardEvent::Tick(TickKind::Prm));

        // The static partition plan (used only if `partition()` is called):
        // control / compute+I/O / memory-system domains, with the lookahead
        // derived from the shortest declared cross-domain link. The LLC and
        // memory controller share a domain because writeback pushes between
        // them are zero-latency.
        let mut plan = DomainPlan::new();
        plan.assign(prm, CTL_DOMAIN);
        plan.set_serial(CTL_DOMAIN);
        for &c in cores
            .iter()
            .chain([&crossbar, &apic, &bridge, &ide, &nic])
        {
            plan.assign(c, CPU_DOMAIN);
        }
        plan.assign(llc, MEM_DOMAIN);
        plan.assign(mem, MEM_DOMAIN);
        // Compute → memory: the crossbar's hop into the LLC, and the
        // bridge's DMA hop into the memory controller.
        plan.declare_link(CPU_DOMAIN, MEM_DOMAIN, cfg.core.link_to_llc);
        plan.declare_link(CPU_DOMAIN, MEM_DOMAIN, cfg.bridge.hop_latency);
        // Memory → compute: LLC fill and hit responses back to the cores
        // (DMA completions from the controller are strictly slower).
        plan.declare_link(MEM_DOMAIN, CPU_DOMAIN, cfg.llc.fill_latency);
        plan.declare_link(MEM_DOMAIN, CPU_DOMAIN, cfg.llc.hit_latency);

        PardServer {
            backend: Backend::Seq(sim),
            plan,
            cores,
            llc,
            mem,
            bridge,
            ide,
            nic,
            apic,
            prm,
            fw,
            llc_cp,
            mem_cp,
            bridge_cp,
            ide_cp,
            nic_cp,
        }
    }

    /// The kernel event-loop observer (audit delivery counting + kernel
    /// trace category), built fresh per kernel — the partitioned backend
    /// installs one per domain. Stateless, so per-domain copies observe
    /// exactly what the single sequential hook would.
    fn kernel_hook() -> Option<Box<dyn FnMut(Time, ComponentId, &PardEvent) + Send>> {
        let trace_kernel = trace::enabled(TraceCat::Kernel);
        if !trace_kernel && !audit::enabled() {
            return None;
        }
        Some(Box::new(move |now, dst, ev: &PardEvent| {
            audit::observe_delivery();
            if trace_kernel {
                let ds = ev.ds().map_or(u16::MAX, DsId::raw);
                trace::emit(
                    TraceCat::Kernel,
                    now,
                    ds,
                    ev.kind_label(),
                    &[("dst", TraceVal::U(u64::from(dst.raw())))],
                );
            }
        }))
    }

    /// Moves the machine onto the conservative parallel kernel
    /// ([`PartitionedSimulation`]): control / compute / memory domains,
    /// PRM serialized at barriers. Idempotent. The schedule — and thus
    /// every figure, trace line, and statistic — is byte-identical to the
    /// same machine partitioned at any other worker count (`PARD_THREADS`
    /// selects the pool size).
    ///
    /// After partitioning, [`sim_mut`](Self::sim_mut) is unavailable;
    /// harnesses that reach into the raw kernel should stay sequential.
    pub fn partition(&mut self) {
        if matches!(self.backend, Backend::Part(_)) {
            return;
        }
        let placeholder = Backend::Seq(Simulation::new());
        let Backend::Seq(sim) = std::mem::replace(&mut self.backend, placeholder) else {
            unreachable!("non-partitioned backend is sequential");
        };
        let (domain_of, serial, lookahead) = self.plan.clone().into_parts();
        let mut part = PartitionedSimulation::new(sim, domain_of, serial, lookahead);
        part.set_event_hooks(|_domain| Self::kernel_hook());
        self.backend = Backend::Part(part);
    }

    // -------------------------------------------------------------- time

    /// Runs the machine for `span` of simulated time.
    pub fn run_for(&mut self, span: Time) {
        self.backend.run_for(span);
    }

    /// Runs until the absolute time `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        self.backend.run_until(deadline);
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.backend.now()
    }

    /// Events processed so far (simulation throughput metric).
    pub fn events_processed(&self) -> u64 {
        self.backend.events_processed()
    }

    // ------------------------------------------------------------- ldoms

    /// Creates an LDom through the firmware (tag registers and control
    /// planes are programmed at the next PRM poll).
    ///
    /// # Errors
    ///
    /// Propagates firmware errors (out of DS-ids / memory).
    pub fn create_ldom(&mut self, spec: LDomSpec) -> Result<DsId, FwError> {
        self.fw.lock().create_ldom(spec)
    }

    /// Starts an LDom's workload at the next PRM poll.
    ///
    /// # Errors
    ///
    /// Fails for unknown DS-ids.
    pub fn launch(&mut self, ds: DsId) -> Result<(), FwError> {
        self.fw.lock().launch_ldom(ds)
    }

    /// Destroys an LDom: firmware teardown (cores stopped, memory freed,
    /// control-plane rows reset, subtrees unmounted) plus an LLC flush of
    /// the departing DS-id's lines — the hardware half of reclamation.
    ///
    /// # Errors
    ///
    /// Fails for unknown DS-ids.
    pub fn destroy_ldom(&mut self, ds: DsId) -> Result<(), FwError> {
        self.fw.lock().destroy_ldom(ds)?;
        self.backend
            .with_component::<Llc, _, _>(self.llc, |l| l.flush_ds(ds));
        Ok(())
    }

    /// Installs the workload engine on core `core_idx`.
    ///
    /// # Panics
    ///
    /// Panics if the core index is out of range.
    pub fn install_engine(&mut self, core_idx: usize, engine: Box<dyn WorkloadEngine>) {
        let id = self.cores[core_idx];
        self.backend
            .with_component::<Core, _, _>(id, |c| c.install_engine(engine));
    }

    // ------------------------------------------------------------ access

    /// The firmware handle (for `shell`, `pardtrigger`, action
    /// registration, logs).
    pub fn firmware(&self) -> &FwHandle {
        &self.fw
    }

    /// Runs an operator shell command against the firmware.
    ///
    /// # Errors
    ///
    /// Propagates firmware errors.
    pub fn shell(&mut self, line: &str) -> Result<String, FwError> {
        self.fw.lock().shell(line)
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Component id of core `core_idx` — the core's crossbar *port*
    /// identity (the crossbar serialises per requesting component). The
    /// fault experiments target a specific core's port with injected
    /// backpressure; construction order is deterministic, so this is
    /// stable for a given [`SystemConfig`](crate::SystemConfig).
    pub fn core_component_id(&self, core_idx: usize) -> ComponentId {
        self.cores[core_idx]
    }

    /// Typed access to core `core_idx`.
    pub fn with_core<R>(&mut self, core_idx: usize, f: impl FnOnce(&mut Core) -> R) -> R {
        let id = self.cores[core_idx];
        self.backend.with_component::<Core, _, _>(id, f)
    }

    /// Typed access to core `core_idx`'s installed engine.
    pub fn with_engine<T: 'static, R>(
        &mut self,
        core_idx: usize,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        self.with_core(core_idx, |c| c.with_engine::<T, R>(f))
    }

    /// Execution statistics of core `core_idx`.
    pub fn core_stats(&mut self, core_idx: usize) -> CoreStats {
        self.with_core(core_idx, |c| c.stats())
    }

    /// Average busy fraction across all cores (the paper's server CPU
    /// utilisation).
    pub fn cpu_utilization(&mut self) -> f64 {
        let now = self.now();
        let n = self.cores.len();
        (0..n)
            .map(|i| self.with_core(i, |c| c.busy_fraction(now)))
            .sum::<f64>()
            / n as f64
    }

    /// Bytes of LLC currently occupied by `ds` (live tag-array count,
    /// the paper's footnote 6 statistic).
    pub fn llc_occupancy_bytes(&mut self, ds: DsId) -> u64 {
        self.backend
            .with_component::<Llc, _, _>(self.llc, |l| l.occupancy_bytes(ds))
    }

    /// Cumulative LLC `(hits, misses)` for `ds`.
    pub fn llc_counts(&mut self, ds: DsId) -> (u64, u64) {
        self.backend
            .with_component::<Llc, _, _>(self.llc, |l| l.counts(ds))
    }

    /// Memory-controller queueing statistics (Figure 11; requires
    /// `record_queueing` in the memory config).
    pub fn mem_queueing(&mut self) -> QueueingStats {
        self.backend
            .with_component::<MemCtrl, _, _>(self.mem, |m| m.queueing_stats())
    }

    /// Drains and returns the memory controller's queueing-latency sample
    /// for one DS-id (requires `record_queueing`). Draining at phase
    /// boundaries yields per-phase percentiles — the measurement the
    /// fault-recovery experiment (`fig_fault`) is built on.
    pub fn take_mem_queueing(&mut self, ds: DsId) -> pard_sim::stats::LatencySample {
        self.backend
            .with_component::<MemCtrl, _, _>(self.mem, |m| m.take_ds_queueing(ds))
    }

    /// Mean memory queueing delay per priority class `(high, low)` in
    /// memory cycles.
    pub fn mem_queueing_means(&mut self) -> (f64, f64) {
        self.backend
            .with_component::<MemCtrl, _, _>(self.mem, |m| m.mean_queueing_cycles())
    }

    /// Total requests served by the memory controller across every DS-id
    /// (live cumulative counter, independent of the statistics windows).
    pub fn mem_served_total(&mut self) -> u64 {
        self.backend
            .with_component::<MemCtrl, _, _>(self.mem, |m| m.served_total())
    }

    /// Per-DS disk progress.
    pub fn disk_progress(&mut self, ds: DsId) -> pard_io::DiskProgress {
        self.backend
            .with_component::<IdeCtrl, _, _>(self.ide, |i| i.progress(ds))
    }

    /// The LLC control plane.
    pub fn llc_cp(&self) -> &CpHandle {
        &self.llc_cp
    }

    /// The memory control plane.
    pub fn mem_cp(&self) -> &CpHandle {
        &self.mem_cp
    }

    /// The I/O-bridge control plane.
    pub fn bridge_cp(&self) -> &CpHandle {
        &self.bridge_cp
    }

    /// The IDE control plane.
    pub fn ide_cp(&self) -> &CpHandle {
        &self.ide_cp
    }

    /// The NIC control plane.
    pub fn nic_cp(&self) -> &CpHandle {
        &self.nic_cp
    }

    /// Component id of the NIC (for injecting [`PardEvent::NetFrame`]s).
    pub fn nic_id(&self) -> ComponentId {
        self.nic
    }

    /// Component id of the PRM.
    pub fn prm_id(&self) -> ComponentId {
        self.prm
    }

    /// Posts a raw event into the machine (test harnesses: network frames,
    /// manual interrupts).
    pub fn post(&mut self, dst: ComponentId, delay: Time, ev: PardEvent) {
        self.backend.post(dst, delay, ev);
    }

    /// Mutable access to the underlying sequential simulation (advanced
    /// harnesses that reach into the raw kernel).
    ///
    /// # Panics
    ///
    /// Panics after [`partition`](Self::partition): harnesses that need raw
    /// kernel access must stay on the sequential backend.
    pub fn sim_mut(&mut self) -> &mut Simulation<PardEvent> {
        match &mut self.backend {
            Backend::Seq(s) => s,
            Backend::Part(_) => panic!(
                "sim_mut is unavailable after partition(): keep harnesses \
                 that reach into the raw kernel on the sequential backend"
            ),
        }
    }

    /// A machine-wide per-DS-id statistics snapshot (every control
    /// plane's non-zero rows), stamped with the firmware's current time.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.fw.lock().metrics_snapshot()
    }
}

impl Drop for PardServer {
    fn drop(&mut self) {
        // Exit-time observability: dump the final metrics snapshot when
        // `PARD_METRICS=path` is set, and flush any buffered trace lines.
        if let Ok(path) = std::env::var("PARD_METRICS") {
            if !path.is_empty() {
                let json = self.fw.lock().metrics_snapshot().to_json();
                let _ = std::fs::write(&path, json);
            }
        }
        if audit::enabled() {
            audit::emit_summary(self.backend.now());
            audit::flush();
        }
        trace::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_workloads::{CacheFlush, Stream, StreamConfig};

    fn small() -> PardServer {
        PardServer::new(SystemConfig::small_test())
    }

    #[test]
    fn builds_and_mounts_all_five_cpas() {
        let server = small();
        let mut fw = server.fw.lock();
        assert_eq!(fw.read("/sys/cpa/cpa0/ident").unwrap(), "CACHE_CP");
        assert_eq!(fw.read("/sys/cpa/cpa1/ident").unwrap(), "MEMORY_CP");
        assert_eq!(fw.read("/sys/cpa/cpa2/ident").unwrap(), "BRIDGE_CP");
        assert_eq!(fw.read("/sys/cpa/cpa3/ident").unwrap(), "IDE_CP");
        assert_eq!(fw.read("/sys/cpa/cpa4/ident").unwrap(), "NIC_CP");
    }

    #[test]
    fn ldom_lifecycle_runs_a_workload() {
        let mut server = small();
        let ds = server
            .create_ldom(LDomSpec::new("w", vec![0], 16 << 20))
            .unwrap();
        server.install_engine(
            0,
            Box::new(Stream::new(StreamConfig {
                array_bytes: 256 * 1024,
                base: 0,
                compute_per_block: 8,
            })),
        );
        server.launch(ds).unwrap();
        server.run_for(Time::from_ms(2));

        let stats = server.core_stats(0);
        assert!(stats.loads > 1000, "stream made progress: {stats:?}");
        assert!(server.llc_occupancy_bytes(ds) > 0);
        let (hits, misses) = server.llc_counts(ds);
        assert!(hits + misses > 0);
        assert!(server.cpu_utilization() > 0.2);
    }

    #[test]
    fn two_ldoms_compete_for_llc() {
        let mut server = small();
        let a = server
            .create_ldom(LDomSpec::new("a", vec![0], 16 << 20))
            .unwrap();
        let b = server
            .create_ldom(LDomSpec::new("b", vec![1], 16 << 20))
            .unwrap();
        // Both flush buffers larger than the 256 KB test LLC.
        server.install_engine(0, Box::new(CacheFlush::new(0, 1 << 20)));
        server.install_engine(1, Box::new(CacheFlush::new(0, 1 << 20)));
        server.launch(a).unwrap();
        server.launch(b).unwrap();
        server.run_for(Time::from_ms(3));

        let occ_a = server.llc_occupancy_bytes(a);
        let occ_b = server.llc_occupancy_bytes(b);
        assert!(occ_a > 0 && occ_b > 0);
        // Unpartitioned: both occupy substantial shares of 256 KB.
        assert!(occ_a + occ_b > 128 * 1024);
    }

    #[test]
    fn waymask_programming_constrains_occupancy() {
        let mut server = small();
        let a = server
            .create_ldom(LDomSpec::new("a", vec![0], 16 << 20))
            .unwrap();
        let b = server
            .create_ldom(LDomSpec::new("b", vec![1], 16 << 20))
            .unwrap();
        server.install_engine(0, Box::new(CacheFlush::new(0, 1 << 20)));
        server.install_engine(1, Box::new(CacheFlush::new(0, 1 << 20)));
        // Partition: ldom0 -> 12 ways, ldom1 -> 4 ways.
        server
            .shell("echo 0x0FFF > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
            .unwrap();
        server
            .shell("echo 0xF000 > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask")
            .unwrap();
        server.launch(a).unwrap();
        server.launch(b).unwrap();
        server.run_for(Time::from_ms(3));

        let occ_a = server.llc_occupancy_bytes(a) as f64;
        let occ_b = server.llc_occupancy_bytes(b) as f64;
        let ratio = occ_a / occ_b;
        assert!(
            (2.0..=4.5).contains(&ratio),
            "expected ~3:1 partition, got {ratio:.2} ({occ_a} vs {occ_b})"
        );
    }

    /// Drives one machine to completion and returns the observables a
    /// harness would record: final time, event count, core stats, LLC
    /// occupancy/counts, and total memory requests served.
    fn drive(partition: bool) -> (Time, u64, CoreStats, u64, (u64, u64), u64) {
        let mut server = small();
        let ds = server
            .create_ldom(LDomSpec::new("w", vec![0], 16 << 20))
            .unwrap();
        server.install_engine(
            0,
            Box::new(Stream::new(StreamConfig {
                array_bytes: 256 * 1024,
                base: 0,
                compute_per_block: 8,
            })),
        );
        server.launch(ds).unwrap();
        if partition {
            server.partition();
        }
        server.run_for(Time::from_ms(2));
        (
            server.now(),
            server.events_processed(),
            server.core_stats(0),
            server.llc_occupancy_bytes(ds),
            server.llc_counts(ds),
            server.mem_served_total(),
        )
    }

    #[test]
    fn partitioned_server_matches_sequential() {
        let seq = drive(false);
        let part = drive(true);
        assert_eq!(seq, part);
        assert!(part.2.loads > 1000, "stream made progress: {part:?}");
    }

    #[test]
    #[should_panic(expected = "sim_mut is unavailable")]
    fn sim_mut_is_refused_after_partition() {
        let mut server = small();
        server.partition();
        let _ = server.sim_mut();
    }

    #[test]
    fn disjoint_memory_allocations() {
        let mut server = small();
        let a = server
            .create_ldom(LDomSpec::new("a", vec![0], 16 << 20))
            .unwrap();
        let b = server
            .create_ldom(LDomSpec::new("b", vec![1], 16 << 20))
            .unwrap();
        let fw = server.fw.lock();
        let base_a = fw.ldom(a).unwrap().mem_base;
        let base_b = fw.ldom(b).unwrap().mem_base;
        assert_eq!(base_a, 0);
        assert_eq!(base_b, 16 << 20);
    }
}
