//! The CPU core model with its DS-id tag register.

use std::collections::HashMap;

use pard_cache::{CacheGeometry, L1Cache};
use pard_icn::{
    cpu_cycles, CoreCommand, DiskRequest, DsId, MemKind, MemPacket, PacketId, PacketIdGen,
    PardEvent, TickKind,
};
use pard_sim::stats::LatencySample;
use pard_sim::{audit, Component, ComponentId, Ctx, Time};
use pard_workloads::{Op, WorkloadEngine};

/// Configuration of a [`Core`].
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Private L1 data-cache geometry (Table 2: 64 KB 2-way).
    pub l1: CacheGeometry,
    /// L1 hit latency (Table 2: 2 cycles).
    pub l1_hit: Time,
    /// Memory-level parallelism: maximum outstanding LLC requests (models
    /// the 4-issue out-of-order window's MSHRs).
    pub mlp: usize,
    /// Link latency to the LLC (NoC hop).
    pub link_to_llc: Time,
    /// Maximum compute time executed per scheduling slice before yielding
    /// to the event loop (keeps the event queue responsive; purely a
    /// simulation batching knob).
    pub slice: Time,
    /// Record the round-trip service latency of every L1 miss (issue to
    /// [`PardEvent::MemResp`] — an LLC hit and a DRAM round trip alike,
    /// i.e. the latency the workload actually experiences). Off by
    /// default; the fault experiments drain the sample per phase via
    /// [`Core::take_miss_latency`].
    pub record_miss_latency: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            l1: CacheGeometry::new(64 * 1024, 2, 64),
            l1_hit: cpu_cycles(2),
            mlp: 8,
            link_to_llc: cpu_cycles(4),
            slice: Time::from_us(2),
            record_miss_latency: false,
        }
    }
}

/// Execution statistics of a core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// L1 hits (loads + stores).
    pub l1_hits: u64,
    /// L1 misses (traffic sent to the LLC).
    pub l1_misses: u64,
    /// Operations executed in total.
    pub ops: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    /// Ready to execute (used transiently).
    None,
    /// A self-scheduled resume tick is in flight.
    Resume,
    /// Blocked on a specific load.
    Load(PacketId),
    /// Blocked on MLP: resumes when any load returns.
    Mlp,
    /// Blocked on a disk completion interrupt.
    Disk(PacketId),
}

/// A CPU core: the paper's request *source*, carrying the **DS-id tag
/// register** that labels every packet it emits (§3 ①).
///
/// The core executes a [`WorkloadEngine`]'s operation stream against the
/// real memory system: L1 hits cost [`CoreConfig::l1_hit`], misses travel
/// to the LLC as tagged packets, blocking loads stall the pipeline,
/// non-blocking loads overlap up to [`CoreConfig::mlp`]. Compute spans are
/// batched up to [`CoreConfig::slice`] per event to keep simulation cost
/// proportional to *memory traffic*, not instructions.
pub struct Core {
    name: String,
    cfg: CoreConfig,
    tag: DsId,
    engine: Option<Box<dyn WorkloadEngine>>,
    l1: L1Cache,
    llc: ComponentId,
    bridge: ComponentId,
    running: bool,
    halted: bool,
    ever_started: bool,
    wait: Wait,
    cursor: Time,
    outstanding: HashMap<u64, Time>,
    ids: PacketIdGen,
    stats: CoreStats,
    started_at: Time,
    idle_accum: Time,
    halted_at: Option<Time>,
    rec_miss: LatencySample,
}

impl Core {
    /// Creates a core wired to the LLC and I/O bridge.
    pub fn new(
        name: impl Into<String>,
        cfg: CoreConfig,
        llc: ComponentId,
        bridge: ComponentId,
    ) -> Self {
        Core {
            name: name.into(),
            l1: L1Cache::new(cfg.l1),
            cfg,
            tag: DsId::DEFAULT,
            engine: None,
            llc,
            bridge,
            running: false,
            halted: false,
            ever_started: false,
            wait: Wait::None,
            cursor: Time::ZERO,
            outstanding: HashMap::new(),
            ids: PacketIdGen::new(),
            stats: CoreStats::default(),
            started_at: Time::ZERO,
            idle_accum: Time::ZERO,
            halted_at: None,
            rec_miss: LatencySample::new(),
        }
    }

    /// Drains and returns the recorded L1-miss service latencies (empty
    /// unless [`CoreConfig::record_miss_latency`] is set). The fault
    /// experiments drain this per phase: it is the latency the workload
    /// itself experiences, so it recovers when trigger-driven recovery
    /// stops the high-priority domain's requests from reaching the
    /// faulted resource at all.
    pub fn take_miss_latency(&mut self) -> LatencySample {
        std::mem::take(&mut self.rec_miss)
    }

    /// Installs the workload engine (before or after launch).
    pub fn install_engine(&mut self, engine: Box<dyn WorkloadEngine>) {
        self.engine = Some(engine);
    }

    /// The tag register's current DS-id.
    pub fn tag(&self) -> DsId {
        self.tag
    }

    /// Whether the core is executing a workload.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Whether the workload ran to completion ([`Op::Halt`]).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Execution statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Busy fraction since launch: 1.0 means never idle (stalls on memory
    /// count as busy, like OS-level CPU utilisation).
    pub fn busy_fraction(&self, now: Time) -> f64 {
        if !self.ever_started {
            return 0.0;
        }
        let end = self.halted_at.unwrap_or(now);
        let total = now.saturating_sub(self.started_at);
        if total == Time::ZERO {
            return 0.0;
        }
        let idle = self.idle_accum + now.saturating_sub(end);
        1.0 - idle.units() as f64 / total.units() as f64
    }

    /// Typed access to the installed engine (harness-side reporting).
    ///
    /// # Panics
    ///
    /// Panics if no engine is installed or it is not a `T`.
    pub fn with_engine<T: 'static, R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        let engine = self
            .engine
            .as_mut()
            .expect("no workload engine installed on this core");
        let typed = engine
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("engine is not the requested type");
        f(typed)
    }

    /// Borrow of the installed engine, if any.
    pub fn engine(&self) -> Option<&dyn WorkloadEngine> {
        self.engine.as_deref()
    }

    fn resume(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        self.wait = Wait::None;
        self.run_slice(ctx);
    }

    fn send_llc(
        &mut self,
        ctx: &mut Ctx<'_, PardEvent>,
        at: Time,
        kind: MemKind,
        addr: pard_icn::LAddr,
    ) -> PacketId {
        let id = self.ids.next_id();
        let pkt = MemPacket {
            id,
            ds: self.tag,
            addr,
            kind,
            size: self.cfg.l1.line_bytes(),
            reply_to: ctx.self_id(),
            issued_at: at,
            dma: false,
        };
        ctx.send_at(self.llc, at + self.cfg.link_to_llc, PardEvent::MemReq(pkt));
        id
    }

    fn run_slice(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        const MAX_OPS_PER_SLICE: u32 = 100_000;
        let now = ctx.now();
        let mut cursor = self.cursor.max(now);
        let slice_end = now + self.cfg.slice;

        for _ in 0..MAX_OPS_PER_SLICE {
            if !self.running {
                self.cursor = cursor;
                return;
            }
            if self.outstanding.len() >= self.cfg.mlp {
                self.wait = Wait::Mlp;
                self.cursor = cursor;
                return;
            }
            let Some(engine) = self.engine.as_mut() else {
                self.running = false;
                self.cursor = cursor;
                return;
            };
            let op = engine.next_op(cursor);
            self.stats.ops += 1;
            match op {
                Op::Compute(cycles) => {
                    cursor += cpu_cycles(cycles);
                    if cursor >= slice_end {
                        self.wait = Wait::Resume;
                        self.cursor = cursor;
                        ctx.send_at(ctx.self_id(), cursor, PardEvent::Tick(TickKind::Core));
                        return;
                    }
                }
                Op::Load { addr, blocking } => {
                    self.stats.loads += 1;
                    let outcome = self.l1.access(addr, false);
                    if outcome.hit {
                        self.stats.l1_hits += 1;
                        cursor += self.cfg.l1_hit;
                    } else {
                        self.stats.l1_misses += 1;
                        if let Some(wb) = outcome.writeback {
                            self.send_llc(ctx, cursor, MemKind::Writeback, wb);
                        }
                        let id = self.send_llc(ctx, cursor, MemKind::Read, addr);
                        self.outstanding.insert(id.0, cursor);
                        cursor += self.cfg.l1_hit; // miss-detect latency
                        if blocking {
                            self.wait = Wait::Load(id);
                            self.cursor = cursor;
                            return;
                        }
                    }
                }
                Op::Store { addr } => {
                    self.stats.stores += 1;
                    let outcome = self.l1.access(addr, true);
                    cursor += self.cfg.l1_hit;
                    if outcome.hit {
                        self.stats.l1_hits += 1;
                    } else {
                        self.stats.l1_misses += 1;
                        if let Some(wb) = outcome.writeback {
                            self.send_llc(ctx, cursor, MemKind::Writeback, wb);
                        }
                        // Write-allocate: fetch ownership of the line.
                        let id = self.send_llc(ctx, cursor, MemKind::Write, addr);
                        self.outstanding.insert(id.0, cursor);
                    }
                }
                Op::IdleUntil(t) => {
                    if t > cursor {
                        self.idle_accum += t - cursor;
                        self.wait = Wait::Resume;
                        self.cursor = t;
                        ctx.send_at(ctx.self_id(), t, PardEvent::Tick(TickKind::Core));
                        return;
                    }
                }
                Op::Disk {
                    disk,
                    kind,
                    buffer,
                    bytes,
                } => {
                    let id = self.ids.next_id();
                    let req = DiskRequest {
                        id,
                        ds: self.tag,
                        disk,
                        kind,
                        buffer,
                        bytes,
                        reply_to: ctx.self_id(),
                        issued_at: cursor,
                    };
                    if audit::enabled() {
                        // Injection point of the core → bridge → IDE
                        // ("disk") conservation domain.
                        audit::packet_inject(
                            "disk",
                            req.reply_to.raw(),
                            req.id.0,
                            req.ds.raw(),
                            cursor,
                        );
                    }
                    ctx.send_at(self.bridge, cursor, PardEvent::DiskReq(req));
                    self.wait = Wait::Disk(id);
                    self.cursor = cursor;
                    return;
                }
                Op::SetTag(raw) => {
                    // Context switch: retag the core. The untagged private
                    // L1 must be flushed so the next process cannot hit the
                    // previous one's lines (a DS-id-tagged L1 would avoid
                    // this; we take the conservative VIVT-style flush).
                    self.tag = DsId::new(raw);
                    self.l1.flush();
                }
                Op::Halt => {
                    self.running = false;
                    self.halted = true;
                    self.halted_at = Some(cursor);
                    self.cursor = cursor;
                    return;
                }
            }
        }
        // Op-count safety valve: yield and continue next tick.
        self.wait = Wait::Resume;
        self.cursor = cursor;
        let resume_at = cursor.max(now + cpu_cycles(1));
        ctx.send_at(ctx.self_id(), resume_at, PardEvent::Tick(TickKind::Core));
    }
}

impl Component<PardEvent> for Core {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        match ev {
            PardEvent::CoreCtl(CoreCommand::SetTag(raw)) => {
                self.tag = DsId::new(raw);
                self.l1.flush();
            }
            PardEvent::CoreCtl(CoreCommand::Start) => {
                if !self.running && !self.halted {
                    self.running = true;
                    self.ever_started = true;
                    self.started_at = ctx.now();
                    self.cursor = ctx.now();
                    self.resume(ctx);
                }
            }
            PardEvent::CoreCtl(CoreCommand::Stop) => {
                self.running = false;
            }
            PardEvent::MemResp(resp) => {
                if let Some(issued) = self.outstanding.remove(&resp.id.0) {
                    if self.cfg.record_miss_latency {
                        self.rec_miss.record(ctx.now().saturating_sub(issued));
                    }
                }
                match self.wait {
                    Wait::Load(id) if id == resp.id => self.resume(ctx),
                    Wait::Mlp if self.outstanding.len() < self.cfg.mlp => self.resume(ctx),
                    _ => {}
                }
            }
            PardEvent::Tick(TickKind::Core) => {
                if self.wait == Wait::Resume {
                    self.resume(ctx);
                }
            }
            PardEvent::Interrupt(irq) => {
                if let (Wait::Disk(id), Some(done)) = (self.wait, irq.disk_done) {
                    if done.id == id {
                        self.resume(ctx);
                    }
                }
            }
            other => audit::unexpected_event(
                "core",
                other.kind_label(),
                ctx.now(),
                other.ds().map_or(u16::MAX, DsId::raw),
            ),
        }
    }

    pard_sim::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_icn::{LAddr, MemResp};
    use pard_sim::Simulation;
    use pard_workloads::impl_engine_any;

    /// Serves every memory request after a fixed latency.
    struct MemStub {
        latency: Time,
        seen: Vec<(DsId, u64, MemKind)>,
    }

    impl Component<PardEvent> for MemStub {
        fn name(&self) -> &str {
            "memstub"
        }
        fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
            if let PardEvent::MemReq(pkt) = ev {
                self.seen.push((pkt.ds, pkt.addr.raw(), pkt.kind));
                if pkt.kind.wants_response() {
                    let resp = MemResp {
                        id: pkt.id,
                        ds: pkt.ds,
                        addr: pkt.addr,
                        llc_hit: false,
                    };
                    let latency = self.latency;
                    ctx.send(pkt.reply_to, latency, PardEvent::MemResp(resp));
                }
            }
        }
        pard_sim::impl_as_any!();
    }

    struct ScriptedEngine {
        ops: Vec<Op>,
        cursor: usize,
        completion_times: Vec<Time>,
    }

    impl ScriptedEngine {
        fn new(ops: Vec<Op>) -> Self {
            ScriptedEngine {
                ops,
                cursor: 0,
                completion_times: Vec::new(),
            }
        }
    }

    impl WorkloadEngine for ScriptedEngine {
        fn name(&self) -> &str {
            "scripted"
        }
        fn next_op(&mut self, now: Time) -> Op {
            self.completion_times.push(now);
            let op = self.ops.get(self.cursor).copied().unwrap_or(Op::Halt);
            self.cursor += 1;
            op
        }
        impl_engine_any!();
    }

    struct Rig {
        sim: Simulation<PardEvent>,
        core: ComponentId,
        mem: ComponentId,
    }

    fn rig(ops: Vec<Op>) -> Rig {
        let mut sim = Simulation::new();
        let mem = sim.add_component(Box::new(MemStub {
            latency: Time::from_ns(100),
            seen: Vec::new(),
        }));
        let mut core = Core::new("core0", CoreConfig::default(), mem, mem);
        core.install_engine(Box::new(ScriptedEngine::new(ops)));
        let core = sim.add_component(Box::new(core));
        sim.post(core, Time::ZERO, PardEvent::CoreCtl(CoreCommand::SetTag(3)));
        sim.post(core, Time::ZERO, PardEvent::CoreCtl(CoreCommand::Start));
        Rig { sim, core, mem }
    }

    #[test]
    fn tag_register_labels_all_packets() {
        let mut r = rig(vec![
            Op::Load {
                addr: LAddr::new(0x1000),
                blocking: true,
            },
            Op::Store {
                addr: LAddr::new(0x2000),
            },
        ]);
        r.sim.run_until(Time::from_us(10));
        r.sim.with_component::<MemStub, _, _>(r.mem, |m| {
            assert!(!m.seen.is_empty());
            assert!(m.seen.iter().all(|&(ds, _, _)| ds == DsId::new(3)));
        });
    }

    #[test]
    fn blocking_load_stalls_for_memory_latency() {
        let mut r = rig(vec![
            Op::Load {
                addr: LAddr::new(0x1000),
                blocking: true,
            },
            Op::Compute(1),
        ]);
        r.sim.run_until(Time::from_us(10));
        r.sim.with_component::<Core, _, _>(r.core, |c| {
            c.with_engine::<ScriptedEngine, _>(|e| {
                // next_op after the blocking load sees time >= 100 ns.
                let after_load = e.completion_times[1];
                assert!(after_load >= Time::from_ns(100));
            });
            assert!(c.is_halted());
            assert_eq!(c.stats().loads, 1);
            assert_eq!(c.stats().l1_misses, 1);
        });
    }

    #[test]
    fn nonblocking_loads_overlap_up_to_mlp() {
        // 7 (< mlp) non-blocking loads to distinct lines + compute: the
        // engine should reach the compute op well before 7 x 100 ns.
        let mut ops: Vec<Op> = (0..7)
            .map(|i| Op::Load {
                addr: LAddr::new(0x1000 + i * 64),
                blocking: false,
            })
            .collect();
        ops.push(Op::Compute(1));
        let mut r = rig(ops);
        r.sim.run_until(Time::from_us(10));
        r.sim.with_component::<Core, _, _>(r.core, |c| {
            c.with_engine::<ScriptedEngine, _>(|e| {
                let compute_issued = e.completion_times[7];
                assert!(
                    compute_issued < Time::from_ns(100),
                    "loads did not overlap: {compute_issued:?}"
                );
            });
        });
    }

    #[test]
    fn mlp_limit_stalls_the_ninth_load() {
        let ops: Vec<Op> = (0..9)
            .map(|i| Op::Load {
                addr: LAddr::new(0x1000 + i * 64),
                blocking: false,
            })
            .collect();
        let mut r = rig(ops);
        r.sim.run_until(Time::from_us(10));
        r.sim.with_component::<Core, _, _>(r.core, |c| {
            c.with_engine::<ScriptedEngine, _>(|e| {
                // Op index 8 (the 9th load) waits for a response (~100 ns).
                assert!(e.completion_times[8] >= Time::from_ns(100));
            });
        });
    }

    #[test]
    fn l1_absorbs_repeated_accesses() {
        let mut r = rig(vec![
            Op::Load {
                addr: LAddr::new(0x40),
                blocking: true,
            },
            Op::Load {
                addr: LAddr::new(0x40),
                blocking: true,
            },
            Op::Load {
                addr: LAddr::new(0x44),
                blocking: true,
            },
        ]);
        r.sim.run_until(Time::from_us(10));
        r.sim.with_component::<Core, _, _>(r.core, |c| {
            let s = c.stats();
            assert_eq!(s.loads, 3);
            assert_eq!(s.l1_misses, 1, "only the first access misses");
            assert_eq!(s.l1_hits, 2);
        });
        r.sim.with_component::<MemStub, _, _>(r.mem, |m| {
            assert_eq!(m.seen.len(), 1);
        });
    }

    #[test]
    fn idle_until_accounts_utilization() {
        let mut r = rig(vec![
            Op::Compute(2_000), // 1 µs busy
            Op::IdleUntil(Time::from_us(10)),
            Op::Compute(2_000),
        ]);
        r.sim.run_until(Time::from_us(20));
        r.sim.with_component::<Core, _, _>(r.core, |c| {
            assert!(c.is_halted());
            let busy = c.busy_fraction(Time::from_us(20));
            // 2 µs busy of 20 µs total.
            assert!((0.05..=0.2).contains(&busy), "busy fraction {busy}");
        });
    }

    #[test]
    fn stop_command_freezes_the_core() {
        let mut r = rig(vec![Op::Compute(2_000_000_000)]);
        r.sim.post(
            r.core,
            Time::from_us(1),
            PardEvent::CoreCtl(CoreCommand::Stop),
        );
        r.sim.run_until(Time::from_ms(2));
        r.sim.with_component::<Core, _, _>(r.core, |c| {
            assert!(!c.is_running());
            assert!(!c.is_halted());
        });
    }

    #[test]
    fn disk_op_blocks_until_the_completion_interrupt() {
        use pard_icn::{DiskDone, DiskKind, InterruptPacket};

        // Bridge stub: answers every DiskRequest with a completion
        // interrupt after 5 µs (as the APIC would deliver it).
        struct BridgeStub;
        impl Component<PardEvent> for BridgeStub {
            fn name(&self) -> &str {
                "bridgestub"
            }
            fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
                if let PardEvent::DiskReq(req) = ev {
                    let irq = InterruptPacket {
                        ds: req.ds,
                        vector: 14,
                        disk_done: Some(DiskDone {
                            id: req.id,
                            ds: req.ds,
                            bytes: req.bytes,
                        }),
                    };
                    ctx.send(req.reply_to, Time::from_us(5), PardEvent::Interrupt(irq));
                }
            }
            pard_sim::impl_as_any!();
        }

        let mut sim = Simulation::new();
        let bridge = sim.add_component(Box::new(BridgeStub));
        let mut core = Core::new("core0", CoreConfig::default(), bridge, bridge);
        core.install_engine(Box::new(ScriptedEngine::new(vec![
            Op::Disk {
                disk: 0,
                kind: DiskKind::Write,
                buffer: LAddr::new(0),
                bytes: 4096,
            },
            Op::Compute(2),
        ])));
        let core = sim.add_component(Box::new(core));
        sim.post(core, Time::ZERO, PardEvent::CoreCtl(CoreCommand::Start));
        sim.run_until(Time::from_ms(1));
        sim.with_component::<Core, _, _>(core, |c| {
            assert!(c.is_halted());
            c.with_engine::<ScriptedEngine, _>(|e| {
                // The op after Disk was issued only once the interrupt
                // arrived, ~5 µs in.
                assert!(e.completion_times[1] >= Time::from_us(5));
            });
        });
    }

    #[test]
    fn unrelated_interrupts_do_not_resume_a_disk_wait() {
        use pard_icn::{DiskKind, InterruptPacket};

        struct SilentBridge;
        impl Component<PardEvent> for SilentBridge {
            fn name(&self) -> &str {
                "silent"
            }
            fn handle(&mut self, _ev: PardEvent, _ctx: &mut Ctx<'_, PardEvent>) {}
            pard_sim::impl_as_any!();
        }

        let mut sim = Simulation::new();
        let bridge = sim.add_component(Box::new(SilentBridge));
        let mut core = Core::new("core0", CoreConfig::default(), bridge, bridge);
        core.install_engine(Box::new(ScriptedEngine::new(vec![Op::Disk {
            disk: 0,
            kind: DiskKind::Write,
            buffer: LAddr::new(0),
            bytes: 4096,
        }])));
        let core = sim.add_component(Box::new(core));
        sim.post(core, Time::ZERO, PardEvent::CoreCtl(CoreCommand::Start));
        // A NIC-style interrupt with no disk payload must not unblock it.
        sim.post(
            core,
            Time::from_us(1),
            PardEvent::Interrupt(InterruptPacket {
                ds: DsId::new(0),
                vector: 11,
                disk_done: None,
            }),
        );
        sim.run_until(Time::from_ms(1));
        sim.with_component::<Core, _, _>(core, |c| {
            assert!(!c.is_halted(), "must still be waiting on the disk");
            assert!(c.is_running());
        });
    }

    #[test]
    fn settag_flushes_the_l1() {
        let mut r = rig(vec![
            Op::Load {
                addr: LAddr::new(0x40),
                blocking: true,
            },
            Op::IdleUntil(Time::from_us(5)),
            Op::Load {
                addr: LAddr::new(0x40),
                blocking: true,
            },
        ]);
        r.sim.run_until(Time::from_us(2));
        r.sim.post(
            r.core,
            Time::ZERO,
            PardEvent::CoreCtl(CoreCommand::SetTag(9)),
        );
        r.sim.run_until(Time::from_us(20));
        r.sim.with_component::<Core, _, _>(r.core, |c| {
            assert_eq!(c.stats().l1_misses, 2, "retag flushed the L1");
            assert_eq!(c.tag(), DsId::new(9));
        });
    }
}
