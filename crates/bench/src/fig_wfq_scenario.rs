//! The WFQ policy-demo scenario — weighted fair queueing across DS-ids on
//! the memory controller, shared by the `fig_wfq` binary and the policy
//! equivalence tests.
//!
//! Three always-backlogged flows drive the DDR3 controller well above its
//! service rate. The operator installs one match-action program through
//! the control plane:
//!
//! ```text
//! when all do rank wfq(param.wfq_weight)
//! ```
//!
//! and programs `wfq_weight` 1 / 2 / 4 into the three DS-id rows. The
//! PIFO then serves the flows in proportion to their weights — resource
//! scheduling as *data* loaded into the plane, not a controller rebuild
//! (the paper's §3 "programmable architecture" claim applied to the
//! scheduler itself). The baseline run installs the same program but
//! leaves every weight at its default of 1, which degenerates to equal
//! sharing.
//!
//! Everything derives from [`pard_sim::rng::stream_rng`], so a fixed
//! `(rate, requests)` pair reproduces byte-identical numbers at every
//! `PARD_THREADS` setting.

use crate::json::JsonValue;
use pard_dram::{MemCtrl, MemCtrlConfig};
use pard_icn::{DsId, LAddr, MemKind, MemPacket, PacketId, PardEvent, TickKind};
use pard_sim::par::par_map;
use pard_sim::rng::{stream_rng, Rng, Xoshiro256pp};
use pard_sim::{Component, ComponentId, Ctx, Simulation, Time};

/// The `(DS-id, wfq_weight)` of each competing flow.
pub const WFQ_FLOWS: [(u16, u64); 3] = [(1, 1), (2, 2), (3, 4)];

/// The program the operator loads for the weighted run.
pub const WFQ_POLICY: &str = "when all do rank wfq(param.wfq_weight)";

/// Poisson traffic source round-robining across the three flows.
///
/// Each flow walks its own sequential stream of whole-row (16-line) runs,
/// so row hits dominate and the shared data bus is the bottleneck —
/// service share is decided purely by the scheduler under test.
struct Injector {
    ctrl: ComponentId,
    rate_per_sec: f64,
    rng: Xoshiro256pp,
    next_id: u64,
    sent: u64,
    limit: u64,
    cursor: [u64; WFQ_FLOWS.len()],
    run_left: [u32; WFQ_FLOWS.len()],
}

impl Component<PardEvent> for Injector {
    fn name(&self) -> &str {
        "wfq-injector"
    }
    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        match ev {
            PardEvent::Tick(TickKind::Core) => {
                if self.sent >= self.limit {
                    return;
                }
                self.sent += 1;
                let f = (self.sent % WFQ_FLOWS.len() as u64) as usize;
                let (ds, _) = WFQ_FLOWS[f];
                if self.run_left[f] == 0 {
                    let group: u64 = self.rng.gen_range(0..(256u64 << 20) / 1024 / 16);
                    let row_id = group * 16 + self.rng.gen_range(0u64..16);
                    self.cursor[f] = row_id * 16;
                    self.run_left[f] = 16;
                }
                let line = self.cursor[f];
                self.cursor[f] += 1;
                self.run_left[f] -= 1;
                let pkt = MemPacket {
                    id: PacketId(self.next_id),
                    ds: DsId::new(ds),
                    addr: LAddr::new(line * 64),
                    kind: MemKind::Read,
                    size: 64,
                    reply_to: ctx.self_id(),
                    issued_at: ctx.now(),
                    dma: false,
                };
                self.next_id += 1;
                ctx.send(self.ctrl, Time::ZERO, PardEvent::MemReq(pkt));
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = Time::from_units(((-u.ln() / self.rate_per_sec) * 4e9).max(1.0) as u64);
                ctx.send(ctx.self_id(), gap, PardEvent::Tick(TickKind::Core));
            }
            PardEvent::MemResp(_) => {}
            other => panic!("unexpected event {other:?}"),
        }
    }
    pard_sim::impl_as_any!();
}

/// Runs the unweighted baseline and the weighted configuration as two
/// independent simulations fanned over the [`par_map`] worker pool. Both
/// derive their RNG from the same named stream, so the pair is
/// bit-identical to two serial [`run`] calls at any `PARD_THREADS`.
pub fn run_pair(inject_rate: f64, requests: u64) -> (Vec<f64>, Vec<f64>) {
    let mut results = par_map(vec![false, true], |weighted| {
        run(inject_rate, weighted, requests)
    });
    let wfq = results.pop().expect("weighted run");
    let base = results.pop().expect("baseline run");
    (base, wfq)
}

/// Runs the injector against the DDR3 controller with the WFQ program
/// installed and returns each flow's share of served requests, in
/// percent. `weighted` programs the 1 / 2 / 4 weights; otherwise every
/// weight stays at its default of 1.
pub fn run(inject_rate: f64, weighted: bool, requests: u64) -> Vec<f64> {
    // Independent machine on a reused worker thread; fresh conservation
    // scope so packet ids cannot alias a sibling run's.
    pard_sim::audit::begin_run();
    let mut sim: Simulation<PardEvent> = Simulation::new();
    let (ctrl_model, cp) = MemCtrl::new(MemCtrlConfig {
        priorities_enabled: true,
        ..MemCtrlConfig::default()
    });
    let ctrl = sim.add_component(Box::new(ctrl_model));
    {
        let mut cp = cp.lock();
        cp.install_policy(WFQ_POLICY).expect("WFQ program compiles");
        if weighted {
            for (ds, weight) in WFQ_FLOWS {
                cp.set_param(DsId::new(ds), "wfq_weight", weight).unwrap();
            }
        }
    }
    // Offered load well above the service rate keeps every flow
    // backlogged — the regime where WFQ's share guarantee is defined.
    // Each flow alone must exceed its weighted share of the service
    // rate, so pick inject_rate >= flows * max_weight / weight_sum.
    let rate = inject_rate * 200e6;
    let injector = sim.add_component(Box::new(Injector {
        ctrl,
        rate_per_sec: rate,
        rng: stream_rng(11, "fig_wfq.injector"),
        next_id: 0,
        sent: 0,
        limit: requests,
        cursor: [0; WFQ_FLOWS.len()],
        run_left: [0; WFQ_FLOWS.len()],
    }));
    sim.post(injector, Time::ZERO, PardEvent::Tick(TickKind::Core));
    // Cut the measurement off while every flow is still backlogged: once
    // injection stops and the queue drains, cumulative served counts
    // converge to the (equal) injected counts no matter the scheduler.
    let span_secs = requests as f64 / rate;
    sim.run_until(Time::from_us((span_secs * 1e6) as u64));

    let cp = cp.lock();
    let served: Vec<u64> = WFQ_FLOWS
        .iter()
        .map(|&(ds, _)| cp.stat(DsId::new(ds), "serv_cnt").unwrap_or(0))
        .collect();
    let total: u64 = served.iter().sum();
    served
        .iter()
        .map(|&s| s as f64 / total.max(1) as f64 * 100.0)
        .collect()
}

/// The `fig_wfq.json` document for one baseline/weighted share pair.
pub fn summary_json(inject_rate: f64, base: &[f64], wfq: &[f64]) -> JsonValue {
    JsonValue::object()
        .field("inject_rate", inject_rate)
        .field("policy", WFQ_POLICY)
        .field(
            "weights",
            WFQ_FLOWS.iter().map(|&(_, w)| w).collect::<Vec<_>>(),
        )
        .field("baseline_shares_pct", base.to_vec())
        .field("wfq_shares_pct", wfq.to_vec())
}
