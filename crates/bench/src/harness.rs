//! A small wall-clock timing harness with a criterion-shaped API.
//!
//! The micro-benchmarks under `benches/` were written against criterion;
//! this module keeps their surface (`Criterion`, `benchmark_group`,
//! `Bencher::iter` / `iter_batched`, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros) so they compile unchanged against a
//! first-party implementation.
//!
//! Methodology: each benchmark is calibrated with a short warm-up to pick
//! an iteration count that fills ~`TARGET_SAMPLE_MS` per sample, then
//! timed over `sample_size` samples; min / median / max nanoseconds per
//! iteration are reported. No statistics beyond that — these numbers guide
//! optimisation, they are not the paper's figures.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

const TARGET_SAMPLE_MS: u64 = 20;
const DEFAULT_SAMPLES: usize = 20;

/// How `iter_batched` inputs are amortised. Only a naming shim: every
/// batch size re-runs setup outside the timed region, once per iteration.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Cheap-to-set-up input.
    SmallInput,
    /// Expensive-to-set-up input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Times one benchmark body over a fixed iteration count.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back `iters` times.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_samples(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one sample takes long
    // enough to time reliably.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed.as_millis() as u64 >= TARGET_SAMPLE_MS || iters >= 1 << 30 {
            break;
        }
        let per_iter = (b.elapsed.as_nanos() as u64 / iters).max(1);
        iters = (TARGET_SAMPLE_MS * 1_000_000 / per_iter).clamp(iters + 1, iters * 100);
    }
    let mut per_iter_ns: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let (min, max) = (per_iter_ns[0], per_iter_ns[per_iter_ns.len() - 1]);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!(
        "{name:<44} time: [{} {} {}]  ({iters} iters/sample)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_samples(name, DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named group; benchmarks in it print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A group of related benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Overrides how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_samples(&format!("{}/{name}", self.name), self.samples, f);
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed_time() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.elapsed > Duration::ZERO);
        b.iter_batched(|| 3u64, |x| black_box(x * 2), BatchSize::SmallInput);
    }

    #[test]
    fn formatting_scales_units() {
        assert_eq!(fmt_ns(12.5), "12.50 ns");
        assert_eq!(fmt_ns(12_500.0), "12.500 µs");
        assert_eq!(fmt_ns(12_500_000.0), "12.500 ms");
    }
}
