//! JSON fault-plan specs — the text form of [`pard_sim::fault::FaultPlan`].
//!
//! `pard-sim` owns the fault machinery but is dependency-free, so the JSON
//! grammar lives here, next to the [`json`](crate::json) parser the
//! harnesses already use. Experiment binaries call [`init_from_env`] right
//! after startup: when `PARD_FAULT_PLAN=/path/to/plan.json` is set, the
//! spec is parsed and installed globally; when unset, nothing happens and
//! every fault hook stays a single relaxed atomic load.
//!
//! # Spec grammar
//!
//! ```json
//! {
//!   "seed": 42,
//!   "events": [
//!     {"kind": "dram_slow", "start_us": 200, "end_us": 900,
//!      "extra_ns": 400, "banks": [0, 1]},
//!     {"kind": "ide_degrade", "start_us": 200, "end_us": 900,
//!      "quota_pct": 25, "drop_one_in": 16},
//!     {"kind": "nic_flap", "start_us": 200, "end_us": 900, "loss_pct": 30},
//!     {"kind": "xbar_backpressure", "start_us": 200, "end_us": 900,
//!      "extra_ns": 150, "port": 3}
//!   ]
//! }
//! ```
//!
//! * `seed` (optional, default 0) seeds the plan's deterministic RNG
//!   streams (NIC loss decisions).
//! * Every event takes a half-open window `[start, end)`, given as
//!   `start_us`/`end_us` or `start_ns`/`end_ns` (`_us` wins if both
//!   appear).
//! * `banks` / `port` are optional — omitting them hits every DRAM bank /
//!   every crossbar port.
//! * Unknown `kind`s and missing per-kind knobs are hard errors: a typo'd
//!   plan must fail loudly, not silently inject nothing.

use std::fmt;

use pard_sim::fault::{FaultKind, FaultPlan};
use pard_sim::Time;

use crate::json::JsonValue;

/// Environment variable naming a JSON fault-plan file to install.
pub const ENV_FAULT_PLAN: &str = "PARD_FAULT_PLAN";

/// A fault-spec parse failure, with enough context to fix the file.
#[derive(Debug)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Parses a JSON fault-plan spec into a [`FaultPlan`].
///
/// # Errors
///
/// Fails on malformed JSON, unknown event kinds, missing windows or
/// per-kind knobs, and windows with `end <= start`.
pub fn parse_plan(text: &str) -> Result<FaultPlan, SpecError> {
    let root = JsonValue::parse(text).map_err(|e| err(format!("bad JSON: {e}")))?;
    let seed = match root.get("seed") {
        None => 0,
        Some(v) => v.as_u64().ok_or_else(|| err("seed must be a u64"))?,
    };
    let mut plan = FaultPlan::new(seed);
    let events = match root.get("events") {
        None => return Ok(plan),
        Some(JsonValue::Array(items)) => items,
        Some(_) => return Err(err("events must be an array")),
    };
    for (i, ev) in events.iter().enumerate() {
        let (start, end) = window(ev).map_err(|e| err(format!("events[{i}]: {}", e.0)))?;
        let kind = kind(ev).map_err(|e| err(format!("events[{i}]: {}", e.0)))?;
        plan = plan.with(start, end, kind);
    }
    Ok(plan)
}

fn window(ev: &JsonValue) -> Result<(Time, Time), SpecError> {
    let pick = |us: &str, ns: &str| -> Result<Option<Time>, SpecError> {
        if let Some(v) = ev.get(us) {
            let v = v.as_u64().ok_or_else(|| err(format!("{us} must be a u64")))?;
            return Ok(Some(Time::from_us(v)));
        }
        if let Some(v) = ev.get(ns) {
            let v = v.as_u64().ok_or_else(|| err(format!("{ns} must be a u64")))?;
            return Ok(Some(Time::from_ns(v)));
        }
        Ok(None)
    };
    let start = pick("start_us", "start_ns")?.ok_or_else(|| err("missing start_us/start_ns"))?;
    let end = pick("end_us", "end_ns")?.ok_or_else(|| err("missing end_us/end_ns"))?;
    if end <= start {
        return Err(err("window end must be after start"));
    }
    Ok((start, end))
}

fn kind(ev: &JsonValue) -> Result<FaultKind, SpecError> {
    let kind = ev
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| err("missing kind"))?;
    let knob = |name: &str| -> Result<u64, SpecError> {
        ev.get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| err(format!("{kind} needs a u64 {name}")))
    };
    match kind {
        "dram_slow" => Ok(FaultKind::DramSlow {
            banks: id_list(ev, "banks")?,
            extra: Time::from_ns(knob("extra_ns")?),
        }),
        "ide_degrade" => {
            let drop_one_in = knob("drop_one_in")?;
            let quota_pct = knob("quota_pct")?;
            if quota_pct > 100 {
                return Err(err("quota_pct must be <= 100"));
            }
            Ok(FaultKind::IdeDegrade {
                quota_pct: quota_pct as u32,
                drop_one_in: u32::try_from(drop_one_in)
                    .map_err(|_| err("drop_one_in out of range"))?,
            })
        }
        "nic_flap" => {
            let loss_pct = knob("loss_pct")?;
            if loss_pct > 100 {
                return Err(err("loss_pct must be <= 100"));
            }
            Ok(FaultKind::NicFlap {
                loss_pct: loss_pct as u32,
            })
        }
        "xbar_backpressure" => Ok(FaultKind::XbarBackpressure {
            port: match ev.get("port") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| err("port must be a u32"))?,
                ),
            },
            extra: Time::from_ns(knob("extra_ns")?),
        }),
        other => Err(err(format!("unknown kind {other:?}"))),
    }
}

fn id_list(ev: &JsonValue, name: &str) -> Result<Option<Vec<u32>>, SpecError> {
    match ev.get(name) {
        None => Ok(None),
        Some(JsonValue::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| err(format!("{name} entries must be u32")))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(err(format!("{name} must be an array"))),
    }
}

/// Parses and installs the plan named by `PARD_FAULT_PLAN`, if set.
/// Returns whether a plan was installed.
///
/// # Errors
///
/// Fails when the file cannot be read or does not parse; a binary asked
/// to inject faults must not silently run fault-free.
pub fn init_from_env() -> Result<bool, SpecError> {
    let Ok(path) = std::env::var(ENV_FAULT_PLAN) else {
        return Ok(false);
    };
    if path.is_empty() {
        return Ok(false);
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let plan = parse_plan(&text)?;
    pard_sim::fault::install(plan);
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_sim::fault::FaultClass;

    #[test]
    fn parses_full_spec_and_rejects_bad_ones() {
        let plan = parse_plan(
            r#"{
              "seed": 7,
              "events": [
                {"kind": "dram_slow", "start_us": 1, "end_us": 2,
                 "extra_ns": 50, "banks": [3]},
                {"kind": "ide_degrade", "start_ns": 10, "end_ns": 20,
                 "quota_pct": 30, "drop_one_in": 8},
                {"kind": "nic_flap", "start_us": 1, "end_us": 2, "loss_pct": 25},
                {"kind": "xbar_backpressure", "start_us": 1, "end_us": 3,
                 "extra_ns": 100, "port": 2}
              ]
            }"#,
        )
        .expect("spec parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 4);
        assert_eq!(plan.events[0].start, Time::from_us(1));
        assert_eq!(plan.events[1].end, Time::from_ns(20));
        for class in [
            FaultClass::Dram,
            FaultClass::Ide,
            FaultClass::Nic,
            FaultClass::Xbar,
        ] {
            assert_ne!(plan.class_mask() & class.bit(), 0, "{class:?} present");
        }
        match &plan.events[0].kind {
            FaultKind::DramSlow { banks, extra } => {
                assert_eq!(banks.as_deref(), Some(&[3u32][..]));
                assert_eq!(*extra, Time::from_ns(50));
            }
            other => panic!("wrong kind {other:?}"),
        }

        // Empty plan is legal (no events).
        assert!(parse_plan(r#"{"seed": 1}"#).unwrap().events.is_empty());

        for bad in [
            "not json",
            r#"{"events": 3}"#,
            r#"{"events": [{"kind": "warp_core_breach", "start_us": 1, "end_us": 2}]}"#,
            r#"{"events": [{"kind": "nic_flap", "start_us": 2, "end_us": 1, "loss_pct": 5}]}"#,
            r#"{"events": [{"kind": "nic_flap", "start_us": 1, "end_us": 2, "loss_pct": 200}]}"#,
            r#"{"events": [{"kind": "nic_flap", "start_us": 1, "end_us": 2}]}"#,
            r#"{"events": [{"kind": "dram_slow", "start_us": 1, "end_us": 2,
                "extra_ns": 1, "banks": "all"}]}"#,
        ] {
            assert!(parse_plan(bad).is_err(), "should reject: {bad}");
        }
    }
}
