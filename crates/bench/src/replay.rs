//! Offline trace-replay invariant checking, shared by `pard-trace
//! --replay` and `pard-audit --replay`.
//!
//! Both binaries used to disagree about what "replay" verified:
//! `pard-audit` re-derived the clock and IDE-quota invariants from the
//! trace, while `pard-trace` only schema-checked the file it had just
//! produced — so a quota violation visible in the trace passed
//! `pard-trace --replay` and failed `pard-audit --replay` on the same
//! bytes. [`TraceChecker`] is now the single implementation both call:
//!
//! * **schema** — every line is a JSON object with numeric `time`,
//!   integer `ds`, known `cat`, string `event` (hard error, fail fast);
//! * **clock invariant** — `time` never regresses (sound for
//!   single-machine traces; recorded as a failure, keeps scanning);
//! * **IDE quota invariant** — per DS-id, cumulative bytes reported
//!   `done` never exceed cumulative `budget_bytes` granted by the quota
//!   engine. Fault-injected runs keep this sound because a dropped
//!   request emits a distinct `drop` event (bytes moved so far), never a
//!   `done`.
//!
//! The checker is **streaming**: [`check_trace_file`] feeds it one event
//! at a time via [`stream_trace_lines`], which sniffs the file format by
//! magic — a durable paged binary store ([`pard_sim::store`]) is decoded
//! page by page and each event re-rendered through
//! [`pard_sim::trace::render_stored`] (so both formats check the
//! identical bytes), while JSONL is read line by line through a
//! `BufReader`. Either way replay memory is bounded by one page / one
//! line, not by trace length.

use std::collections::BTreeMap;
use std::io::BufRead as _;

use pard_sim::store;
use pard_sim::trace::{self, TraceCat};

use crate::json::JsonValue;

/// Summary of a clean replay check.
#[derive(Debug, Clone, Copy)]
pub struct ReplayReport {
    /// Events scanned.
    pub total: u64,
    /// Distinct DS-ids with IDE `done` accounting.
    pub ide_ds: usize,
}

/// Streaming invariant checker over a trace's JSONL event lines.
///
/// Feed every line to [`check_line`](TraceChecker::check_line) (schema
/// errors are fatal and returned immediately), then call
/// [`finish`](TraceChecker::finish) to collect invariant violations and
/// the report. Holds per-DS-id counters only — memory is independent of
/// trace length.
pub struct TraceChecker {
    path: String,
    granted: BTreeMap<u64, u64>,
    done: BTreeMap<u64, u64>,
    last_time: f64,
    total: u64,
    failures: Vec<String>,
}

impl TraceChecker {
    /// A fresh checker; `path` only prefixes messages.
    pub fn new(path: &str) -> TraceChecker {
        TraceChecker {
            path: path.to_string(),
            granted: BTreeMap::new(),
            done: BTreeMap::new(),
            last_time: f64::NEG_INFINITY,
            total: 0,
            failures: Vec::new(),
        }
    }

    /// Checks one (1-based) line. Empty lines are skipped.
    ///
    /// # Errors
    ///
    /// A schema violation is fatal and aborts the scan; invariant
    /// violations are collected for [`finish`](TraceChecker::finish).
    pub fn check_line(&mut self, lineno: u64, line: &str) -> Result<(), String> {
        if line.is_empty() {
            return Ok(());
        }
        let path = &self.path;
        let v = JsonValue::parse(line)
            .map_err(|e| format!("{path}:{lineno}: invalid JSON: {e}"))?;
        let Some(time) = v.get("time").and_then(JsonValue::as_f64) else {
            return Err(format!("{path}:{lineno}: missing numeric \"time\""));
        };
        let Some(ds) = v.get("ds").and_then(JsonValue::as_u64) else {
            return Err(format!("{path}:{lineno}: missing integer \"ds\""));
        };
        let Some(cat) = v.get("cat").and_then(JsonValue::as_str) else {
            return Err(format!("{path}:{lineno}: missing string \"cat\""));
        };
        if TraceCat::parse(cat).is_none() {
            return Err(format!("{path}:{lineno}: unknown category {cat:?}"));
        }
        let Some(event) = v.get("event").and_then(JsonValue::as_str) else {
            return Err(format!("{path}:{lineno}: missing string \"event\""));
        };
        if time < self.last_time {
            self.failures.push(format!(
                "{path}:{lineno}: time regression {time} ns after {} ns (clock invariant)",
                self.last_time
            ));
        }
        self.last_time = self.last_time.max(time);
        if cat == "ide" {
            match event {
                "grant" => {
                    let Some(budget) = v.get("budget_bytes").and_then(JsonValue::as_u64) else {
                        return Err(format!("{path}:{lineno}: ide grant without budget_bytes"));
                    };
                    *self.granted.entry(ds).or_insert(0) += budget;
                }
                "done" => {
                    let Some(bytes) = v.get("bytes").and_then(JsonValue::as_u64) else {
                        return Err(format!("{path}:{lineno}: ide done without bytes"));
                    };
                    *self.done.entry(ds).or_insert(0) += bytes;
                }
                _ => {}
            }
        }
        self.total += 1;
        Ok(())
    }

    /// Final cross-event invariants and the report.
    ///
    /// # Errors
    ///
    /// Returns every collected failure message (already `path:line`
    /// prefixed, ready to print).
    pub fn finish(mut self) -> Result<ReplayReport, Vec<String>> {
        // Quota invariant: every byte reported complete was granted by
        // the quota engine first (both counters are cumulative).
        for (ds, &bytes) in &self.done {
            let budget = self.granted.get(ds).copied().unwrap_or(0);
            if bytes > budget {
                self.failures.push(format!(
                    "{}: ds{ds}: {bytes} bytes done but only {budget} granted (quota invariant)",
                    self.path
                ));
            }
        }
        if self.failures.is_empty() {
            Ok(ReplayReport {
                total: self.total,
                ide_ds: self.done.len(),
            })
        } else {
            Err(self.failures)
        }
    }
}

/// Streams the events of `path` as JSONL lines, sniffing the format by
/// file magic: a paged binary store is decoded page by page (one page
/// frame in memory) and re-rendered through [`trace::render_stored`];
/// anything else is read as JSONL line by line. `from` skips the first
/// `from` events — an O(1) page-index seek in a binary store, a line
/// skip in JSONL. `f` receives `(1-based event number, line)`; its error
/// aborts the stream.
///
/// Returns a human-readable warning if a binary store ends in a torn
/// final page (the recovered prefix was still streamed).
///
/// # Errors
///
/// I/O failures, binary-store corruption, and the error `f` returned are
/// all reported as printable messages.
pub fn stream_trace_lines(
    path: &str,
    from: u64,
    f: &mut dyn FnMut(u64, &str) -> Result<(), String>,
) -> Result<Option<String>, Vec<String>> {
    let is_store = {
        let mut head = [0u8; 8];
        match std::fs::File::open(path) {
            Ok(mut file) => {
                use std::io::Read as _;
                matches!(file.read(&mut head), Ok(8)) && head == store::MAGIC
            }
            Err(e) => return Err(vec![format!("cannot read {path}: {e}")]),
        }
    };

    if is_store {
        let mut reader =
            store::TraceReader::open(path).map_err(|e| vec![format!("{path}: {e}")])?;
        let mut events = reader
            .seek_event(from)
            .map_err(|e| vec![format!("{path}: {e}")])?;
        let mut lineno = from;
        loop {
            let Some(next) = events.next() else { break };
            let ev = next.map_err(|e| vec![format!("{path}: {e}")])?;
            let line =
                trace::render_stored(&ev).map_err(|e| vec![format!("{path}: {e}")])?;
            lineno += 1;
            f(lineno, &line).map_err(|e| vec![e])?;
        }
        return Ok(events.torn_tail().map(|t| format!("{path}: warning: {t}")));
    }

    let file = std::fs::File::open(path).map_err(|e| vec![format!("cannot read {path}: {e}")])?;
    let reader = std::io::BufReader::new(file);
    let mut lineno = 0u64;
    for line in reader.lines() {
        let line = line.map_err(|e| vec![format!("cannot read {path}: {e}")])?;
        lineno += 1;
        if lineno <= from {
            continue;
        }
        f(lineno, &line).map_err(|e| vec![e])?;
    }
    Ok(None)
}

/// Re-checks the invariants of a whole trace file — JSONL or binary
/// store, sniffed by magic — with memory bounded by one page / one line.
///
/// On success also returns the torn-tail warning, if the file is a
/// binary store whose final page was cut short (e.g. the traced process
/// was killed): the recovered prefix is fully checked either way.
///
/// # Errors
///
/// Returns every failure message, ready to print. Schema and corruption
/// errors abort the scan; invariant violations are collected to the end.
pub fn check_trace_file(path: &str) -> Result<(ReplayReport, Option<String>), Vec<String>> {
    let mut checker = TraceChecker::new(path);
    let torn = stream_trace_lines(path, 0, &mut |lineno, line| {
        checker.check_line(lineno, line)
    })?;
    checker.finish().map(|report| (report, torn))
}

/// Re-checks the invariants of an in-memory `PARD_TRACE` JSONL string
/// (the [`TraceChecker`] loop for callers that already hold the bytes).
///
/// `path` is used only to prefix messages. Returns the report on success.
///
/// # Errors
///
/// Returns every failure message (already `path:line`-prefixed, ready to
/// print). Schema errors abort the scan; invariant violations are
/// collected to the end so one bad line reports every consequence.
pub fn check_trace_invariants(path: &str, content: &str) -> Result<ReplayReport, Vec<String>> {
    let mut checker = TraceChecker::new(path);
    for (lineno, line) in content.lines().enumerate() {
        checker
            .check_line(lineno as u64 + 1, line)
            .map_err(|e| vec![e])?;
    }
    checker.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_invariants_catch_quota_and_clock_violations() {
        let ok = concat!(
            r#"{"time": 1.0, "ds": 3, "cat": "ide", "event": "grant", "budget_bytes": 100}"#,
            "\n",
            r#"{"time": 2.0, "ds": 3, "cat": "ide", "event": "done", "bytes": 80}"#,
            "\n",
        );
        let report = check_trace_invariants("t", ok).expect("clean trace passes");
        assert_eq!(report.total, 2);
        assert_eq!(report.ide_ds, 1);

        // Overdraw: more bytes done than granted.
        let overdraw = concat!(
            r#"{"time": 1.0, "ds": 3, "cat": "ide", "event": "grant", "budget_bytes": 10}"#,
            "\n",
            r#"{"time": 2.0, "ds": 3, "cat": "ide", "event": "done", "bytes": 80}"#,
            "\n",
        );
        let errs = check_trace_invariants("t", overdraw).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("quota invariant")), "{errs:?}");

        // Clock regression is collected, not fatal.
        let regress = concat!(
            r#"{"time": 5.0, "ds": 0, "cat": "kernel", "event": "a"}"#,
            "\n",
            r#"{"time": 4.0, "ds": 0, "cat": "kernel", "event": "b"}"#,
            "\n",
        );
        let errs = check_trace_invariants("t", regress).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("clock invariant")), "{errs:?}");

        // Schema failures abort immediately.
        assert!(check_trace_invariants("t", "not json\n").is_err());
        let bad_cat = r#"{"time": 1.0, "ds": 0, "cat": "nope", "event": "x"}"#;
        assert!(check_trace_invariants("t", bad_cat).is_err());
    }

    #[test]
    fn stream_trace_lines_sniffs_both_formats_and_seeks() {
        let dir = std::env::temp_dir().join(format!("pard-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Binary store with a few IDE events.
        let ptr = dir.join("s.ptr");
        let mut w = store::TraceWriter::create(&ptr, store::StoreConfig::default()).unwrap();
        for i in 0..10u64 {
            w.append(
                pard_sim::trace::TraceCat::Ide as u8,
                i * 4,
                3,
                "grant",
                [("budget_bytes", store::ValRef::U(100))].into_iter(),
            )
            .unwrap();
        }
        w.finish().unwrap();

        let ptr_str = ptr.to_str().unwrap();
        let (report, torn) = check_trace_file(ptr_str).expect("store checks clean");
        assert_eq!(report.total, 10);
        assert!(torn.is_none());

        // Seek: from=7 streams exactly events 8, 9, 10 (1-based numbers).
        let mut seen: Vec<u64> = Vec::new();
        stream_trace_lines(ptr_str, 7, &mut |n, line| {
            assert!(line.starts_with("{\"time\":"), "{line}");
            seen.push(n);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![8, 9, 10]);

        // The same events as JSONL stream identically.
        let jsonl = dir.join("s.jsonl");
        let mut lines = String::new();
        stream_trace_lines(ptr_str, 0, &mut |_, line| {
            lines.push_str(line);
            lines.push('\n');
            Ok(())
        })
        .unwrap();
        std::fs::write(&jsonl, &lines).unwrap();
        let (report, torn) = check_trace_file(jsonl.to_str().unwrap()).unwrap();
        assert_eq!(report.total, 10);
        assert!(torn.is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
