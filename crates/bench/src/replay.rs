//! Offline trace-replay invariant checking, shared by `pard-trace
//! --replay` and `pard-audit --replay`.
//!
//! Both binaries used to disagree about what "replay" verified:
//! `pard-audit` re-derived the clock and IDE-quota invariants from the
//! trace, while `pard-trace` only schema-checked the file it had just
//! produced — so a quota violation visible in the trace passed
//! `pard-trace --replay` and failed `pard-audit --replay` on the same
//! bytes. [`check_trace_invariants`] is now the single implementation
//! both call:
//!
//! * **schema** — every line is a JSON object with numeric `time`,
//!   integer `ds`, known `cat`, string `event` (hard error, fail fast);
//! * **clock invariant** — `time` never regresses (sound for
//!   single-machine traces; recorded as a failure, keeps scanning);
//! * **IDE quota invariant** — per DS-id, cumulative bytes reported
//!   `done` never exceed cumulative `budget_bytes` granted by the quota
//!   engine. Fault-injected runs keep this sound because a dropped
//!   request emits a distinct `drop` event (bytes moved so far), never a
//!   `done`.

use std::collections::BTreeMap;

use pard_sim::trace::TraceCat;

use crate::json::JsonValue;

/// Summary of a clean replay check.
#[derive(Debug, Clone, Copy)]
pub struct ReplayReport {
    /// Events scanned.
    pub total: u64,
    /// Distinct DS-ids with IDE `done` accounting.
    pub ide_ds: usize,
}

/// Re-checks the invariants of a `PARD_TRACE` JSONL file.
///
/// `path` is used only to prefix messages. Returns the report on success.
///
/// # Errors
///
/// Returns every failure message (already `path:line`-prefixed, ready to
/// print). Schema errors abort the scan; invariant violations are
/// collected to the end so one bad line reports every consequence.
pub fn check_trace_invariants(path: &str, content: &str) -> Result<ReplayReport, Vec<String>> {
    let mut granted: BTreeMap<u64, u64> = BTreeMap::new();
    let mut done: BTreeMap<u64, u64> = BTreeMap::new();
    let mut last_time = f64::NEG_INFINITY;
    let mut total = 0u64;
    let mut failures: Vec<String> = Vec::new();

    for (lineno, line) in content.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let v = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => return Err(vec![format!("{path}:{lineno}: invalid JSON: {e}")]),
        };
        let Some(time) = v.get("time").and_then(JsonValue::as_f64) else {
            return Err(vec![format!("{path}:{lineno}: missing numeric \"time\"")]);
        };
        let Some(ds) = v.get("ds").and_then(JsonValue::as_u64) else {
            return Err(vec![format!("{path}:{lineno}: missing integer \"ds\"")]);
        };
        let Some(cat) = v.get("cat").and_then(JsonValue::as_str) else {
            return Err(vec![format!("{path}:{lineno}: missing string \"cat\"")]);
        };
        if TraceCat::parse(cat).is_none() {
            return Err(vec![format!("{path}:{lineno}: unknown category {cat:?}")]);
        }
        let Some(event) = v.get("event").and_then(JsonValue::as_str) else {
            return Err(vec![format!("{path}:{lineno}: missing string \"event\"")]);
        };
        if time < last_time {
            failures.push(format!(
                "{path}:{lineno}: time regression {time} ns after {last_time} ns (clock invariant)"
            ));
        }
        last_time = last_time.max(time);
        if cat == "ide" {
            match event {
                "grant" => {
                    let Some(budget) = v.get("budget_bytes").and_then(JsonValue::as_u64) else {
                        return Err(vec![format!(
                            "{path}:{lineno}: ide grant without budget_bytes"
                        )]);
                    };
                    *granted.entry(ds).or_insert(0) += budget;
                }
                "done" => {
                    let Some(bytes) = v.get("bytes").and_then(JsonValue::as_u64) else {
                        return Err(vec![format!("{path}:{lineno}: ide done without bytes")]);
                    };
                    *done.entry(ds).or_insert(0) += bytes;
                }
                _ => {}
            }
        }
        total += 1;
    }

    // Quota invariant: every byte reported complete was granted by the
    // quota engine first (both counters are cumulative over the file).
    for (ds, &bytes) in &done {
        let budget = granted.get(ds).copied().unwrap_or(0);
        if bytes > budget {
            failures.push(format!(
                "{path}: ds{ds}: {bytes} bytes done but only {budget} granted (quota invariant)"
            ));
        }
    }

    if failures.is_empty() {
        Ok(ReplayReport {
            total,
            ide_ds: done.len(),
        })
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_invariants_catch_quota_and_clock_violations() {
        let ok = concat!(
            r#"{"time": 1.0, "ds": 3, "cat": "ide", "event": "grant", "budget_bytes": 100}"#,
            "\n",
            r#"{"time": 2.0, "ds": 3, "cat": "ide", "event": "done", "bytes": 80}"#,
            "\n",
        );
        let report = check_trace_invariants("t", ok).expect("clean trace passes");
        assert_eq!(report.total, 2);
        assert_eq!(report.ide_ds, 1);

        // Overdraw: more bytes done than granted.
        let overdraw = concat!(
            r#"{"time": 1.0, "ds": 3, "cat": "ide", "event": "grant", "budget_bytes": 10}"#,
            "\n",
            r#"{"time": 2.0, "ds": 3, "cat": "ide", "event": "done", "bytes": 80}"#,
            "\n",
        );
        let errs = check_trace_invariants("t", overdraw).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("quota invariant")), "{errs:?}");

        // Clock regression is collected, not fatal.
        let regress = concat!(
            r#"{"time": 5.0, "ds": 0, "cat": "kernel", "event": "a"}"#,
            "\n",
            r#"{"time": 4.0, "ds": 0, "cat": "kernel", "event": "b"}"#,
            "\n",
        );
        let errs = check_trace_invariants("t", regress).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("clock invariant")), "{errs:?}");

        // Schema failures abort immediately.
        assert!(check_trace_invariants("t", "not json\n").is_err());
        let bad_cat = r#"{"time": 1.0, "ds": 0, "cat": "nope", "event": "x"}"#;
        assert!(check_trace_invariants("t", bad_cat).is_err());
    }
}
