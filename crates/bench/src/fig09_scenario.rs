//! Figure 9 scenario — memcached's LLC miss rate over time at 20 KRPS
//! while the "trigger ⇒ action" mechanism takes effect.
//!
//! Paper's result: memcached alone runs at ~7 % LLC miss rate; when the
//! three STREAM LDoms start, the miss rate shoots above 30 %, the
//! installed trigger fires, the firmware grows memcached's partition to
//! half the LLC, and the miss rate falls back to ~10 %.
//!
//! Unlike the sweep figures this is a single simulation with mid-run
//! operator actions (each sample depends on the last), so there is
//! nothing to fan out across the worker pool. Instead the run goes onto
//! the **partitioned kernel** ([`PardServer::partition`]): parallelism
//! inside the one timeline, with the schedule — and thus `fig09.json` —
//! byte-identical at every `PARD_THREADS` setting.
//!
//! [`PardServer::partition`]: pard::PardServer::partition

use pard::{DsId, PardServer, Time};

use crate::{install_llc_trigger, install_llc_trigger_scenario};

/// One Figure 9 timeline: the sampled miss-rate series plus the phase
/// markers the plot annotates.
pub struct Fig09Run {
    /// Total simulated span.
    pub total: Time,
    /// When the three STREAM LDoms launch.
    pub stream_start: Time,
    /// `(ms, smoothed miss-rate %)` samples.
    pub series: Vec<(f64, f64)>,
    /// When the trigger's waymask action was first observed, in ms.
    pub fired_at: Option<f64>,
}

/// Runs the default-geometry timeline at the given `--quick`/`--full`
/// duration scale.
pub fn run_timeline(scale: f64) -> Fig09Run {
    run_span(Time::from_ms((160.0 * scale).max(80.0) as u64))
}

/// Runs one timeline over an explicit span (tests shrink it).
pub fn run_span(total: Time) -> Fig09Run {
    run_span_with(total, |_| {})
}

/// As [`run_span`], with a setup hook called on the partitioned server
/// before the timeline starts (the policy equivalence suite installs the
/// built-in programs explicitly through it).
pub fn run_span_with(total: Time, setup: impl FnOnce(&mut PardServer)) -> Fig09Run {
    let sample = Time::from_ms(2);

    let (mut server, mc) = install_llc_trigger_scenario(20_000.0);
    server.partition();
    setup(&mut server);
    // Launch memcached alone first; STREAM joins at a third of the run.
    // The trigger rule is installed once memcached has warmed, as the
    // paper's operator does before the interfering LDoms arrive.
    let stream_start = total / 3;
    let rule_at = stream_start * 9 / 10;
    let mut series: Vec<(f64, f64)> = Vec::new();
    let mut ewma: Option<f64> = None;
    let mut rule_installed = false;
    let mut streams_started = false;
    let mut fired_at: Option<f64> = None;

    while server.now() < total {
        server.run_for(sample);
        if !rule_installed && server.now() >= rule_at {
            install_llc_trigger(&mut server, mc);
            rule_installed = true;
        }
        if !streams_started && server.now() >= stream_start {
            for ds in 1..=3u16 {
                server.launch(DsId::new(ds)).expect("launch stream");
            }
            streams_started = true;
        }
        let raw = server
            .llc_cp()
            .lock()
            .stat(mc, "miss_rate")
            .unwrap_or_default() as f64;
        let smoothed = match ewma {
            Some(prev) => prev * 0.6 + raw * 0.4,
            None => raw,
        };
        ewma = Some(smoothed);
        series.push((server.now().as_ms(), smoothed));
        if fired_at.is_none() {
            let mask = server
                .llc_cp()
                .lock()
                .param(mc, "waymask")
                .expect("memcached DS-id is within the LLC parameter table");
            if mask == 0xFF00 {
                fired_at = Some(server.now().as_ms());
            }
        }
    }

    Fig09Run {
        total,
        stream_start,
        series,
        fired_at,
    }
}
