//! The memcached co-location scenario of Figures 8 and 9.
//!
//! Four LDoms on the Table 2 four-core server: LDom0 runs the
//! latency-critical memcached pair (server + load client sharing core 0,
//! exactly as in §7.1.2), LDom1–LDom3 run the STREAM triad. Three
//! configurations:
//!
//! * **Solo** — only LDom0 is launched (the paper's 25 %-utilisation
//!   baseline),
//! * **Shared** — all four LDoms run on a conventional server (PARD's
//!   differentiated mechanisms disabled),
//! * **SharedWithTrigger** — all four LDoms run under PARD with the
//!   Figure 9 rule installed: `LLC.MissRate > 30 % ⇒ grow LDom0's
//!   partition to half the LLC (and confine the STREAM LDoms to the other
//!   half)`.

use pard::{Action, CmpOp, DsId, LDomSpec, PardServer, SystemConfig, Time};
use pard_workloads::{Memcached, MemcachedConfig, Stream, StreamConfig};

/// Which of the three Figure 8 configurations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemcachedMode {
    /// Only the memcached LDom runs.
    Solo,
    /// Co-location on a conventional (non-PARD) server.
    Shared,
    /// Co-location on PARD with the LLC trigger installed.
    SharedWithTrigger,
}

impl MemcachedMode {
    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            MemcachedMode::Solo => "solo",
            MemcachedMode::Shared => "shared",
            MemcachedMode::SharedWithTrigger => "w/ LLC Trigger",
        }
    }
}

/// One experiment point.
#[derive(Debug, Clone)]
pub struct MemcachedScenario {
    /// Configuration.
    pub mode: MemcachedMode,
    /// Offered load in requests/second.
    pub rps: f64,
    /// Warm-up span (samples discarded).
    pub warmup: Time,
    /// Measurement span.
    pub measure: Time,
    /// Experiment seed.
    pub seed: u64,
    /// Optional PRM poll-interval override (sensitivity sweeps).
    pub prm_poll: Option<Time>,
    /// Triad compute cycles per 64 B block for the STREAM co-runners
    /// (lower = more aggressive; sensitivity sweeps).
    pub stream_compute_per_block: u64,
}

impl MemcachedScenario {
    /// A default point at the given mode and load.
    pub fn new(mode: MemcachedMode, rps: f64) -> Self {
        MemcachedScenario {
            mode,
            rps,
            warmup: Time::from_ms(30),
            measure: Time::from_ms(150),
            seed: 42,
            prm_poll: None,
            stream_compute_per_block: 64,
        }
    }
}

/// The measured outcome of one point.
#[derive(Debug, Clone)]
pub struct MemcachedPoint {
    /// Offered load.
    pub offered_rps: f64,
    /// Achieved throughput over the measured span.
    pub achieved_rps: f64,
    /// Mean response time in ms.
    pub mean_ms: f64,
    /// 95th-percentile response time in ms (the paper's metric).
    pub p95_ms: f64,
    /// 99th-percentile response time in ms.
    pub p99_ms: f64,
    /// Requests completed in the measured span.
    pub completed: u64,
    /// Whole-server CPU utilisation (1.0 = all four cores busy).
    pub cpu_utilization: f64,
    /// LDom0's LLC miss rate (percent) at the end of the run.
    pub final_miss_rate: u64,
    /// LDom0's waymask at the end (0xFF00 once the trigger has fired).
    pub final_waymask: u64,
}

/// Builds the scenario's server with LDoms created and engines installed
/// (but launches only what the mode requires). Returns the server and the
/// memcached LDom's DS-id.
pub fn build_memcached_server(s: &MemcachedScenario) -> (PardServer, DsId) {
    build_memcached_inner(s, s.mode != MemcachedMode::Solo, true)
}

/// Like [`build_memcached_server`] but without installing the trigger
/// rule, so harnesses can install a variant (threshold sweeps).
pub fn build_memcached_server_no_rule(s: &MemcachedScenario) -> (PardServer, DsId) {
    build_memcached_inner(s, s.mode != MemcachedMode::Solo, false)
}

/// Builds the Figure 9 scenario: PARD server with memcached launched and
/// the STREAM LDoms created *but not yet launched*; the trigger rule is
/// *not* yet installed either — the harness installs it once memcached
/// has warmed (so the rule reacts to interference, not to cold-start
/// misses) and then staggers the STREAM launches.
pub fn install_llc_trigger_scenario(rps: f64) -> (PardServer, DsId) {
    let s = MemcachedScenario {
        warmup: Time::ZERO,
        ..MemcachedScenario::new(MemcachedMode::SharedWithTrigger, rps)
    };
    build_memcached_inner(&s, false, false)
}

fn build_memcached_inner(
    s: &MemcachedScenario,
    launch_streams: bool,
    install_rule: bool,
) -> (PardServer, DsId) {
    let mut cfg = match s.mode {
        MemcachedMode::Shared => SystemConfig::asplos15().without_pard(),
        _ => SystemConfig::asplos15(),
    };
    // Half-millisecond statistics windows: ~10 requests per window, so
    // the miss-rate column reflects behaviour rather than single-request
    // noise (the paper's counters integrate over similar spans).
    cfg.llc.window = Time::from_us(500);
    cfg.llc.window_min_accesses = 200;
    if let Some(poll) = s.prm_poll {
        cfg.prm_poll = poll;
    }
    let mut server = PardServer::new(cfg);

    // LDom0: memcached. Note: the paper's §7.1.2 experiment protects
    // memcached with the LLC trigger *only* — memory-priority DiffServ is
    // evaluated separately (Figure 11) — so the LDom stays normal
    // priority here and the recovery in Figures 8/9 is attributable to
    // the cache partition alone.
    let spec = LDomSpec::new("memcached", vec![0], 1 << 31);
    let mc = server.create_ldom(spec).expect("ldom0");
    server.install_engine(
        0,
        Box::new(Memcached::new(MemcachedConfig {
            rps: s.rps,
            warmup: s.warmup,
            seed: s.seed,
            ..MemcachedConfig::default()
        })),
    );

    // LDom1..3: STREAM.
    for core in 1..=3usize {
        let ds = server
            .create_ldom(LDomSpec::new(format!("stream{core}"), vec![core], 1 << 31))
            .expect("stream ldom");
        let _ = ds;
        server.install_engine(
            core,
            Box::new(Stream::new(StreamConfig {
                array_bytes: 16 * 1024 * 1024,
                base: 0x1000_0000,
                // Default ~64 cycles of triad arithmetic per 64 B block:
                // each STREAM instance demands ~1.5 GB/s, so the three of
                // them together pressure the DDR3 channel and continuously
                // turn the LLC over without starving the channel outright
                // — the paper's contention regime.
                compute_per_block: s.stream_compute_per_block,
            })),
        );
    }

    if s.mode == MemcachedMode::SharedWithTrigger && install_rule {
        install_llc_trigger(&mut server, mc);
    }

    server.launch(mc).expect("launch memcached");
    if launch_streams {
        for ds in 1..=3u16 {
            server.launch(DsId::new(ds)).expect("launch stream");
        }
    }
    (server, mc)
}

/// Installs the Figure 9 "trigger ⇒ action" rule: when LDom0's LLC miss
/// rate exceeds 30 %, dedicate half the LLC to it and confine the other
/// LDoms to the remaining half (the paper's three `echo waymask`
/// commands, executed by a pardscript handler).
pub fn install_llc_trigger(server: &mut PardServer, mc: DsId) {
    install_llc_trigger_with(server, mc, 30);
}

/// [`install_llc_trigger`] with a configurable miss-rate threshold.
pub fn install_llc_trigger_with(server: &mut PardServer, mc: DsId, threshold: u64) {
    let mut fw = server.firmware().lock();
    fw.pardtrigger(0, mc, 0, "miss_rate", CmpOp::Gt, threshold)
        .expect("pardtrigger");
    fw.register_action(
        "/cpa0_ldom0_t0.sh",
        Action::Script(
            r#"
log "llc miss-rate trigger fired for ldom $DS: growing partition"
echo 0xFF00 > /sys/cpa/cpa0/ldoms/ldom$DS/parameters/waymask
echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask
echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom2/parameters/waymask
echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom3/parameters/waymask
"#
            .to_string(),
        ),
    );
    fw.write(
        &format!("/sys/cpa/cpa0/ldoms/ldom{}/triggers/0", mc.raw()),
        "/cpa0_ldom0_t0.sh",
    )
    .expect("bind action");
}

/// Runs one point to completion and reports.
pub fn run_memcached_point(s: &MemcachedScenario) -> MemcachedPoint {
    let (mut server, mc) = build_memcached_server(s);
    server.run_for(s.warmup + s.measure);
    summarize(&mut server, mc, s)
}

/// Runs one point, sampling LDom0's LLC miss rate every `sample_every`.
/// Returns the point plus the `(ms, percent)` series (Figure 9).
pub fn run_memcached_sampled(
    s: &MemcachedScenario,
    sample_every: Time,
) -> (MemcachedPoint, Vec<(f64, f64)>) {
    let (mut server, mc) = build_memcached_server(s);
    let mut series = Vec::new();
    let total = s.warmup + s.measure;
    while server.now() < total {
        server.run_for(sample_every);
        let rate = server
            .llc_cp()
            .lock()
            .stat(mc, "miss_rate")
            .unwrap_or_default();
        series.push((server.now().as_ms(), rate as f64));
    }
    (summarize(&mut server, mc, s), series)
}

fn summarize(server: &mut PardServer, mc: DsId, s: &MemcachedScenario) -> MemcachedPoint {
    let report = server.with_engine::<Memcached, _>(0, |m| m.report());
    let cpu = server.cpu_utilization();
    let (final_miss_rate, final_waymask) = {
        let cp = server.llc_cp().lock();
        (
            cp.stat(mc, "miss_rate").unwrap_or_default(),
            cp.param(mc, "waymask")
                .expect("memcached DS-id is within the LLC parameter table"),
        )
    };
    MemcachedPoint {
        offered_rps: s.rps,
        achieved_rps: report.achieved_rps,
        mean_ms: report.mean.as_ms(),
        p95_ms: report.p95.as_ms(),
        p99_ms: report.p99.as_ms(),
        completed: report.completed,
        cpu_utilization: cpu,
        final_miss_rate,
        final_waymask,
    }
}
