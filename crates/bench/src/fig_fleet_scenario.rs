//! The rack-scale consolidation sweep behind `fig_fleet` — shared by the
//! `fig_fleet` binary and the fleet determinism/migration tests.
//!
//! A fixed-size fleet of PARD machines hosts a multi-tenant population at
//! increasing consolidation ratios (tenants initially placed per
//! machine). Each ratio runs twice: **disarmed** (machine-local triggers
//! still fire and escalate to the fleet manager, which records them but
//! does nothing — the consolidation baseline) and **armed** (the manager
//! reacts: re-shard the escalating tenant's traffic onto the least-loaded
//! machine, migrate its LDom on a repeat escalation). The figure reports
//! per-tier p95/p99 SLO attainment for guaranteed vs best-effort tenants
//! in each cell.
//!
//! Every run is seeded and manager decisions are serialized at epoch
//! boundaries, so `fig_fleet.json` is byte-identical at every
//! `PARD_THREADS` setting.

use pard_fleet::{run_consolidation, FleetConfig, FleetOutcome, TierOutcome};

use crate::json::JsonValue;

/// Consolidation ratios (tenants per machine) the figure sweeps.
pub const RATIOS: [usize; 3] = [1, 2, 4];

/// One cell of the sweep: a (ratio, armed) fleet run.
pub struct FleetCell {
    /// Tenants initially placed per machine.
    pub ratio: usize,
    /// Whether the fleet manager reacted to escalations.
    pub armed: bool,
    /// The run's outcome.
    pub outcome: FleetOutcome,
}

/// Runs the full sweep: [`RATIOS`] × {disarmed, armed} on `base` (which
/// fixes fleet size, epochs, seed, and SLO targets).
pub fn run_sweep(base: &FleetConfig) -> Vec<FleetCell> {
    let mut cells = Vec::new();
    for &ratio in &RATIOS {
        for armed in [false, true] {
            eprintln!(
                "  fleet: {} machines x {ratio} tenants, manager {}",
                base.machines,
                if armed { "armed" } else { "disarmed" }
            );
            cells.push(FleetCell {
                ratio,
                armed,
                outcome: run_consolidation(base, ratio, armed),
            });
        }
    }
    cells
}

fn tier_json(t: &TierOutcome) -> JsonValue {
    JsonValue::object()
        .field("p95_us", t.p95.as_us())
        .field("p99_us", t.p99.as_us())
        .field("attain_p95", t.attain_p95)
        .field("attain_p99", t.attain_p99)
        .field("cells", t.cells)
        .field("completed", t.completed)
}

/// Serializes the sweep (plus the config facts a reader needs) into the
/// `fig_fleet.json` document.
pub fn sweep_json(base: &FleetConfig, cells: &[FleetCell]) -> JsonValue {
    let mut arr = JsonValue::array();
    for c in cells {
        arr = arr.push(
            JsonValue::object()
                .field("ratio", c.ratio)
                .field("armed", c.armed)
                .field("guaranteed", tier_json(&c.outcome.guaranteed))
                .field("best_effort", tier_json(&c.outcome.best_effort))
                .field("escalations", c.outcome.escalations)
                .field("reshards", c.outcome.reshards)
                .field("migrations", c.outcome.migrations)
                .field("utilization", c.outcome.utilization),
        );
    }
    JsonValue::object()
        .field("machines", base.machines)
        .field("epochs", base.epochs)
        .field("epoch_us", base.epoch.as_us())
        .field("seed", base.seed)
        .field("escalate_mbps", base.escalate_mbps)
        .field("slo_guaranteed_p95_us", base.slo.guaranteed_p95.as_us())
        .field("slo_guaranteed_p99_us", base.slo.guaranteed_p99.as_us())
        .field("slo_best_effort_p95_us", base.slo.best_effort_p95.as_us())
        .field("slo_best_effort_p99_us", base.slo.best_effort_p99.as_us())
        .field("cells", arr)
}

/// The armed-dominates-disarmed acceptance check at the highest
/// consolidation ratio: armed attainment is no worse on every tier metric
/// and strictly better on at least one. Returns an error naming the
/// failing comparison.
pub fn check_armed_dominates(cells: &[FleetCell]) -> Result<(), String> {
    let ratio = *RATIOS.last().expect("sweep has ratios");
    let find = |armed: bool| {
        cells
            .iter()
            .find(|c| c.ratio == ratio && c.armed == armed)
            .ok_or_else(|| format!("sweep is missing the ratio-{ratio} armed={armed} cell"))
    };
    let (off, on) = (find(false)?, find(true)?);
    let pairs = [
        ("guaranteed.attain_p95", off.outcome.guaranteed.attain_p95, on.outcome.guaranteed.attain_p95),
        ("guaranteed.attain_p99", off.outcome.guaranteed.attain_p99, on.outcome.guaranteed.attain_p99),
        ("best_effort.attain_p95", off.outcome.best_effort.attain_p95, on.outcome.best_effort.attain_p95),
        ("best_effort.attain_p99", off.outcome.best_effort.attain_p99, on.outcome.best_effort.attain_p99),
    ];
    for (name, disarmed, armed) in pairs {
        if armed < disarmed {
            return Err(format!(
                "ratio {ratio}: armed {name} = {armed:.3} is below disarmed {disarmed:.3}"
            ));
        }
    }
    if !pairs.iter().any(|&(_, disarmed, armed)| armed > disarmed) {
        return Err(format!(
            "ratio {ratio}: arming the fleet manager improved no attainment metric"
        ));
    }
    Ok(())
}
