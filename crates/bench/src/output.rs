//! Table / series printing and JSON export for the harnesses.

use std::fmt::Write as _;

/// Prints an aligned text table.
///
/// # Example
///
/// ```
/// pard_bench::output::print_table(
///     &["load", "p95"],
///     &[vec!["10".into(), "0.5".into()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ");
    }
    println!("{}", line.trim_end());
    println!("{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ");
        }
        println!("{}", line.trim_end());
    }
}

/// Prints a `(time_ms, value)` series as a compact two-column block.
pub fn print_series(name: &str, samples: &[(f64, f64)]) {
    println!("# {name}");
    for (t, v) in samples {
        println!("{t:10.1}  {v:12.4}");
    }
}

/// Writes a JSON value next to the binary's working directory so
/// EXPERIMENTS.md numbers are regenerable.
pub fn save_json(path: &str, value: &crate::json::JsonValue) {
    match std::fs::write(path, value.to_string_pretty()) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("(could not write {path}: {e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic_on_ragged_rows() {
        print_table(
            &["a", "b"],
            &[vec!["1".into()], vec!["1".into(), "2".into(), "3".into()]],
        );
        print_series("s", &[(0.0, 1.0)]);
    }
}
