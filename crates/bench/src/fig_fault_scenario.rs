//! The `fig_fault` resilience scenario, shared by the `fig_fault` binary
//! and the fault-determinism tests.
//!
//! A PARD server is partitioned into three LDoms — `hi` (latency-critical,
//! but launched at **Normal** DRAM priority), `lo` (streaming bulk work)
//! and `io` (disk copy) — plus background NIC receive traffic for `hi`.
//! At `t_fault` a [`FaultPlan`] degrades every shared resource at once
//! (DRAM bank slowdown, crossbar backpressure, IDE quota cut + request
//! drops, NIC link flap) and keeps the faults active to the end of the
//! run.
//!
//! The reaction side is pure PARD "trigger ⇒ action": a
//! [`TriggerMode::DegradationPct`] trigger on `hi`'s `avg_qlat` memory
//! statistic detects the latency degradation, and its bound action — the
//! shipped [`pard_prm::recovery`] composite pardscript — re-prioritises
//! `hi`'s DRAM queue, reassigns LLC ways from the bulk LDom to `hi`, and
//! raises `hi`'s IDE quota, all through the `/sys` device-file tree. The
//! experiment runs the machine twice: once with the trigger bound to a
//! no-op monitor (`no_recovery`) and once bound to the recovery script
//! (`recovery`). The measured latency is each core's L1-miss service
//! latency — what the workload itself experiences — and `hi`'s p95
//! recovers only in the second run: with its working set refitted into
//! the LLC, `hi`'s requests stop reaching the faulted DRAM at all, while
//! `lo` absorbs the degradation in both runs.
//!
//! Everything is deterministic: the fault plan's RNG streams are seeded,
//! the machine itself is event-driven, and the two runs are fanned over
//! [`par_map`] the same way the Figure 11 pair is — so `fig_fault.json`
//! is byte-identical at any `PARD_THREADS`.
//!
//! [`TriggerMode::DegradationPct`]: pard::TriggerMode::DegradationPct

use pard::{Action, CmpOp, DsId, LDomSpec, PardServer, SystemConfig, Time, TriggerMode};
use pard_icn::{NetFrame, PardEvent};
use pard_prm::recovery;
use pard_sim::fault::{FaultKind, FaultPlan};
use pard_sim::par::par_map;
use pard_workloads::{DiskCopy, DiskCopyConfig, LbmProxy, Leslie3dProxy};

use crate::json::JsonValue;

/// DS-id of the latency-critical LDom.
pub const DS_HI: u16 = 0;
/// DS-id of the streaming bulk LDom.
pub const DS_LO: u16 = 1;
/// DS-id of the disk-copy LDom.
pub const DS_IO: u16 = 2;

/// MAC address of `hi`'s v-NIC (receives the background frame stream).
pub const MAC_HI: [u8; 6] = [0x02, 0x00, 0x00, 0x00, 0x00, 0x01];

/// Seed of the default fault plan's RNG streams.
pub const PLAN_SEED: u64 = 0xFA17;

/// Trigger action id bound on `hi`'s memory-CP row.
const ACTION_ID: u64 = 7;

/// Crossbar port the backpressure fault strikes: `lo`'s core. The
/// crossbar serialises per requesting component, so this is `lo`'s core
/// component id — deterministic for the asplos15 machine and asserted
/// against the live machine in [`run`].
pub const XBAR_FAULT_PORT: u32 = 8;

/// Scenario timeline (all boundaries scale with `--quick` / `--full`).
#[derive(Debug, Clone, Copy)]
pub struct Timeline {
    /// Warm-up span; its queueing samples are drained and discarded.
    pub warmup: Time,
    /// Fault-injection start == end of the healthy "pre" phase.
    pub t_fault: Time,
    /// End of the "fault" probe phase (covers injection + detection).
    pub fault_probe_end: Time,
    /// End of the run == end of the "recovered" phase. Fault windows run
    /// to this point, so the no-recovery machine never heals on its own.
    pub total: Time,
}

impl Timeline {
    /// The timeline at a `--quick`/`--full` duration scale (1.0 default).
    pub fn at_scale(scale: f64) -> Timeline {
        let ms = |x: f64| Time::from_us((x * scale * 1_000.0).max(100.0) as u64);
        Timeline {
            warmup: ms(2.0),
            t_fault: ms(8.0),
            fault_probe_end: ms(10.0),
            total: ms(24.0),
        }
    }
}

/// The built-in fault plan: all four fault classes strike at `t_fault`
/// and persist to the end of the run.
pub fn default_plan(tl: Timeline) -> FaultPlan {
    FaultPlan::new(PLAN_SEED)
        .with(
            tl.t_fault,
            tl.total,
            FaultKind::DramSlow {
                banks: None,
                extra: Time::from_ns(20),
            },
        )
        .with(
            tl.t_fault,
            tl.total,
            FaultKind::XbarBackpressure {
                port: Some(XBAR_FAULT_PORT),
                extra: Time::from_ns(50),
            },
        )
        .with(
            tl.t_fault,
            tl.total,
            FaultKind::IdeDegrade {
                quota_pct: 25,
                drop_one_in: 12,
            },
        )
        .with(
            tl.t_fault,
            tl.total,
            FaultKind::NicFlap { loss_pct: 25 },
        )
}

/// Per-phase L1-miss service-latency statistics for one LDom's core.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// 95th-percentile miss service latency in nanoseconds.
    pub p95_ns: f64,
    /// Mean miss service latency in nanoseconds.
    pub mean_ns: f64,
    /// L1 misses sampled in the phase.
    pub samples: u64,
}

/// One machine run (either trigger binding).
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// `hi`'s pre / fault / recovered phase stats.
    pub hi: [PhaseStats; 3],
    /// `lo`'s pre / fault / recovered phase stats.
    pub lo: [PhaseStats; 3],
    /// `io`'s cumulative IDE `drops` statistic at end of run.
    pub ide_drops: u64,
    /// `io`'s cumulative IDE `bytes` statistic at end of run.
    pub ide_bytes: u64,
    /// `hi`'s v-NIC frames delivered.
    pub nic_frames: u64,
    /// Physical-NIC frames dropped (flap losses + unmatched MACs).
    pub nic_dropped: u64,
    /// `hi`'s DRAM `priority` parameter at end of run (1 after recovery).
    pub hi_priority_after: u64,
    /// `hi`'s LLC `waymask` parameter at end of run.
    pub hi_waymask_after: u64,
}

fn drain(server: &mut PardServer, core: usize) -> PhaseStats {
    let mut sample = server.with_core(core, |c| c.take_miss_latency());
    PhaseStats {
        p95_ns: sample.percentile(0.95).as_ns(),
        mean_ns: sample.mean().as_ns(),
        samples: sample.len() as u64,
    }
}

/// Runs the machine once. `recovery` selects the action the degradation
/// trigger is bound to: the shipped composite recovery script, or a no-op
/// monitor. The caller owns fault-plan installation (the scenario never
/// touches the global plan, so harnesses can run it fault-free too).
pub fn run(recovery_enabled: bool, tl: Timeline) -> RunOutput {
    run_with(recovery_enabled, tl, |_| {})
}

/// As [`run`], with a setup hook called on the launched server before the
/// warm-up phase (the policy equivalence suite installs the built-in
/// programs explicitly through it).
pub fn run_with(
    recovery_enabled: bool,
    tl: Timeline,
    setup: impl FnOnce(&mut PardServer),
) -> RunOutput {
    let mut cfg = SystemConfig::asplos15();
    cfg.core.record_miss_latency = true;
    let mut server = PardServer::new(cfg);
    assert_eq!(
        server.core_component_id(1).raw(),
        XBAR_FAULT_PORT,
        "XBAR_FAULT_PORT must be lo's crossbar port"
    );

    server
        .create_ldom(LDomSpec::new("hi", vec![0], 2 << 30).with_mac(MAC_HI))
        .expect("create hi");
    server
        .create_ldom(LDomSpec::new("lo", vec![1], 2 << 30))
        .expect("create lo");
    server
        .create_ldom(LDomSpec::new("io", vec![2], 2 << 30).disk_quota(100))
        .expect("create io");

    // `hi` is cache-sensitive (1.75 MB working set): healthy, its 4 LLC
    // ways leak a steady trickle of capacity misses to DRAM; faulted, the
    // degraded bus turns that trickle's queueing delay into the trigger
    // signal. `lo` streams flat out and is the bulk pressure.
    server.install_engine(0, Box::new(Leslie3dProxy::new(0x0400_0000)));
    server.install_engine(1, Box::new(LbmProxy::new(0x0400_0000)));
    server.install_engine(
        2,
        Box::new(DiskCopy::new(DiskCopyConfig {
            disk: 1,
            block_bytes: 256 << 10,
            count: 1 << 20, // never finishes: steady disk load all run
            ..DiskCopyConfig::default()
        })),
    );

    // Initial LLC partition (disjoint): `hi` gets 4 of 16 ways (1 MB —
    // less than its 1.75 MB working set, so it misses steadily), `lo`
    // gets 8, `io` gets 4. The recovery script reassigns ways 4–7 from
    // `lo` to `hi` (8 ways = 2 MB: the working set then fits).
    for cmd in [
        "echo 0x000F > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask",
        "echo 0x0FF0 > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask",
        "echo 0xF000 > /sys/cpa/cpa0/ldoms/ldom2/parameters/waymask",
    ] {
        server.shell(cmd).expect("initial waymask partition");
    }

    // Background NIC receive traffic for `hi`: one 1500-byte frame every
    // 20 µs, pre-posted for the whole run (open-loop, deterministic).
    let nic = server.nic_id();
    let gap = Time::from_us(20);
    let mut at = gap;
    while at < tl.total {
        server.post(
            nic,
            at,
            PardEvent::NetFrame(NetFrame {
                dst_mac: MAC_HI,
                bytes: 1500,
                arrived_at: at,
            }),
        );
        at = at + gap;
    }

    for ds in [DS_HI, DS_LO, DS_IO] {
        server.launch(DsId::new(ds)).expect("launch");
    }
    setup(&mut server);

    // Warm-up: run and discard the cold-start latency samples.
    server.run_for(tl.warmup);
    let _ = server.with_core(0, |c| c.take_miss_latency());
    let _ = server.with_core(1, |c| c.take_miss_latency());

    // The detection/reaction rule, armed only once the machine is at
    // steady state (an operator installs SLO rules on a warm system; a
    // cold-start ramp would otherwise seed the degradation baseline with
    // transient latencies). Both runs install the same trigger so their
    // trigger tables and trace streams are comparable; only the bound
    // action differs.
    {
        let fw = server.firmware().clone();
        let mut fw = fw.lock();
        recovery::install_composite(
            &mut fw,
            "fault_recovery",
            0x00F0,
            Some((u32::from(DS_LO), 0x0F00)),
            800,
        );
        fw.register_action("monitor", Action::Native(Box::new(|_, _| {})));
        // "hi's memory queueing has degraded ≥ 300 % over its healthy
        // baseline AND the smoothed window average has reached 100 memory
        // cycles" — the floor keeps the near-idle healthy signal (a few
        // cycles per window, where percent growth is noise) from firing.
        fw.pardtrigger_with_mode(
            1,
            DsId::new(DS_HI),
            ACTION_ID,
            "avg_qlat",
            CmpOp::Ge,
            300,
            TriggerMode::DegradationPct,
            100,
        )
        .expect("install degradation trigger");
        let action = if recovery_enabled {
            "fault_recovery"
        } else {
            "monitor"
        };
        fw.write("/sys/cpa/cpa1/ldoms/ldom0/triggers/7", action)
            .expect("bind trigger action");
    }

    // Healthy "pre" phase.
    server.run_for(tl.t_fault - tl.warmup);
    let pre = [drain(&mut server, 0), drain(&mut server, 1)];

    // "fault" probe phase: injection + detection (+ dispatch, in the
    // recovery run).
    server.run_for(tl.fault_probe_end - tl.t_fault);
    let fault = [drain(&mut server, 0), drain(&mut server, 1)];

    // "recovered" phase: faults still active; only the recovery run has
    // re-provisioned `hi`.
    server.run_for(tl.total - tl.fault_probe_end);
    let recovered = [drain(&mut server, 0), drain(&mut server, 1)];

    let ide_drops = server
        .ide_cp()
        .lock()
        .stat(DsId::new(DS_IO), "drops")
        .unwrap_or(0);
    let ide_bytes = server
        .ide_cp()
        .lock()
        .stat(DsId::new(DS_IO), "bytes")
        .unwrap_or(0);
    let nic_frames = server
        .nic_cp()
        .lock()
        .stat(DsId::new(DS_HI), "frames")
        .unwrap_or(0);
    let nic_dropped = server
        .sim_mut()
        .with_component::<pard_io::Nic, _, _>(nic, |n| n.dropped());
    let hi_priority_after = server
        .mem_cp()
        .lock()
        .param(DsId::new(DS_HI), "priority")
        .expect("hi DS-id is within the memory parameter table");
    let hi_waymask_after = server
        .llc_cp()
        .lock()
        .param(DsId::new(DS_HI), "waymask")
        .expect("hi DS-id is within the LLC parameter table");

    RunOutput {
        hi: [pre[0], fault[0], recovered[0]],
        lo: [pre[1], fault[1], recovered[1]],
        ide_drops,
        ide_bytes,
        nic_frames,
        nic_dropped,
        hi_priority_after,
        hi_waymask_after,
    }
}

/// Runs the `(no_recovery, recovery)` pair as two independent machines
/// fanned over the [`par_map`] worker pool — bit-identical to two serial
/// [`run`] calls at any `PARD_THREADS`.
pub fn run_pair(tl: Timeline) -> (RunOutput, RunOutput) {
    let mut results = par_map(vec![false, true], |recovery| run(recovery, tl));
    let with_recovery = results.pop().expect("recovery run");
    let without = results.pop().expect("no-recovery run");
    (without, with_recovery)
}

fn phases_json(phases: &[PhaseStats; 3]) -> JsonValue {
    let mut arr = JsonValue::array();
    for (name, p) in ["pre", "fault", "recovered"].iter().zip(phases) {
        arr = arr.push(
            JsonValue::object()
                .field("phase", *name)
                .field("p95_ns", p.p95_ns)
                .field("mean_ns", p.mean_ns)
                .field("samples", p.samples),
        );
    }
    arr
}

fn run_json(r: &RunOutput) -> JsonValue {
    JsonValue::object()
        .field("hi_latency", phases_json(&r.hi))
        .field("lo_latency", phases_json(&r.lo))
        .field(
            "ide",
            JsonValue::object()
                .field("drops", r.ide_drops)
                .field("bytes", r.ide_bytes),
        )
        .field(
            "nic",
            JsonValue::object()
                .field("frames_delivered", r.nic_frames)
                .field("frames_dropped", r.nic_dropped),
        )
        .field("hi_priority_after", r.hi_priority_after)
        .field("hi_waymask_after", r.hi_waymask_after)
}

/// The `fig_fault.json` document for one run pair — shared by the
/// binary and the determinism tests.
pub fn summary_json(tl: Timeline, base: &RunOutput, rec: &RunOutput) -> JsonValue {
    // Recovery quality: how far the recovered-phase p95 sits above the
    // healthy pre-phase p95, in percent (0 = fully recovered).
    let over = |r: &RunOutput| (r.hi[2].p95_ns / r.hi[0].p95_ns.max(1e-9) - 1.0) * 100.0;
    JsonValue::object()
        .field("figure", "fault")
        .field("plan_seed", PLAN_SEED)
        .field(
            "timeline_ms",
            JsonValue::object()
                .field("t_fault", tl.t_fault.as_ms())
                .field("fault_probe_end", tl.fault_probe_end.as_ms())
                .field("total", tl.total.as_ms()),
        )
        .field("no_recovery", run_json(base))
        .field("recovery", run_json(rec))
        .field(
            "acceptance",
            JsonValue::object()
                .field("recovery_hi_p95_over_pre_pct", over(rec))
                .field("no_recovery_hi_p95_over_pre_pct", over(base))
                .field("recovered_within_10pct", over(rec) <= 10.0),
        )
}
