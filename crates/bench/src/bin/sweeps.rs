//! Sensitivity sweeps beyond the paper's figures: how the headline
//! co-location result depends on the design parameters DESIGN.md calls
//! out. Each sweep runs the Figure 8 trigger configuration at 20 KRPS and
//! varies one knob.
//!
//! ```sh
//! cargo run -p pard-bench --release --bin sweeps -- [antagonist|partition|poll]
//! ```
//!
//! With no argument all sweeps run.

use pard::Time;
use pard_bench::json::JsonValue;
use pard_bench::output::{print_table, save_json};
use pard_bench::{
    build_memcached_server, build_memcached_server_no_rule, install_llc_trigger_with,
    MemcachedMode, MemcachedScenario,
};
use pard_sim::par::par_map;
use pard_workloads::Memcached;

fn scenario() -> MemcachedScenario {
    MemcachedScenario {
        warmup: Time::from_ms(30),
        measure: Time::from_ms(80),
        ..MemcachedScenario::new(MemcachedMode::SharedWithTrigger, 20_000.0)
    }
}

/// Co-runner-intensity sweep: how hard do the batch LDoms have to press
/// before protection matters, and does the trigger keep up? Intensity is
/// the STREAM triad's compute per block (fewer cycles = more bandwidth);
/// each point runs protected and unprotected.
fn sweep_antagonist() -> Vec<Vec<String>> {
    const COMPUTES: [u64; 5] = [256, 128, 64, 32, 16];
    // Each (intensity, protected) cell is an independent run.
    let grid: Vec<(u64, bool)> = COMPUTES
        .iter()
        .flat_map(|&compute| [(compute, false), (compute, true)])
        .collect();
    let cells = par_map(grid, |(compute, protected)| {
        let s = MemcachedScenario {
            stream_compute_per_block: compute,
            ..scenario()
        };
        let (mut server, mc) = build_memcached_server_no_rule(&s);
        if protected {
            install_llc_trigger_with(&mut server, mc, 30);
        }
        server.run_for(s.warmup + s.measure);
        let report = server.with_engine::<Memcached, _>(0, |m| m.report());
        eprintln!("  antagonist {compute} cyc/block ({}) done", {
            if protected {
                "protected"
            } else {
                "unprotected"
            }
        });
        format!("{:.3}", report.p95.as_ms())
    });
    COMPUTES
        .iter()
        .zip(cells.chunks(2))
        .map(|(compute, pair)| {
            let mut row = vec![format!("{compute} cyc/block")];
            row.extend(pair.iter().cloned());
            row
        })
        .collect()
}

/// Partition-size sweep: the action grants N of 16 ways to memcached.
fn sweep_partition() -> Vec<Vec<String>> {
    par_map(vec![2u32, 4, 8, 12, 14], |ways| {
        let s = scenario();
        let (mut server, mc) = build_memcached_server(&s);
        let mc_mask: u64 = ((1u64 << ways) - 1) << (16 - ways);
        let other_mask: u64 = (1u64 << (16 - ways)) - 1;
        // Rebind the action to grant the swept partition.
        server.firmware().lock().register_action(
            "/cpa0_ldom0_t0.sh",
            pard::Action::Script(format!(
                "echo {mc_mask:#x} > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask\n\
                 echo {other_mask:#x} > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask\n\
                 echo {other_mask:#x} > /sys/cpa/cpa0/ldoms/ldom2/parameters/waymask\n\
                 echo {other_mask:#x} > /sys/cpa/cpa0/ldoms/ldom3/parameters/waymask\n"
            )),
        );
        server.run_for(s.warmup + s.measure);
        let report = server.with_engine::<Memcached, _>(0, |m| m.report());
        let miss = server.llc_cp().lock().stat(mc, "miss_rate").unwrap();
        eprintln!("  partition {ways}/16 done");
        vec![
            format!("{ways}/16 ways"),
            format!("{:.3}", report.p95.as_ms()),
            format!("{:.1}", report.achieved_rps / 1000.0),
            format!("{miss}%"),
        ]
    })
}

/// PRM poll-interval sweep: the trigger ⇒ action reaction-latency floor.
fn sweep_poll() -> Vec<Vec<String>> {
    par_map(vec![20u64, 100, 1_000, 10_000], |poll_us| {
        let s = MemcachedScenario {
            prm_poll: Some(Time::from_us(poll_us)),
            ..scenario()
        };
        let (mut server, mc) = build_memcached_server(&s);
        server.run_for(s.warmup + s.measure);
        let report = server.with_engine::<Memcached, _>(0, |m| m.report());
        let mask = server.llc_cp().lock().param(mc, "waymask").unwrap();
        eprintln!("  poll {poll_us} us done");
        vec![
            format!("{poll_us} us"),
            format!("{:.3}", report.p95.as_ms()),
            format!("{:.1}", report.achieved_rps / 1000.0),
            if mask == 0xFF00 { "fired" } else { "pending" }.into(),
        ]
    })
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    let mut json = JsonValue::object();

    if which.is_empty() || which == "antagonist" {
        println!("\nSweep: co-runner intensity (memcached @20 KRPS)\n");
        let rows = sweep_antagonist();
        print_table(
            &[
                "STREAM intensity",
                "p95 unprotected (ms)",
                "p95 w/ trigger (ms)",
            ],
            &rows,
        );
        json = json.field("antagonist", rows);
    }
    if which.is_empty() || which == "partition" {
        println!("\nSweep: granted partition size\n");
        let rows = sweep_partition();
        print_table(&["grant", "p95 (ms)", "achieved KRPS", "miss rate"], &rows);
        json = json.field("partition", rows);
    }
    if which.is_empty() || which == "poll" {
        println!("\nSweep: PRM poll interval (reaction latency)\n");
        let rows = sweep_poll();
        print_table(&["poll", "p95 (ms)", "achieved KRPS", "trigger"], &rows);
        json = json.field("poll", rows);
    }
    save_json("sweeps.json", &json);
}
