//! Figure 7 — dynamically partitioning a PARD server into four LDoms,
//! launching three in turn, then repartitioning the LLC with three `echo`
//! commands.
//!
//! Timeline (scaled ~5x down from the paper's 2.5 s):
//!   * LDom0 boots, then runs the 437.leslie3d proxy,
//!   * LDom1 boots, then runs the 470.lbm proxy,
//!   * LDom2 boots, then runs CacheFlush — and steals most of the LLC,
//!   * at T_repart the operator runs the paper's three `echo waymask`
//!     commands, dedicating half the LLC to LDom0.

use pard::{Action, CmpOp, DsId, LDomSpec, PardServer, SystemConfig, Time};
use pard_bench::duration_scale;
use pard_bench::json::JsonValue;
use pard_bench::output::{print_series, save_json};
use pard_workloads::{BootThen, CacheFlush, DiskCopy, DiskCopyConfig, LbmProxy, Leslie3dProxy};

fn main() {
    let scale = duration_scale();
    let ms = |x: f64| Time::from_ms((x * scale).max(1.0) as u64);
    let total = ms(500.0);
    let launches = [ms(20.0), ms(140.0), ms(260.0)];
    let repartition_at = ms(380.0);
    let boot = ms(60.0);
    let sample = Time::from_ms(5);

    let mut server = PardServer::new(SystemConfig::asplos15());
    // Partition the server into four equal LDoms (one is left idle, as in
    // the paper).
    for (i, name) in ["ldom0", "ldom1", "ldom2", "ldom3"].iter().enumerate() {
        server
            .create_ldom(LDomSpec::new(*name, vec![i], 2 << 30))
            .expect("create ldom");
    }
    server.install_engine(
        0,
        Box::new(BootThen::new(
            boot,
            Box::new(Leslie3dProxy::new(0x0400_0000)),
        )),
    );
    server.install_engine(
        1,
        Box::new(BootThen::new(boot, Box::new(LbmProxy::new(0x0400_0000)))),
    );
    server.install_engine(
        2,
        Box::new(BootThen::new(
            boot,
            Box::new(CacheFlush::new(0x0400_0000, 8 << 20)),
        )),
    );

    // Observability: a monitoring trigger on the CacheFlush LDom's memory
    // bandwidth, bound to a no-op native action. Trigger fire/re-arm and
    // PRM dispatch become visible under `PARD_TRACE` without reprogramming
    // any resource, so the figure's committed output is unchanged.
    {
        let fw = server.firmware().clone();
        let mut fw = fw.lock();
        fw.register_action("monitor", Action::Native(Box::new(|_, _| {})));
        fw.pardtrigger(1, DsId::new(2), 9, "bandwidth", CmpOp::Gt, 100)
            .expect("install monitoring trigger");
        fw.write("/sys/cpa/cpa1/ldoms/ldom2/triggers/9", "monitor")
            .expect("bind monitoring action");
    }

    let mut cache_series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    let mut bw_series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    let mut launched = [false; 3];
    let mut repartitioned = false;

    while server.now() < total {
        server.run_for(sample);
        let now = server.now();
        for (i, &at) in launches.iter().enumerate() {
            if !launched[i] && now >= at {
                server.launch(DsId::new(i as u16)).expect("launch");
                launched[i] = true;
                eprintln!("  t={:.0} ms: launched ldom{i}", now.as_ms());
            }
        }
        if !repartitioned && now >= repartition_at {
            // The paper's three operator commands.
            for cmd in [
                "echo 0xFF00 > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask",
                "echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask",
                "echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom2/parameters/waymask",
            ] {
                server.shell(cmd).expect("repartition");
            }
            repartitioned = true;
            eprintln!("  t={:.0} ms: repartitioned the LLC", now.as_ms());
        }
        for i in 0..3usize {
            let ds = DsId::new(i as u16);
            let occ_mb = server.llc_occupancy_bytes(ds) as f64 / (1 << 20) as f64;
            cache_series[i].push((now.as_ms(), occ_mb));
            let bw = server
                .mem_cp()
                .lock()
                .stat(ds, "bandwidth")
                .unwrap_or_default() as f64
                / 1000.0; // MB/s -> GB/s
            bw_series[i].push((now.as_ms(), bw));
        }
    }

    println!("Figure 7: Dynamic partitioning into LDoms\n");
    println!(
        "launches at {:?} ms, repartition (echo waymask x3) at {:.0} ms\n",
        launches.map(|t| t.as_ms()),
        repartition_at.as_ms()
    );
    for (i, s) in cache_series.iter().enumerate() {
        print_series(&format!("ldom{i}.occupied_llc_mb"), s);
    }
    for (i, s) in bw_series.iter().enumerate() {
        print_series(&format!("ldom{i}.mem_bandwidth_gbps"), s);
    }

    // Headline check: after repartitioning, LDom0's share rises sharply
    // while the CacheFlush LDom collapses (paper: LDom0 -> 50 %).
    let late = |s: &Vec<(f64, f64)>| s.last().map(|&(_, v)| v).unwrap_or(0.0);
    println!();
    println!(
        "final occupancy: ldom0 {:.2} MB, ldom1 {:.2} MB, ldom2 {:.2} MB (of 4 MB)",
        late(&cache_series[0]),
        late(&cache_series[1]),
        late(&cache_series[2])
    );
    save_json(
        "fig07.json",
        &JsonValue::object()
            .field("launch_ms", launches.map(|t| t.as_ms()))
            .field("repartition_ms", repartition_at.as_ms())
            .field("occupied_llc_mb", cache_series)
            .field("mem_bandwidth_gbps", bw_series),
    );

    // Epilogue (after every sample is collected, so the figure output
    // above is untouched): wake the paper's idle fourth LDom with a short
    // `dd`, so a `PARD_TRACE` run of this binary also covers the
    // I/O-bridge and IDE quota layers.
    server.install_engine(
        3,
        Box::new(DiskCopy::new(DiskCopyConfig {
            disk: 0,
            block_bytes: 1 << 20,
            count: 4,
            ..DiskCopyConfig::default()
        })),
    );
    server.launch(DsId::new(3)).expect("launch ldom3");
    server.run_for(Time::from_ms(20));
}
