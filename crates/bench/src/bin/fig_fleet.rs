//! Rack-scale consolidation sweep — a fleet of PARD machines under one
//! federated resource manager.
//!
//! Sweeps the consolidation ratio (tenants per machine) at fixed fleet
//! size, disarmed vs armed, and reports per-tier p95/p99 SLO attainment.
//! See [`pard_bench::fig_fleet_scenario`]; the emitted `fig_fleet.json`
//! is byte-identical at every `PARD_THREADS` setting.
//!
//! Fleet shape honours `PARD_FLEET_MACHINES`, `PARD_FLEET_TENANTS`
//! (ignored by the sweep, which sets the ratio itself), `PARD_FLEET_EPOCHS`,
//! and `PARD_FLEET_SEED`; malformed values exit 2 naming the variable.

use pard_bench::duration_scale;
use pard_bench::fig_fleet_scenario::{check_armed_dominates, run_sweep, sweep_json};
use pard_bench::output::save_json;
use pard_fleet::{apply_env, FleetConfig};

fn main() {
    let scale = duration_scale();
    let vars: Vec<(String, String)> = std::env::vars().collect();
    let base = match apply_env(FleetConfig::default_scale().scaled(scale), &vars) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("fig_fleet: {msg}");
            std::process::exit(2);
        }
    };

    println!(
        "Rack-scale consolidation sweep: {} machines, {} epochs of {:.1} ms, seed {}\n",
        base.machines,
        base.epochs,
        base.epoch.as_ms(),
        base.seed
    );
    let cells = run_sweep(&base);
    println!();
    println!("ratio  armed  g.attain(p95/p99)  be.attain(p95/p99)  g.p99(us)  be.p99(us)  esc  reshard  migrate  util");
    for c in &cells {
        println!(
            "{:>5}  {:>5}  {:>8.2}/{:<8.2}  {:>8.2}/{:<8.2}  {:>9.0}  {:>10.0}  {:>3}  {:>7}  {:>7}  {:>4.2}",
            c.ratio,
            c.armed,
            c.outcome.guaranteed.attain_p95,
            c.outcome.guaranteed.attain_p99,
            c.outcome.best_effort.attain_p95,
            c.outcome.best_effort.attain_p99,
            c.outcome.guaranteed.p99.as_us(),
            c.outcome.best_effort.p99.as_us(),
            c.outcome.escalations,
            c.outcome.reshards,
            c.outcome.migrations,
            c.outcome.utilization,
        );
    }

    match check_armed_dominates(&cells) {
        Ok(()) => println!(
            "\narmed fleet manager dominates the disarmed baseline at the highest ratio"
        ),
        Err(msg) => println!("\nWARNING: {msg}"),
    }

    save_json("fig_fleet.json", &sweep_json(&base, &cells));
}
