//! SLO-admission policy demo — token-bucket DMA admission on the I/O
//! bridge, loaded mid-run through the firmware shell.
//!
//! Two `dd`-style tenants share the IDE path. At the midpoint the
//! operator runs `pardpolicy /dev/cpa2 install ...`, capping the batch
//! tenant's admitted DMA bandwidth at its contracted rate while the
//! victim is untouched. See [`pard_bench::fig_slo_scenario`]; the
//! emitted `fig_slo.json` is byte-identical at every `PARD_THREADS`
//! setting.

use pard_bench::duration_scale;
use pard_bench::fig_slo_scenario::{run_timeline, slo_policy, SLO_RATE_BYTES_PER_SEC};
use pard_bench::json::JsonValue;
use pard_bench::output::{print_series, save_json};

fn main() {
    let run = run_timeline(duration_scale());
    let (total, policy_at, admitted) = (run.total, run.policy_at, run.admitted);

    println!("SLO admission policy demo: token-bucket DMA gating on the I/O bridge\n");
    println!("policy install at {:.0} ms:", policy_at.as_ms());
    println!("  pardpolicy /dev/cpa2 install {}\n", slo_policy());
    for (i, s) in admitted.iter().enumerate() {
        print_series(&format!("ldom{i}.admitted_dma_mb_per_s"), s);
    }

    let mean_in = |s: &Vec<(f64, f64)>, lo: f64, hi: f64| {
        let v: Vec<f64> = s
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let before = mean_in(&admitted[1], 100.0, policy_at.as_ms());
    let after = mean_in(&admitted[1], policy_at.as_ms() + 50.0, total.as_ms());
    let victim_before = mean_in(&admitted[0], 100.0, policy_at.as_ms());
    let victim_after = mean_in(&admitted[0], policy_at.as_ms() + 50.0, total.as_ms());
    println!();
    println!(
        "batch tenant admitted DMA: {before:.1} MB/s before the install, \
         {after:.1} MB/s after (contract: {} MB/s)",
        SLO_RATE_BYTES_PER_SEC / 1_000_000
    );
    println!(
        "victim tenant admitted DMA: {victim_before:.1} MB/s before, \
         {victim_after:.1} MB/s after"
    );

    save_json(
        "fig_slo.json",
        &JsonValue::object()
            .field("policy_at_ms", policy_at.as_ms())
            .field("policy", slo_policy())
            .field("admitted_mb_per_s", admitted)
            .field("batch_before_mbps", before)
            .field("batch_after_mbps", after)
            .field("victim_before_mbps", victim_before)
            .field("victim_after_mbps", victim_after),
    );
}
