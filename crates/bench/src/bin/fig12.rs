//! Figure 12 — FPGA resource usage of the LLC and memory control planes,
//! plus the §7.2 latency analysis.
//!
//! The paper synthesised its OpenSPARC T1 RTL with Vivado; this harness
//! evaluates the calibrated analytical model (`pard-hwcost`) at the same
//! sweep points.

use pard_bench::json::JsonValue;
use pard_bench::output::{print_table, save_json};
use pard_hwcost::{
    llc_cp_cost, mem_cp_cost, priority_queue_cost, table_cost, tag_array_brams, trigger_table_cost,
    LlcPipeline, LLC_BASELINE_LUT_FF, LLC_ROW_BITS, MEM_BASELINE_LUT_FF, MEM_ROW_BITS,
};
use pard_sim::par::par_map;

fn main() {
    println!("Figure 12: FPGA resource usage of the control planes\n");

    // Each sweep point evaluates the analytical model independently;
    // par_map keeps the row order, so the table and JSON are unchanged.
    let grid: Vec<(&str, &str, u64, u64)> = [("memory", MEM_ROW_BITS), ("LLC", LLC_ROW_BITS)]
        .iter()
        .flat_map(|&(plane, row_bits)| {
            let tables = [64u64, 128, 256]
                .into_iter()
                .map(move |entries| (plane, "table", entries, row_bits));
            let triggers = [16u64, 32, 64]
                .into_iter()
                .map(move |slots| (plane, "trigger", slots, row_bits));
            tables.chain(triggers)
        })
        .collect();
    let mut rows = par_map(grid, |(plane, kind, size, row_bits)| {
        let (c, structure) = match kind {
            "table" => (table_cost(size, row_bits), format!("param+stats {size}")),
            _ => (trigger_table_cost(size), format!("trigger {size}")),
        };
        vec![
            plane.into(),
            structure,
            c.lut.to_string(),
            c.lutram.to_string(),
            c.ff.to_string(),
        ]
    });
    let q = priority_queue_cost(2, 16);
    rows.push(vec![
        "memory".into(),
        "2x16 priority queues".into(),
        q.lut.to_string(),
        q.lutram.to_string(),
        q.ff.to_string(),
    ]);
    print_table(&["plane", "structure", "LUT", "LUTRAM", "FF"], &rows);

    let mem = mem_cp_cost(256, 64);
    let llc = llc_cp_cost(256, 64, 16);
    let mem_pct = (mem.lut + mem.ff) as f64 / MEM_BASELINE_LUT_FF as f64 * 100.0;
    let llc_pct = (llc.lut + llc.ff) as f64 / LLC_BASELINE_LUT_FF as f64 * 100.0;
    println!();
    println!(
        "memory CP total: {} LUT/FF = {mem_pct:.1}% of MIGv7 ({MEM_BASELINE_LUT_FF}) \
         [paper: 1526, 10.1%]",
        mem.lut + mem.ff
    );
    println!(
        "LLC CP total:    {} LUT/FF = {llc_pct:.1}% of the LLC controller \
         ({LLC_BASELINE_LUT_FF}) [paper: 2359, 3.1%]",
        llc.lut + llc.ff
    );

    let (base_brams, with_ds) = tag_array_brams(12, 1024, 28, 8);
    println!(
        "owner DS-id storage: tag-array block RAMs {base_brams} -> {with_ds} \
         [paper: 12 -> 18]"
    );

    println!("\nS7.2 latency analysis (LLC control plane):");
    let p = LlcPipeline::opensparc_t1();
    for s in p.steps() {
        match s.stage {
            Some(st) => println!("  {:52} -> hidden in pipeline stage {st}", s.name),
            None if !s.on_critical_path => {
                println!("  {:52} -> off the critical path", s.name)
            }
            None => println!("  {:52} -> ADDS A CYCLE", s.name),
        }
    }
    println!(
        "  extra cycles added: {} (paper: none; the T1 L2 has {} stages); \
         an unpipelined design would add {}",
        p.added_cycles(),
        p.stages(),
        LlcPipeline::unpipelined().added_cycles()
    );

    save_json(
        "fig12.json",
        &JsonValue::object()
            .field("mem_cp_lut_ff", mem.lut + mem.ff)
            .field("mem_cp_pct", mem_pct)
            .field("llc_cp_lut_ff", llc.lut + llc.ff)
            .field("llc_cp_pct", llc_pct)
            .field("tag_array_brams", [base_brams, with_ds])
            .field("llc_cp_added_cycles", p.added_cycles()),
    );
}
