//! Table 3 — control-plane table contents, introspected from the live
//! machine's device file tree.

use pard::{LDomSpec, PardServer, SystemConfig};
use pard_bench::output::print_table;

fn main() {
    let mut server = PardServer::new(SystemConfig::asplos15());
    // Create one LDom so the per-LDom subtrees exist.
    server
        .create_ldom(LDomSpec::new("probe", vec![0], 1 << 30))
        .expect("ldom");

    println!("Table 3: Control Plane Tables (live introspection)\n");
    let mut rows = Vec::new();
    let mut fw = server.firmware().lock();
    for cpa in fw.list("/sys/cpa").expect("cpa dir") {
        let base = format!("/sys/cpa/{cpa}");
        let ident = fw.read(&format!("{base}/ident")).unwrap_or_default();
        for table in ["parameters", "statistics", "triggers"] {
            let dir = format!("{base}/ldoms/ldom0/{table}");
            let cols = fw.list(&dir).unwrap_or_default();
            rows.push(vec![
                ident.clone(),
                table.to_string(),
                if cols.is_empty() {
                    "(installed via pardtrigger)".into()
                } else {
                    cols.join(", ")
                },
            ]);
        }
    }
    print_table(&["control plane", "table", "columns"], &rows);

    println!("\nPaper Table 3 for comparison:");
    println!("  Parameter   cache: way mask-bits | memory: row-buffer mask-bits,");
    println!("              scheduling priority, address mapping | disk: bandwidth");
    println!("  Statistics  cache: miss rate, capacity | memory: bandwidth, latency");
    println!("              | disk: bandwidth");
    println!("  Trigger     LLC miss rate => way mask-bits | memory latency =>");
    println!("              row-buffer mask-bits | memory latency => priority");
}
