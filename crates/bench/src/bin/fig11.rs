//! Figure 11 — CDF of memory-request queueing delay.
//!
//! A synthetic injector drives the DDR3 controller at inject rate 0.44
//! (fraction of peak request bandwidth) with a 50/50 mix of high- and
//! low-priority requests. Paper's result: the baseline controller queues
//! every request ~15.2 memory cycles on average; with the control plane's
//! priority queues, high-priority requests drop to 2.7 cycles (5.6x) while
//! low-priority requests pay 33.6% more (20.3 cycles).
//!
//! The scenario itself lives in [`pard_bench::fig11_scenario`] so the
//! determinism test can replay it at a smaller scale.

use pard_bench::fig11_scenario::{run_pair, summary_json};
use pard_bench::output::{print_series, print_table, save_json};

fn thin(cdf: &[(f64, f64)]) -> Vec<(f64, f64)> {
    // Keep ~50 points for printing.
    let step = (cdf.len() / 50).max(1);
    cdf.iter()
        .step_by(step)
        .copied()
        .chain(cdf.last().copied())
        .collect()
}

fn main() {
    // The paper's FPGA controller saturates differently from our cycle
    // model; --rate overrides the default operating point, which is
    // chosen so the baseline's mean queueing delay matches the paper's
    // (~15 memory cycles at their "inject rate 0.44").
    let inject_rate = std::env::args()
        .skip_while(|a| a != "--rate")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.55);
    let requests = 200_000;

    // Two independent deterministic runs; the pool overlaps them.
    let (base, pard) = run_pair(inject_rate, requests);

    println!("Figure 11: CDF of memory-request queueing delay (inject rate {inject_rate})\n");
    print_table(
        &["configuration", "mean queueing delay (memory cycles)"],
        &[
            vec![
                "w/o control plane (all)".into(),
                format!("{:.1}", base.mean_all),
            ],
            vec![
                "w/ control plane, high priority".into(),
                format!("{:.1}", pard.mean_high),
            ],
            vec![
                "w/ control plane, low priority".into(),
                format!("{:.1}", pard.mean_low),
            ],
        ],
    );
    let speedup = base.mean_all / pard.mean_high.max(0.01);
    let low_penalty = (pard.mean_low / base.mean_all - 1.0) * 100.0;
    println!();
    println!("high-priority delay reduced {speedup:.1}x; low-priority delay +{low_penalty:.1}%");
    println!("Paper anchors: 15.2 -> 2.7 cycles (5.6x), low +33.6% (20.3 cycles).\n");

    print_series("cdf.baseline (cycles, fraction)", &thin(&base.cdf_low));
    print_series("cdf.high_priority", &thin(&pard.cdf_high));
    print_series("cdf.low_priority", &thin(&pard.cdf_low));

    save_json("fig11.json", &summary_json(inject_rate, &base, &pard));
}
