//! Figure 11 — CDF of memory-request queueing delay.
//!
//! A synthetic injector drives the DDR3 controller at inject rate 0.44
//! (fraction of peak request bandwidth) with a 50/50 mix of high- and
//! low-priority requests. Paper's result: the baseline controller queues
//! every request ~15.2 memory cycles on average; with the control plane's
//! priority queues, high-priority requests drop to 2.7 cycles (5.6x) while
//! low-priority requests pay 33.6% more (20.3 cycles).

use pard_bench::output::{print_series, print_table, save_json};
use pard_dram::{MemCtrl, MemCtrlConfig};
use pard_icn::{DsId, LAddr, MemKind, MemPacket, PacketId, PardEvent, TickKind};
use pard_sim::rng::stream_rng;
use pard_sim::{Component, ComponentId, Ctx, Simulation, Time};
use rand::Rng;

const DS_LOW: u16 = 1;
const DS_HIGH: u16 = 7;

/// Poisson traffic source alternating high/low priority DS-ids.
///
/// Each class walks its own sequential stream of whole-row (16-line)
/// runs within its own rank, like the paper's streaming microbenchmark
/// instances. With row hits dominating, the shared data bus is the
/// bottleneck, and queueing delay is pure arbitration — the effect the
/// priority queues exist to manage.
struct Injector {
    ctrl: ComponentId,
    rate_per_sec: f64,
    rng: rand::rngs::SmallRng,
    next_id: u64,
    sent: u64,
    limit: u64,
    cursor: [u64; 2],
    run_left: [u32; 2],
}

impl Component<PardEvent> for Injector {
    fn name(&self) -> &str {
        "injector"
    }
    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        match ev {
            PardEvent::Tick(TickKind::Core) => {
                if self.sent >= self.limit {
                    return;
                }
                self.sent += 1;
                let cls = (self.sent % 2) as usize;
                let ds = if cls == 0 { DS_HIGH } else { DS_LOW };
                if self.run_left[cls] == 0 {
                    // Rows interleave across the 16 banks (row_id % 16 is
                    // the bank). High priority picks rows in rank 0's
                    // banks 0-7; low priority roams everywhere.
                    let group: u64 = self.rng.gen_range(0..(256u64 << 20) / 1024 / 16);
                    let row_id = group * 16 + (cls as u64) * 8 + self.rng.gen_range(0..8);
                    self.cursor[cls] = row_id * 16;
                    self.run_left[cls] = 16;
                }
                let line = self.cursor[cls];
                self.cursor[cls] += 1;
                self.run_left[cls] -= 1;
                let pkt = MemPacket {
                    id: PacketId(self.next_id),
                    ds: DsId::new(ds),
                    addr: LAddr::new(line * 64),
                    kind: MemKind::Read,
                    size: 64,
                    reply_to: ctx.self_id(),
                    issued_at: ctx.now(),
                    dma: false,
                };
                self.next_id += 1;
                ctx.send(self.ctrl, Time::ZERO, PardEvent::MemReq(pkt));
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = Time::from_units(((-u.ln() / self.rate_per_sec) * 4e9).max(1.0) as u64);
                ctx.send(ctx.self_id(), gap, PardEvent::Tick(TickKind::Core));
            }
            PardEvent::MemResp(_) => {}
            other => panic!("unexpected event {other:?}"),
        }
    }
    pard_sim::impl_as_any!();
}

struct RunResult {
    mean_high: f64,
    mean_low: f64,
    mean_all: f64,
    cdf_high: Vec<(f64, f64)>,
    cdf_low: Vec<(f64, f64)>,
}

fn run(inject_rate: f64, priorities: bool, requests: u64) -> RunResult {
    let mut sim: Simulation<PardEvent> = Simulation::new();
    let (ctrl_model, cp) = MemCtrl::new(MemCtrlConfig {
        priorities_enabled: priorities,
        record_queueing: true,
        // The paper's FPGA baseline is the stock MIG controller: a small
        // reorder window, nearly in-order.
        baseline_window: 2,
        ..MemCtrlConfig::default()
    });
    let ctrl = sim.add_component(Box::new(ctrl_model));
    if priorities {
        let mut cp = cp.lock();
        cp.set_param(DsId::new(DS_HIGH), "priority", 1).unwrap();
        cp.set_param(DsId::new(DS_HIGH), "rowbuf", 1).unwrap();
    }
    // Peak request rate: one 64 B burst per burst_time (5 ns) = 200 M/s.
    let rate = inject_rate * 200e6;
    let injector = sim.add_component(Box::new(Injector {
        ctrl,
        rate_per_sec: rate,
        rng: stream_rng(7, "fig11.injector"),
        next_id: 0,
        sent: 0,
        limit: requests,
        cursor: [0; 2],
        run_left: [0; 2],
    }));
    sim.post(injector, Time::ZERO, PardEvent::Tick(TickKind::Core));
    // The controller's statistics window re-arms forever; run to a bounded
    // deadline comfortably past the injection span instead of draining.
    let span_secs = requests as f64 / rate;
    sim.run_until(Time::from_us((span_secs * 1e6 * 2.0) as u64 + 1_000));

    sim.with_component::<MemCtrl, _, _>(ctrl, |m| {
        let (mean_high, mean_low) = m.mean_queueing_cycles();
        let (hi, lo) = m.queueing_samples();
        let to_cdf = |s: &pard_sim::stats::LatencySample| -> Vec<(f64, f64)> {
            let mut s = s.clone();
            s.cdf()
                .into_iter()
                .map(|(t, f)| (t.as_ns() / 1.25, f))
                .collect()
        };
        let (nh, nl) = (hi.len() as f64, lo.len() as f64);
        let mean_all = if priorities {
            (mean_high * nh + mean_low * nl) / (nh + nl).max(1.0)
        } else {
            mean_low
        };
        RunResult {
            mean_high,
            mean_low,
            mean_all,
            cdf_high: to_cdf(hi),
            cdf_low: to_cdf(lo),
        }
    })
}

fn thin(cdf: &[(f64, f64)]) -> Vec<(f64, f64)> {
    // Keep ~50 points for printing.
    let step = (cdf.len() / 50).max(1);
    cdf.iter()
        .step_by(step)
        .copied()
        .chain(cdf.last().copied())
        .collect()
}

fn main() {
    // The paper's FPGA controller saturates differently from our cycle
    // model; --rate overrides the default operating point, which is
    // chosen so the baseline's mean queueing delay matches the paper's
    // (~15 memory cycles at their "inject rate 0.44").
    let inject_rate = std::env::args()
        .skip_while(|a| a != "--rate")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.55);
    let requests = 200_000;

    let base = run(inject_rate, false, requests);
    let pard = run(inject_rate, true, requests);

    println!("Figure 11: CDF of memory-request queueing delay (inject rate {inject_rate})\n");
    print_table(
        &["configuration", "mean queueing delay (memory cycles)"],
        &[
            vec![
                "w/o control plane (all)".into(),
                format!("{:.1}", base.mean_all),
            ],
            vec![
                "w/ control plane, high priority".into(),
                format!("{:.1}", pard.mean_high),
            ],
            vec![
                "w/ control plane, low priority".into(),
                format!("{:.1}", pard.mean_low),
            ],
        ],
    );
    let speedup = base.mean_all / pard.mean_high.max(0.01);
    let low_penalty = (pard.mean_low / base.mean_all - 1.0) * 100.0;
    println!();
    println!("high-priority delay reduced {speedup:.1}x; low-priority delay +{low_penalty:.1}%");
    println!("Paper anchors: 15.2 -> 2.7 cycles (5.6x), low +33.6% (20.3 cycles).\n");

    print_series("cdf.baseline (cycles, fraction)", &thin(&base.cdf_low));
    print_series("cdf.high_priority", &thin(&pard.cdf_high));
    print_series("cdf.low_priority", &thin(&pard.cdf_low));

    save_json(
        "fig11.json",
        &serde_json::json!({
            "inject_rate": inject_rate,
            "baseline_mean_cycles": base.mean_all,
            "high_mean_cycles": pard.mean_high,
            "low_mean_cycles": pard.mean_low,
            "speedup": speedup,
            "low_penalty_pct": low_penalty,
        }),
    );
}
