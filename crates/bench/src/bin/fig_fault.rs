//! `fig_fault` — fault injection and trigger-driven recovery (beyond the
//! paper's figures; the resilience face of "trigger ⇒ action", §5).
//!
//! At `t_fault` a deterministic [`FaultPlan`](pard_sim::fault::FaultPlan)
//! degrades DRAM, the
//! crossbar, the IDE quota engine, and the NIC link, and keeps the
//! faults active to the end of the run. A latency-degradation trigger on
//! the high-priority LDom's memory statistics dispatches the shipped
//! recovery pardscript (re-prioritise DRAM, widen the LLC way mask,
//! raise the IDE quota); the same machine with the trigger bound to a
//! no-op shows what absorbing the fault costs.
//!
//! With `PARD_FAULT_PLAN=/path/to/plan.json` the built-in plan is
//! replaced by the spec file (see [`pard_bench::fault_spec`] for the
//! grammar); the phase boundaries stay at the scenario's timeline.
//!
//! Emits `fig_fault.json` (a committed, CI-gated golden).

use pard_bench::fig_fault_scenario::{default_plan, run_pair, summary_json, Timeline};
use pard_bench::output::save_json;
use pard_bench::{duration_scale, fault_spec};

fn main() {
    let tl = Timeline::at_scale(duration_scale());
    let overridden = match fault_spec::init_from_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if !overridden {
        pard_sim::fault::install(default_plan(tl));
    }

    let (base, rec) = run_pair(tl);
    let doc = summary_json(tl, &base, &rec);

    println!("Fault injection & trigger-driven recovery\n");
    let plan_src = if overridden {
        "PARD_FAULT_PLAN override"
    } else {
        "built-in default plan"
    };
    println!(
        "plan: {plan_src}; faults strike at {:.1} ms and persist to {:.1} ms",
        tl.t_fault.as_ms(),
        tl.total.as_ms()
    );
    for (name, r) in [("no_recovery", &base), ("recovery", &rec)] {
        println!("\n[{name}]");
        for (ds, phases) in [("hi", &r.hi), ("lo", &r.lo)] {
            for (phase, p) in ["pre", "fault", "recovered"].iter().zip(phases.iter()) {
                println!(
                    "  {ds:>2} {phase:>9}: p95 {:>10.1} ns  mean {:>9.1} ns  ({} reqs)",
                    p.p95_ns, p.mean_ns, p.samples
                );
            }
        }
        println!(
            "  ide drops={} bytes={}  nic delivered={} dropped={}  hi prio={} waymask={:#06x}",
            r.ide_drops, r.ide_bytes, r.nic_frames, r.nic_dropped, r.hi_priority_after,
            r.hi_waymask_after
        );
    }
    let over = |r: &pard_bench::fig_fault_scenario::RunOutput| {
        (r.hi[2].p95_ns / r.hi[0].p95_ns.max(1e-9) - 1.0) * 100.0
    };
    println!(
        "\nhi p95 over healthy baseline: {:+.1}% with recovery, {:+.1}% without",
        over(&rec),
        over(&base)
    );

    save_json("fig_fault.json", &doc);
}
