//! Figure 10 — disk I/O performance isolation.
//!
//! Two LDoms each run `dd if=/dev/zero of=/dev/sdb bs=32M count=16`.
//! Initially they share the IDE controller equally; mid-run the operator
//! runs `echo 80 > /sys/cpa/cpa3/ldoms/ldom0/parameters/bandwidth`, and
//! LDom0's share rises to 80 %.

use pard::{DsId, LDomSpec, PardServer, SystemConfig, Time};
use pard_bench::duration_scale;
use pard_bench::json::JsonValue;
use pard_bench::output::{print_series, save_json};
use pard_sim::par::par_map;
use pard_workloads::{DiskCopy, DiskCopyConfig};

/// One end-to-end timeline. A single simulation with a mid-run operator
/// `echo` (each sample depends on the last), so there is nothing to fan
/// out — the one-element `par_map` keeps the experiment-runner idiom
/// uniform and runs inline.
fn run_timeline(scale: f64) -> (Time, Time, Vec<Vec<(f64, f64)>>) {
    // Scaled from the paper's 512 MB per LDom so the default run spans
    // ~800 ms of simulated time like the figure's x-axis.
    let block = (8.0 * scale) as u64 * 1024 * 1024;
    let total = Time::from_ms(800);
    let echo_at = Time::from_ms(400);
    let sample = Time::from_ms(10);

    let mut server = PardServer::new(SystemConfig::asplos15());
    for (i, name) in ["dd0", "dd1"].iter().enumerate() {
        server
            .create_ldom(LDomSpec::new(*name, vec![i], 1 << 30))
            .expect("ldom");
        server.install_engine(
            i,
            Box::new(DiskCopy::new(DiskCopyConfig {
                disk: i as u8,
                block_bytes: block.max(1 << 20),
                count: 64,
                ..DiskCopyConfig::default()
            })),
        );
        server.launch(DsId::new(i as u16)).expect("launch");
    }

    let mut shares: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 2];
    let mut echoed = false;
    while server.now() < total {
        server.run_for(sample);
        if !echoed && server.now() >= echo_at {
            server
                .shell("echo 80 > /sys/cpa/cpa3/ldoms/ldom0/parameters/bandwidth")
                .expect("echo quota");
            echoed = true;
            eprintln!(
                "  t={:.0} ms: echo 80 > .../ldom0/parameters/bandwidth",
                server.now().as_ms()
            );
        }
        let bw: Vec<f64> = (0..2u16)
            .map(|ds| {
                server
                    .ide_cp()
                    .lock()
                    .stat(DsId::new(ds), "bandwidth")
                    .unwrap_or_default() as f64
            })
            .collect();
        let sum = (bw[0] + bw[1]).max(1.0);
        for i in 0..2 {
            shares[i].push((server.now().as_ms(), bw[i] / sum * 100.0));
        }
    }
    (total, echo_at, shares)
}

fn main() {
    let (total, echo_at, shares) = par_map(vec![duration_scale()], run_timeline)
        .pop()
        .expect("one timeline");

    println!("Figure 10: Disk I/O performance isolation\n");
    println!("quota change (echo 80) at {:.0} ms\n", echo_at.as_ms());
    for (i, s) in shares.iter().enumerate() {
        print_series(&format!("ldom{i}.disk_bandwidth_share_pct"), s);
    }

    let mean_in = |s: &Vec<(f64, f64)>, lo: f64, hi: f64| {
        let v: Vec<f64> = s
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let before = mean_in(&shares[0], 100.0, echo_at.as_ms());
    let after = mean_in(&shares[0], echo_at.as_ms() + 50.0, total.as_ms());
    println!();
    println!(
        "ldom0 share: {before:.1}% before the echo, {after:.1}% after \
         (paper: 50% -> 80%)"
    );
    save_json(
        "fig10.json",
        &JsonValue::object()
            .field("echo_at_ms", echo_at.as_ms())
            .field("shares_pct", shares)
            .field("ldom0_before_pct", before)
            .field("ldom0_after_pct", after),
    );
}
