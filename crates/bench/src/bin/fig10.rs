//! Figure 10 — disk I/O performance isolation.
//!
//! Two LDoms each run `dd if=/dev/zero of=/dev/sdb bs=32M count=16`.
//! Initially they share the IDE controller equally; mid-run the operator
//! runs `echo 80 > /sys/cpa/cpa3/ldoms/ldom0/parameters/bandwidth`, and
//! LDom0's share rises to 80 %.
//!
//! The timeline runs on the partitioned kernel (see
//! [`pard_bench::fig10_scenario`]); the emitted `fig10.json` is
//! byte-identical at every `PARD_THREADS` setting.

use pard_bench::fig10_scenario::run_timeline;
use pard_bench::json::JsonValue;
use pard_bench::output::{print_series, save_json};
use pard_bench::duration_scale;

fn main() {
    let run = run_timeline(duration_scale());
    let (total, echo_at, shares) = (run.total, run.echo_at, run.shares);

    println!("Figure 10: Disk I/O performance isolation\n");
    println!("quota change (echo 80) at {:.0} ms\n", echo_at.as_ms());
    for (i, s) in shares.iter().enumerate() {
        print_series(&format!("ldom{i}.disk_bandwidth_share_pct"), s);
    }

    let mean_in = |s: &Vec<(f64, f64)>, lo: f64, hi: f64| {
        let v: Vec<f64> = s
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let before = mean_in(&shares[0], 100.0, echo_at.as_ms());
    let after = mean_in(&shares[0], echo_at.as_ms() + 50.0, total.as_ms());
    println!();
    println!(
        "ldom0 share: {before:.1}% before the echo, {after:.1}% after \
         (paper: 50% -> 80%)"
    );
    save_json(
        "fig10.json",
        &JsonValue::object()
            .field("echo_at_ms", echo_at.as_ms())
            .field("shares_pct", shares)
            .field("ldom0_before_pct", before)
            .field("ldom0_after_pct", after),
    );
}
