//! WFQ policy demo — weighted fair queueing across DS-ids on the memory
//! controller, programmed as data.
//!
//! Three always-backlogged flows contend for the DDR3 controller. Both
//! runs install the same one-line program,
//! `when all do rank wfq(param.wfq_weight)`; the weighted run then
//! programs weights 1 / 2 / 4 into the parameter table and the PIFO
//! serves the flows 1 : 2 : 4. See
//! [`pard_bench::fig_wfq_scenario`]; the emitted `fig_wfq.json` is
//! byte-identical at every `PARD_THREADS` setting.

use pard_bench::duration_scale;
use pard_bench::fig_wfq_scenario::{run_pair, summary_json, WFQ_FLOWS, WFQ_POLICY};
use pard_bench::output::{print_table, save_json};

fn main() {
    let scale = duration_scale();
    let inject_rate = 3.0;
    let requests = (120_000.0 * scale) as u64;

    println!("WFQ policy demo: programmable memory scheduling\n");
    println!("policy: {WFQ_POLICY}");
    println!("requests: {requests} at {inject_rate}x the service rate\n");

    let (base, wfq) = run_pair(inject_rate, requests);

    let rows: Vec<Vec<String>> = WFQ_FLOWS
        .iter()
        .enumerate()
        .map(|(i, &(ds, w))| {
            vec![
                format!("ds{ds}"),
                w.to_string(),
                format!("{:.1}", base[i]),
                format!("{:.1}", wfq[i]),
            ]
        })
        .collect();
    print_table(&["flow", "weight", "baseline %", "wfq %"], &rows);
    println!();
    println!(
        "weighted shares {:.1} / {:.1} / {:.1} (weights 1 / 2 / 4 => ~14 / ~29 / ~57)",
        wfq[0], wfq[1], wfq[2]
    );

    save_json("fig_wfq.json", &summary_json(inject_rate, &base, &wfq));
}
