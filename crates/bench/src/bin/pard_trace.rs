//! `pard-trace` — validate, summarise, or generate PARD trace files.
//!
//! Usage:
//!
//! ```text
//! pard-trace --check FILE [--require cat1,cat2,...]
//! pard-trace --replay [FILE]
//! pard-trace FILE [--from N]
//! ```
//!
//! Every mode accepts both trace formats — debug JSONL and the durable
//! `.ptr` paged binary store — sniffed by file magic, and streams them in
//! bounded memory (one page / one line at a time).
//!
//! * `--check` schema-validates every event (a JSON object with numeric
//!   `time`, integer `ds`, known `cat`, string `event`) and exits
//!   non-zero on the first violation. `--require` additionally demands at
//!   least one event from each listed category.
//! * `--replay` runs a scaled-down fig07-style scenario with tracing
//!   installed programmatically, writes the trace to `FILE` (default
//!   `pard-trace-replay.jsonl`; a `.ptr` name selects the binary store),
//!   then re-checks invariants and summarises it.
//! * With just a `FILE`, pretty-prints a per-category / per-DS-id
//!   summary. `--from N` skips the first `N` events — an O(1) page-index
//!   seek in a binary store, a line skip in JSONL.

use std::collections::BTreeMap;
use std::process::ExitCode;

use pard::{Action, CmpOp, DsId, LDomSpec, PardServer, SystemConfig, Time};
use pard_bench::json::JsonValue;
use pard_bench::replay::stream_trace_lines;
use pard_sim::trace::{self, TraceCat, TraceConfig};
use pard_workloads::{CacheFlush, DiskCopy, DiskCopyConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut replay = false;
    let mut require: Vec<String> = Vec::new();
    let mut from = 0u64;
    let mut file: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--replay" => replay = true,
            "--require" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--require needs a comma-separated category list");
                    return ExitCode::FAILURE;
                };
                require = list.split(',').map(str::to_string).collect();
            }
            "--from" => {
                i += 1;
                let parsed = args.get(i).and_then(|n| n.parse::<u64>().ok());
                let Some(n) = parsed else {
                    eprintln!("--from needs an event ordinal (integer >= 0)");
                    return ExitCode::FAILURE;
                };
                from = n;
            }
            "--help" | "-h" => {
                println!(
                    "pard-trace --check FILE [--require cats] | --replay [FILE] | FILE [--from N]"
                );
                return ExitCode::SUCCESS;
            }
            other => file = Some(other.to_string()),
        }
        i += 1;
    }

    if replay {
        let path = file.unwrap_or_else(|| "pard-trace-replay.jsonl".to_string());
        if let Err(e) = run_replay(&path) {
            eprintln!("replay failed: {e}");
            return ExitCode::FAILURE;
        }
        // Same invariant re-check as `pard-audit --replay` (shared
        // implementation): schema, clock monotonicity, IDE quota. This
        // used to be audit-only, so a quota violation in the freshly
        // produced trace passed here and failed there.
        match pard_bench::replay::check_trace_file(&path) {
            Ok((report, torn)) => {
                if let Some(torn) = torn {
                    eprintln!("{torn}");
                }
                println!(
                    "{path}: invariants OK ({} events, {} IDE DS-ids)",
                    report.total, report.ide_ds
                );
            }
            Err(failures) => {
                for f in &failures {
                    eprintln!("{f}");
                }
                return ExitCode::FAILURE;
            }
        }
        return validate(&path, &require, true, 0);
    }

    let Some(path) = file else {
        eprintln!("usage: pard-trace --check FILE [--require cats] | --replay [FILE] | FILE [--from N]");
        return ExitCode::FAILURE;
    };
    validate(&path, &require, !check, from)
}

/// Validates `path` event by event (either format, streaming); prints a
/// summary unless `--check` asked for silence-on-success. Returns the
/// process exit code.
fn validate(path: &str, require: &[String], summarise: bool, from: u64) -> ExitCode {
    let mut by_cat: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_ds: BTreeMap<u64, u64> = BTreeMap::new();
    let mut first_time = f64::INFINITY;
    let mut last_time = f64::NEG_INFINITY;
    let mut total = 0u64;

    let streamed = stream_trace_lines(path, from, &mut |lineno, line| {
        if line.is_empty() {
            return Ok(());
        }
        let v = JsonValue::parse(line)
            .map_err(|e| format!("{path}:{lineno}: invalid JSON: {e}"))?;
        let Some(time) = v.get("time").and_then(JsonValue::as_f64) else {
            return Err(format!("{path}:{lineno}: missing numeric \"time\""));
        };
        let Some(ds) = v.get("ds").and_then(JsonValue::as_u64) else {
            return Err(format!("{path}:{lineno}: missing integer \"ds\""));
        };
        let Some(cat) = v.get("cat").and_then(JsonValue::as_str) else {
            return Err(format!("{path}:{lineno}: missing string \"cat\""));
        };
        if TraceCat::parse(cat).is_none() {
            return Err(format!("{path}:{lineno}: unknown category {cat:?}"));
        }
        if v.get("event").and_then(JsonValue::as_str).is_none() {
            return Err(format!("{path}:{lineno}: missing string \"event\""));
        }
        *by_cat.entry(cat.to_string()).or_insert(0) += 1;
        *by_ds.entry(ds).or_insert(0) += 1;
        first_time = first_time.min(time);
        last_time = last_time.max(time);
        total += 1;
        Ok(())
    });
    match streamed {
        Ok(Some(torn)) => eprintln!("{torn}"),
        Ok(None) => {}
        Err(failures) => {
            for f in &failures {
                eprintln!("{f}");
            }
            return ExitCode::FAILURE;
        }
    }

    for want in require {
        if !by_cat.contains_key(want.as_str()) {
            eprintln!("{path}: no events from required category {want:?}");
            return ExitCode::FAILURE;
        }
    }

    if summarise {
        println!("{path}: {total} events");
        if from > 0 {
            println!("  (from event ordinal {from})");
        }
        if total > 0 {
            println!("  time span: {first_time} .. {last_time} ns");
            for (cat, n) in &by_cat {
                println!("  {cat:>8}: {n}");
            }
            let top: Vec<String> = by_ds
                .iter()
                .map(|(ds, n)| {
                    if *ds == u64::from(u16::MAX) {
                        format!("untagged={n}")
                    } else {
                        format!("ds{ds}={n}")
                    }
                })
                .collect();
            println!("  by ds: {}", top.join(" "));
        }
    } else {
        println!("{path}: OK ({total} events)");
    }
    ExitCode::SUCCESS
}

/// A short fig07-flavoured run with every trace category armed: one LDom
/// running CacheFlush (kernel / LLC / DRAM / trigger events) and one
/// running DiskCopy (I/O bridge / IDE events), plus a monitoring trigger
/// on memory bandwidth bound to a no-op action. ~20 ms of simulated time.
fn run_replay(path: &str) -> std::io::Result<()> {
    trace::install(TraceConfig::to_file(path))?;

    let mut server = PardServer::new(SystemConfig::small_test());
    for (i, name) in ["ldom0", "ldom1"].iter().enumerate() {
        server
            .create_ldom(LDomSpec::new(*name, vec![i], 16 << 20))
            .expect("create ldom");
    }
    server.install_engine(0, Box::new(CacheFlush::new(0, 1 << 20)));
    server.install_engine(
        1,
        Box::new(DiskCopy::new(DiskCopyConfig {
            disk: 0,
            block_bytes: 1 << 20,
            count: 8,
            ..DiskCopyConfig::default()
        })),
    );
    {
        let fw = server.firmware().clone();
        let mut fw = fw.lock();
        fw.register_action("monitor", Action::Native(Box::new(|_, _| {})));
        fw.pardtrigger(1, DsId::new(0), 9, "bandwidth", CmpOp::Gt, 1)
            .expect("install trigger");
        fw.write("/sys/cpa/cpa1/ldoms/ldom0/triggers/9", "monitor")
            .expect("bind action");
    }
    server.launch(DsId::new(0)).expect("launch");
    server.launch(DsId::new(1)).expect("launch");
    server.run_for(Time::from_ms(20));
    drop(server);
    trace::disable();
    Ok(())
}
