//! `pard-audit` — validate audit reports and re-check trace files offline.
//!
//! Usage:
//!
//! ```text
//! pard-audit --check FILE      # validate an audit-report JSONL file
//! pard-audit --replay FILE     # offline re-check of a trace JSONL file
//! pard-audit FILE              # summarise an audit-report JSONL file
//! ```
//!
//! * `--check` schema-validates every line of a `PARD_AUDIT_FILE` report
//!   (JSON object with numeric `time`, integer `ds`, known `kind`, string
//!   `check`) and exits non-zero on the first malformed line **or on any
//!   recorded violation** — a clean audited run writes only the trailing
//!   `summary` line.
//! * `--replay` re-derives invariants from an ordinary `PARD_TRACE` file
//!   — debug JSONL or the durable `.ptr` binary store, sniffed by file
//!   magic: schema validity, global time monotonicity (sound for
//!   single-machine traces such as the fig07 artifact), and per-DS-id
//!   IDE quota accounting — bytes reported `done` can never exceed the
//!   bytes granted by the quota engine. Streaming in both formats, so a
//!   long-horizon trace replays in bounded memory.
//! * With just a `FILE`, pretty-prints a per-kind / per-DS-id summary of
//!   an audit report.

use std::collections::BTreeMap;
use std::process::ExitCode;

use pard_bench::json::JsonValue;
use pard_sim::audit::AuditKind;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut replay = false;
    let mut file: Option<String> = None;
    for arg in &args {
        match arg.as_str() {
            "--check" => check = true,
            "--replay" => replay = true,
            "--help" | "-h" => {
                println!("pard-audit --check FILE | --replay FILE | FILE");
                return ExitCode::SUCCESS;
            }
            other => file = Some(other.to_string()),
        }
    }

    let Some(path) = file else {
        eprintln!("usage: pard-audit --check FILE | --replay FILE | FILE");
        return ExitCode::FAILURE;
    };
    if replay {
        recheck_trace(&path)
    } else {
        validate_report(&path, !check)
    }
}

/// Validates an audit-report JSONL file; prints a summary unless `--check`
/// asked for silence-on-success. Any non-`summary` record is a recorded
/// violation, so its presence alone fails a `--check` run.
fn validate_report(path: &str, summarise: bool) -> ExitCode {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_ds: BTreeMap<u64, u64> = BTreeMap::new();
    let mut first: Option<String> = None;
    let mut violations = 0u64;
    let mut summaries = 0u64;

    for (lineno, line) in content.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}:{}: invalid JSON: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        if v.get("time").and_then(JsonValue::as_f64).is_none() {
            eprintln!("{path}:{}: missing numeric \"time\"", lineno + 1);
            return ExitCode::FAILURE;
        }
        let Some(ds) = v.get("ds").and_then(JsonValue::as_u64) else {
            eprintln!("{path}:{}: missing integer \"ds\"", lineno + 1);
            return ExitCode::FAILURE;
        };
        let Some(kind) = v.get("kind").and_then(JsonValue::as_str) else {
            eprintln!("{path}:{}: missing string \"kind\"", lineno + 1);
            return ExitCode::FAILURE;
        };
        if kind != "summary" && AuditKind::parse(kind).is_none() {
            eprintln!("{path}:{}: unknown kind {kind:?}", lineno + 1);
            return ExitCode::FAILURE;
        }
        if v.get("check").and_then(JsonValue::as_str).is_none() {
            eprintln!("{path}:{}: missing string \"check\"", lineno + 1);
            return ExitCode::FAILURE;
        }
        if kind == "summary" {
            summaries += 1;
            continue;
        }
        violations += 1;
        *by_kind.entry(kind.to_string()).or_insert(0) += 1;
        *by_ds.entry(ds).or_insert(0) += 1;
        if first.is_none() {
            first = Some(line.to_string());
        }
    }

    if summarise {
        println!("{path}: {violations} violations, {summaries} summary lines");
        for (kind, n) in &by_kind {
            println!("  {kind:>16}: {n}");
        }
        if let Some(first) = &first {
            println!("  first: {first}");
        }
    }
    if violations > 0 {
        if !summarise {
            eprintln!("{path}: {violations} recorded violations");
            if let Some(first) = &first {
                eprintln!("  first: {first}");
            }
        }
        return ExitCode::FAILURE;
    }
    if !summarise {
        println!("{path}: OK (no violations, {summaries} summary lines)");
    }
    ExitCode::SUCCESS
}

/// Offline re-check of a `PARD_TRACE` file — JSONL or `.ptr` binary
/// store, sniffed by magic: schema, global time monotonicity, and IDE
/// grant/done quota accounting — the shared [`pard_bench::replay`]
/// implementation, also run by `pard-trace --replay`. Streaming, so
/// memory stays bounded by a page / a line on long-horizon traces.
fn recheck_trace(path: &str) -> ExitCode {
    match pard_bench::replay::check_trace_file(path) {
        Ok((report, torn)) => {
            if let Some(torn) = torn {
                eprintln!("{torn}");
            }
            println!(
                "{path}: re-check OK ({} events, {} IDE DS-ids)",
                report.total, report.ide_ds
            );
            ExitCode::SUCCESS
        }
        Err(failures) => {
            for f in &failures {
                eprintln!("{f}");
            }
            eprintln!("{path}: {} invariant failures", failures.len());
            ExitCode::FAILURE
        }
    }
}
