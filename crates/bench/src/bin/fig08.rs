//! Figure 8 — memcached 95th-percentile response time vs. load, for the
//! solo / shared / with-LLC-trigger configurations.
//!
//! Paper's result: solo serves 22.5 KRPS at 0.6 ms but leaves the server
//! at 25 % CPU utilisation; naive sharing reaches 100 % utilisation but
//! tail latency explodes by two orders of magnitude past 15 KRPS; with
//! the PARD trigger installed the server keeps 100 % utilisation while
//! memcached stays near its solo latency.
//!
//! The simulated spans are scaled down from the paper's 2 s (a ~30-hour
//! gem5 run per point); pass `--full` for longer spans.

use pard_bench::json::JsonValue;
use pard_bench::output::{print_table, save_json};
use pard_bench::{duration_scale, run_memcached_point, MemcachedMode, MemcachedScenario};
use pard_sim::par::par_map;
use pard_sim::Time;

fn main() {
    let scale = duration_scale();
    let loads = [10_000.0, 12_500.0, 15_000.0, 17_500.0, 20_000.0, 22_500.0];
    let modes = [
        MemcachedMode::Solo,
        MemcachedMode::Shared,
        MemcachedMode::SharedWithTrigger,
    ];

    println!("Figure 8: Memcached tail response time (95th percentile)\n");
    // All 18 (mode, load) points are independent seeded simulations; fan
    // them across the pool, then assemble rows/series in sweep order so
    // the table and fig08.json are byte-identical to a serial run.
    let grid: Vec<(MemcachedMode, f64)> = modes
        .iter()
        .flat_map(|&mode| loads.iter().map(move |&rps| (mode, rps)))
        .collect();
    let points = par_map(grid, |(mode, rps)| {
        let mut s = MemcachedScenario::new(mode, rps);
        // Scale the spans in microseconds: truncating scaled milliseconds
        // turned `--quick`'s 7.5 ms warmup into 7 ms (a 6.7 % error).
        s.warmup = Time::from_us((30_000.0 * scale) as u64);
        s.measure = Time::from_us((120_000.0 * scale) as u64);
        let p = run_memcached_point(&s);
        eprintln!("  [{}] {:.1} KRPS done", mode.label(), rps / 1000.0);
        p
    });

    let mut rows = Vec::new();
    let mut json = JsonValue::object();
    for (i, mode) in modes.iter().enumerate() {
        let mut series = JsonValue::array();
        for (j, &rps) in loads.iter().enumerate() {
            let p = &points[i * loads.len() + j];
            rows.push(vec![
                mode.label().to_string(),
                format!("{:.1}", rps / 1000.0),
                format!("{:.3}", p.p95_ms),
                format!("{:.3}", p.mean_ms),
                format!("{:.1}", p.achieved_rps / 1000.0),
                format!("{:.0}%", p.cpu_utilization * 100.0),
            ]);
            series = series.push(
                JsonValue::object()
                    .field("krps", rps / 1000.0)
                    .field("p95_ms", p.p95_ms)
                    .field("mean_ms", p.mean_ms)
                    .field("achieved_krps", p.achieved_rps / 1000.0)
                    .field("cpu_utilization", p.cpu_utilization),
            );
        }
        json = json.field(mode.label(), series);
    }

    print_table(
        &[
            "config",
            "KRPS",
            "p95 (ms)",
            "mean (ms)",
            "achieved",
            "CPU util",
        ],
        &rows,
    );
    println!();
    println!("Paper anchors: solo 22.5K @ 0.6 ms (25% util); shared collapses");
    println!("above 15K (62.6 ms @ 20K, 100% util); w/ trigger 22.5K @ 1.2 ms");
    println!("(100% util).");
    save_json("fig08.json", &json);
}
