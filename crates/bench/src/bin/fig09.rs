//! Figure 9 — memcached's LLC miss rate over time at 20 KRPS while the
//! "trigger ⇒ action" mechanism takes effect.
//!
//! Paper's result: memcached alone runs at ~7 % LLC miss rate; when the
//! three STREAM LDoms start, the miss rate shoots above 30 %, the
//! installed trigger fires, the firmware grows memcached's partition to
//! half the LLC, and the miss rate falls back to ~10 %.
//!
//! The timeline runs on the partitioned kernel (see
//! [`pard_bench::fig09_scenario`]); the emitted `fig09.json` is
//! byte-identical at every `PARD_THREADS` setting.

use pard_bench::fig09_scenario::run_timeline;
use pard_bench::json::JsonValue;
use pard_bench::output::{print_series, save_json};
use pard_bench::duration_scale;

fn main() {
    let run = run_timeline(duration_scale());
    let (total, stream_start, series, fired_at) =
        (run.total, run.stream_start, run.series, run.fired_at);

    println!("Figure 9: Memcached LLC miss rate over time (20 KRPS)\n");
    println!(
        "3*STREAM startup at {:.0} ms; trigger fired at {} ms\n",
        stream_start.as_ms(),
        fired_at.map_or("never".to_string(), |t| format!("{t:.0}"))
    );
    print_series("llc_miss_rate_percent", &series);

    let solo_phase: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t < stream_start.as_ms() * 0.9 && t > 10.0)
        .map(|&(_, v)| v)
        .collect();
    let late_phase: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t > total.as_ms() * 0.75)
        .map(|&(_, v)| v)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "memcached-only phase mean: {:.1}%   post-trigger phase mean: {:.1}%",
        mean(&solo_phase),
        mean(&late_phase)
    );
    println!("Paper anchors: solo ~7%; spike >30% at STREAM startup; ~10% after");
    println!("the trigger dedicates half the LLC.");

    save_json(
        "fig09.json",
        &JsonValue::object()
            .field("stream_start_ms", stream_start.as_ms())
            .field("trigger_fired_ms", fired_at)
            .field("series", series)
            .field("solo_phase_mean", mean(&solo_phase))
            .field("post_trigger_mean", mean(&late_phase)),
    );
}
