//! Figure 9 — memcached's LLC miss rate over time at 20 KRPS while the
//! "trigger ⇒ action" mechanism takes effect.
//!
//! Paper's result: memcached alone runs at ~7 % LLC miss rate; when the
//! three STREAM LDoms start, the miss rate shoots above 30 %, the
//! installed trigger fires, the firmware grows memcached's partition to
//! half the LLC, and the miss rate falls back to ~10 %.

use pard::{DsId, Time};
use pard_bench::json::JsonValue;
use pard_bench::output::{print_series, save_json};
use pard_bench::{duration_scale, install_llc_trigger, install_llc_trigger_scenario};
use pard_sim::par::par_map;

struct Fig09Run {
    total: Time,
    stream_start: Time,
    series: Vec<(f64, f64)>,
    fired_at: Option<f64>,
}

/// One end-to-end timeline. Unlike the sweep figures this is a single
/// simulation with mid-run operator actions (each sample depends on the
/// last), so there is nothing to fan out — the one-element `par_map`
/// keeps the experiment-runner idiom uniform and runs inline.
fn run_timeline(scale: f64) -> Fig09Run {
    let total = Time::from_ms((160.0 * scale).max(80.0) as u64);
    let sample = Time::from_ms(2);

    let (mut server, mc) = install_llc_trigger_scenario(20_000.0);
    // Launch memcached alone first; STREAM joins at a third of the run.
    // The trigger rule is installed once memcached has warmed, as the
    // paper's operator does before the interfering LDoms arrive.
    let stream_start = total / 3;
    let rule_at = stream_start * 9 / 10;
    let mut series: Vec<(f64, f64)> = Vec::new();
    let mut ewma: Option<f64> = None;
    let mut rule_installed = false;
    let mut streams_started = false;
    let mut fired_at: Option<f64> = None;

    while server.now() < total {
        server.run_for(sample);
        if !rule_installed && server.now() >= rule_at {
            install_llc_trigger(&mut server, mc);
            rule_installed = true;
        }
        if !streams_started && server.now() >= stream_start {
            for ds in 1..=3u16 {
                server.launch(DsId::new(ds)).expect("launch stream");
            }
            streams_started = true;
        }
        let raw = server
            .llc_cp()
            .lock()
            .stat(mc, "miss_rate")
            .unwrap_or_default() as f64;
        let smoothed = match ewma {
            Some(prev) => prev * 0.6 + raw * 0.4,
            None => raw,
        };
        ewma = Some(smoothed);
        series.push((server.now().as_ms(), smoothed));
        if fired_at.is_none() {
            let mask = server
                .llc_cp()
                .lock()
                .param(mc, "waymask")
                .unwrap_or(0xFFFF);
            if mask == 0xFF00 {
                fired_at = Some(server.now().as_ms());
            }
        }
    }

    Fig09Run {
        total,
        stream_start,
        series,
        fired_at,
    }
}

fn main() {
    let run = par_map(vec![duration_scale()], run_timeline)
        .pop()
        .expect("one timeline");
    let (total, stream_start, series, fired_at) =
        (run.total, run.stream_start, run.series, run.fired_at);

    println!("Figure 9: Memcached LLC miss rate over time (20 KRPS)\n");
    println!(
        "3*STREAM startup at {:.0} ms; trigger fired at {} ms\n",
        stream_start.as_ms(),
        fired_at.map_or("never".to_string(), |t| format!("{t:.0}"))
    );
    print_series("llc_miss_rate_percent", &series);

    let solo_phase: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t < stream_start.as_ms() * 0.9 && t > 10.0)
        .map(|&(_, v)| v)
        .collect();
    let late_phase: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t > total.as_ms() * 0.75)
        .map(|&(_, v)| v)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "memcached-only phase mean: {:.1}%   post-trigger phase mean: {:.1}%",
        mean(&solo_phase),
        mean(&late_phase)
    );
    println!("Paper anchors: solo ~7%; spike >30% at STREAM startup; ~10% after");
    println!("the trigger dedicates half the LLC.");

    save_json(
        "fig09.json",
        &JsonValue::object()
            .field("stream_start_ms", stream_start.as_ms())
            .field("trigger_fired_ms", fired_at)
            .field("series", series)
            .field("solo_phase_mean", mean(&solo_phase))
            .field("post_trigger_mean", mean(&late_phase)),
    );
}
