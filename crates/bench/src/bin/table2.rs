//! Table 2 — simulation parameters of the evaluated platform.

use pard::SystemConfig;
use pard_bench::output::print_table;

fn main() {
    let cfg = SystemConfig::asplos15();
    println!("Table 2: Simulation Parameters (reproduction defaults)\n");
    let t = &cfg.mem.timing;
    let rows: Vec<Vec<String>> = vec![
        vec![
            "CPU".into(),
            format!(
                "{} out-of-order x86-class cores, 2 GHz (MLP {})",
                cfg.cores, cfg.core.mlp
            ),
        ],
        vec![
            "L1-D/core".into(),
            format!(
                "{} KB {}-way, hit = {} cycles",
                cfg.core.l1.size_bytes() / 1024,
                cfg.core.l1.ways(),
                pard_icn::to_cpu_cycles(cfg.core.l1_hit)
            ),
        ],
        vec![
            "Shared LLC".into(),
            format!(
                "{} MB {}-way, hit = {} cycles, {} sets",
                cfg.llc.geometry.size_bytes() >> 20,
                cfg.llc.geometry.ways(),
                pard_icn::to_cpu_cycles(cfg.llc.hit_latency),
                cfg.llc.geometry.sets()
            ),
        ],
        vec![
            "DRAM".into(),
            format!(
                "{} GB DDR3-1600 11-11-11, {} channel, {} ranks x {} banks, {} B rows",
                cfg.mem.geometry.capacity_bytes >> 30,
                1,
                cfg.mem.geometry.ranks,
                cfg.mem.geometry.banks_per_rank,
                cfg.mem.geometry.row_bytes
            ),
        ],
        vec![
            "DRAM timing".into(),
            format!(
                "tCK={}ns tRCD={}ns tCL={}ns tRP={}ns tRAS={}ns tRRD={}ns BL{}",
                t.tck.as_ns(),
                t.trcd.as_ns(),
                t.tcl.as_ns(),
                t.trp.as_ns(),
                t.tras.as_ns(),
                t.trrd.as_ns(),
                t.burst_len
            ),
        ],
        vec![
            "Disks".into(),
            format!(
                "{}-channel IDE controller, {} disks, {:.0} MB/s aggregate",
                cfg.ide.channels,
                cfg.ide.disks,
                cfg.ide.aggregate_bandwidth / 1e6
            ),
        ],
        vec![
            "PRM".into(),
            format!(
                "firmware poll {} us, 5 control-plane adaptors (CPA), {} DS-ids",
                cfg.prm_poll.as_us(),
                cfg.max_ds
            ),
        ],
        vec![
            "Workloads".into(),
            "Memcached model, STREAM, CacheFlush, DiskCopy, leslie3d/lbm proxies".into(),
        ],
    ];
    print_table(&["parameter", "value"], &rows);
}
