//! Quick calibration probe for the memcached scenario (not a paper figure).

use pard_bench::{run_memcached_point, MemcachedMode, MemcachedScenario};
use pard_sim::Time;

fn main() {
    let t0 = std::time::Instant::now();
    for mode in [
        MemcachedMode::Solo,
        MemcachedMode::Shared,
        MemcachedMode::SharedWithTrigger,
    ] {
        for rps in [15_000.0, 20_000.0, 22_500.0] {
            let mut s = MemcachedScenario::new(mode, rps);
            s.warmup = Time::from_ms(20);
            s.measure = Time::from_ms(60);
            let p = run_memcached_point(&s);
            println!(
                "{:16} rps={:7.0} -> p95={:8.3}ms mean={:8.3}ms done={:5} util={:4.2} miss={}% mask={:#x} ({:.1}s wall)",
                mode.label(), rps, p.p95_ms, p.mean_ms, p.completed, p.cpu_utilization,
                p.final_miss_rate, p.final_waymask, t0.elapsed().as_secs_f64()
            );
        }
    }
}
