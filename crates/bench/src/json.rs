//! A minimal JSON value, builder, and pretty-printer.
//!
//! Replaces `serde_json` for the harnesses' result files. The printer
//! matches `serde_json::to_string_pretty` byte-for-byte for the shapes the
//! figures emit: two-space indentation, keys sorted lexicographically,
//! floats in shortest-round-trip form with a trailing `.0` for integral
//! values, non-finite floats as `null`.
//!
//! # Example
//!
//! ```
//! use pard_bench::json::JsonValue;
//! let v = JsonValue::object()
//!     .field("rate", 0.5)
//!     .field("points", vec![1u64, 2, 3]);
//! assert_eq!(
//!     v.to_string_pretty(),
//!     "{\n  \"points\": [\n    1,\n    2,\n    3\n  ],\n  \"rate\": 0.5\n}"
//! );
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every count the harnesses emit).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A double; non-finite values print as `null` like serde_json.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with lexicographically sorted keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// An empty object, ready for [`field`](JsonValue::field) chaining.
    pub fn object() -> JsonValue {
        JsonValue::Object(BTreeMap::new())
    }

    /// An empty array, ready for [`push`](JsonValue::push) chaining.
    pub fn array() -> JsonValue {
        JsonValue::Array(Vec::new())
    }

    /// Inserts `key` into an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(map) => {
                map.insert(key.into(), value.into());
            }
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Appends to an array (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(mut self, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Array(items) => items.push(value.into()),
            other => panic!("push() on non-array {other:?}"),
        }
        self
    }

    /// Serialises with two-space indentation (the `serde_json` pretty
    /// format the committed `fig*.json` files use).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => write_f64(out, *f),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Shortest round-trip float text; integral finite values keep a `.0`
/// suffix and non-finite values become `null`, matching serde_json.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v.into())
    }
}
impl From<u16> for JsonValue {
    fn from(v: u16) -> Self {
        JsonValue::UInt(v.into())
    }
}
impl From<u8> for JsonValue {
    fn from(v: u8) -> Self {
        JsonValue::UInt(v.into())
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(JsonValue::Null, Into::into)
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<JsonValue> + Clone, const N: usize> From<[T; N]> for JsonValue {
    fn from(v: [T; N]) -> Self {
        JsonValue::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<A: Into<JsonValue>, B: Into<JsonValue>> From<(A, B)> for JsonValue {
    fn from((a, b): (A, B)) -> Self {
        JsonValue::Array(vec![a.into(), b.into()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serde_json_shape() {
        // The exact shape of the committed fig11.json.
        let v = JsonValue::object()
            .field("baseline_mean_cycles", 14.6)
            .field("high_mean_cycles", 2.0)
            .field("inject_rate", 0.55)
            .field("low_mean_cycles", 15.2)
            .field("low_penalty_pct", 4.109589041095885)
            .field("speedup", 7.3);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"baseline_mean_cycles\": 14.6,\n  \"high_mean_cycles\": 2.0,\n  \
             \"inject_rate\": 0.55,\n  \"low_mean_cycles\": 15.2,\n  \
             \"low_penalty_pct\": 4.109589041095885,\n  \"speedup\": 7.3\n}"
        );
    }

    #[test]
    fn keys_sort_regardless_of_insertion_order() {
        let v = JsonValue::object().field("b", 1u64).field("a", 2u64);
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": 2,\n  \"b\": 1\n}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let v = JsonValue::from(10.0);
        assert_eq!(v.to_string_pretty(), "10.0");
        assert_eq!(JsonValue::from(0.93243286).to_string_pretty(), "0.93243286");
        assert_eq!(JsonValue::from(f64::NAN).to_string_pretty(), "null");
    }

    #[test]
    fn tuples_series_and_options_nest() {
        let series: Vec<(f64, f64)> = vec![(0.0, 1.5)];
        let v = JsonValue::object()
            .field("series", series)
            .field("fired", Option::<f64>::None);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"fired\": null,\n  \"series\": [\n    [\n      0.0,\n      1.5\n    ]\n  ]\n}"
        );
    }

    #[test]
    fn strings_escape() {
        let v = JsonValue::from("a\"b\\c\nd");
        assert_eq!(v.to_string_pretty(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(JsonValue::array().to_string_pretty(), "[]");
        assert_eq!(JsonValue::object().to_string_pretty(), "{}");
    }
}
