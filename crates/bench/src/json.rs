//! A minimal JSON value, builder, and pretty-printer.
//!
//! Replaces `serde_json` for the harnesses' result files. The printer
//! matches `serde_json::to_string_pretty` byte-for-byte for the shapes the
//! figures emit: two-space indentation, keys sorted lexicographically,
//! floats in shortest-round-trip form with a trailing `.0` for integral
//! values, non-finite floats as `null`.
//!
//! # Example
//!
//! ```
//! use pard_bench::json::JsonValue;
//! let v = JsonValue::object()
//!     .field("rate", 0.5)
//!     .field("points", vec![1u64, 2, 3]);
//! assert_eq!(
//!     v.to_string_pretty(),
//!     "{\n  \"points\": [\n    1,\n    2,\n    3\n  ],\n  \"rate\": 0.5\n}"
//! );
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every count the harnesses emit).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A double; non-finite values print as `null` like serde_json.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with lexicographically sorted keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// An empty object, ready for [`field`](JsonValue::field) chaining.
    pub fn object() -> JsonValue {
        JsonValue::Object(BTreeMap::new())
    }

    /// An empty array, ready for [`push`](JsonValue::push) chaining.
    pub fn array() -> JsonValue {
        JsonValue::Array(Vec::new())
    }

    /// Inserts `key` into an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(map) => {
                map.insert(key.into(), value.into());
            }
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Appends to an array (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(mut self, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Array(items) => items.push(value.into()),
            other => panic!("push() on non-array {other:?}"),
        }
        self
    }

    /// Serialises with two-space indentation (the `serde_json` pretty
    /// format the committed `fig*.json` files use).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Parses a JSON document (the inverse of the printer; accepts any
    /// standard JSON, not just printer output).
    ///
    /// Non-negative integers parse as [`JsonValue::UInt`], negative
    /// integers as [`JsonValue::Int`], everything else numeric as
    /// [`JsonValue::Float`]. Duplicate object keys keep the last value.
    ///
    /// # Errors
    ///
    /// Returns the byte offset and a description of the first syntax
    /// error, including trailing non-whitespace after the document.
    pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON document"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => write_f64(out, *f),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// A JSON syntax error: where it happened and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            // The unescaped run is valid UTF-8 because the input is &str
            // and we only stop at ASCII delimiters.
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is UTF-8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Decode a surrogate pair when one follows.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                Some(_) => unreachable!("loop stops only at '\"' or '\\\\'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| ParseError {
                offset: start,
                message: "invalid number".to_string(),
            })
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Shortest round-trip float text; integral finite values keep a `.0`
/// suffix and non-finite values become `null`, matching serde_json.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v.into())
    }
}
impl From<u16> for JsonValue {
    fn from(v: u16) -> Self {
        JsonValue::UInt(v.into())
    }
}
impl From<u8> for JsonValue {
    fn from(v: u8) -> Self {
        JsonValue::UInt(v.into())
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(JsonValue::Null, Into::into)
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<JsonValue> + Clone, const N: usize> From<[T; N]> for JsonValue {
    fn from(v: [T; N]) -> Self {
        JsonValue::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<A: Into<JsonValue>, B: Into<JsonValue>> From<(A, B)> for JsonValue {
    fn from((a, b): (A, B)) -> Self {
        JsonValue::Array(vec![a.into(), b.into()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serde_json_shape() {
        // The exact shape of the committed fig11.json.
        let v = JsonValue::object()
            .field("baseline_mean_cycles", 14.6)
            .field("high_mean_cycles", 2.0)
            .field("inject_rate", 0.55)
            .field("low_mean_cycles", 15.2)
            .field("low_penalty_pct", 4.109589041095885)
            .field("speedup", 7.3);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"baseline_mean_cycles\": 14.6,\n  \"high_mean_cycles\": 2.0,\n  \
             \"inject_rate\": 0.55,\n  \"low_mean_cycles\": 15.2,\n  \
             \"low_penalty_pct\": 4.109589041095885,\n  \"speedup\": 7.3\n}"
        );
    }

    #[test]
    fn keys_sort_regardless_of_insertion_order() {
        let v = JsonValue::object().field("b", 1u64).field("a", 2u64);
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": 2,\n  \"b\": 1\n}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let v = JsonValue::from(10.0);
        assert_eq!(v.to_string_pretty(), "10.0");
        assert_eq!(JsonValue::from(0.93243286).to_string_pretty(), "0.93243286");
        assert_eq!(JsonValue::from(f64::NAN).to_string_pretty(), "null");
    }

    #[test]
    fn tuples_series_and_options_nest() {
        let series: Vec<(f64, f64)> = vec![(0.0, 1.5)];
        let v = JsonValue::object()
            .field("series", series)
            .field("fired", Option::<f64>::None);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"fired\": null,\n  \"series\": [\n    [\n      0.0,\n      1.5\n    ]\n  ]\n}"
        );
    }

    #[test]
    fn strings_escape() {
        let v = JsonValue::from("a\"b\\c\nd");
        assert_eq!(v.to_string_pretty(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(JsonValue::array().to_string_pretty(), "[]");
        assert_eq!(JsonValue::object().to_string_pretty(), "{}");
    }

    #[test]
    fn parse_round_trips_printer_output() {
        let v = JsonValue::object()
            .field("rate", 0.5)
            .field("n", 42u64)
            .field("neg", -7i64)
            .field("name", "llc \"shared\"\n")
            .field("flag", true)
            .field("missing", Option::<u64>::None)
            .field("points", vec![1u64, 2, 3]);
        let parsed = JsonValue::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_handles_trace_lines_and_accessors() {
        let line = r#"{"time":2.25,"ds":3,"cat":"llc","event":"miss","addr":64,"hot":true}"#;
        let v = JsonValue::parse(line).unwrap();
        assert_eq!(v.get("ds").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("cat").and_then(JsonValue::as_str), Some("llc"));
        assert_eq!(v.get("time").and_then(JsonValue::as_f64), Some(2.25));
        assert_eq!(v.get("addr").and_then(JsonValue::as_u64), Some(64));
        assert_eq!(v.get("nope"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "nan",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_decodes_escapes_and_number_shapes() {
        let v = JsonValue::parse(r#"["Aé😀", 1e3, -2.5, 18446744073709551615]"#)
            .unwrap();
        let JsonValue::Array(items) = v else {
            panic!("expected array")
        };
        assert_eq!(items[0].as_str(), Some("Aé😀"));
        assert_eq!(items[1], JsonValue::Float(1000.0));
        assert_eq!(items[2], JsonValue::Float(-2.5));
        assert_eq!(items[3], JsonValue::UInt(u64::MAX));

        // \u escapes, including a surrogate pair.
        let s = JsonValue::parse(r#""\u0041\u00e9 \ud83d\ude00\t""#).unwrap();
        assert_eq!(s.as_str(), Some("Aé 😀\t"));
    }
}
