//! # pard-bench — experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation (§7), plus
//! criterion micro-benchmarks and ablations:
//!
//! | target | reproduces |
//! |---|---|
//! | `table2` | Table 2 (simulation parameters) |
//! | `table3` | Table 3 (control-plane table contents, introspected live) |
//! | `fig07` | Fig. 7 (dynamic partitioning timeline) |
//! | `fig08` | Fig. 8 (memcached tail latency vs. load, 3 configurations) |
//! | `fig09` | Fig. 9 (memcached LLC miss rate with the trigger firing) |
//! | `fig10` | Fig. 10 (disk-bandwidth isolation) |
//! | `fig11` | Fig. 11 (memory queueing-delay CDF) |
//! | `fig12` | Fig. 12 (control-plane FPGA resources) + §7.2 latency |
//! | `fig_fault` | beyond the paper: fault injection + trigger-driven recovery (§2 resilience claim) |
//! | `fig_wfq` | beyond the paper: WFQ memory scheduling programmed as policy data (§3 programmability claim) |
//! | `fig_slo` | beyond the paper: SLO token-bucket DMA admission installed mid-run via `pardpolicy` |
//! | `fig_fleet` | beyond the paper: rack-scale consolidation sweep with federated PRMs (§1–2 motivation) |
//! | `sweeps` | sensitivity sweeps beyond the paper (intensity/partition/poll) |
//! | `calibrate` | quick calibration probe for the memcached scenario |
//! | `pard-trace` / `pard-audit` | offline trace validation and invariant replay |
//!
//! Durations are scaled down from the paper's (a 30-hour gem5 run per
//! point is replaced by seconds of event-driven simulation); pass
//! `--quick` for CI-speed runs or `--full` for closer-to-paper spans.
//!
//! # Paper mapping
//!
//! Each binary reproduces one artifact of the paper's evaluation (§7),
//! keyed in the table above; the `fig_*` extensions past `fig12` test
//! claims the paper makes but never measures (resilience §2,
//! programmability §3, rack-scale consolidation §1–2). The shared
//! machinery maps too: [`duration_scale`] stands in for the paper's
//! simulated-span choices, `harness` for its repeated-run methodology,
//! and the committed `fig*.json` goldens — cmp-gated in `ci.sh` — for
//! the published curves themselves (EXPERIMENTS.md holds the
//! paper-vs-measured tables).

#![warn(missing_docs)]

pub mod fault_spec;
pub mod fig09_scenario;
pub mod fig10_scenario;
pub mod fig11_scenario;
pub mod fig_fault_scenario;
pub mod fig_fleet_scenario;
pub mod fig_slo_scenario;
pub mod fig_wfq_scenario;
pub mod harness;
pub mod json;
pub mod memcached_scenario;
pub mod output;
pub mod replay;

pub use memcached_scenario::{
    build_memcached_server, build_memcached_server_no_rule, install_llc_trigger,
    install_llc_trigger_scenario, install_llc_trigger_with, run_memcached_point,
    run_memcached_sampled, MemcachedMode, MemcachedPoint, MemcachedScenario,
};

/// Parses the common `--quick` / `--full` flags into a duration scale
/// factor (1.0 = default).
///
/// Any other argument is rejected with exit code 2: a typo like
/// `--qiuck` used to silently run the full-length default spans.
pub fn duration_scale() -> f64 {
    let mut quick = false;
    let mut full = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            other => {
                eprintln!("unknown argument {other:?} (expected --quick or --full)");
                std::process::exit(2);
            }
        }
    }
    if quick {
        0.25
    } else if full {
        4.0
    } else {
        1.0
    }
}
