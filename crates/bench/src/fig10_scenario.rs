//! Figure 10 scenario — disk I/O performance isolation.
//!
//! Two LDoms each run `dd if=/dev/zero of=/dev/sdb bs=32M count=16`.
//! Initially they share the IDE controller equally; mid-run the operator
//! runs `echo 80 > /sys/cpa/cpa3/ldoms/ldom0/parameters/bandwidth`, and
//! LDom0's share rises to 80 %.
//!
//! A single simulation with a mid-run operator `echo` (each sample
//! depends on the last), so there is nothing to fan out across the
//! worker pool. Instead the run goes onto the **partitioned kernel**
//! ([`PardServer::partition`]): parallelism inside the one timeline, with
//! the schedule — and thus `fig10.json` — byte-identical at every
//! `PARD_THREADS` setting.
//!
//! [`PardServer::partition`]: pard::PardServer::partition

use pard::{DsId, LDomSpec, PardServer, SystemConfig, Time};
use pard_workloads::{DiskCopy, DiskCopyConfig};

/// One Figure 10 timeline: per-LDom bandwidth-share series plus the
/// markers the plot annotates.
pub struct Fig10Run {
    /// Total simulated span.
    pub total: Time,
    /// When the operator's `echo 80` quota change lands.
    pub echo_at: Time,
    /// Per-LDom `(ms, bandwidth share %)` samples.
    pub shares: Vec<Vec<(f64, f64)>>,
}

/// Runs the default-geometry timeline at the given `--quick`/`--full`
/// duration scale.
pub fn run_timeline(scale: f64) -> Fig10Run {
    // Scaled from the paper's 512 MB per LDom so the default run spans
    // ~800 ms of simulated time like the figure's x-axis.
    let block = (8.0 * scale) as u64 * 1024 * 1024;
    run_span(block, Time::from_ms(800), Time::from_ms(400))
}

/// Runs one timeline with an explicit per-op block size, span, and quota
/// change time (tests shrink all three).
pub fn run_span(block: u64, total: Time, echo_at: Time) -> Fig10Run {
    run_span_with(block, total, echo_at, |_| {})
}

/// As [`run_span`], with a setup hook called on the partitioned server
/// before the timeline starts. The policy equivalence suite uses it to
/// install the built-in programs explicitly and prove the figure bytes
/// do not move.
pub fn run_span_with(
    block: u64,
    total: Time,
    echo_at: Time,
    setup: impl FnOnce(&mut PardServer),
) -> Fig10Run {
    let sample = Time::from_ms(10);

    let mut server = PardServer::new(SystemConfig::asplos15());
    for (i, name) in ["dd0", "dd1"].iter().enumerate() {
        server
            .create_ldom(LDomSpec::new(*name, vec![i], 1 << 30))
            .expect("ldom");
        server.install_engine(
            i,
            Box::new(DiskCopy::new(DiskCopyConfig {
                disk: i as u8,
                block_bytes: block.max(1 << 20),
                count: 64,
                ..DiskCopyConfig::default()
            })),
        );
        server.launch(DsId::new(i as u16)).expect("launch");
    }
    server.partition();
    setup(&mut server);

    let mut shares: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 2];
    let mut echoed = false;
    while server.now() < total {
        server.run_for(sample);
        if !echoed && server.now() >= echo_at {
            server
                .shell("echo 80 > /sys/cpa/cpa3/ldoms/ldom0/parameters/bandwidth")
                .expect("echo quota");
            echoed = true;
            eprintln!(
                "  t={:.0} ms: echo 80 > .../ldom0/parameters/bandwidth",
                server.now().as_ms()
            );
        }
        let bw: Vec<f64> = (0..2u16)
            .map(|ds| {
                server
                    .ide_cp()
                    .lock()
                    .stat(DsId::new(ds), "bandwidth")
                    .unwrap_or_default() as f64
            })
            .collect();
        let sum = (bw[0] + bw[1]).max(1.0);
        for (i, series) in shares.iter_mut().enumerate() {
            series.push((server.now().as_ms(), bw[i] / sum * 100.0));
        }
    }
    Fig10Run {
        total,
        echo_at,
        shares,
    }
}
