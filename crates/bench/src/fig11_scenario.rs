//! The Figure 11 memory-queueing scenario, shared by the `fig11` binary
//! and the determinism tests.
//!
//! A synthetic injector drives the DDR3 controller at a fraction of peak
//! request bandwidth with a 50/50 mix of high- and low-priority requests.
//! Everything is seeded through [`pard_sim::rng::stream_rng`], so a fixed
//! `(seed, rate, requests)` triple reproduces the exact same numbers on
//! every run and host.

use crate::json::JsonValue;
use pard_dram::{MemCtrl, MemCtrlConfig};
use pard_icn::{DsId, LAddr, MemKind, MemPacket, PacketId, PardEvent, TickKind};
use pard_sim::par::par_map;
use pard_sim::rng::{stream_rng, Rng, Xoshiro256pp};
use pard_sim::{Component, ComponentId, Ctx, Simulation, Time};

/// DS-id carried by the low-priority request class.
pub const DS_LOW: u16 = 1;
/// DS-id carried by the high-priority request class.
pub const DS_HIGH: u16 = 7;

/// Poisson traffic source alternating high/low priority DS-ids.
///
/// Each class walks its own sequential stream of whole-row (16-line)
/// runs within its own rank, like the paper's streaming microbenchmark
/// instances. With row hits dominating, the shared data bus is the
/// bottleneck, and queueing delay is pure arbitration — the effect the
/// priority queues exist to manage.
struct Injector {
    ctrl: ComponentId,
    rate_per_sec: f64,
    rng: Xoshiro256pp,
    next_id: u64,
    sent: u64,
    limit: u64,
    cursor: [u64; 2],
    run_left: [u32; 2],
}

impl Component<PardEvent> for Injector {
    fn name(&self) -> &str {
        "injector"
    }
    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        match ev {
            PardEvent::Tick(TickKind::Core) => {
                if self.sent >= self.limit {
                    return;
                }
                self.sent += 1;
                let cls = (self.sent % 2) as usize;
                let ds = if cls == 0 { DS_HIGH } else { DS_LOW };
                if self.run_left[cls] == 0 {
                    // Rows interleave across the 16 banks (row_id % 16 is
                    // the bank). High priority picks rows in rank 0's
                    // banks 0-7; low priority roams everywhere.
                    let group: u64 = self.rng.gen_range(0..(256u64 << 20) / 1024 / 16);
                    let row_id = group * 16 + (cls as u64) * 8 + self.rng.gen_range(0u64..8);
                    self.cursor[cls] = row_id * 16;
                    self.run_left[cls] = 16;
                }
                let line = self.cursor[cls];
                self.cursor[cls] += 1;
                self.run_left[cls] -= 1;
                let pkt = MemPacket {
                    id: PacketId(self.next_id),
                    ds: DsId::new(ds),
                    addr: LAddr::new(line * 64),
                    kind: MemKind::Read,
                    size: 64,
                    reply_to: ctx.self_id(),
                    issued_at: ctx.now(),
                    dma: false,
                };
                self.next_id += 1;
                ctx.send(self.ctrl, Time::ZERO, PardEvent::MemReq(pkt));
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = Time::from_units(((-u.ln() / self.rate_per_sec) * 4e9).max(1.0) as u64);
                ctx.send(ctx.self_id(), gap, PardEvent::Tick(TickKind::Core));
            }
            PardEvent::MemResp(_) => {}
            other => panic!("unexpected event {other:?}"),
        }
    }
    pard_sim::impl_as_any!();
}

/// Queueing-delay statistics from one run of the scenario.
pub struct RunResult {
    /// Mean queueing delay of high-priority requests, in memory cycles.
    pub mean_high: f64,
    /// Mean queueing delay of low-priority requests, in memory cycles.
    pub mean_low: f64,
    /// Mean over all requests (equals `mean_low` without priorities).
    pub mean_all: f64,
    /// `(cycles, fraction)` CDF of the high-priority class.
    pub cdf_high: Vec<(f64, f64)>,
    /// `(cycles, fraction)` CDF of the low-priority class.
    pub cdf_low: Vec<(f64, f64)>,
}

/// Runs the baseline (no priorities) and PARD (priorities) configurations
/// as two independent simulations fanned over the [`par_map`] worker
/// pool. Both derive their RNG from the same named stream, so the pair is
/// bit-identical to two serial [`run`] calls at any `PARD_THREADS`.
pub fn run_pair(inject_rate: f64, requests: u64) -> (RunResult, RunResult) {
    let mut results = par_map(vec![false, true], |priorities| {
        run(inject_rate, priorities, requests)
    });
    let pard = results.pop().expect("pard run");
    let base = results.pop().expect("baseline run");
    (base, pard)
}

/// The `fig11.json` document for one baseline/PARD result pair — shared
/// by the `fig11` binary and the cross-thread-count determinism test.
pub fn summary_json(inject_rate: f64, base: &RunResult, pard: &RunResult) -> JsonValue {
    let speedup = base.mean_all / pard.mean_high.max(0.01);
    let low_penalty = (pard.mean_low / base.mean_all - 1.0) * 100.0;
    JsonValue::object()
        .field("inject_rate", inject_rate)
        .field("baseline_mean_cycles", base.mean_all)
        .field("high_mean_cycles", pard.mean_high)
        .field("low_mean_cycles", pard.mean_low)
        .field("speedup", speedup)
        .field("low_penalty_pct", low_penalty)
}

/// Runs the injector against the DDR3 controller and collects queueing
/// delays. `inject_rate` is the fraction of peak request bandwidth
/// (one 64 B burst per 5 ns = 200 M requests/s at 1.0).
pub fn run(inject_rate: f64, priorities: bool, requests: u64) -> RunResult {
    run_with(inject_rate, priorities, requests, |_| {})
}

/// As [`run`], with a setup hook called on the controller's plane before
/// injection starts (the policy equivalence suite installs the built-in
/// program explicitly through it).
pub fn run_with(
    inject_rate: f64,
    priorities: bool,
    requests: u64,
    setup: impl FnOnce(&mut pard_cp::ControlPlane),
) -> RunResult {
    // Each run is an independent machine on a reused worker thread, and
    // its packet ids restart at 0 — open a fresh audit conservation scope
    // so back-to-back runs cannot alias each other's in-flight packets.
    pard_sim::audit::begin_run();
    let mut sim: Simulation<PardEvent> = Simulation::new();
    let (ctrl_model, cp) = MemCtrl::new(MemCtrlConfig {
        priorities_enabled: priorities,
        record_queueing: true,
        // The paper's FPGA baseline is the stock MIG controller: a small
        // reorder window, nearly in-order.
        baseline_window: 2,
        ..MemCtrlConfig::default()
    });
    let ctrl = sim.add_component(Box::new(ctrl_model));
    if priorities {
        let mut cp = cp.lock();
        cp.set_param(DsId::new(DS_HIGH), "priority", 1).unwrap();
        cp.set_param(DsId::new(DS_HIGH), "rowbuf", 1).unwrap();
    }
    setup(&mut cp.lock());
    let rate = inject_rate * 200e6;
    let injector = sim.add_component(Box::new(Injector {
        ctrl,
        rate_per_sec: rate,
        rng: stream_rng(7, "fig11.injector"),
        next_id: 0,
        sent: 0,
        limit: requests,
        cursor: [0; 2],
        run_left: [0; 2],
    }));
    sim.post(injector, Time::ZERO, PardEvent::Tick(TickKind::Core));
    // The controller's statistics window re-arms forever; run to a bounded
    // deadline comfortably past the injection span instead of draining.
    let span_secs = requests as f64 / rate;
    sim.run_until(Time::from_us((span_secs * 1e6 * 2.0) as u64 + 1_000));

    sim.with_component::<MemCtrl, _, _>(ctrl, |m| {
        let (mean_high, mean_low) = m.mean_queueing_cycles();
        let (hi, lo) = m.queueing_samples();
        let to_cdf = |s: &pard_sim::stats::LatencySample| -> Vec<(f64, f64)> {
            let mut s = s.clone();
            s.cdf()
                .into_iter()
                .map(|(t, f)| (t.as_ns() / 1.25, f))
                .collect()
        };
        let (nh, nl) = (hi.len() as f64, lo.len() as f64);
        let mean_all = if priorities {
            (mean_high * nh + mean_low * nl) / (nh + nl).max(1.0)
        } else {
            mean_low
        };
        RunResult {
            mean_high,
            mean_low,
            mean_all,
            cdf_high: to_cdf(hi),
            cdf_low: to_cdf(lo),
        }
    })
}
