//! The SLO-admission policy-demo scenario — token-bucket DMA admission on
//! the I/O bridge, shared by the `fig_slo` binary and the policy
//! equivalence tests.
//!
//! Two LDoms each run `dd`-style disk copies through the shared IDE
//! controller and I/O bridge. LDom0 is the latency-critical tenant with a
//! contracted I/O service level; LDom1 is a batch tenant flooding the
//! bridge with DMA. Mid-run the operator loads an admission program
//! through the firmware shell:
//!
//! ```text
//! pardpolicy /dev/cpa2 install
//!     when ds == 1 && class == dma do charge size rate R burst B else drop ;
//!     when all do rank 0
//! ```
//!
//! capping the batch tenant's *admitted* DMA bandwidth at the bridge to
//! its contracted rate. The tenant's excess bursts are dropped at the
//! admission point (accounted drops — the conservation auditor stays
//! green), the memory system behind the bridge sees only contracted
//! traffic, and the victim's admitted bandwidth is untouched.
//!
//! The timeline runs on the partitioned kernel, so `fig_slo.json` is
//! byte-identical at every `PARD_THREADS` setting.

use pard::{DsId, LDomSpec, PardServer, SystemConfig, Time};
use pard_workloads::{DiskCopy, DiskCopyConfig};

/// The batch tenant's contracted admitted-DMA rate, in bytes/second.
pub const SLO_RATE_BYTES_PER_SEC: u64 = 80_000_000;

/// The admission bucket's burst capacity, in bytes.
pub const SLO_BURST_BYTES: u64 = 1 << 20;

/// One SLO-admission timeline: per-LDom admitted-DMA series plus the
/// markers the plot annotates.
pub struct FigSloRun {
    /// Total simulated span.
    pub total: Time,
    /// When the operator's `pardpolicy install` lands.
    pub policy_at: Time,
    /// Per-LDom `(ms, admitted DMA MB/s)` samples, measured at the bridge.
    pub admitted: Vec<Vec<(f64, f64)>>,
}

/// The program the operator loads mid-run (as one `pardpolicy` line,
/// rules separated by `;`).
pub fn slo_policy() -> String {
    format!(
        "when ds == 1 && class == dma do charge size rate {SLO_RATE_BYTES_PER_SEC} \
         burst {SLO_BURST_BYTES} else drop ; when all do rank 0"
    )
}

/// Runs the default-geometry timeline at the given `--quick`/`--full`
/// duration scale.
pub fn run_timeline(scale: f64) -> FigSloRun {
    let block = (8.0 * scale) as u64 * 1024 * 1024;
    run_span(block, Time::from_ms(800), Time::from_ms(400))
}

/// Runs one timeline with an explicit per-op block size, span, and policy
/// install time (tests shrink all three).
pub fn run_span(block: u64, total: Time, policy_at: Time) -> FigSloRun {
    let sample = Time::from_ms(10);

    let mut server = PardServer::new(SystemConfig::asplos15());
    for (i, name) in ["slo0", "batch1"].iter().enumerate() {
        server
            .create_ldom(LDomSpec::new(*name, vec![i], 1 << 30))
            .expect("ldom");
        server.install_engine(
            i,
            Box::new(DiskCopy::new(DiskCopyConfig {
                disk: i as u8,
                block_bytes: block.max(1 << 20),
                count: 64,
                ..DiskCopyConfig::default()
            })),
        );
        server.launch(DsId::new(i as u16)).expect("launch");
    }
    server.partition();

    let mut admitted: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 2];
    let mut last_bytes = [0u64; 2];
    let mut installed = false;
    while server.now() < total {
        server.run_for(sample);
        if !installed && server.now() >= policy_at {
            server
                .shell(&format!("pardpolicy /dev/cpa2 install {}", slo_policy()))
                .expect("install admission policy");
            installed = true;
            eprintln!(
                "  t={:.0} ms: pardpolicy /dev/cpa2 install (rate {} MB/s)",
                server.now().as_ms(),
                SLO_RATE_BYTES_PER_SEC / 1_000_000
            );
        }
        for i in 0..2u16 {
            let bytes = server
                .bridge_cp()
                .lock()
                .stat(DsId::new(i), "dma_bytes")
                .unwrap_or_default();
            let rate_mbps =
                (bytes - last_bytes[i as usize]) as f64 / sample.as_secs() / 1e6;
            last_bytes[i as usize] = bytes;
            admitted[i as usize].push((server.now().as_ms(), rate_mbps));
        }
    }
    FigSloRun {
        total,
        policy_at,
        admitted,
    }
}
