//! `PARD_THREADS` byte-identity matrix over the figure scenarios, with
//! tracing and strict auditing live for the whole run.
//!
//! fig09 and fig10 run on the partitioned kernel, fig11 and the fault
//! figure on the sequential kernel under the `par_map` harness; all four
//! must render the same bytes at every thread setting. One test owns the
//! whole matrix because `PARD_THREADS` is process-global state.
//!
//! On a single-core host the partitioned driver clamps to the inline
//! epoch loop at any `PARD_THREADS`; the threaded driver's own identity
//! is pinned at kernel scale in `crates/sim/tests/partitioned.rs` (via
//! `set_workers`), where epoch counts are small enough for barrier spins
//! on one core.

use pard_bench::fig11_scenario;
use pard_bench::fig_fault_scenario::{self, Timeline};
use pard_bench::{fig09_scenario, fig10_scenario};
use pard_sim::{audit, trace};

#[test]
fn figure_outputs_are_byte_identical_across_thread_counts() {
    // All categories into the in-memory ring (default sampling), and
    // panic on the first conservation violation: a partitioned run that
    // loses or duplicates a packet must fail here, not drift a figure.
    trace::install(trace::TraceConfig::default()).unwrap();
    audit::install(audit::AuditConfig::strict()).unwrap();

    let render = || {
        let f9 = fig09_scenario::run_timeline(0.25);
        // A shortened fig10 span: the quota echo still lands mid-run, but
        // the disk copies only cover a quarter of the default timeline.
        let f10 = fig10_scenario::run_span(
            2,
            pard_sim::Time::from_ms(200),
            pard_sim::Time::from_ms(100),
        );
        let (b11, p11) = fig11_scenario::run_pair(0.55, 4_000);
        let tl = Timeline::at_scale(0.25);
        let (bf, rf) = fig_fault_scenario::run_pair(tl);
        format!(
            "{:?}\n{:?}\n{}\n{}",
            (f9.total, f9.stream_start, f9.fired_at, f9.series),
            (f10.total, f10.echo_at, f10.shares),
            fig11_scenario::summary_json(0.55, &b11, &p11).to_string_pretty(),
            fig_fault_scenario::summary_json(tl, &bf, &rf).to_string_pretty(),
        )
    };

    std::env::set_var("PARD_THREADS", "1");
    let one = render();
    std::env::set_var("PARD_THREADS", "4");
    let four = render();
    std::env::remove_var("PARD_THREADS");

    assert_eq!(audit::violations_total(), 0, "strict audit stayed clean");
    audit::disable();
    trace::disable();

    assert_eq!(one, four, "figure bytes must not depend on PARD_THREADS");
}
