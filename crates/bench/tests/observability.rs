//! Observability-layer integration tests.
//!
//! Two properties the PR 3 layer must uphold:
//!
//! 1. **Conservation** — the per-DS-id counters that the control planes
//!    publish through the PRM metrics snapshot must sum to the live
//!    kernel-level totals held by the components themselves. Statistics
//!    windows flush cumulative counters into the control-plane tables, so
//!    once traffic stops and at least one window rolls over, the two views
//!    must agree exactly, per resource.
//! 2. **Observer purity** — installing the tracer must not perturb the
//!    simulation: a traced run renders byte-identical figure JSON to an
//!    untraced run, while the trace file itself is schema-valid JSONL.

use pard::{DsId, LDomSpec, PardServer, SystemConfig, Time};
use pard_bench::fig11_scenario::{run_pair, summary_json};
use pard_bench::json::JsonValue;
use pard_icn::LAddr;
use pard_sim::check;
use pard_sim::rng::Rng;
use pard_sim::trace::{self, TraceConfig};
use pard_workloads::{DiskCopy, DiskCopyConfig, Op, WorkloadEngine};

/// A finite store burst: `remaining` write-allocate stores walking a
/// buffer, then [`Op::Halt`]. Unlike `CacheFlush` (which loops forever)
/// this lets the machine drain completely, so window rollovers after the
/// burst publish final cumulative statistics.
struct FiniteStores {
    base: u64,
    remaining: u64,
    cursor: u64,
    span_lines: u64,
}

impl WorkloadEngine for FiniteStores {
    fn name(&self) -> &str {
        "finite-stores"
    }

    fn next_op(&mut self, _now: Time) -> Op {
        if self.remaining == 0 {
            return Op::Halt;
        }
        self.remaining -= 1;
        let addr = LAddr::new(self.base + (self.cursor % self.span_lines) * 64);
        self.cursor += 1;
        Op::Store { addr }
    }

    pard_workloads::impl_engine_any!();
}

/// Per-DS-id counters summed across the LLC, memory, I/O-bridge, and IDE
/// control planes equal the kernel-level totals for a seeded finite run.
#[test]
fn per_ds_stats_conserve_across_control_planes() {
    check::cases("per_ds_stats_conserve_across_control_planes", 3, |rng| {
        let stores = rng.gen_range(2_000u64..10_000);
        let blocks = rng.gen_range(2u64..6);
        let block_bytes = 128 * 1024 * rng.gen_range(1u64..4);

        let mut server = PardServer::new(SystemConfig::small_test());
        for (i, name) in ["mem-ldom", "disk-ldom"].iter().enumerate() {
            server
                .create_ldom(LDomSpec::new(*name, vec![i], 16 << 20))
                .expect("create ldom");
        }
        server.install_engine(
            0,
            Box::new(FiniteStores {
                base: 0x10_0000,
                remaining: stores,
                cursor: 0,
                span_lines: 8192,
            }),
        );
        server.install_engine(
            1,
            Box::new(DiskCopy::new(DiskCopyConfig {
                disk: 0,
                block_bytes,
                count: blocks,
                ..DiskCopyConfig::default()
            })),
        );
        server.launch(DsId::new(0)).expect("launch mem-ldom");
        server.launch(DsId::new(1)).expect("launch disk-ldom");

        // Long enough for both finite workloads to drain, plus many idle
        // statistics windows (20 us .. 1 ms in the small_test platform) so
        // every control plane has flushed its final cumulative counters.
        server.run_for(Time::from_ms(40));

        let snap = server.metrics_snapshot();

        // LLC: control-plane hit/miss counts vs the tag array's own.
        let (mut hits, mut misses) = (0u64, 0u64);
        for ds in 0..2u16 {
            let (h, m) = server.llc_counts(DsId::new(ds));
            hits += h;
            misses += m;
        }
        assert_eq!(snap.column_total("CACHE_CP", "hit_cnt"), hits);
        assert_eq!(snap.column_total("CACHE_CP", "miss_cnt"), misses);
        assert!(misses > 0, "the store burst must reach the LLC");

        // Memory: per-DS served counts vs the controller's global total.
        assert_eq!(
            snap.column_total("MEMORY_CP", "serv_cnt"),
            server.mem_served_total()
        );
        assert!(server.mem_served_total() > 0);

        // Disk path: IDE-granted bytes == bridge-accounted DMA bytes ==
        // the live per-DS progress counters, and all equal the workload's
        // requested transfer size.
        let disk_bytes: u64 = (0..2u16)
            .map(|ds| server.disk_progress(DsId::new(ds)).bytes_done)
            .sum();
        assert_eq!(disk_bytes, block_bytes * blocks, "DiskCopy must finish");
        assert_eq!(snap.column_total("IDE_CP", "bytes"), disk_bytes);
        assert_eq!(snap.column_total("BRIDGE_CP", "dma_bytes"), disk_bytes);
    });
}

/// A traced run produces byte-identical figure output to an untraced run,
/// and the trace it writes is schema-valid JSONL. Install/disable stay
/// inside one test because the tracer is process-global.
#[test]
fn tracing_does_not_perturb_figure_output() {
    let render = || {
        let (base, pard) = run_pair(0.55, 1_000);
        summary_json(0.55, &base, &pard).to_string_pretty()
    };

    let untraced = render();

    let dir = std::env::temp_dir().join(format!("pard-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir tempdir");
    let path = dir.join("trace.jsonl");
    trace::install(TraceConfig::to_file(&path)).expect("install tracer");
    let traced = render();
    trace::flush();
    trace::disable();

    assert_eq!(
        untraced, traced,
        "tracing must be a pure observer: figure JSON changed"
    );

    let content = std::fs::read_to_string(&path).expect("read trace");
    let mut events = 0u64;
    for (lineno, line) in content.lines().enumerate() {
        let v = JsonValue::parse(line)
            .unwrap_or_else(|e| panic!("trace line {}: {e}", lineno + 1));
        assert!(v.get("time").and_then(JsonValue::as_f64).is_some());
        assert!(v.get("ds").and_then(JsonValue::as_u64).is_some());
        assert!(v.get("cat").and_then(JsonValue::as_str).is_some());
        assert!(v.get("event").and_then(JsonValue::as_str).is_some());
        events += 1;
    }
    assert!(events > 0, "the traced run must emit events");
    std::fs::remove_dir_all(&dir).ok();
}
