//! Binary trace store round-trip, seek, and bounded-replay integration
//! tests over real figure scenarios.
//!
//! The acceptance contract for the `.ptr` sink: replaying a traced run
//! from the binary store yields the **same event stream** as the JSONL
//! sink — byte-equivalent after decode — at `PARD_THREADS=1` and `4`,
//! under a strict auditor, with replay memory bounded by the page size
//! rather than the trace length, and with mid-file seek landing exactly
//! where a full scan would.
//!
//! Determinism fine print, which picks the comparison per scenario:
//!
//! * fig09 runs on the partitioned kernel — per-domain trace buffers with
//!   their own sampling counters, merged `(time, domain)` at every epoch
//!   barrier — so its trace is byte-deterministic at *any* worker count,
//!   with any sampling divisors.
//! * fig11 runs its baseline/PARD pair under the `par_map` harness. At
//!   one thread everything is sequential and the default-sampled trace
//!   is deterministic. At four threads the workers race for the global
//!   tracer lock: the *interleaving* is nondeterministic and the shared
//!   sampling counters would make even the kept-set racy — so the
//!   4-thread comparison pins the one category fig11 emits (`dram`) to
//!   sampling divisor 1 (no counter to race) and compares sorted
//!   multisets.
//!
//! One test function owns the whole matrix because the tracer, the
//! auditor, and `PARD_THREADS` are process-global.

use std::path::{Path, PathBuf};

use pard_bench::replay::{check_trace_file, stream_trace_lines};
use pard_bench::{fig09_scenario, fig11_scenario};
use pard_sim::store::TraceReader;
use pard_sim::trace::{self, TraceCat, TraceConfig};
use pard_sim::audit;

/// Decodes every event of `path` (JSONL or `.ptr`, sniffed by magic) as
/// its JSONL line, asserting the file is whole (no torn tail).
fn decoded_lines(path: &Path) -> Vec<String> {
    let mut lines = Vec::new();
    let torn = stream_trace_lines(path.to_str().unwrap(), 0, &mut |_, line| {
        lines.push(line.to_string());
        Ok(())
    })
    .unwrap_or_else(|errs| panic!("{errs:?}"));
    assert!(torn.is_none(), "unexpected torn tail: {torn:?}");
    lines
}

/// Installs a tracer to `path` and runs the fig11 baseline/PARD pair.
fn capture_fig11(
    path: &PathBuf,
    filter: Vec<(TraceCat, Option<u16>)>,
    sample: Vec<(TraceCat, u32)>,
) -> Vec<String> {
    trace::install(TraceConfig {
        path: Some(path.clone()),
        filter,
        sample,
        page_size: 4096,
        pool_pages: 2,
        ..TraceConfig::default()
    })
    .unwrap();
    let _ = fig11_scenario::run_pair(0.55, 1_000);
    trace::disable();
    decoded_lines(path)
}

/// Installs a tracer to `path` and runs the fig09 partitioned timeline.
fn capture_fig09(path: &PathBuf) -> Vec<String> {
    trace::install(TraceConfig {
        path: Some(path.clone()),
        page_size: 4096,
        pool_pages: 2,
        ..TraceConfig::default()
    })
    .unwrap();
    let _ = fig09_scenario::run_timeline(0.25);
    trace::disable();
    decoded_lines(path)
}


#[test]
fn binary_store_round_trips_figure_traces_and_seeks() {
    let dir = std::env::temp_dir().join(format!("pard-store-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    audit::install(audit::AuditConfig::strict()).unwrap();

    // fig11, one thread: full default-sampled trace, exact equality.
    std::env::set_var("PARD_THREADS", "1");
    let jsonl = capture_fig11(&dir.join("fig11-t1.jsonl"), Vec::new(), Vec::new());
    let binary = capture_fig11(&dir.join("fig11-t1.ptr"), Vec::new(), Vec::new());
    assert!(!jsonl.is_empty(), "the traced run must emit events");
    assert_eq!(
        jsonl, binary,
        "fig11 @ 1 thread: binary decode must be byte-equivalent to JSONL"
    );

    // fig11, four threads: the dram category at divisor 1 (no sampling
    // counter to race), sorted multiset equality — the kept-set matches
    // even though the racing interleave does not.
    let dram = vec![(TraceCat::Dram, None)];
    let keep_all = vec![(TraceCat::Dram, 1)];
    std::env::set_var("PARD_THREADS", "4");
    let mut jsonl = capture_fig11(&dir.join("fig11-t4.jsonl"), dram.clone(), keep_all.clone());
    let mut binary = capture_fig11(&dir.join("fig11-t4.ptr"), dram, keep_all);
    assert!(!jsonl.is_empty());
    assert_eq!(jsonl.len(), binary.len());
    jsonl.sort();
    binary.sort();
    assert_eq!(
        jsonl, binary,
        "fig11 @ 4 threads: binary decode must carry the same event multiset"
    );

    // fig09 (partitioned kernel): byte-deterministic at any worker count,
    // so both formats and both thread settings must agree exactly.
    std::env::set_var("PARD_THREADS", "1");
    let jsonl_t1 = capture_fig09(&dir.join("fig09-t1.jsonl"));
    let ptr_t1_path = dir.join("fig09-t1.ptr");
    let binary_t1 = capture_fig09(&ptr_t1_path);
    std::env::set_var("PARD_THREADS", "4");
    let jsonl_t4 = capture_fig09(&dir.join("fig09-t4.jsonl"));
    let binary_t4 = capture_fig09(&dir.join("fig09-t4.ptr"));
    std::env::remove_var("PARD_THREADS");
    assert!(!jsonl_t1.is_empty());
    assert_eq!(jsonl_t1, binary_t1, "fig09 @ 1 thread: formats must agree");
    assert_eq!(jsonl_t4, binary_t4, "fig09 @ 4 threads: formats must agree");
    assert_eq!(
        jsonl_t1, jsonl_t4,
        "fig09: the epoch merge keeps the trace thread-count-invariant"
    );

    // The store really paged the trace (replay memory is bounded by one
    // page frame, not the trace length), and the shared checker accepts
    // the binary file directly.
    let reader = TraceReader::open(&ptr_t1_path).unwrap();
    assert!(
        reader.data_pages() > 4,
        "expected a multi-page store, got {} pages",
        reader.data_pages()
    );
    drop(reader);
    let (report, torn) = check_trace_file(ptr_t1_path.to_str().unwrap())
        .unwrap_or_else(|errs| panic!("{errs:?}"));
    assert_eq!(report.total, binary_t1.len() as u64);
    assert!(torn.is_none());

    // Mid-file seek: replay from an interior ordinal equals the suffix of
    // the full scan, with correct 1-based event numbering.
    let from = (binary_t1.len() / 2) as u64;
    let mut suffix = Vec::new();
    let mut numbers = Vec::new();
    stream_trace_lines(ptr_t1_path.to_str().unwrap(), from, &mut |n, line| {
        numbers.push(n);
        suffix.push(line.to_string());
        Ok(())
    })
    .unwrap_or_else(|errs| panic!("{errs:?}"));
    assert_eq!(suffix, binary_t1[from as usize..].to_vec());
    assert_eq!(numbers.first().copied(), Some(from + 1));
    assert_eq!(numbers.last().copied(), Some(binary_t1.len() as u64));

    assert_eq!(audit::violations_total(), 0, "strict audit stayed clean");
    audit::disable();
    std::fs::remove_dir_all(&dir).ok();
}
