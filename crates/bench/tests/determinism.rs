//! Golden-value determinism test for the Figure 11 scenario.
//!
//! The whole point of the first-party RNG stack is that a fixed seed
//! reproduces a figure exactly, on any host, with no network access. This
//! test replays a scaled-down Figure 11 (4 000 requests instead of
//! 200 000) and pins the exact numbers it produced when the hermetic RNG
//! landed. If these ever drift, either the RNG stream or the memory
//! controller's arbitration changed — both are things a reviewer must see.

use pard_bench::fig11_scenario::{run, run_pair, summary_json};

const RATE: f64 = 0.55;
const REQUESTS: u64 = 4_000;

#[test]
fn fig11_golden_values_reproduce() {
    let base = run(RATE, false, REQUESTS);
    let pard = run(RATE, true, REQUESTS);

    // Means in memory cycles. Exact equality on purpose: every quantity
    // derives from integer simulated-time units, so there is no
    // platform-dependent float path to excuse drift.
    assert_eq!(base.mean_all, 14.2, "baseline mean queueing delay");
    assert_eq!(pard.mean_high, 2.0, "high-priority mean queueing delay");
    assert_eq!(pard.mean_low, 14.8, "low-priority mean queueing delay");

    assert_eq!(base.cdf_low.len(), 323, "baseline CDF sample count");
    assert_eq!(pard.cdf_high.last().copied(), Some((28.6, 1.0)));

    // The headline relationship the figure exists to show.
    assert!(pard.mean_high < base.mean_all);
    assert!(pard.mean_low >= base.mean_all);
}

#[test]
fn fig11_runs_are_identical() {
    let a = run(RATE, true, 1_000);
    let b = run(RATE, true, 1_000);
    assert_eq!(a.mean_high, b.mean_high);
    assert_eq!(a.mean_low, b.mean_low);
    assert_eq!(a.cdf_high, b.cdf_high);
    assert_eq!(a.cdf_low, b.cdf_low);
}

/// The parallel runner must not affect results: the fig11 JSON rendered
/// from a `par_map`-driven pair is byte-identical whether the pool has
/// one worker or eight. Both thread counts run inside a single test
/// (env vars are process-global, so splitting this across tests would
/// race under the parallel test harness).
#[test]
fn fig11_json_is_byte_identical_across_thread_counts() {
    let render = || {
        let (base, pard) = run_pair(RATE, REQUESTS);
        summary_json(RATE, &base, &pard).to_string_pretty()
    };

    std::env::set_var("PARD_THREADS", "1");
    let serial = render();
    std::env::set_var("PARD_THREADS", "8");
    let parallel = render();
    std::env::remove_var("PARD_THREADS");

    assert_eq!(
        serial, parallel,
        "fig11 JSON must not depend on PARD_THREADS"
    );
}

/// Byte-identity pin for the lock-free statistics path. Every per-access
/// statistic feeding this figure is now recorded through the sharded
/// atomic cells (`StatsHandle::add`) instead of under the control-plane
/// mutex; the rendered summary JSON must still match the committed
/// golden byte for byte. Regenerate with `PARD_BLESS=1` after an
/// *intentional* scenario change — never to paper over drift.
#[test]
fn fig11_summary_matches_committed_golden() {
    let (base, pard) = run_pair(RATE, REQUESTS);
    let json = summary_json(RATE, &base, &pard).to_string_pretty();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/goldens/fig11_summary.json"
    );
    if std::env::var_os("PARD_BLESS").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("committed fig11 golden (PARD_BLESS=1 regenerates it)");
    assert_eq!(
        json, golden,
        "fig11 summary drifted from the committed golden"
    );
}
