//! Fleet-layer acceptance: the `fig_fleet` consolidation cells are
//! byte-identical across `PARD_THREADS` settings and across reruns with
//! strict auditing live, the armed manager's reaction ladder actually
//! recovers the best-effort tier at the highest consolidation ratio, and
//! a full re-shard → drain → retire → migrate episode completes with
//! every conservation ledger clean.
//!
//! One test owns the whole matrix because `PARD_THREADS` is
//! process-global state (same convention as `tests/partitioned.rs`).

use pard_bench::fig_fleet_scenario::{sweep_json, FleetCell};
use pard_fleet::{run_consolidation, FleetConfig};
use pard_sim::audit;

/// The default-scale ratio-4 pair (disarmed, then armed) — the cell of
/// the figure where consolidation hurts and the manager's reaction is
/// supposed to help.
fn ratio4_pair(base: &FleetConfig) -> Vec<FleetCell> {
    [false, true]
        .into_iter()
        .map(|armed| FleetCell {
            ratio: 4,
            armed,
            outcome: run_consolidation(base, 4, armed),
        })
        .collect()
}

#[test]
fn fleet_runs_replay_byte_identically_and_reactions_recover_the_slo() {
    // Panic-free strict accounting for every run in this test: a fleet
    // reaction that loses or duplicates a request (or a cache line, or a
    // byte of LDom memory) must fail here, not drift a percentile.
    audit::install(audit::AuditConfig::strict()).unwrap();

    let base = FleetConfig::default_scale();

    std::env::set_var("PARD_THREADS", "1");
    let one = sweep_json(&base, &ratio4_pair(&base)).to_string_pretty();
    std::env::set_var("PARD_THREADS", "4");
    let cells = ratio4_pair(&base);
    let four = sweep_json(&base, &cells).to_string_pretty();
    let again = sweep_json(&base, &ratio4_pair(&base)).to_string_pretty();
    std::env::remove_var("PARD_THREADS");

    assert_eq!(one, four, "fleet bytes must not depend on PARD_THREADS");
    assert_eq!(four, again, "a fleet rerun must replay bit-for-bit");

    // The consolidation story the figure tells: at ratio 4 the disarmed
    // fleet breaks the best-effort SLO, the armed manager re-shards and
    // strictly improves both the attainment and the tail itself.
    let (disarmed, armed) = (&cells[0].outcome, &cells[1].outcome);
    assert!(
        disarmed.best_effort.attain_p95 < 1.0,
        "ratio 4 disarmed should violate the best-effort p95 SLO, got {:.3}",
        disarmed.best_effort.attain_p95
    );
    assert!(armed.reshards >= 1, "the armed manager should re-shard");
    assert!(
        armed.best_effort.attain_p95 > disarmed.best_effort.attain_p95,
        "re-sharding should recover best-effort p95 attainment \
         (armed {:.3} vs disarmed {:.3})",
        armed.best_effort.attain_p95,
        disarmed.best_effort.attain_p95
    );
    assert!(
        armed.best_effort.p99 < disarmed.best_effort.p99,
        "re-sharding should shorten the best-effort p99 tail \
         (armed {:?} vs disarmed {:?})",
        armed.best_effort.p99,
        disarmed.best_effort.p99
    );
    assert_eq!(
        armed.guaranteed.attain_p99, 1.0,
        "the guaranteed tier must stay whole while the manager reacts"
    );

    // Migration acceptance: at ratio 1 with quick epochs the flash-crowd
    // tenant escalates with headroom everywhere, so the ladder runs to its
    // end — re-shard, repeat escalation, drain, retire, migrate — and the
    // SLOs hold right through the churn.
    let quick = FleetConfig::default_scale().scaled(0.25);
    let moved = run_consolidation(&quick, 1, true);
    assert!(
        moved.migrations >= 1,
        "the flash tenant should migrate, got {} migrations after {} reshards",
        moved.migrations,
        moved.reshards
    );
    assert_eq!(
        moved.best_effort.attain_p95, 1.0,
        "an uncontended fleet must hold the best-effort SLO through a migration"
    );
    assert_eq!(
        moved.guaranteed.attain_p95, 1.0,
        "an uncontended fleet must hold the guaranteed SLO through a migration"
    );

    assert_eq!(
        audit::violations_total(),
        0,
        "every conservation ledger must balance across re-shard and migration"
    );
    audit::disable();
}
