//! Determinism suite for the fault-injection layer.
//!
//! Two contracts from the fault module's design:
//!
//! 1. **Empty plan ⇒ no effect.** Installing a plan with no events must
//!    leave every simulation byte-identical to a run with no plan at
//!    all — the guard mask stays zero and no hot path ever consults the
//!    schedule. Checked against the Figure 11 scenario, which exercises
//!    the DRAM controller the DRAM fault hooks live in.
//! 2. **Same plan + seed ⇒ same figure.** The `fig_fault` JSON must be
//!    byte-identical across `PARD_THREADS` settings and across repeated
//!    runs: every injection decision derives from the plan, the seed,
//!    and simulated time — never from wall-clock or scheduling order.
//!
//! The fault plan and `PARD_THREADS` are process-global, so everything
//! lives in one test function (same discipline as the audit suite);
//! splitting it up would let parallel test threads race on the
//! installed plan.

use pard_bench::fig11_scenario;
use pard_bench::fig_fault_scenario::{default_plan, run_pair, summary_json, Timeline, PLAN_SEED};
use pard_bench::json::JsonValue;
use pard_sim::fault::{self, FaultPlan};

#[test]
fn fault_plans_are_deterministic_and_empty_plans_are_free() {
    // --- Contract 1: empty plan is byte-identical to no plan. ---
    let fig11 = || {
        let (base, pard) = fig11_scenario::run_pair(0.55, 2_000);
        fig11_scenario::summary_json(0.55, &base, &pard).to_string_pretty()
    };
    assert!(!fault::installed(), "no plan expected at test start");
    let unfaulted = fig11();
    fault::install(FaultPlan::new(PLAN_SEED));
    let empty_plan = fig11();
    assert_eq!(
        unfaulted, empty_plan,
        "an empty fault plan must not perturb fig11 output"
    );

    // --- Contract 2: fig_fault is thread-count- and replay-stable. ---
    let tl = Timeline::at_scale(0.25);
    let fig_fault = || {
        fault::install(default_plan(tl));
        let (base, rec) = run_pair(tl);
        summary_json(tl, &base, &rec).to_string_pretty()
    };

    std::env::set_var("PARD_THREADS", "1");
    let serial = fig_fault();
    std::env::set_var("PARD_THREADS", "4");
    let parallel = fig_fault();
    std::env::remove_var("PARD_THREADS");
    let replay = fig_fault();

    assert_eq!(
        serial, parallel,
        "fig_fault JSON must not depend on PARD_THREADS"
    );
    assert_eq!(serial, replay, "same plan + seed must replay exactly");

    // The figure's headline claim holds even at the scaled-down test
    // timeline: with the recovery trigger armed, the high-priority
    // LDom's p95 returns to within 10% of its pre-fault value.
    let root = JsonValue::parse(&serial).expect("fig_fault JSON parses");
    let acceptance = root.get("acceptance").expect("acceptance block");
    match acceptance.get("recovered_within_10pct") {
        Some(JsonValue::Bool(true)) => {}
        other => panic!("recovery acceptance not met: {other:?}"),
    }

    fault::disable();
    assert!(!fault::installed());
}
