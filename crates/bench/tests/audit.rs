//! Invariant-auditor integration tests.
//!
//! Three properties the audit subsystem must uphold, exercised in one
//! test function because the auditor is process-global:
//!
//! 1. **Observer purity** — an audited fig11 run renders byte-identical
//!    figure JSON to an unaudited run, with zero violations reported.
//! 2. **DS-id preservation** — a full-machine run with cache and disk
//!    LDoms completes with zero `ds_preservation` (and every other)
//!    violations while every instrumented domain saw traffic.
//! 3. **Fault detection** — a deliberately misrouted packet (a memory
//!    request posted at the NIC) is caught and reported as a conservation
//!    violation instead of being silently dropped.

use pard::{DsId, LDomSpec, PardServer, SystemConfig, Time};
use pard_bench::fig11_scenario::{run_pair, summary_json};
use pard_icn::{LAddr, MemKind, MemPacket, PacketId, PardEvent};
use pard_sim::audit::{self, AuditConfig, AuditKind};
use pard_workloads::{CacheFlush, DiskCopy, DiskCopyConfig};

#[test]
fn audit_is_pure_preserves_ds_tags_and_catches_seeded_faults() {
    // ---- Part 1: purity against the fig11 scenario -------------------
    let render = || {
        let (base, pard) = run_pair(0.55, 1_000);
        summary_json(0.55, &base, &pard).to_string_pretty()
    };
    let unaudited = render();

    let dir = std::env::temp_dir().join(format!("pard-audit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir tempdir");
    let report = dir.join("audit.jsonl");
    audit::install(AuditConfig {
        path: Some(report.clone()),
        ..AuditConfig::report()
    })
    .expect("install auditor");

    let audited = render();
    assert_eq!(
        unaudited, audited,
        "auditing must be a pure observer: figure JSON changed"
    );
    assert_eq!(
        audit::violations_total(),
        0,
        "fig11 must audit clean: {:?}",
        audit::first_violation()
    );

    // ---- Part 2: end-to-end DS-id tag preservation -------------------
    // A cache-heavy LDom and a disk LDom drive every instrumented packet
    // domain: xbar (core -> LLC), mem (LLC -> DRAM), disk (core -> IDE),
    // dma (IDE -> bridge -> DRAM), and IDE completion interrupts.
    {
        let mut server = PardServer::new(SystemConfig::small_test());
        for (i, name) in ["mem-ldom", "disk-ldom"].iter().enumerate() {
            server
                .create_ldom(LDomSpec::new(*name, vec![i], 16 << 20))
                .expect("create ldom");
        }
        server.install_engine(0, Box::new(CacheFlush::new(0x10_0000, 1 << 20)));
        server.install_engine(
            1,
            Box::new(DiskCopy::new(DiskCopyConfig {
                disk: 0,
                block_bytes: 256 * 1024,
                count: 4,
                ..DiskCopyConfig::default()
            })),
        );
        server.launch(DsId::new(0)).expect("launch mem-ldom");
        server.launch(DsId::new(1)).expect("launch disk-ldom");
        server.run_for(Time::from_ms(40));

        assert!(
            audit::deliveries_observed() > 0,
            "the audit hook must observe kernel deliveries"
        );
        let disk = server.disk_progress(DsId::new(1));
        assert_eq!(disk.bytes_done, 4 * 256 * 1024, "DiskCopy must finish");
        let (hits, misses) = server.llc_counts(DsId::new(0));
        assert!(hits + misses > 0, "CacheFlush must reach the LLC");
        for kind in AuditKind::ALL {
            assert_eq!(
                audit::violations_by_kind(kind),
                0,
                "zero {} violations expected: {:?}",
                kind.name(),
                audit::first_violation()
            );
        }
    }

    // ---- Part 3: a seeded fault is caught as a violation -------------
    // Misroute a plain (non-DMA) memory request to the NIC: release
    // builds used to swallow it in a `debug_assert!(false)` arm.
    {
        let mut server = PardServer::new(SystemConfig::small_test());
        let nic = server.nic_id();
        let before = audit::violations_by_kind(AuditKind::Conservation);
        server.post(
            nic,
            Time::ZERO,
            PardEvent::MemReq(MemPacket {
                id: PacketId(777),
                ds: DsId::new(3),
                addr: LAddr::new(0x40),
                kind: MemKind::Read,
                size: 64,
                reply_to: nic,
                issued_at: Time::ZERO,
                dma: false,
            }),
        );
        server.run_for(Time::from_us(10));
        assert_eq!(
            audit::violations_by_kind(AuditKind::Conservation),
            before + 1,
            "the misrouted packet must surface as a conservation violation"
        );
        assert!(audit::unexpected_events() >= 1);
        let first = audit::first_violation().expect("a recorded violation");
        assert!(
            first.contains("\"check\":\"unexpected_event\"") && first.contains("\"nic\""),
            "unexpected violation record: {first}"
        );
    }

    audit::disable();
    let content = std::fs::read_to_string(&report).expect("read audit report");
    assert!(
        content.contains("unexpected_event"),
        "the sink must hold the seeded violation: {content:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
