//! Policy-layer equivalence suite: the built-in policy programs ARE the
//! previously hardcoded behaviors.
//!
//! Every figure scenario is rendered twice — once running on the
//! built-in default programs, and once with those same program texts
//! explicitly installed through [`ControlPlane::install_policy`] (the
//! operator path: fresh epoch, generation bump, `policy_installed()`
//! true). The bytes must not move: an installed program whose text
//! matches the built-in is indistinguishable from the hardcoded default.
//!
//! The matrix also crosses `PARD_THREADS` 1 vs 4 under strict auditing,
//! in one test because `PARD_THREADS` is process-global state.

use pard::PardServer;
use pard_bench::fig_fault_scenario::{self, Timeline};
use pard_bench::{fig09_scenario, fig10_scenario, fig11_scenario};
use pard_cp::ControlPlane;
use pard_sim::{audit, Time};

/// Reinstalls each plane's active built-in program as an explicitly
/// installed policy, byte-for-byte.
fn reinstall_builtin(cp: &mut ControlPlane) {
    let src = cp.policy_source().to_string();
    if src.is_empty() {
        // This plane's data path is not policy-driven (e.g. the LLC,
        // whose waymasks stay plain parameters).
        return;
    }
    cp.install_policy(&src)
        .expect("built-in program text recompiles against its own plane");
    assert!(cp.policy_installed(), "install must shadow the default");
}

fn reinstall_all_builtins(server: &mut PardServer) {
    for cp in [
        server.llc_cp(),
        server.mem_cp(),
        server.bridge_cp(),
        server.ide_cp(),
        server.nic_cp(),
    ] {
        reinstall_builtin(&mut cp.lock());
    }
}

/// Renders shortened fig09/fig10/fig11/fig_fault timelines to one string.
fn render(explicit: bool) -> String {
    let setup = move |server: &mut PardServer| {
        if explicit {
            reinstall_all_builtins(server);
        }
    };
    let cp_setup = move |cp: &mut ControlPlane| {
        if explicit {
            reinstall_builtin(cp);
        }
    };

    let f9 = fig09_scenario::run_span_with(Time::from_ms(80), setup);
    let f10 = fig10_scenario::run_span_with(2, Time::from_ms(200), Time::from_ms(100), setup);
    let b11 = fig11_scenario::run_with(0.55, false, 4_000, cp_setup);
    let p11 = fig11_scenario::run_with(0.55, true, 4_000, cp_setup);
    let tl = Timeline::at_scale(0.25);
    let bf = fig_fault_scenario::run_with(false, tl, setup);
    let rf = fig_fault_scenario::run_with(true, tl, setup);
    format!(
        "{:?}\n{:?}\n{}\n{}",
        (f9.total, f9.stream_start, f9.fired_at, f9.series),
        (f10.total, f10.echo_at, f10.shares),
        fig11_scenario::summary_json(0.55, &b11, &p11).to_string_pretty(),
        fig_fault_scenario::summary_json(tl, &bf, &rf).to_string_pretty(),
    )
}

#[test]
fn installed_builtin_text_is_byte_identical_to_the_default_path() {
    audit::install(audit::AuditConfig::strict()).unwrap();

    let mut renders = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("PARD_THREADS", threads);
        let builtin = render(false);
        let explicit = render(true);
        assert_eq!(
            builtin, explicit,
            "installing the built-in program text must not move figure \
             bytes (PARD_THREADS={threads})"
        );
        renders.push(builtin);
    }
    std::env::remove_var("PARD_THREADS");

    assert_eq!(audit::violations_total(), 0, "strict audit stayed clean");
    audit::disable();

    assert_eq!(
        renders[0], renders[1],
        "figure bytes must not depend on PARD_THREADS"
    );
}
