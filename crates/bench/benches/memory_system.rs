//! Microbenchmarks of the memory-system models: bank scheduling, address
//! decomposition, and end-to-end controller throughput with and without
//! the control plane's differentiated mechanisms.

use pard_bench::harness::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use pard_dram::{Bank, DramGeometry, DramTiming, MemCtrl, MemCtrlConfig, RankTracker};
use pard_icn::{DsId, LAddr, MAddr, MemKind, MemPacket, PacketId, PardEvent};
use pard_sim::{Component, Ctx, Simulation, Time};

fn bench_bank_schedule(c: &mut Criterion) {
    let timing = DramTiming::ddr3_1600_11();
    let mut group = c.benchmark_group("bank_schedule");
    group.bench_function("row_hit", |b| {
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        bank.schedule(7, Time::ZERO, false, false, &timing, &mut rank);
        let mut t = Time::from_us(1);
        b.iter(|| {
            t += Time::from_ns(100);
            bank.schedule(black_box(7), t, false, false, &timing, &mut rank)
        })
    });
    group.bench_function("row_conflict", |b| {
        let mut bank = Bank::default();
        let mut rank = RankTracker::default();
        let mut t = Time::from_us(1);
        let mut row = 0u64;
        b.iter(|| {
            t += Time::from_ns(100);
            row += 1;
            bank.schedule(black_box(row), t, false, false, &timing, &mut rank)
        })
    });
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let g = DramGeometry::table2();
    c.bench_function("dram/decompose", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x1_0040);
            g.decompose(black_box(MAddr::new(a)))
        })
    });
}

/// Simulated-requests-per-wall-second through the full controller
/// component, baseline vs PARD arbitration (the control plane must not
/// make the *model* slower either).
fn bench_controller_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("memctrl_throughput");
    group.sample_size(10);
    for (name, priorities) in [("baseline", false), ("pard", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim: Simulation<PardEvent> = Simulation::new();
                let (ctrl_model, cp) = MemCtrl::new(MemCtrlConfig {
                    priorities_enabled: priorities,
                    ..MemCtrlConfig::default()
                });
                if priorities {
                    let mut cp = cp.lock();
                    cp.set_param(DsId::new(1), "priority", 1).unwrap();
                }
                let ctrl = sim.add_component(Box::new(ctrl_model));
                for i in 0..10_000u64 {
                    sim.post(
                        ctrl,
                        Time::from_ns(i * 10),
                        PardEvent::MemReq(MemPacket {
                            id: PacketId(i),
                            ds: DsId::new((i % 2 + 1) as u16),
                            addr: LAddr::new((i * 4096) % (1 << 28)),
                            kind: MemKind::Read,
                            size: 64,
                            reply_to: ctrl, // responses handled as no-ops
                            issued_at: Time::ZERO,
                            dma: false,
                        }),
                    );
                }
                sim.run_until(Time::from_ms(1));
                black_box(sim.events_processed())
            })
        });
    }
    group.finish();
}

/// Raw kernel hop cost: self-ticking components exercising one
/// `EventQueue` push + pop per delivered event through `Ctx::send` — the
/// inner loop every model shares. `dense` keeps every tick inside the
/// event queue's active bucket (cache/DRAM-hop delays); `mixed` spreads
/// ticks across the near ring and the overflow tier (timers, windows).
fn bench_kernel_event_churn(c: &mut Criterion) {
    struct Ticker {
        delays: [u64; 4],
        left: u64,
    }
    impl Component<u32> for Ticker {
        fn name(&self) -> &str {
            "ticker"
        }
        fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
            if self.left == 0 {
                return;
            }
            self.left -= 1;
            let d = self.delays[(ev & 3) as usize];
            ctx.send(ctx.self_id(), Time::from_units(d), ev.wrapping_add(1));
        }
        pard_sim::impl_as_any!();
    }

    const TICKS: u64 = 100_000;
    let mut group = c.benchmark_group("kernel_event_churn");
    group.sample_size(10);
    for (name, delays) in [
        ("dense", [2u64, 3, 5, 9]),
        ("mixed", [2u64, 40, 700, 90_000]),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut sim: Simulation<u32> = Simulation::new();
                    // Four independent tick chains keep a small pending
                    // set alive, like the real models do.
                    for i in 0..4u32 {
                        let id = sim.add_component(Box::new(Ticker {
                            delays,
                            left: TICKS / 4,
                        }));
                        sim.post(id, Time::from_units(i as u64), i);
                    }
                    sim
                },
                |mut sim| {
                    sim.run();
                    black_box(sim.events_processed())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bank_schedule,
    bench_decompose,
    bench_controller_throughput,
    bench_kernel_event_churn
);
criterion_main!(benches);
