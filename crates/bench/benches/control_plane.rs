//! Microbenchmarks of the control-plane structures: table access, the CPA
//! programming sequence, trigger evaluation, and the data-path cost of
//! having a control plane at all (the software analogue of §7.2's
//! "no extra latency" claim).

use pard_bench::harness::{black_box, criterion_group, criterion_main, Criterion};
use pard_cache::{llc_control_plane, CacheGeometry, PlruTree, TagArray};
use pard_cp::{
    shared, CmpOp, CpAddr, CpCommand, CpaRegisterFile, TableSel, Trigger, REG_ADDR, REG_CMD,
    REG_DATA,
};
use pard_icn::{DsId, LAddr};

fn bench_tables(c: &mut Criterion) {
    let cp = llc_control_plane(256, 64);
    c.bench_function("cp/param_read", |b| {
        b.iter(|| cp.param(black_box(DsId::new(7)), "waymask").unwrap())
    });

    let cp = llc_control_plane(256, 64);
    let stats = cp.stats_handle();
    let key = stats.key("miss_rate").unwrap();
    c.bench_function("cp/stat_write", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            stats.set(black_box(DsId::new(7)), key, v).unwrap()
        })
    });
    c.bench_function("cells/record", |b| {
        b.iter(|| stats.add(black_box(DsId::new(7)), key, 1).unwrap())
    });
}

fn bench_cpa_sequence(c: &mut Criterion) {
    let plane = shared(llc_control_plane(256, 64));
    let mut cpa = CpaRegisterFile::new(plane);
    let addr = CpAddr::new(DsId::new(3), 0, TableSel::Parameter).encode();
    c.bench_function("cpa/write_sequence", |b| {
        b.iter(|| {
            cpa.write(REG_ADDR, addr.into()).unwrap();
            cpa.write(REG_DATA, black_box(0xFF00)).unwrap();
            cpa.write(REG_CMD, CpCommand::Write.encode().into())
                .unwrap();
        })
    });
    c.bench_function("cpa/read_sequence", |b| {
        b.iter(|| {
            cpa.write(REG_ADDR, addr.into()).unwrap();
            cpa.write(REG_CMD, CpCommand::Read.encode().into()).unwrap();
            cpa.read(REG_DATA).unwrap()
        })
    });
}

fn bench_trigger_evaluation(c: &mut Criterion) {
    // A fully populated 64-slot trigger table, evaluated per window —
    // the comparator array of Figure 12.
    let mut cp = llc_control_plane(256, 64);
    for slot in 0..64 {
        cp.install_trigger(
            slot,
            Trigger::new(DsId::new((slot % 8) as u16), 0, CmpOp::Gt, 1_000_000),
        )
        .unwrap();
    }
    let key = cp.stats().key("miss_rate").unwrap();
    cp.stats().set(DsId::new(3), key, 10).unwrap();
    c.bench_function("cp/evaluate_64_triggers", |b| {
        b.iter(|| cp.evaluate_triggers(black_box(DsId::new(3)), pard_sim::Time::ZERO))
    });
}

fn bench_llc_data_path(c: &mut Criterion) {
    // The §7.2 question in software: does way masking / owner matching
    // make the hit path measurably slower than a plain lookup?
    let geom = CacheGeometry::new(4 << 20, 16, 64);
    let mut group = c.benchmark_group("llc_hit_path");

    let mut plain = TagArray::new(geom, 256);
    plain.fill(DsId::new(0), LAddr::new(0x40), u64::MAX, false);
    group.bench_function("unmasked", |b| {
        b.iter(|| plain.access(black_box(DsId::new(0)), black_box(LAddr::new(0x40)), false))
    });

    let mut masked = TagArray::new(geom, 256);
    masked.fill(DsId::new(5), LAddr::new(0x40), 0x00FF, false);
    group.bench_function("way_masked_owner_checked", |b| {
        b.iter(|| masked.access(black_box(DsId::new(5)), black_box(LAddr::new(0x40)), false))
    });
    group.finish();
}

fn bench_plru(c: &mut Criterion) {
    let mut group = c.benchmark_group("plru_victim");
    let mut p = PlruTree::new(16);
    for w in 0..16 {
        p.touch(w);
    }
    group.bench_function("full_mask", |b| b.iter(|| p.victim(black_box(0xFFFF))));
    group.bench_function("partition_mask", |b| b.iter(|| p.victim(black_box(0x00FF))));
    group.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_cpa_sequence,
    bench_trigger_evaluation,
    bench_llc_data_path,
    bench_plru
);
criterion_main!(benches);
