//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! simulated outcomes (not wall time) measured under the timing harness
//! via throughput of the end-to-end machine, plus model-cost comparisons
//! of the PARD data-path features.

use pard_bench::harness::{black_box, criterion_group, criterion_main, Criterion};
use pard::{LDomSpec, PardServer, SystemConfig, Time};
use pard_dram::{Bank, DramTiming, RankTracker};
use pard_workloads::{CacheFlush, Stream, StreamConfig};

/// End-to-end simulation throughput (events/wall-second): PARD machinery
/// on vs off. The differentiated data path must not slow the simulator —
/// the software analogue of "3.1% FPGA overhead".
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_sim");
    group.sample_size(10);
    for (name, pard_on) in [("pard_enabled", true), ("baseline", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = if pard_on {
                    SystemConfig::small_test()
                } else {
                    SystemConfig::small_test().without_pard()
                };
                let mut server = PardServer::new(cfg);
                for i in 0..2usize {
                    let ds = server
                        .create_ldom(LDomSpec::new(format!("l{i}"), vec![i], 32 << 20))
                        .unwrap();
                    server.install_engine(
                        i,
                        Box::new(Stream::new(StreamConfig {
                            array_bytes: 512 << 10,
                            base: 0,
                            compute_per_block: 16,
                        })),
                    );
                    server.launch(ds).unwrap();
                }
                server.run_for(Time::from_ms(1));
                black_box(server.events_processed())
            })
        });
    }
    group.finish();
}

/// The extra high-priority row buffer (§4.2): simulated row-hit outcome
/// under an antagonist, measured as scheduling work per access.
fn bench_hp_row_buffer(c: &mut Criterion) {
    let timing = DramTiming::ddr3_1600_11();
    let mut group = c.benchmark_group("hp_row_buffer");
    for (name, use_hp) in [("with_hp_buffer", true), ("without", false)] {
        group.bench_function(name, |b| {
            let mut bank = Bank::default();
            let mut rank = RankTracker::default();
            let mut t = Time::from_us(1);
            let mut antagonist_row = 1000u64;
            b.iter(|| {
                // High-priority stream returns to row 5; a low-priority
                // antagonist interleaves ever-new rows.
                t += Time::from_ns(50);
                antagonist_row += 1;
                bank.schedule(antagonist_row, t, false, false, &timing, &mut rank);
                t += Time::from_ns(50);
                black_box(
                    bank.schedule(5, t, true, use_hp, &timing, &mut rank)
                        .row_hit,
                )
            })
        });
    }
    group.finish();
}

/// Waymask repartitioning at runtime: full reprogram-through-firmware
/// round trip, the reaction path of the trigger ⇒ action mechanism.
fn bench_repartition_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("repartition");
    group.sample_size(10);
    group.bench_function("echo_waymask_via_shell", |b| {
        let mut server = PardServer::new(SystemConfig::small_test());
        let ds = server
            .create_ldom(LDomSpec::new("x", vec![0], 32 << 20))
            .unwrap();
        server.install_engine(0, Box::new(CacheFlush::new(0, 512 << 10)));
        server.launch(ds).unwrap();
        server.run_for(Time::from_ms(1));
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let mask = if flip { "0x00FF" } else { "0xFF00" };
            server
                .shell(&format!(
                    "echo {mask} > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask"
                ))
                .unwrap();
            server.run_for(Time::from_us(100));
            black_box(server.llc_occupancy_bytes(ds))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_hp_row_buffer,
    bench_repartition_round_trip
);
criterion_main!(benches);
