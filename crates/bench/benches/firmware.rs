//! Microbenchmarks of the PRM firmware: device-file-tree access,
//! pardscript execution, trigger installation, and LDom creation.

use pard_bench::harness::{black_box, criterion_group, criterion_main, Criterion};
use pard_cp::{shared, CmpOp};
use pard_icn::DsId;
use pard_prm::{script, Firmware, FirmwareConfig, LDomSpec};

fn fw_with_ldom() -> Firmware {
    let mut fw = Firmware::new(FirmwareConfig {
        mem_capacity: 1 << 34,
        max_ds: 256,
    });
    fw.register_cpa(shared(pard_cache::llc_control_plane(256, 64)));
    fw.register_cpa(shared(pard_dram::mem_control_plane(256, 64)));
    fw.create_ldom(LDomSpec::new("bench", vec![0], 1 << 30))
        .unwrap();
    fw
}

fn bench_file_tree(c: &mut Criterion) {
    let mut fw = fw_with_ldom();
    c.bench_function("fw/cat_parameter", |b| {
        b.iter(|| {
            fw.read(black_box("/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask"))
                .unwrap()
        })
    });
    c.bench_function("fw/echo_parameter", |b| {
        b.iter(|| {
            fw.write(
                black_box("/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask"),
                "0xFF00",
            )
            .unwrap()
        })
    });
    c.bench_function("fw/shell_cat", |b| {
        b.iter(|| {
            fw.shell(black_box(
                "cat /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask",
            ))
            .unwrap()
        })
    });
}

fn bench_pardscript(c: &mut Criterion) {
    let mut fw = fw_with_ldom();
    let src = r#"
cur=$(cat /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask)
miss=$(cat /sys/cpa/cpa0/ldoms/ldom0/statistics/miss_rate)
if [ $miss -gt 30 ]; then
    new=$((cur | 0xFF00))
    echo $new > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask
else
    log "nothing to do"
fi
"#;
    c.bench_function("fw/pardscript_handler", |b| {
        b.iter(|| {
            let mut env = script::Env::new();
            env.set("DS", "0");
            script::run(black_box(src), &mut env, &mut fw).unwrap()
        })
    });
}

fn bench_trigger_install(c: &mut Criterion) {
    c.bench_function("fw/pardtrigger", |b| {
        b.iter_batched(
            fw_with_ldom,
            |mut fw| {
                fw.pardtrigger(0, DsId::new(0), 0, "miss_rate", CmpOp::Gt, 30)
                    .unwrap()
            },
            pard_bench::harness::BatchSize::SmallInput,
        )
    });
}

fn bench_ldom_create(c: &mut Criterion) {
    c.bench_function("fw/create_ldom", |b| {
        b.iter_batched(
            || {
                let mut fw = Firmware::new(FirmwareConfig {
                    mem_capacity: 1 << 34,
                    max_ds: 256,
                });
                fw.register_cpa(shared(pard_cache::llc_control_plane(256, 64)));
                fw.register_cpa(shared(pard_dram::mem_control_plane(256, 64)));
                fw
            },
            |mut fw| {
                fw.create_ldom(LDomSpec::new("x", vec![0], 1 << 30))
                    .unwrap()
            },
            pard_bench::harness::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_file_tree,
    bench_pardscript,
    bench_trigger_install,
    bench_ldom_create
);
criterion_main!(benches);
