//! Event-queue microbenchmark and kernel perf recorder.
//!
//! The kernel's hot loop is one `EventQueue::push` + `pop` per simulated
//! hop, so queue throughput bounds every figure binary. This bench
//! compares the ladder queue (`pard_sim::EventQueue`) against the
//! original single-`BinaryHeap` layout on the event-horizon patterns the
//! experiments actually generate, times representative figure workloads
//! end to end, and records everything in `BENCH_kernel.json` so the
//! kernel's perf trajectory is tracked from PR to PR.
//!
//! ```sh
//! cargo bench -p pard-bench --bench event_queue            # full
//! cargo bench -p pard-bench --bench event_queue -- --quick # CI smoke
//! ```

use std::collections::BinaryHeap;
use std::time::Instant;

use pard_bench::fig11_scenario;
use pard_bench::json::JsonValue;
use pard_bench::output::save_json;
use pard_bench::{run_memcached_point, MemcachedMode, MemcachedScenario};
use pard_cache::llc_control_plane;
use pard_dram::{MemCtrl, MemCtrlConfig};
use pard_icn::{DsId, LAddr, MemKind, MemPacket, PacketId, PardEvent};
use pard_sim::rng::{stream_rng, Rng};
use pard_sim::trace::{self, TraceCat, TraceConfig, TraceVal};
use pard_sim::{
    ComponentId, EventQueue, PartitionedSimulation, ScheduledEvent, Simulation, Time,
};

/// The pre-ladder queue: one binary heap over the whole pending set,
/// using `ScheduledEvent`'s reversed `Ord`. Kept here as the measured
/// baseline.
struct BaselineQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> BaselineQueue<E> {
    fn new() -> Self {
        BaselineQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
    fn push(&mut self, time: Time, dst: ComponentId, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            dst,
            event,
        });
    }
    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }
}

/// One hold-k churn pattern: keep `k` events pending; each step pops the
/// earliest and schedules a replacement `delay()` after it. This is the
/// steady state of every component model. Each measurement is
/// best-of-`ROUNDS` — the minimum round time is the least-perturbed run
/// on a shared machine.
const ROUNDS: usize = 3;

macro_rules! churn {
    ($make_queue:expr, $k:expr, $steps:expr, $delay:expr) => {{
        let dst = ComponentId::from_raw(0);
        let mut best_secs = f64::INFINITY;
        for _ in 0..ROUNDS {
            let mut q = $make_queue();
            let mut now = 0u64;
            for i in 0..$k {
                q.push(Time::from_units($delay(i as u64)), dst, ());
            }
            let start = Instant::now();
            for i in 0..$steps {
                let ev = q.pop().unwrap();
                now = ev.time.units();
                q.push(Time::from_units(now + $delay(i)), dst, ());
            }
            let secs = start.elapsed().as_secs_f64();
            // Keep the queue alive through the timed region.
            assert_eq!(q.pop().unwrap().time.units() >= now, true);
            best_secs = best_secs.min(secs);
        }
        ($steps as f64 * 2.0) / best_secs // pushes + pops per second
    }};
}

struct PatternResult {
    name: &'static str,
    ladder_ops_per_sec: f64,
    baseline_ops_per_sec: f64,
}

fn run_patterns(steps: u64) -> Vec<PatternResult> {
    let mut results = Vec::new();
    let mut rng = stream_rng(20, "bench.event_queue");

    // Dense short-delay traffic (cache/DRAM hops, a few ns apart) at
    // several backlog sizes, plus a mixed pattern with far timers
    // (statistics windows, poll intervals) layered on top.
    for &k in &[16usize, 256, 4096] {
        let name: &'static str = match k {
            16 => "short_delay_hold16",
            256 => "short_delay_hold256",
            _ => "short_delay_hold4096",
        };
        let deltas: Vec<u64> = (0..8192).map(|_| rng.gen_range(1..256u64)).collect();
        let short = |i: u64| deltas[(i % 8192) as usize];
        let ladder = churn!(EventQueue::new, k, steps, short);
        let baseline = churn!(BaselineQueue::new, k, steps, short);
        results.push(PatternResult {
            name,
            ladder_ops_per_sec: ladder,
            baseline_ops_per_sec: baseline,
        });
    }

    let deltas: Vec<u64> = (0..8192)
        .map(|i| {
            if i % 10 == 0 {
                rng.gen_range(200_000..2_000_000u64) // ~50 µs..500 µs timers
            } else {
                rng.gen_range(1..256u64)
            }
        })
        .collect();
    let mixed = |i: u64| deltas[(i % 8192) as usize];
    let ladder = churn!(EventQueue::new, 256usize, steps, mixed);
    let baseline = churn!(BaselineQueue::new, 256usize, steps, mixed);
    results.push(PatternResult {
        name: "mixed_horizon_hold256",
        ladder_ops_per_sec: ladder,
        baseline_ops_per_sec: baseline,
    });

    results
}

/// Kernel events per wall-second through the full memory-controller
/// model (same scenario as `memory_system.rs`'s throughput bench):
/// `requests` reads posted 10 ns apart, run to completion.
fn kernel_events_per_sec(requests: u64) -> f64 {
    let mut best_secs = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..ROUNDS {
        let mut sim: Simulation<PardEvent> = Simulation::new();
        let (ctrl_model, _cp) = MemCtrl::new(MemCtrlConfig::default());
        let ctrl = sim.add_component(Box::new(ctrl_model));
        for i in 0..requests {
            sim.post(
                ctrl,
                Time::from_ns(i * 10),
                PardEvent::MemReq(MemPacket {
                    id: PacketId(i),
                    ds: DsId::new((i % 2 + 1) as u16),
                    addr: LAddr::new((i * 4096) % (1 << 28)),
                    kind: MemKind::Read,
                    size: 64,
                    reply_to: ctrl, // responses handled as no-ops
                    issued_at: Time::ZERO,
                    dma: false,
                }),
            );
        }
        let start = Instant::now();
        sim.run_until(Time::from_ms(10));
        let secs = start.elapsed().as_secs_f64();
        events = sim.events_processed();
        best_secs = best_secs.min(secs);
    }
    events as f64 / best_secs
}

/// One measured variant of the partitioned-kernel bench.
struct PartitionedResult {
    name: &'static str,
    events_per_sec: f64,
}

/// Throughput of the conservative-PDES kernel against the sequential
/// kernel on one timeline: four memory controllers, each fed
/// `requests_per_ctrl` upfront-posted reads at its own cadence
/// (10/40/160/640 ns — channels with divergent inter-arrival scales, so
/// each domain's ladder queue adapts its bucket width to its own stream
/// instead of one shift fitting all four). The same workload is run to
/// completion sequentially and partitioned into 1, 2, and 4 domains.
///
/// All traffic is channel-local (`reply_to` is the controller itself),
/// so the 100 µs lookahead only bounds the epoch width. On a single-core
/// host the driver clamps to the inline epoch loop and the measured gain
/// is the queue-sharding/cache-locality component alone; with real cores
/// the domains run on threads.
fn partitioned_kernel_events_per_sec(requests_per_ctrl: u64) -> Vec<PartitionedResult> {
    const CTRLS: u32 = 4;
    let build = || {
        let mut sim: Simulation<PardEvent> = Simulation::new();
        for d in 0..CTRLS {
            let (ctrl_model, _cp) = MemCtrl::new(MemCtrlConfig::default());
            let ctrl = sim.add_component(Box::new(ctrl_model));
            let step = 10u64 << (2 * d);
            for i in 0..requests_per_ctrl {
                sim.post(
                    ctrl,
                    Time::from_ns(i * step),
                    PardEvent::MemReq(MemPacket {
                        id: PacketId(i),
                        ds: DsId::new((d % 2 + 1) as u16),
                        addr: LAddr::new((i * 4096) % (1 << 28)),
                        kind: MemKind::Read,
                        size: 64,
                        reply_to: ctrl,
                        issued_at: Time::ZERO,
                        dma: false,
                    }),
                );
            }
        }
        sim
    };
    // Far enough past the sparsest cadence's last request that every
    // variant drains the identical event population.
    let horizon = Time::from_ms(40);

    let mut results = Vec::new();
    let mut baseline_events = None;
    for (name, domains) in [
        ("sequential", 0u32),
        ("partitioned_1dom", 1),
        ("partitioned_2dom", 2),
        ("partitioned_4dom", 4),
    ] {
        let mut best_secs = f64::INFINITY;
        let mut events = 0u64;
        for _ in 0..ROUNDS {
            let mut sim = build();
            let secs = if domains == 0 {
                let start = Instant::now();
                sim.run_until(horizon);
                events = sim.events_processed();
                start.elapsed().as_secs_f64()
            } else {
                let map: Vec<u32> = (0..CTRLS).map(|c| c % domains).collect();
                let mut part =
                    PartitionedSimulation::new(sim, map, None, Time::from_us(100));
                let start = Instant::now();
                part.run_until(horizon);
                events = part.events_processed();
                start.elapsed().as_secs_f64()
            };
            best_secs = best_secs.min(secs);
        }
        // Every partitioning of one timeline must deliver the same
        // events; a mismatch means the kernels diverged.
        match baseline_events {
            None => baseline_events = Some(events),
            Some(base) => assert_eq!(events, base, "{name} delivered a different event count"),
        }
        results.push(PartitionedResult {
            name,
            events_per_sec: events as f64 / best_secs,
        });
    }
    results
}

/// Throughput of the lock-free statistics record path (`StatsHandle::add`
/// straight into the sharded cells), in million records per second —
/// the per-access cost every component model now pays per hit/miss/DMA.
fn stats_record_mops(records: u64) -> f64 {
    let cp = llc_control_plane(256, 64);
    let stats = cp.stats_handle();
    let hit = stats.key("hit_cnt").unwrap();
    let mut best_secs = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for i in 0..records {
            stats.add(DsId::new((i % 32) as u16), hit, 1).unwrap();
        }
        best_secs = best_secs.min(start.elapsed().as_secs_f64());
    }
    assert!(stats.get(DsId::new(0), hit).unwrap() > 0);
    records as f64 / best_secs / 1e6
}

/// Trace-sink write throughput through the full tracer pipeline
/// (category filter, sampling divider, render/encode, buffered file
/// writes, final flush): `events` synthetic DRAM events into the sink at
/// `file`, whose extension picks the format — `.ptr` exercises the paged
/// binary store, anything else the debug JSONL stream. Returns
/// `(events_per_sec, bytes_per_event)`.
fn trace_write_throughput(events: u64, file: &str) -> (f64, f64) {
    let path = std::env::temp_dir().join(format!("pard-eq-{}-{file}", std::process::id()));
    let mut best_secs = f64::INFINITY;
    for _ in 0..ROUNDS {
        trace::install(TraceConfig {
            path: Some(path.clone()),
            filter: vec![(TraceCat::Dram, None)],
            sample: vec![(TraceCat::Dram, 1)],
            ..TraceConfig::default()
        })
        .unwrap();
        let start = Instant::now();
        for i in 0..events {
            trace::emit(
                TraceCat::Dram,
                Time::from_ns(i * 10),
                (i % 32) as u16,
                "rd",
                &[
                    ("addr", TraceVal::U((i * 4096) % (1 << 28))),
                    ("bank", TraceVal::U(i % 8)),
                    ("lat", TraceVal::F(45.0 + (i % 7) as f64)),
                    ("hit", TraceVal::B(i % 3 == 0)),
                ],
            );
        }
        trace::disable(); // the timed region includes the final flush
        best_secs = best_secs.min(start.elapsed().as_secs_f64());
    }
    let bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
    std::fs::remove_file(&path).ok();
    (events as f64 / best_secs, bytes as f64 / events as f64)
}

/// Wall-clock + events/sec of a scaled-down figure workload through the
/// real kernel (fig11's DDR3 injection pair).
fn time_fig11(requests: u64) -> (f64, f64) {
    let start = Instant::now();
    let (base, pard) = fig11_scenario::run_pair(0.55, requests);
    let secs = start.elapsed().as_secs_f64();
    assert!(base.mean_all > 0.0 && pard.mean_high > 0.0);
    (secs * 1e3, requests as f64 * 2.0 / secs)
}

/// Wall-clock of one quick fig08-style memcached co-location point.
fn time_fig08_point() -> f64 {
    let start = Instant::now();
    let mut s = MemcachedScenario::new(MemcachedMode::SharedWithTrigger, 20_000.0);
    s.warmup = Time::from_ms(5);
    s.measure = Time::from_ms(20);
    let p = run_memcached_point(&s);
    assert!(p.completed > 0);
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let steps: u64 = if quick { 200_000 } else { 2_000_000 };

    println!("event queue microbench ({steps} push+pop steps per pattern)\n");
    let patterns = run_patterns(steps);
    let mut json_patterns = JsonValue::object();
    for p in &patterns {
        let ratio = p.ladder_ops_per_sec / p.baseline_ops_per_sec;
        println!(
            "{:<24} ladder {:>7.1} M ops/s   binary-heap {:>7.1} M ops/s   ({ratio:.2}x)",
            p.name,
            p.ladder_ops_per_sec / 1e6,
            p.baseline_ops_per_sec / 1e6,
        );
        json_patterns = json_patterns.field(
            p.name,
            JsonValue::object()
                .field("ladder_mops", p.ladder_ops_per_sec / 1e6)
                .field("binary_heap_mops", p.baseline_ops_per_sec / 1e6)
                .field("speedup", ratio),
        );
    }

    let stat_records: u64 = if quick { 2_000_000 } else { 20_000_000 };
    let stats_mops = stats_record_mops(stat_records);
    println!("\nstats cells ({stat_records} records): {stats_mops:.1} M records/s");

    let trace_events: u64 = if quick { 100_000 } else { 1_000_000 };
    let (jsonl_eps, jsonl_bpe) = trace_write_throughput(trace_events, "trace.jsonl");
    let (ptr_eps, ptr_bpe) = trace_write_throughput(trace_events, "trace.ptr");
    println!("\ntrace sinks ({trace_events} events):");
    println!(
        "  jsonl stream   {:>6.2} M events/s   {jsonl_bpe:>5.1} bytes/event",
        jsonl_eps / 1e6
    );
    println!(
        "  paged binary   {:>6.2} M events/s   {ptr_bpe:>5.1} bytes/event",
        ptr_eps / 1e6
    );

    let memctrl_requests: u64 = if quick { 10_000 } else { 50_000 };
    let kernel_eps = kernel_events_per_sec(memctrl_requests);
    let part_requests: u64 = if quick { 6_000 } else { 25_000 };
    let partitioned = partitioned_kernel_events_per_sec(part_requests);
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let fig11_requests: u64 = if quick { 4_000 } else { 50_000 };
    let (fig11_ms, fig11_eps) = time_fig11(fig11_requests);
    let fig08_ms = time_fig08_point();
    println!();
    println!(
        "kernel through MemCtrl ({memctrl_requests} reqs): {:.2} M events/s",
        kernel_eps / 1e6
    );
    println!(
        "fig11 pair ({fig11_requests} requests): {fig11_ms:.1} ms ({:.2} M req/s)",
        fig11_eps / 1e6
    );
    println!("fig08 quick point: {fig08_ms:.1} ms");

    let seq_eps = partitioned[0].events_per_sec;
    println!(
        "\npartitioned kernel, 4-channel diverse-cadence pattern \
         ({part_requests} reqs/ctrl, host parallelism {host_parallelism}):"
    );
    let mut json_part = JsonValue::object()
        .field("requests_per_ctrl", part_requests)
        .field("host_parallelism", host_parallelism as u64);
    for p in &partitioned {
        let ratio = p.events_per_sec / seq_eps;
        println!(
            "  {:<18} {:>6.2} M events/s   ({ratio:.2}x vs sequential)",
            p.name,
            p.events_per_sec / 1e6
        );
        json_part = json_part.field(
            &format!("{}_events_per_sec", p.name),
            p.events_per_sec,
        );
    }
    let speedup_4dom = partitioned
        .iter()
        .find(|p| p.name == "partitioned_4dom")
        .map_or(0.0, |p| p.events_per_sec / seq_eps);
    json_part = json_part.field("speedup_4dom_vs_sequential", speedup_4dom);
    if host_parallelism == 1 {
        println!(
            "  (single-core host: inline epoch driver, gain is queue \
             sharding/locality only)"
        );
    }

    // Cargo runs benches with the package dir as CWD; anchor the perf
    // record at the workspace root regardless of how we were invoked.
    save_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json"),
        &JsonValue::object()
            .field("steps_per_pattern", steps)
            .field("event_queue", json_patterns)
            .field("stats_record_mops", stats_mops)
            .field(
                "trace_store",
                JsonValue::object()
                    .field("events", trace_events)
                    .field("jsonl_events_per_sec", jsonl_eps)
                    .field("jsonl_bytes_per_event", jsonl_bpe)
                    .field("ptr_events_per_sec", ptr_eps)
                    .field("ptr_bytes_per_event", ptr_bpe),
            )
            .field("kernel_memctrl_events_per_sec", kernel_eps)
            .field("partitioned_kernel", json_part)
            .field(
                "figure_workloads",
                JsonValue::object()
                    .field("fig11_pair_requests", fig11_requests)
                    .field("fig11_pair_wall_ms", fig11_ms)
                    .field("fig11_requests_per_sec", fig11_eps)
                    .field("fig08_quick_point_wall_ms", fig08_ms),
            ),
    );

    if check {
        // CI perf gate: the adaptive ladder must not regress behind the
        // plain binary heap in the dense regimes (the backlog sizes the
        // figure workloads actually sustain), and the stats record path
        // must have produced a sane measurement.
        let mut failed = false;
        for p in &patterns {
            if !matches!(p.name, "short_delay_hold256" | "short_delay_hold4096") {
                continue;
            }
            let ratio = p.ladder_ops_per_sec / p.baseline_ops_per_sec;
            if ratio < 1.0 {
                eprintln!("CHECK FAILED: {} ladder/binary-heap = {ratio:.2}x < 1.0", p.name);
                failed = true;
            }
        }
        if !(stats_mops.is_finite() && stats_mops > 0.0) {
            eprintln!("CHECK FAILED: stats_record_mops = {stats_mops}");
            failed = true;
        }
        // The paged binary store exists to make long-horizon tracing
        // cheap; it must encode strictly denser than the JSONL stream.
        if !(ptr_eps.is_finite() && ptr_eps > 0.0 && jsonl_eps.is_finite() && jsonl_eps > 0.0) {
            eprintln!("CHECK FAILED: trace sink rates jsonl={jsonl_eps} ptr={ptr_eps}");
            failed = true;
        }
        if ptr_bpe >= jsonl_bpe {
            eprintln!(
                "CHECK FAILED: binary store {ptr_bpe:.1} bytes/event >= \
                 JSONL {jsonl_bpe:.1} bytes/event"
            );
            failed = true;
        }
        // Partitioning one timeline into 4 domains must never cost
        // throughput relative to the sequential kernel.
        if speedup_4dom < 1.0 {
            eprintln!(
                "CHECK FAILED: partitioned_4dom/sequential = {speedup_4dom:.2}x < 1.0"
            );
            failed = true;
        }
        // Policy hot-path regression gate: when CI exports
        // `PARD_BENCH_BASELINE` (the previously committed
        // BENCH_kernel.json, snapshotted aside before this run rewrites
        // it), the fresh kernel-through-MemCtrl rate must stay within 5 %
        // of the recorded one — the match-action layer on the memory
        // scheduler's serve path is not allowed to tax the kernel.
        match std::env::var("PARD_BENCH_BASELINE") {
            Ok(path) => {
                let recorded = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|text| JsonValue::parse(&text).ok())
                    .and_then(|v| v.get("kernel_memctrl_events_per_sec")?.as_f64());
                match recorded {
                    Some(baseline) if baseline > 0.0 => {
                        let floor = baseline * 0.95;
                        if kernel_eps < floor {
                            eprintln!(
                                "CHECK FAILED: kernel_memctrl_events_per_sec \
                                 {kernel_eps:.0} < 95% of baseline {baseline:.0}"
                            );
                            failed = true;
                        } else {
                            println!(
                                "baseline gate: kernel {kernel_eps:.0} events/s vs \
                                 recorded {baseline:.0} ({:+.1}%)",
                                (kernel_eps / baseline - 1.0) * 100.0
                            );
                        }
                    }
                    _ => {
                        eprintln!(
                            "CHECK FAILED: PARD_BENCH_BASELINE={path} has no \
                             kernel_memctrl_events_per_sec record"
                        );
                        failed = true;
                    }
                }
            }
            Err(_) => println!(
                "(PARD_BENCH_BASELINE unset: skipping the 5% kernel-rate gate)"
            ),
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: dense-regime speedups >= 1.0, stats bench recorded, \
             4-domain partitioned kernel >= sequential"
        );
    }
}
