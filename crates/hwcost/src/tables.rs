//! Cost models of the three control-plane table structures.

use crate::cost::ResourceCost;

/// Bits stored per trigger-table row (DS-id 16 + column 8 + op 3 + value
/// 12 + enable/latch ≈ 40, matching the synthesis data).
pub const TRIGGER_ROW_BITS: u64 = 40;

fn log2_ceil(x: u64) -> u64 {
    64 - x.next_power_of_two().leading_zeros() as u64 - 1
}

/// Cost of a DS-id-indexed storage table (parameter or statistics) with
/// `entries` rows of `row_bits` each.
///
/// Storage maps to 64-bit distributed-RAM LUTs
/// (`LUTRAM = ⌈entries × row_bits / 64⌉`); the read/write muxing and
/// address decode cost `≈ 0.9 × row_bits + 8 × log2(entries)` logic LUTs.
/// Calibration: at 256 entries × 172 row bits (the memory control plane's
/// combined parameter+statistics width) this yields 688 LUTRAM + 219 LUT
/// against the paper's 688 + 220.
pub fn table_cost(entries: u64, row_bits: u64) -> ResourceCost {
    let lutram = (entries * row_bits).div_ceil(64);
    let lut = (row_bits * 9) / 10 + 8 * log2_ceil(entries.max(2));
    ResourceCost::new(lut, lutram, 0)
}

/// Cost of a trigger table with `slots` comparator-backed rows.
///
/// Each slot needs a value comparator and condition decode
/// (`≈ 9 LUT/slot`), registered state (`≈ 6 FF/slot`), and
/// [`TRIGGER_ROW_BITS`] of storage. Calibration: 64 slots yields
/// 582 LUT + 387 FF + 40 LUTRAM, the paper's exact figures.
pub fn trigger_table_cost(slots: u64) -> ResourceCost {
    let lut = slots * 9 + 6;
    let ff = slots * 6 + 3;
    let lutram = (slots * TRIGGER_ROW_BITS).div_ceil(64);
    ResourceCost::new(lut, lutram, ff)
}

/// Cost of the memory controller's priority queues: `queues` queues of
/// `depth` entries each.
///
/// Calibration: two 16-deep queues cost 324 LUT + 30 FF (paper §7.2).
pub fn priority_queue_cost(queues: u64, depth: u64) -> ResourceCost {
    let lut = queues * depth * 10 + 4;
    let ff = queues * depth.saturating_sub(1);
    ResourceCost::new(lut, 0, ff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_table_matches_paper_calibration() {
        // Memory CP parameter+statistics at 256 entries: 220 LUT, 688 LUTRAM.
        let c = table_cost(256, 172);
        assert_eq!(c.lutram, 688);
        assert!((215..=225).contains(&c.lut), "lut = {}", c.lut);
        assert_eq!(c.ff, 0);
    }

    #[test]
    fn trigger_table_matches_paper_calibration() {
        // 64-entry trigger table: 582 LUT + 387 FF + 40 LUTRAM.
        let c = trigger_table_cost(64);
        assert_eq!(c.lut, 582);
        assert_eq!(c.ff, 387);
        assert_eq!(c.lutram, 40);
    }

    #[test]
    fn priority_queues_match_paper_calibration() {
        // Two 16-deep priority queues: 324 LUT + 30 FF.
        let c = priority_queue_cost(2, 16);
        assert_eq!(c.lut, 324);
        assert_eq!(c.ff, 30);
        assert_eq!(c.lutram, 0);
    }

    #[test]
    fn costs_scale_monotonically() {
        for sizes in [(64, 128), (128, 256)] {
            assert!(table_cost(sizes.0, 172).total() < table_cost(sizes.1, 172).total());
        }
        assert!(trigger_table_cost(16).total() < trigger_table_cost(32).total());
        assert!(trigger_table_cost(32).total() < trigger_table_cost(64).total());
    }

    #[test]
    fn storage_dominates_tables_but_logic_dominates_triggers() {
        // The paper's observation: the trigger table consumes more logic
        // than storage because of its comparators.
        let t = trigger_table_cost(64);
        assert!(t.lut > t.lutram);
        let s = table_cost(256, 172);
        assert!(s.lutram > s.lut);
    }
}
