//! Whole-control-plane cost roll-ups and baselines.

use crate::cost::ResourceCost;
use crate::tables::{priority_queue_cost, table_cost, trigger_table_cost};

/// LUT+FF of the baseline Xilinx MIGv7 memory controller the paper
/// compares against.
pub const MEM_BASELINE_LUT_FF: u64 = 15_178;

/// LUT+FF of the baseline 768 KB 12-way LLC controller (tag array only).
pub const LLC_BASELINE_LUT_FF: u64 = 75_032;

/// Combined parameter+statistics row width of the memory control plane:
/// address map (base 32 + limit 32), priority 2, row-buffer mask 2,
/// avgQLat 16, ServCnt 32, bandwidth 32, spare ≈ 172 bits.
pub const MEM_ROW_BITS: u64 = 172;

/// Combined parameter+statistics row width of the LLC control plane:
/// waymask 16, miss-rate 8, capacity 24, hit/miss counters 2 × 48,
/// window state ≈ 200 bits.
pub const LLC_ROW_BITS: u64 = 200;

/// Full memory-control-plane cost: parameter+statistics tables with
/// `entries` rows, a trigger table with `trigger_slots`, and the two
/// 16-deep priority queues.
///
/// # Example
///
/// ```
/// use pard_hwcost::{mem_cp_cost, MEM_BASELINE_LUT_FF};
/// let c = mem_cp_cost(256, 64);
/// let pct = (c.lut + c.ff) as f64 / MEM_BASELINE_LUT_FF as f64 * 100.0;
/// assert!((9.8..=10.4).contains(&pct), "paper reports ~10.1%, got {pct:.1}");
/// ```
pub fn mem_cp_cost(entries: u64, trigger_slots: u64) -> ResourceCost {
    table_cost(entries, MEM_ROW_BITS)
        + trigger_table_cost(trigger_slots)
        + priority_queue_cost(2, 16)
}

/// Data-path integration logic of the LLC control plane: per-way mask
/// gating into the pseudo-LRU victim logic plus owner-DS-id comparison in
/// the hit path (calibrated: 16 ways ⇒ 1146 LUT, closing the paper's 2359
/// LUT/FF total).
fn llc_integration_logic(ways: u64) -> ResourceCost {
    ResourceCost::new(ways * 71 + 10, 0, 0)
}

/// Full LLC-control-plane cost for a `ways`-associative cache.
///
/// # Example
///
/// ```
/// use pard_hwcost::{llc_cp_cost, LLC_BASELINE_LUT_FF};
/// let c = llc_cp_cost(256, 64, 16);
/// let pct = (c.lut + c.ff) as f64 / LLC_BASELINE_LUT_FF as f64 * 100.0;
/// assert!((2.9..=3.3).contains(&pct), "paper reports ~3.1%, got {pct:.1}");
/// ```
pub fn llc_cp_cost(entries: u64, trigger_slots: u64, ways: u64) -> ResourceCost {
    table_cost(entries, LLC_ROW_BITS)
        + trigger_table_cost(trigger_slots)
        + llc_integration_logic(ways)
}

/// Block RAMs for the LLC tag array `(base, with_owner_ds_id)`.
///
/// Each way's tag slice occupies whole 36 Kb block RAMs
/// (`⌈sets × tag_bits / 36 Kb⌉` per way). The owner DS-ids are stored in
/// separate narrow BRAMs whose 18-bit ports are shared by
/// `⌊18 / ds_bits⌋` ways — which is how the paper's 12 base BRAMs grow by
/// 6 (to 18) for 8-bit DS-ids on the 1024-set, 12-way OpenSPARC T1 L2.
///
/// # Example
///
/// ```
/// let (base, with_ds) = pard_hwcost::tag_array_brams(12, 1024, 28, 8);
/// assert_eq!((base, with_ds), (12, 18)); // the paper's 12 -> 18
/// ```
pub fn tag_array_brams(ways: u64, sets: u64, tag_bits: u64, ds_bits: u64) -> (u64, u64) {
    const BRAM_BITS: u64 = 36 * 1024;
    let base = ways * (sets * tag_bits).div_ceil(BRAM_BITS);
    let ways_per_ds_bram = (18 / ds_bits.max(1)).max(1);
    let extra = ways.div_ceil(ways_per_ds_bram);
    (base, base + extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_cp_hits_the_papers_totals() {
        let c = mem_cp_cost(256, 64);
        let lut_ff = c.lut + c.ff;
        // Paper: 1526 LUT/FF total, 10.1% of MIGv7.
        assert!(
            (1495..=1560).contains(&lut_ff),
            "expected ~1526 LUT/FF, got {lut_ff}"
        );
        let pct = lut_ff as f64 / MEM_BASELINE_LUT_FF as f64 * 100.0;
        assert!((9.8..=10.4).contains(&pct), "{pct:.2}%");
    }

    #[test]
    fn llc_cp_hits_the_papers_totals() {
        let c = llc_cp_cost(256, 64, 16);
        let lut_ff = c.lut + c.ff;
        // Paper: 2359 LUT/FF, 3.1% of the LLC controller.
        assert!(
            (2310..=2410).contains(&lut_ff),
            "expected ~2359 LUT/FF, got {lut_ff}"
        );
        let pct = lut_ff as f64 / LLC_BASELINE_LUT_FF as f64 * 100.0;
        assert!((3.0..=3.25).contains(&pct), "{pct:.2}%");
    }

    #[test]
    fn owner_ds_id_brams_match_the_paper() {
        assert_eq!(tag_array_brams(12, 1024, 28, 8), (12, 18));
        // Wider DS-ids need one BRAM per way.
        let (_, with16) = tag_array_brams(12, 1024, 28, 16);
        assert_eq!(with16, 24);
    }

    #[test]
    fn smaller_tables_cost_less() {
        assert!(mem_cp_cost(64, 16).total() < mem_cp_cost(256, 64).total());
        assert!(llc_cp_cost(64, 16, 16).total() < llc_cp_cost(256, 64, 16).total());
    }
}
