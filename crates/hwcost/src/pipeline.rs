//! The §7.2 latency argument: control-plane work hides in the LLC
//! pipeline.

/// One control-plane operation mapped onto the cache controller pipeline
/// (the numbered steps of the paper's Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStep {
    /// What the control plane does.
    pub name: &'static str,
    /// The pipeline stage the work executes in, if it can be overlapped
    /// with existing stages; `None` means it needs its own cycle.
    pub stage: Option<u8>,
    /// Whether the step sits on the request's critical path at all
    /// (statistics updates and trigger checks do not).
    pub on_critical_path: bool,
}

/// The LLC pipeline with the control-plane steps mapped onto it.
///
/// The OpenSPARC T1's L2 cache has eight pipeline stages; every
/// control-plane operation either overlaps an existing stage (parameter
/// lookup with tag read, mask merge with victim selection, owner-DS-id
/// compare with tag compare) or is off the critical path entirely
/// (statistics, triggers, interrupts) — so the control plane adds **zero**
/// cycles, which is exactly what the paper's FPGA emulation found.
///
/// # Example
///
/// ```
/// let p = pard_hwcost::LlcPipeline::opensparc_t1();
/// assert_eq!(p.stages(), 8);
/// assert_eq!(p.added_cycles(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LlcPipeline {
    stages: u8,
    steps: Vec<PipelineStep>,
}

impl LlcPipeline {
    /// The paper's OpenSPARC T1 L2 configuration: eight stages, all
    /// control-plane work overlapped.
    pub fn opensparc_t1() -> Self {
        LlcPipeline {
            stages: 8,
            steps: vec![
                PipelineStep {
                    name: "parameter-table lookup (waymask by DS-id)",
                    stage: Some(1), // overlaps tag-array read
                    on_critical_path: true,
                },
                PipelineStep {
                    name: "owner-DS-id compare",
                    stage: Some(3), // overlaps tag compare
                    on_critical_path: true,
                },
                PipelineStep {
                    name: "way-mask merge into pseudo-LRU victim select",
                    stage: Some(4),
                    on_critical_path: true,
                },
                PipelineStep {
                    name: "statistics-table update",
                    stage: None,
                    on_critical_path: false,
                },
                PipelineStep {
                    name: "trigger evaluation + PRM interrupt",
                    stage: None,
                    on_critical_path: false,
                },
            ],
        }
    }

    /// A hypothetical *unpipelined* controller where every critical-path
    /// control-plane step needs its own cycle — what the design avoids.
    pub fn unpipelined() -> Self {
        let mut p = Self::opensparc_t1();
        for s in &mut p.steps {
            if s.on_critical_path {
                s.stage = None;
            }
        }
        p
    }

    /// Number of pipeline stages.
    pub fn stages(&self) -> u8 {
        self.stages
    }

    /// The mapped steps.
    pub fn steps(&self) -> &[PipelineStep] {
        &self.steps
    }

    /// Extra cycles the control plane adds to a cache access: the number
    /// of critical-path steps that could not be overlapped with an
    /// existing stage.
    pub fn added_cycles(&self) -> u8 {
        self.steps
            .iter()
            .filter(|s| s.on_critical_path && s.stage.is_none())
            .count() as u8
    }

    /// Validates the stage mapping against the pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if a step is mapped beyond the last stage.
    pub fn validate(&self) {
        for s in &self.steps {
            if let Some(stage) = s.stage {
                assert!(
                    stage >= 1 && stage <= self.stages,
                    "step {:?} mapped to invalid stage {stage}",
                    s.name
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_design_adds_zero_cycles() {
        let p = LlcPipeline::opensparc_t1();
        p.validate();
        assert_eq!(p.added_cycles(), 0);
        assert_eq!(p.stages(), 8);
        assert_eq!(p.steps().len(), 5);
    }

    #[test]
    fn unpipelined_design_would_add_cycles() {
        let p = LlcPipeline::unpipelined();
        assert_eq!(p.added_cycles(), 3, "three critical-path steps exposed");
    }

    #[test]
    fn off_critical_path_steps_never_count() {
        let p = LlcPipeline::opensparc_t1();
        let off: Vec<_> = p.steps().iter().filter(|s| !s.on_critical_path).collect();
        assert_eq!(off.len(), 2, "statistics and triggers are off-path");
    }
}
