//! FPGA resource vectors.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// An FPGA resource count: logic LUTs, LUTRAM (distributed RAM), and
/// flip-flops — the three quantities Figure 12 plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceCost {
    /// Logic look-up tables.
    pub lut: u64,
    /// Distributed-RAM look-up tables.
    pub lutram: u64,
    /// Flip-flops.
    pub ff: u64,
}

impl ResourceCost {
    /// The zero cost.
    pub const ZERO: ResourceCost = ResourceCost {
        lut: 0,
        lutram: 0,
        ff: 0,
    };

    /// Creates a cost vector.
    pub const fn new(lut: u64, lutram: u64, ff: u64) -> Self {
        ResourceCost { lut, lutram, ff }
    }

    /// Total "LUT/FF" count as the paper aggregates it
    /// (logic LUTs + LUTRAM + flip-flops).
    pub fn total(&self) -> u64 {
        self.lut + self.lutram + self.ff
    }

    /// This cost as a percentage of a baseline total.
    pub fn percent_of(&self, baseline_total: u64) -> f64 {
        if baseline_total == 0 {
            0.0
        } else {
            self.total() as f64 / baseline_total as f64 * 100.0
        }
    }
}

impl Add for ResourceCost {
    type Output = ResourceCost;
    fn add(self, rhs: ResourceCost) -> ResourceCost {
        ResourceCost {
            lut: self.lut + rhs.lut,
            lutram: self.lutram + rhs.lutram,
            ff: self.ff + rhs.ff,
        }
    }
}

impl Sum for ResourceCost {
    fn sum<I: Iterator<Item = ResourceCost>>(iter: I) -> ResourceCost {
        iter.fold(ResourceCost::ZERO, Add::add)
    }
}

impl fmt::Display for ResourceCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT + {} LUTRAM + {} FF (total {})",
            self.lut,
            self.lutram,
            self.ff,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_percentages() {
        let c = ResourceCost::new(100, 50, 25);
        assert_eq!(c.total(), 175);
        assert!((c.percent_of(1750) - 10.0).abs() < 1e-12);
        assert_eq!(c.percent_of(0), 0.0);
    }

    #[test]
    fn addition_and_sum() {
        let a = ResourceCost::new(1, 2, 3);
        let b = ResourceCost::new(10, 20, 30);
        assert_eq!(a + b, ResourceCost::new(11, 22, 33));
        let s: ResourceCost = [a, b].into_iter().sum();
        assert_eq!(s.total(), 66);
    }

    #[test]
    fn display_mentions_every_field() {
        let s = ResourceCost::new(1, 2, 3).to_string();
        assert!(s.contains("1 LUT") && s.contains("2 LUTRAM") && s.contains("3 FF"));
    }
}
