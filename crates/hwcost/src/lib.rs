//! # pard-hwcost — FPGA resource and latency model of the control planes
//!
//! The paper's hardware-overhead evaluation (§7.2, Figure 12) synthesised
//! a preliminary RTL implementation (OpenSPARC T1 + control planes) with
//! Xilinx Vivado on a VC709 board. This reproduction has no FPGA, so this
//! crate provides the **substitution**: an analytical resource model of
//! the control-plane structures, calibrated against every data point the
//! paper reports:
//!
//! * memory CP, 256-entry parameter+statistics tables: 220 LUT + 688 LUTRAM,
//! * memory CP, 64-entry trigger table: 582 LUT + 387 FF + 40 LUTRAM,
//! * two 16-deep priority queues: 324 LUT + 30 FF,
//! * memory CP total 1526 LUT/FF ≈ **10.1 %** of the MIGv7 memory
//!   controller (15 178 LUT/FF),
//! * LLC CP total 2359 LUT/FF ≈ **3.1 %** of the 768 KB 12-way LLC
//!   controller (75 032 LUT/FF, tag array only),
//! * owner-DS-id storage: +6 block RAMs (12 → 18) for 8-bit DS-ids,
//! * the LLC control plane adds **zero** pipeline cycles (its work hides
//!   in the 8-stage L2 pipeline of the OpenSPARC T1).
//!
//! The model exposes the scaling laws (storage ∝ entries × row bits,
//! comparator logic ∝ trigger slots), so Figure 12 can be regenerated at
//! the paper's sweep points and extrapolated beyond them.
//!
//! # Paper mapping
//!
//! This is the substitution documented in PAPER.md §1 ("OpenSPARC T1 RTL
//! + Xilinx Vivado synthesis → analytical FPGA-resource model"): no FPGA
//! is available, so Figure 12 and the §7.2 zero-added-cycles claim are
//! reproduced by a calibrated model rather than synthesis. Every
//! calibration anchor above is pinned by this crate's doctests, which is
//! the CI gate for the fig12 row of the EXPERIMENTS.md cross-reference
//! table.

#![warn(missing_docs)]

mod cost;
mod pipeline;
mod planes;
mod tables;

pub use cost::ResourceCost;
pub use pipeline::{LlcPipeline, PipelineStep};
pub use planes::{
    llc_cp_cost, mem_cp_cost, tag_array_brams, LLC_BASELINE_LUT_FF, LLC_ROW_BITS,
    MEM_BASELINE_LUT_FF, MEM_ROW_BITS,
};
pub use tables::{priority_queue_cost, table_cost, trigger_table_cost, TRIGGER_ROW_BITS};
