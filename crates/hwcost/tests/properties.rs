//! Seeded randomized tests of the FPGA-resource model's scaling laws.

use pard_hwcost::{
    llc_cp_cost, mem_cp_cost, priority_queue_cost, table_cost, tag_array_brams, trigger_table_cost,
};
use pard_sim::check::{cases, DEFAULT_CASES};
use pard_sim::rng::Rng;

/// Storage tables: LUTRAM grows exactly with entries×bits/64, logic
/// grows with width and log(entries) — both monotone.
#[test]
fn table_cost_is_monotone() {
    cases("hwcost.table_cost_is_monotone", DEFAULT_CASES, |rng| {
        let e1 = rng.gen_range(1u64..4096);
        let e2 = rng.gen_range(1u64..4096);
        let bits = rng.gen_range(1u64..512);
        let (small, large) = (e1.min(e2), e1.max(e2));
        let cs = table_cost(small, bits);
        let cl = table_cost(large, bits);
        assert!(cs.lutram <= cl.lutram);
        assert!(cs.lut <= cl.lut);
        assert_eq!(cl.lutram, (large * bits).div_ceil(64));
    });
}

/// Trigger tables scale linearly in slots.
#[test]
fn trigger_cost_is_linear() {
    cases("hwcost.trigger_cost_is_linear", DEFAULT_CASES, |rng| {
        let slots = rng.gen_range(1u64..512);
        let c = trigger_table_cost(slots);
        let c2 = trigger_table_cost(slots * 2);
        // Slope: 9 LUT, 6 FF per slot.
        assert_eq!(c2.lut - c.lut, slots * 9);
        assert_eq!(c2.ff - c.ff, slots * 6);
    });
}

/// Whole-plane costs are monotone in both entries and trigger slots.
#[test]
fn plane_costs_are_monotone() {
    cases("hwcost.plane_costs_are_monotone", DEFAULT_CASES, |rng| {
        let entries = rng.gen_range(1u64..1024);
        let slots = rng.gen_range(1u64..256);
        let base_mem = mem_cp_cost(entries, slots);
        assert!(mem_cp_cost(entries * 2, slots).total() >= base_mem.total());
        assert!(mem_cp_cost(entries, slots * 2).total() >= base_mem.total());
        let base_llc = llc_cp_cost(entries, slots, 16);
        assert!(llc_cp_cost(entries * 2, slots, 16).total() >= base_llc.total());
        assert!(llc_cp_cost(entries, slots, 32).total() >= base_llc.total());
    });
}

/// Priority queues scale with queues × depth.
#[test]
fn queue_cost_scales() {
    cases("hwcost.queue_cost_scales", DEFAULT_CASES, |rng| {
        let queues = rng.gen_range(1u64..8);
        let depth = rng.gen_range(1u64..64);
        let c = priority_queue_cost(queues, depth);
        let c2 = priority_queue_cost(queues, depth * 2);
        assert!(c2.lut > c.lut);
        assert!(c2.ff >= c.ff);
    });
}

/// Owner-DS-id BRAMs: adding DS bits never reduces the count, and the
/// overhead shrinks as more ways share one narrow BRAM port.
#[test]
fn tag_array_brams_are_sane() {
    cases("hwcost.tag_array_brams_are_sane", DEFAULT_CASES, |rng| {
        let ways = rng.gen_range(1u64..32);
        let sets = rng.gen_range(64u64..4096);
        let tag_bits = rng.gen_range(8u64..64);
        let ds_bits = rng.gen_range(1u64..16);
        let (base, with) = tag_array_brams(ways, sets, tag_bits, ds_bits);
        assert!(with >= base);
        assert!(base >= ways, "at least one BRAM per way");
        let extra = with - base;
        assert!(extra <= ways, "never more than one DS BRAM per way");
    });
}
