//! Property-based tests of the FPGA-resource model's scaling laws.

use pard_hwcost::{
    llc_cp_cost, mem_cp_cost, priority_queue_cost, table_cost, tag_array_brams, trigger_table_cost,
};
use proptest::prelude::*;

proptest! {
    /// Storage tables: LUTRAM grows exactly with entries×bits/64, logic
    /// grows with width and log(entries) — both monotone.
    #[test]
    fn table_cost_is_monotone(e1 in 1u64..4096, e2 in 1u64..4096, bits in 1u64..512) {
        let (small, large) = (e1.min(e2), e1.max(e2));
        let cs = table_cost(small, bits);
        let cl = table_cost(large, bits);
        prop_assert!(cs.lutram <= cl.lutram);
        prop_assert!(cs.lut <= cl.lut);
        prop_assert_eq!(cl.lutram, (large * bits).div_ceil(64));
    }

    /// Trigger tables scale linearly in slots.
    #[test]
    fn trigger_cost_is_linear(slots in 1u64..512) {
        let c = trigger_table_cost(slots);
        let c2 = trigger_table_cost(slots * 2);
        // Slope: 9 LUT, 6 FF per slot.
        prop_assert_eq!(c2.lut - c.lut, slots * 9);
        prop_assert_eq!(c2.ff - c.ff, slots * 6);
    }

    /// Whole-plane costs are monotone in both entries and trigger slots.
    #[test]
    fn plane_costs_are_monotone(entries in 1u64..1024, slots in 1u64..256) {
        let base_mem = mem_cp_cost(entries, slots);
        prop_assert!(mem_cp_cost(entries * 2, slots).total() >= base_mem.total());
        prop_assert!(mem_cp_cost(entries, slots * 2).total() >= base_mem.total());
        let base_llc = llc_cp_cost(entries, slots, 16);
        prop_assert!(llc_cp_cost(entries * 2, slots, 16).total() >= base_llc.total());
        prop_assert!(llc_cp_cost(entries, slots, 32).total() >= base_llc.total());
    }

    /// Priority queues scale with queues × depth.
    #[test]
    fn queue_cost_scales(queues in 1u64..8, depth in 1u64..64) {
        let c = priority_queue_cost(queues, depth);
        let c2 = priority_queue_cost(queues, depth * 2);
        prop_assert!(c2.lut > c.lut);
        prop_assert!(c2.ff >= c.ff);
    }

    /// Owner-DS-id BRAMs: adding DS bits never reduces the count, and the
    /// overhead shrinks as more ways share one narrow BRAM port.
    #[test]
    fn tag_array_brams_are_sane(ways in 1u64..32, sets in 64u64..4096, tag_bits in 8u64..64, ds_bits in 1u64..16) {
        let (base, with) = tag_array_brams(ways, sets, tag_bits, ds_bits);
        prop_assert!(with >= base);
        prop_assert!(base >= ways, "at least one BRAM per way");
        let extra = with - base;
        prop_assert!(extra <= ways, "never more than one DS BRAM per way");
    }
}
