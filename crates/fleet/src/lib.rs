//! `pard-fleet` — rack-scale PARD: a fleet of simulated PARD machines
//! under one federated resource manager.
//!
//! Each [`FleetMachine`] is a full [`pard::PardServer`] — cores, tagged
//! LLC, DRAM scheduler, I/O bridge, and PRM firmware, running on the
//! domain-partitioned conservative-PDES kernel. The fleet layer adds what
//! a single machine cannot express:
//!
//! * a **multi-tenant request population** ([`population`]) with Zipf
//!   tenant popularity, phase-shifted diurnal swings, and a flash crowd,
//!   split into per-machine replicas via seeded modulated arrivals;
//! * a **seeded load balancer**: each replica's dispatch scale is the
//!   share of the tenant's traffic routed to that machine, replayable
//!   bit-for-bit from the fleet seed;
//! * **federated PRMs** ([`run_fleet`]): machine-local triggers escalate
//!   control plane → PRM → fleet through the firmware's
//!   `/sys/fleet/escalate` hook, and the fleet manager reacts by
//!   re-sharding a tenant's traffic or migrating its LDom (drain, retire
//!   on the source, re-register the DS-id's service classes on the target
//!   through the same pardscript builders an operator would use).
//!
//! Machines advance in parallel ([`pard_sim::par::par_map`]) between epoch
//! boundaries; all manager decisions happen serially at the boundary, so
//! a run is deterministic for a given seed regardless of `PARD_THREADS`.
//!
//! # Paper mapping
//!
//! PARD's motivation (§1–2) is datacenter consolidation: utilization in
//! shared clusters stays low because co-located tenants destroy each
//! other's tail latency, and the paper's answer is hardware
//! differentiated services *within* one machine. This crate scales that
//! answer out: the fleet experiment (`fig_fleet`) sweeps the
//! consolidation ratio and measures per-tier SLO attainment with the
//! fleet manager armed vs disarmed — the rack-level analogue of the
//! paper's Table 5 consolidation argument, with the PRM's "trigger ⇒
//! action" chain (§3.4) extended one level up into a federation of PRMs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod machine;
mod manager;
mod tenants;

pub use config::{apply_env, FleetConfig, TierSlos};
pub use machine::{FleetMachine, MachineEpoch, Replica, ESCALATE_ACTION, ESCALATE_FACTOR};
pub use manager::{run_consolidation, run_fleet, FleetOutcome, TierOutcome};
pub use tenants::{population, TenantSpec, Tier, GUARANTEED_RATE_FACTOR};
