//! Fleet-level configuration and its environment overrides.

use pard_sim::Time;

/// Per-tier SLO targets the attainment metric scores against.
#[derive(Debug, Clone, Copy)]
pub struct TierSlos {
    /// Guaranteed-tier p95 response-time target.
    pub guaranteed_p95: Time,
    /// Guaranteed-tier p99 response-time target.
    pub guaranteed_p99: Time,
    /// Best-effort p95 target (looser: these tenants bought no guarantee).
    pub best_effort_p95: Time,
    /// Best-effort p99 target.
    pub best_effort_p99: Time,
}

/// Configuration of one fleet experiment run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of PARD machines in the fleet.
    pub machines: usize,
    /// Consolidation ratio: tenants initially placed per machine.
    pub tenants_per_machine: usize,
    /// Number of measurement epochs (the fleet manager reacts at epoch
    /// boundaries).
    pub epochs: usize,
    /// Epochs discarded from SLO attainment (fleet warm-up).
    pub warmup_epochs: usize,
    /// Simulated span of one epoch.
    pub epoch: Time,
    /// Fleet seed; every tenant arrival stream and machine derives from it.
    pub seed: u64,
    /// Baseline request rate of the most popular tenant (tenant 0).
    pub base_rps: f64,
    /// Zipf exponent of tenant popularity: tenant `t` offers
    /// `base_rps * (t+1)^-popularity_s`.
    pub popularity_s: f64,
    /// Diurnal swing amplitude shared by all tenants (each phase-shifted).
    pub diurnal_amplitude: f64,
    /// Flash-crowd multiplier hitting tenant 0 partway through the run.
    pub flash_multiplier: f64,
    /// Epoch index at which the flash crowd starts (runs to the end).
    pub flash_from_epoch: usize,
    /// Absolute floor (MB/s) of the machine-local escalation trigger's
    /// calibrated threshold: the trigger fires when a tenant's memory
    /// bandwidth exceeds [`ESCALATE_FACTOR`](crate::ESCALATE_FACTOR)
    /// times its warm-up mean, but never below this floor, so relative
    /// noise on a near-idle tenant never reaches the fleet manager.
    pub escalate_mbps: u64,
    /// Whether the fleet manager reacts to escalations (re-shard /
    /// migrate) or merely records them (the disarmed baseline).
    pub armed: bool,
    /// SLO targets.
    pub slo: TierSlos,
}

impl FleetConfig {
    /// The committed default-scale configuration behind `fig_fleet.json`.
    pub fn default_scale() -> Self {
        FleetConfig {
            machines: 3,
            tenants_per_machine: 2,
            epochs: 8,
            warmup_epochs: 1,
            epoch: Time::from_ms(10),
            seed: 42,
            base_rps: 44_000.0,
            popularity_s: 0.15,
            diurnal_amplitude: 0.1,
            flash_multiplier: 3.0,
            flash_from_epoch: 2,
            escalate_mbps: 150,
            armed: false,
            slo: TierSlos {
                guaranteed_p95: Time::from_us(400),
                guaranteed_p99: Time::from_ms(1),
                best_effort_p95: Time::from_ms(2),
                best_effort_p99: Time::from_ms(5),
            },
        }
    }

    /// Scales the per-epoch span by `scale` (`--quick` / `--full`).
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        self.epoch = Time::from_units((self.epoch.units() as f64 * scale) as u64);
        self
    }

    /// Total simulated span of the run.
    pub fn total_span(&self) -> Time {
        Time::from_units(self.epoch.units() * self.epochs as u64)
    }

    /// Total tenants across the fleet.
    pub fn tenant_count(&self) -> usize {
        self.machines * self.tenants_per_machine
    }
}

/// Applies `PARD_FLEET_*` environment overrides to `cfg`. Pure: the
/// variables are passed in, so the hard-error contract is unit-testable
/// without touching the process environment. On a malformed value the
/// returned error names the variable; binaries print it and exit 2 —
/// never run with a silently defaulted parameter.
///
/// Recognized: `PARD_FLEET_MACHINES` (>= 2), `PARD_FLEET_TENANTS`
/// (tenants per machine, >= 1), `PARD_FLEET_EPOCHS` (>= 2),
/// `PARD_FLEET_SEED` (u64).
///
/// # Errors
///
/// Returns a message naming the offending variable and value.
pub fn apply_env(mut cfg: FleetConfig, vars: &[(String, String)]) -> Result<FleetConfig, String> {
    for (key, value) in vars {
        match key.as_str() {
            "PARD_FLEET_MACHINES" => {
                cfg.machines = parse_min(key, value, 2)?;
            }
            "PARD_FLEET_TENANTS" => {
                cfg.tenants_per_machine = parse_min(key, value, 1)?;
            }
            "PARD_FLEET_EPOCHS" => {
                cfg.epochs = parse_min(key, value, 2)?;
            }
            "PARD_FLEET_SEED" => {
                cfg.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("{key}: expected a u64 seed, got {value:?}"))?;
            }
            _ => {}
        }
    }
    Ok(cfg)
}

fn parse_min(key: &str, value: &str, min: usize) -> Result<usize, String> {
    let n = value
        .parse::<usize>()
        .map_err(|_| format!("{key}: expected an integer >= {min}, got {value:?}"))?;
    if n < min {
        return Err(format!("{key}: expected an integer >= {min}, got {value:?}"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn env_overrides_apply_and_malformed_values_name_the_variable() {
        let cfg = apply_env(
            FleetConfig::default_scale(),
            &vars(&[
                ("PARD_FLEET_MACHINES", "4"),
                ("PARD_FLEET_TENANTS", "3"),
                ("PARD_FLEET_EPOCHS", "5"),
                ("PARD_FLEET_SEED", "7"),
                ("UNRELATED", "junk"),
            ]),
        )
        .unwrap();
        assert_eq!(cfg.machines, 4);
        assert_eq!(cfg.tenants_per_machine, 3);
        assert_eq!(cfg.epochs, 5);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.tenant_count(), 12);

        for (k, v) in [
            ("PARD_FLEET_MACHINES", "two"),
            ("PARD_FLEET_MACHINES", "1"),
            ("PARD_FLEET_TENANTS", "0"),
            ("PARD_FLEET_EPOCHS", "-3"),
            ("PARD_FLEET_SEED", "0x2a"),
        ] {
            let err = apply_env(FleetConfig::default_scale(), &vars(&[(k, v)])).unwrap_err();
            assert!(err.contains(k), "error must name {k}: {err}");
            assert!(err.contains(v), "error must show the value {v}: {err}");
        }
    }

    #[test]
    fn scaling_stretches_epochs_only() {
        let cfg = FleetConfig::default_scale().scaled(0.25);
        assert_eq!(cfg.epoch, Time::from_us(2_500));
        assert_eq!(cfg.epochs, FleetConfig::default_scale().epochs);
        assert_eq!(cfg.total_span(), Time::from_ms(20));
    }
}
