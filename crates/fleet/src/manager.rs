//! The fleet manager: federated PRMs, reactions, and the epoch loop.

use pard::Time;
use pard_sim::stats::LatencySample;
use pard_sim::par::par_map;
use pard_sim::trace::{self, TraceCat, TraceVal};

use crate::config::FleetConfig;
use crate::machine::{FleetMachine, MachineEpoch};
use crate::tenants::{population, Tier};

/// Where a tenant's traffic currently lives, from the manager's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TenantState {
    /// Single full-scale replica on the home machine.
    Home,
    /// Split 50/50 between the home machine and `target`.
    Sharded {
        /// Machine hosting the second replica.
        target: usize,
    },
    /// Home replica drained to scale 0; retirement happens at the next
    /// epoch boundary, after residual requests have flowed out.
    Draining {
        /// Machine hosting the surviving replica.
        target: usize,
    },
    /// Fully moved off the home machine.
    Migrated,
}

/// Per-tier outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct TierOutcome {
    /// p95 of the tier's merged post-warmup response-time distribution.
    pub p95: Time,
    /// p99 of the merged distribution.
    pub p99: Time,
    /// Fraction of `(tenant, epoch)` cells whose epoch p95 met the tier
    /// target.
    pub attain_p95: f64,
    /// Fraction of cells whose epoch p99 met the target.
    pub attain_p99: f64,
    /// Number of measured `(tenant, epoch)` cells.
    pub cells: usize,
    /// Requests completed by the tier after warm-up.
    pub completed: u64,
}

/// Outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Guaranteed-tier results.
    pub guaranteed: TierOutcome,
    /// Best-effort results.
    pub best_effort: TierOutcome,
    /// Escalations raised by machine-local triggers over the run.
    pub escalations: usize,
    /// Tenant re-shards the manager performed.
    pub reshards: usize,
    /// LDom migrations the manager completed.
    pub migrations: usize,
    /// Mean CPU utilization across machines at the end of the run.
    pub utilization: f64,
}

struct TierAcc {
    dist: LatencySample,
    met_p95: usize,
    met_p99: usize,
    cells: usize,
}

impl TierAcc {
    fn new() -> Self {
        TierAcc {
            dist: LatencySample::new(),
            met_p95: 0,
            met_p99: 0,
            cells: 0,
        }
    }

    fn outcome(mut self) -> TierOutcome {
        let completed = self.dist.len() as u64;
        TierOutcome {
            p95: self.dist.percentile(0.95),
            p99: self.dist.percentile(0.99),
            attain_p95: ratio(self.met_p95, self.cells),
            attain_p99: ratio(self.met_p99, self.cells),
            cells: self.cells,
            completed,
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs a whole fleet experiment: builds the machines, places the tenant
/// population, partitions every machine onto the parallel kernel, then
/// advances the fleet epoch by epoch — machines in parallel via
/// [`par_map`], manager reactions serial and deterministic between epochs.
///
/// The control ladder is the paper's "trigger ⇒ action" chain with one
/// more rung: a machine-local trigger (memory `bandwidth` above the
/// escalation threshold) runs a pardscript that writes
/// `/sys/fleet/escalate`; the manager collects those escalations at the
/// epoch boundary and — when `cfg.armed` — reacts by **re-sharding** the
/// tenant's traffic 50/50 onto the least-loaded other machine, and on a
/// repeat escalation by **migrating** the LDom entirely (drain epoch, then
/// retire on the source and full scale on the target). Disarmed fleets
/// record the escalations but change nothing: the consolidation baseline.
pub fn run_fleet(cfg: &FleetConfig) -> FleetOutcome {
    let pop = population(cfg);
    // Construct every machine before partitioning any: PardServer::new
    // begins a fresh audit run, which would clear the shared conservation
    // ledger of an already-partitioned sibling.
    let mut machines: Vec<FleetMachine> = (0..cfg.machines)
        .map(|i| FleetMachine::new(i, cfg))
        .collect();
    for spec in &pop {
        machines[spec.home].admit(spec, cfg, 1.0, 0);
    }
    for m in &mut machines {
        m.partition();
    }

    let mut state = vec![TenantState::Home; pop.len()];
    let mut pending_retire: Vec<usize> = Vec::new();
    let (mut escalations, mut reshards, mut migrations) = (0usize, 0usize, 0usize);
    let mut guaranteed = TierAcc::new();
    let mut best_effort = TierAcc::new();
    let mut utilization = 0.0;

    for epoch in 0..cfg.epochs {
        let span = cfg.epoch;
        let stepped: Vec<(FleetMachine, MachineEpoch)> =
            par_map(std::mem::take(&mut machines), move |mut m| {
                m.advance(span);
                let obs = m.drain_epoch();
                (m, obs)
            });
        let mut observations = Vec::with_capacity(stepped.len());
        for (m, obs) in stepped {
            machines.push(m);
            observations.push(obs);
        }

        // Merge replica samples into per-tenant epoch distributions and
        // score them against the tier SLOs.
        let mut per_tenant = vec![LatencySample::new(); pop.len()];
        for obs in &observations {
            for (tenant, sample) in &obs.samples {
                per_tenant[*tenant].absorb(sample);
            }
        }
        if epoch >= cfg.warmup_epochs {
            for (spec, mut sample) in pop.iter().zip(per_tenant) {
                if sample.is_empty() {
                    continue;
                }
                let (p95, p99) = (sample.percentile(0.95), sample.percentile(0.99));
                let (acc, target95, target99) = match spec.tier {
                    Tier::Guaranteed => {
                        (&mut guaranteed, cfg.slo.guaranteed_p95, cfg.slo.guaranteed_p99)
                    }
                    Tier::BestEffort => {
                        (&mut best_effort, cfg.slo.best_effort_p95, cfg.slo.best_effort_p99)
                    }
                };
                acc.cells += 1;
                acc.met_p95 += usize::from(p95 <= target95);
                acc.met_p99 += usize::from(p99 <= target99);
                acc.dist.absorb(&sample);
            }
        }
        utilization = observations.iter().map(|o| o.utilization).sum::<f64>()
            / observations.len().max(1) as f64;

        // ---- the manager's serial, deterministic reaction pass --------
        let now = machines[0].now();

        // End of warm-up: calibrate the machine-local escalation triggers
        // against each tenant's measured mean bandwidth. No trigger exists
        // before this point, so cold-cache start-up transients can never
        // fire one. (With `warmup_epochs` 0 this still runs after the
        // first epoch — some traffic must have flowed to measure a mean.)
        if epoch + 1 == cfg.warmup_epochs.max(1) {
            let mut armed = 0;
            for m in &mut machines {
                armed += m.calibrate_escalations(cfg);
            }
            trace::emit(
                TraceCat::Fleet,
                now,
                0,
                "calibrate",
                &[("armed", TraceVal::U(armed as u64))],
            );
        }

        // Complete migrations decided last epoch: the source has been at
        // scale 0 for a full epoch, so its residual requests have drained.
        for tenant in std::mem::take(&mut pending_retire) {
            let TenantState::Draining { target } = state[tenant] else {
                continue;
            };
            machines[pop[tenant].home].retire(tenant);
            machines[target].set_scale(tenant, 1.0);
            state[tenant] = TenantState::Migrated;
            migrations += 1;
            trace::emit(
                TraceCat::Fleet,
                now,
                tenant as u16,
                "migrate",
                &[
                    ("from", TraceVal::U(pop[tenant].home as u64)),
                    ("to", TraceVal::U(target as u64)),
                ],
            );
        }

        // Collect this epoch's escalations in deterministic order
        // (machine index, then PRM queue order).
        let mut reacted: Vec<usize> = Vec::new();
        for (mi, obs) in observations.iter().enumerate() {
            for (tenant, esc) in &obs.escalations {
                escalations += 1;
                trace::emit(
                    TraceCat::Fleet,
                    esc.at,
                    esc.ds,
                    "escalate",
                    &[("machine", TraceVal::U(mi as u64))],
                );
                if !cfg.armed || reacted.contains(tenant) {
                    continue;
                }
                reacted.push(*tenant);
                match state[*tenant] {
                    TenantState::Home => {
                        let target = least_loaded_other(&machines, pop[*tenant].home);
                        machines[pop[*tenant].home].set_scale(*tenant, 0.5);
                        machines[target].admit(&pop[*tenant], cfg, 0.5, 1);
                        machines[pop[*tenant].home].rearm(*tenant);
                        state[*tenant] = TenantState::Sharded { target };
                        reshards += 1;
                        trace::emit(
                            TraceCat::Fleet,
                            now,
                            *tenant as u16,
                            "reshard",
                            &[
                                ("from", TraceVal::U(pop[*tenant].home as u64)),
                                ("to", TraceVal::U(target as u64)),
                            ],
                        );
                    }
                    TenantState::Sharded { target } => {
                        // Re-sharding was not enough: migrate. Drain the
                        // home replica this epoch; retire it at the next
                        // boundary.
                        machines[pop[*tenant].home].set_scale(*tenant, 0.0);
                        machines[pop[*tenant].home].rearm(*tenant);
                        state[*tenant] = TenantState::Draining { target };
                        pending_retire.push(*tenant);
                        trace::emit(
                            TraceCat::Fleet,
                            now,
                            *tenant as u16,
                            "drain",
                            &[("machine", TraceVal::U(pop[*tenant].home as u64))],
                        );
                    }
                    TenantState::Draining { .. } | TenantState::Migrated => {}
                }
            }
        }
    }

    FleetOutcome {
        guaranteed: guaranteed.outcome(),
        best_effort: best_effort.outcome(),
        escalations,
        reshards,
        migrations,
        utilization,
    }
}

/// The least-loaded machine other than `except` (static offered-load
/// weights scaled by dispatch shares; ties break to the lowest index).
fn least_loaded_other(machines: &[FleetMachine], except: usize) -> usize {
    machines
        .iter()
        .filter(|m| m.idx() != except)
        .min_by(|a, b| {
            a.load()
                .partial_cmp(&b.load())
                .unwrap()
                .then(a.idx().cmp(&b.idx()))
        })
        .expect("fleet has at least two machines")
        .idx()
}

/// Convenience: [`run_fleet`] over [`population`]'s default placement for
/// a given consolidation ratio and arming, starting from `base`.
pub fn run_consolidation(base: &FleetConfig, tenants_per_machine: usize, armed: bool) -> FleetOutcome {
    let mut cfg = base.clone();
    cfg.tenants_per_machine = tenants_per_machine;
    cfg.armed = armed;
    run_fleet(&cfg)
}
