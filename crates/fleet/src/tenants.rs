//! The multi-tenant request population.

use pard_sim::Time;
use pard_workloads::{FlashCrowd, RateProfile};

use crate::config::FleetConfig;

/// Rate factor of guaranteed-tier tenants relative to best-effort ones at
/// the same popularity rank. Latency-critical services are provisioned
/// well under their reservation; the best-effort batch/web tenants are the
/// ones that fill machines up — and the ones the fleet manager may move.
pub const GUARANTEED_RATE_FACTOR: f64 = 0.35;

/// Service tier of a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Latency-critical: reserved LLC ways, prioritized DRAM, tight SLOs.
    Guaranteed,
    /// Best-effort: fully shared resources, loose SLOs, migratable.
    BestEffort,
}

impl Tier {
    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Guaranteed => "guaranteed",
            Tier::BestEffort => "best_effort",
        }
    }
}

/// One tenant of the fleet: identity, tier, traffic shape, and initial
/// placement.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Fleet-wide tenant id (also the Zipf popularity rank order).
    pub id: usize,
    /// Service tier.
    pub tier: Tier,
    /// The tenant's offered-load shape over the run.
    pub profile: RateProfile,
    /// Initial home machine.
    pub home: usize,
}

/// Builds the tenant population for `cfg`: `machines × tenants_per_machine`
/// tenants with Zipf-distributed popularity *within each tier* (rank 1 is
/// the most popular), guaranteed tenants provisioned at
/// [`GUARANTEED_RATE_FACTOR`] of the best-effort curve, phase-shifted
/// diurnal swings (one simulated "day" spans the whole run), and a flash
/// crowd hitting tenant 0 — the most popular best-effort tenant — from
/// `flash_from_epoch` to the end of the run.
///
/// Tenants alternate tiers (even ids best-effort, odd guaranteed) and are
/// homed round-robin (`home = id % machines`), so machine 0 hosts the
/// flash-crowd tenant and every machine gets a tier mix.
pub fn population(cfg: &FleetConfig) -> Vec<TenantSpec> {
    let total = cfg.tenant_count();
    let day = cfg.total_span();
    let flash_start =
        Time::from_units(cfg.epoch.units() * cfg.flash_from_epoch.min(cfg.epochs) as u64);
    (0..total)
        .map(|id| {
            let tier = if id % 2 == 0 {
                Tier::BestEffort
            } else {
                Tier::Guaranteed
            };
            // Popularity rank within the tenant's own tier (1-based).
            let rank = (id / 2 + 1) as f64;
            let tier_factor = match tier {
                Tier::Guaranteed => GUARANTEED_RATE_FACTOR,
                Tier::BestEffort => 1.0,
            };
            let base_rps = cfg.base_rps * rank.powf(-cfg.popularity_s) * tier_factor;
            let flash = if id == 0 {
                vec![FlashCrowd {
                    start: flash_start,
                    end: day,
                    multiplier: cfg.flash_multiplier,
                }]
            } else {
                Vec::new()
            };
            TenantSpec {
                id,
                tier,
                profile: RateProfile {
                    base_rps,
                    diurnal_amplitude: cfg.diurnal_amplitude,
                    diurnal_period: day,
                    diurnal_phase: id as f64 / total as f64,
                    flash,
                },
                home: id % cfg.machines,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_shape_matches_config() {
        let mut cfg = FleetConfig::default_scale();
        cfg.machines = 3;
        cfg.tenants_per_machine = 4;
        let pop = population(&cfg);
        assert_eq!(pop.len(), 12);
        // Tenant 0: best-effort, most popular, flash-crowded, homed on 0.
        assert_eq!(pop[0].tier, Tier::BestEffort);
        assert_eq!(pop[0].home, 0);
        assert_eq!(pop[0].profile.flash.len(), 1);
        assert!((pop[0].profile.base_rps - cfg.base_rps).abs() < 1e-9);
        // Only tenant 0 carries the flash crowd.
        assert!(pop[1..].iter().all(|t| t.profile.flash.is_empty()));
        // Tiers alternate; guaranteed tenants run lighter than the
        // best-effort tenant at the same rank.
        assert_eq!(pop[1].tier, Tier::Guaranteed);
        assert!(pop[1].profile.base_rps < pop[0].profile.base_rps);
        // Popularity decays within a tier.
        assert!(pop[2].profile.base_rps < pop[0].profile.base_rps);
        assert!(pop[3].profile.base_rps < pop[1].profile.base_rps);
        // Round-robin homes.
        assert_eq!(pop[4].home, 1);
        assert_eq!(pop[5].home, 2);
        // Phases spread over the day.
        assert!(pop[6].profile.diurnal_phase > pop[3].profile.diurnal_phase);
        assert_eq!(pop[0].profile.diurnal_period, cfg.total_span());
    }

    #[test]
    fn flash_window_starts_at_the_configured_epoch() {
        let cfg = FleetConfig::default_scale();
        let pop = population(&cfg);
        let f = &pop[0].profile.flash[0];
        assert_eq!(
            f.start,
            Time::from_units(cfg.epoch.units() * cfg.flash_from_epoch as u64)
        );
        assert_eq!(f.end, cfg.total_span());
        assert!((f.multiplier - cfg.flash_multiplier).abs() < 1e-9);
    }
}
