//! One PARD machine of the fleet.

use pard::{Action, CmpOp, DsId, LDomSpec, PardServer, SystemConfig, Time};
use pard_prm::federation::{self, AdmitClasses};
use pard_prm::{ActionEnv, Escalation};
use pard_sim::stats::LatencySample;
use pard_workloads::{
    ArrivalSource, Memcached, MemcachedConfig, ModulatedArrivals, Op, TimeShared, WorkloadEngine,
};

use crate::config::FleetConfig;
use crate::tenants::{TenantSpec, Tier};

/// Name under which the fleet escalation script is registered on every
/// machine's firmware; calibration binds each generation-0 best-effort
/// replica's memory-bandwidth trigger to it.
pub const ESCALATE_ACTION: &str = "/fleet_escalate.sh";

/// Escalation threshold as a multiple of the tenant's *measured* mean
/// memory bandwidth over the fleet's warm-up epoch(s). Diurnal swings
/// stay within ~±15 % of the mean and a flash crowd multiplies the rate
/// severalfold, so 1.8× separates the two cleanly — and a re-sharded
/// tenant (half its traffic elsewhere) lands back under it, while a
/// still-breaching one does not. The absolute floor
/// ([`FleetConfig::escalate_mbps`]) keeps near-idle tenants from firing
/// on noise.
pub const ESCALATE_FACTOR: f64 = 1.8;

/// Round-robin slice of the per-core OS scheduler model.
const SLICE: Time = Time::from_us(50);

/// Memory capacity of one tenant LDom.
const TENANT_MEM: u64 = 16 << 20;

/// The per-core keep-alive "host OS" process: always blocked on a 1 ms
/// timer, so the core's [`TimeShared`] rotation never runs dry while
/// tenants come and go, yet consumes no slices while any tenant is
/// runnable (blocked processes are skipped).
struct HostIdle;

impl WorkloadEngine for HostIdle {
    fn name(&self) -> &str {
        "host-idle"
    }

    fn next_op(&mut self, now: Time) -> Op {
        Op::IdleUntil(now + Time::from_ms(1))
    }

    pard_workloads::impl_engine_any!();
}

/// One tenant replica placed on this machine.
#[derive(Debug, Clone)]
pub struct Replica {
    /// Fleet-wide tenant id.
    pub tenant: usize,
    /// The tenant's tier.
    pub tier: Tier,
    /// DS-id of the replica's LDom on *this* machine.
    pub ds: DsId,
    /// Core whose scheduler rotation hosts the replica's process.
    pub core: usize,
    /// Current dispatch scale (the load balancer's traffic share).
    pub scale: f64,
    /// Replica generation: 0 is the original placement, higher values are
    /// re-shard/migration copies.
    pub generation: u32,
    /// Baseline offered load of the tenant (for load-aware placement).
    pub weight: f64,
    /// Whether the replica is still placed here.
    pub live: bool,
    /// Calibrated escalation threshold (MB/s) once the machine-local
    /// trigger has been armed; `None` before calibration and for replicas
    /// that never get one (guaranteed tier, re-shard/migration copies).
    pub trigger_mbps: Option<u64>,
}

/// Everything one machine reports to the fleet manager at an epoch
/// boundary.
#[derive(Debug)]
pub struct MachineEpoch {
    /// Per-tenant response-time samples drained from each live replica.
    pub samples: Vec<(usize, LatencySample)>,
    /// Escalations the machine's PRM queued for the fleet, mapped to
    /// fleet tenant ids.
    pub escalations: Vec<(usize, Escalation)>,
    /// Cumulative CPU busy fraction of the machine.
    pub utilization: f64,
}

/// One PARD server of the fleet: a full machine simulation (cores, LLC,
/// DRAM, I/O, PRM — on the domain-partitioned kernel) plus the fleet-side
/// bookkeeping of which tenant replicas it hosts.
pub struct FleetMachine {
    idx: usize,
    server: PardServer,
    replicas: Vec<Replica>,
}

/// Per-request memcached shape shared by every fleet tenant: a light
/// request (small values, little compute) so a test-scale two-core machine
/// sustains tens of thousands of requests per second and the interesting
/// contention is *across* tenants, not inside one request. The value
/// population is deliberately large and flat (4096 items, Zipf 0.6): the
/// per-replica working set dwarfs the shared LLC at every offered rate,
/// so misses per request — and with them the memory `bandwidth` column
/// the escalation trigger watches — track offered load instead of
/// flattening out as a small hot set becomes cache-resident. `rps` is set
/// for documentation but unused — fleet replicas run on externally
/// modulated arrivals ([`ArrivalSource::Modulated`]), and the warm-up is
/// handled at the fleet layer (whole epochs), not per engine.
fn tenant_workload(cfg: &FleetConfig, spec: &TenantSpec) -> MemcachedConfig {
    MemcachedConfig {
        rps: spec.profile.base_rps,
        items: 4096,
        zipf_s: 0.6,
        value_lines: 32,
        meta_loads: 6,
        client_compute: 4_000,
        hash_compute: 1_500,
        resp_compute: 4_500,
        store_base: 8 << 20,
        meta_base: 4 << 20,
        meta_bytes: 1 << 20,
        buffer_lines: 24,
        buffer_base: 2 << 20,
        buffer_ring_bytes: 64 * 1024,
        warmup: Time::ZERO,
        seed: cfg.seed.wrapping_add(spec.id as u64),
    }
}

impl FleetMachine {
    /// Builds machine `idx` of the fleet: a two-core test-scale PARD
    /// server whose host LDom owns all cores, each running a [`TimeShared`]
    /// scheduler seeded with the keep-alive host process, and whose
    /// firmware has the fleet escalation action registered.
    ///
    /// Construct **all** machines before partitioning **any** of them:
    /// [`PardServer::new`] begins a fresh audit run, which clears the
    /// shared conservation ledger that partitioned machines write into.
    pub fn new(idx: usize, cfg: &FleetConfig) -> Self {
        let mut sys = SystemConfig::small_test();
        sys.seed = cfg.seed.wrapping_add(idx as u64);
        // Fleet-scale statistics cadence: the escalation trigger reads the
        // memory `bandwidth` column, and at tens of kilo-requests per
        // second a 20 µs window holds only a couple of requests — pure
        // shot noise that would cross any usable threshold. 1 ms windows
        // hold ~40+ requests (window σ ≈ 15 % of the mean, so the 1.8×
        // calibrated threshold sits >5σ out), while the PRM still reacts
        // well within one fleet epoch.
        sys.llc.window = Time::from_ms(1);
        sys.mem.window = Time::from_ms(1);
        sys.prm_poll = Time::from_ms(1);
        let mut server = PardServer::new(sys);
        let cores: Vec<usize> = (0..server.core_count()).collect();
        let host = server
            .create_ldom(LDomSpec::new(format!("host{idx}"), cores.clone(), 1 << 20))
            .expect("host LDom fits");
        for core in cores {
            let ts = TimeShared::new(
                vec![(host.raw(), Box::new(HostIdle) as Box<dyn WorkloadEngine>)],
                SLICE,
            );
            server.install_engine(core, Box::new(ts));
        }
        server.launch(host).expect("host LDom launches");
        federation::install_escalate(&mut server.firmware().lock(), ESCALATE_ACTION, "overload");
        FleetMachine {
            idx,
            server,
            replicas: Vec::new(),
        }
    }

    /// The machine's fleet index.
    pub fn idx(&self) -> usize {
        self.idx
    }

    /// The replicas ever placed here (including retired ones, `live =
    /// false`).
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Current simulated time of the machine.
    pub fn now(&self) -> Time {
        self.server.now()
    }

    /// Total baseline offered load of the live replicas, weighted by
    /// dispatch scale — the static load signal the manager's placement
    /// decisions use.
    pub fn load(&self) -> f64 {
        self.replicas
            .iter()
            .filter(|r| r.live)
            .map(|r| r.weight * r.scale)
            .sum()
    }

    /// Moves the machine onto the conservative parallel kernel.
    pub fn partition(&mut self) {
        self.server.partition();
    }

    /// Admits a replica of `spec` at `scale`: creates its LDom, programs
    /// its tier's service classes through the [`federation::admit`]
    /// pardscript (exactly what an operator at this machine's PRM console
    /// would run), builds its memcached engine over a seeded modulated
    /// arrival stream, and adds the process to the next core's scheduler
    /// rotation (round-robin packing). No escalation trigger is installed
    /// here — thresholds are *measured*, not guessed, so arming waits for
    /// [`FleetMachine::calibrate_escalations`] at the end of warm-up.
    pub fn admit(&mut self, spec: &TenantSpec, cfg: &FleetConfig, scale: f64, generation: u32) {
        let mut ldom = LDomSpec::new(format!("t{}g{}", spec.id, generation), vec![], TENANT_MEM);
        if spec.tier == Tier::Guaranteed {
            ldom = ldom.high_priority();
        }
        let ds = self.server.create_ldom(ldom).expect("tenant LDom fits");

        // Service classes, via the federation pardscript.
        let classes = match spec.tier {
            Tier::Guaranteed => AdmitClasses::guaranteed(),
            Tier::BestEffort => AdmitClasses::best_effort(),
        };
        let now = self.server.now();
        {
            let mut fw = self.server.firmware().lock();
            let action = format!("/fleet_admit_t{}g{generation}.sh", spec.id);
            fw.register_action(&action, Action::Script(federation::admit(ds.raw(), classes)));
            fw.run_action(
                &action,
                ActionEnv {
                    cpa: 0,
                    ds,
                    slot: 0,
                    now,
                },
            )
            .expect("admit script runs");
        }

        // The replica's engine: memcached over the tenant's modulated
        // arrival stream, seeded per (tenant, machine, generation) so every
        // replica is an independent — but exactly replayable — split of
        // the tenant's traffic.
        let stream = format!("fleet.t{}.m{}.g{generation}", spec.id, self.idx);
        let mut arrivals = ModulatedArrivals::new(spec.profile.clone(), cfg.seed, &stream);
        arrivals.set_scale(scale);
        arrivals.skip_until(now);
        let engine = Memcached::with_arrivals(
            tenant_workload(cfg, spec),
            ArrivalSource::Modulated(arrivals),
        );

        // Consolidation-blind round-robin packing, like a scheduler that
        // places by slot count rather than load: the whole point of the
        // experiment is that *bad packings happen*, and the disarmed fleet
        // has no way to react when one does.
        let core = self.replicas.len() % self.server.core_count();
        self.server.with_engine::<TimeShared, _>(core, move |ts| {
            ts.add_process(ds.raw(), Box::new(engine))
        });

        self.replicas.push(Replica {
            tenant: spec.id,
            tier: spec.tier,
            ds,
            core,
            scale,
            generation,
            weight: spec.profile.base_rps,
            live: true,
            trigger_mbps: None,
        });
    }

    /// Sets the dispatch scale of `tenant`'s live replica here (the
    /// re-shard/drain half of a fleet reaction). Returns `false` when the
    /// tenant has no live replica on this machine.
    pub fn set_scale(&mut self, tenant: usize, scale: f64) -> bool {
        let Some(i) = self
            .replicas
            .iter()
            .position(|r| r.live && r.tenant == tenant)
        else {
            return false;
        };
        let (core, ds) = (self.replicas[i].core, self.replicas[i].ds);
        let applied = self.server.with_engine::<TimeShared, _>(core, |ts| {
            ts.with_engine_of::<Memcached, _>(ds.raw(), |mc| mc.set_arrival_scale(scale))
                .is_some()
        });
        if applied {
            self.replicas[i].scale = scale;
        }
        applied
    }

    /// Retires `tenant`'s replica: removes its process from the scheduler
    /// rotation, demotes the DS-id to best-effort defaults through the
    /// [`federation::drain`] pardscript, and destroys the LDom (which also
    /// flushes its LLC lines and frees its memory). Returns `false` when
    /// the tenant has no live replica here.
    pub fn retire(&mut self, tenant: usize) -> bool {
        let Some(i) = self
            .replicas
            .iter()
            .position(|r| r.live && r.tenant == tenant)
        else {
            return false;
        };
        let (core, ds) = (self.replicas[i].core, self.replicas[i].ds);
        self.server
            .with_engine::<TimeShared, _>(core, |ts| ts.retire(ds.raw()));
        let now = self.server.now();
        {
            let mut fw = self.server.firmware().lock();
            let action = format!("/fleet_drain_ldom{}.sh", ds.raw());
            fw.register_action(&action, Action::Script(federation::drain(ds.raw())));
            fw.run_action(
                &action,
                ActionEnv {
                    cpa: 0,
                    ds,
                    slot: 0,
                    now,
                },
            )
            .expect("drain script runs");
        }
        self.server.destroy_ldom(ds).expect("tenant LDom exists");
        self.replicas[i].live = false;
        true
    }

    /// Re-arms `tenant`'s escalation trigger after the fleet manager has
    /// reacted, so a still-breaching condition raises a fresh escalation
    /// at the next statistics window.
    pub fn rearm(&mut self, tenant: usize) {
        let Some(r) = self
            .replicas
            .iter()
            .find(|r| r.live && r.tenant == tenant && r.generation == 0)
        else {
            return;
        };
        let ds = r.ds;
        let _ = self.server.firmware().lock().rearm_triggers(1, ds);
    }

    /// Arms the machine-local escalation trigger of every live
    /// generation-0 best-effort replica that does not have one yet, at a
    /// *measured* threshold: the memory control plane's cumulative
    /// `serv_cnt` column (DRAM lines serviced since boot, never reset)
    /// times 64 B over elapsed time gives the replica's mean bandwidth
    /// free of per-window shot noise, and the trigger is a plain
    /// [`TriggerMode::Level`](pard::TriggerMode::Level) compare on the
    /// `bandwidth` column at [`ESCALATE_FACTOR`] times that mean, floored
    /// at [`FleetConfig::escalate_mbps`]. The fleet manager calls this
    /// once, at the end of warm-up — measuring first is what makes the
    /// threshold robust where a guessed absolute (or a self-tracked
    /// relative baseline seeded during cold-cache start-up) is not.
    /// Returns the number of triggers armed.
    pub fn calibrate_escalations(&mut self, cfg: &FleetConfig) -> usize {
        let elapsed = self.server.now().as_secs();
        if elapsed <= 0.0 {
            return 0;
        }
        let mut armed = 0;
        for i in 0..self.replicas.len() {
            let r = &self.replicas[i];
            if !r.live
                || r.tier != Tier::BestEffort
                || r.generation != 0
                || r.trigger_mbps.is_some()
            {
                continue;
            }
            let ds = r.ds;
            let served = self
                .server
                .mem_cp()
                .lock()
                .stat(ds, "serv_cnt")
                .expect("memory CP knows the replica's DS-id");
            let mean_mbps = served as f64 * 64.0 / elapsed / 1e6;
            let threshold = ((mean_mbps * ESCALATE_FACTOR) as u64).max(cfg.escalate_mbps);
            {
                let mut fw = self.server.firmware().lock();
                fw.pardtrigger(1, ds, 0, "bandwidth", CmpOp::Gt, threshold)
                    .expect("memory CP has a free trigger slot");
                fw.write(
                    &format!("/sys/cpa/cpa1/ldoms/ldom{}/triggers/0", ds.raw()),
                    ESCALATE_ACTION,
                )
                .expect("trigger leaf exists");
            }
            self.replicas[i].trigger_mbps = Some(threshold);
            armed += 1;
        }
        armed
    }

    /// Runs the machine for `span` of simulated time.
    pub fn advance(&mut self, span: Time) {
        self.server.run_for(span);
    }

    /// The memory control plane's `bandwidth` statistics column (MB/s over
    /// the last statistics window) for `tenant`'s live replica here —
    /// the very signal its escalation trigger watches.
    pub fn bandwidth_mbps(&self, tenant: usize) -> Option<u64> {
        let r = self.replicas.iter().find(|r| r.live && r.tenant == tenant)?;
        self.server.mem_cp().lock().stat(r.ds, "bandwidth").ok()
    }

    /// Drains the epoch's observations: per-replica latency samples, the
    /// PRM's queued fleet escalations (mapped to tenant ids; escalations
    /// whose DS-id no longer maps to a replica are dropped), and the
    /// machine's CPU utilization.
    pub fn drain_epoch(&mut self) -> MachineEpoch {
        let mut samples = Vec::new();
        for i in 0..self.replicas.len() {
            if !self.replicas[i].live {
                continue;
            }
            let (tenant, core, ds) = (
                self.replicas[i].tenant,
                self.replicas[i].core,
                self.replicas[i].ds,
            );
            let taken = self.server.with_engine::<TimeShared, _>(core, |ts| {
                ts.with_engine_of::<Memcached, _>(ds.raw(), Memcached::take_sample)
            });
            if let Some(s) = taken {
                samples.push((tenant, s));
            }
        }
        let escalations = self
            .server
            .firmware()
            .lock()
            .take_escalations()
            .into_iter()
            .filter_map(|e| {
                self.replicas
                    .iter()
                    .find(|r| r.ds.raw() == e.ds)
                    .map(|r| (r.tenant, e))
            })
            .collect();
        MachineEpoch {
            samples,
            escalations,
            utilization: self.server.cpu_utilization(),
        }
    }
}
