//! The system-wide event type.

use crate::packet::{
    DiskDone, DiskRequest, InterruptPacket, MemPacket, MemResp, NetFrame, PioPacket, PioResp,
};

/// Distinguishes the purposes of self-scheduled ticks.
///
/// Several components schedule periodic or demand-driven wake-ups for
/// themselves; the kind lets one component own several independent timers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TickKind {
    /// DRAM controller scheduling quantum (one memory cycle).
    Dram,
    /// IDE controller service-loop quantum.
    Ide,
    /// PRM firmware polling interval.
    Prm,
    /// Experiment sampler interval.
    Sampler,
    /// Core pipeline resume.
    Core,
    /// Control-plane statistics window rollover.
    CpWindow,
    /// NIC receive-processing quantum.
    Nic,
}

/// Control messages sent to a CPU core by the PRM or an experiment harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreCommand {
    /// Begin executing the installed workload engine.
    Start,
    /// Halt execution (pending memory responses are ignored on arrival).
    Stop,
    /// Load the core's DS-id tag register.
    ///
    /// The raw `u16` is a [`DsId`](crate::DsId); carried raw so the command
    /// stays `Copy` and trivially serialisable.
    SetTag(u16),
}

/// Every event that can travel the simulated machine.
///
/// One shared enum keeps the kernel monomorphic and the component wiring
/// simple; components ignore variants that are not addressed to them (and
/// panic in debug builds on protocol violations).
#[derive(Clone, Copy, Debug)]
pub enum PardEvent {
    /// A memory request heading to the LLC or DRAM controller.
    MemReq(MemPacket),
    /// A memory response heading back to the requester.
    MemResp(MemResp),
    /// A disk request heading to the I/O bridge / IDE controller.
    DiskReq(DiskRequest),
    /// Disk completion payload (delivered to the core via the APIC).
    DiskDone(DiskDone),
    /// A network frame arriving at the NIC.
    NetFrame(NetFrame),
    /// An interrupt travelling device → APIC → core.
    Interrupt(InterruptPacket),
    /// A programmed-I/O register access.
    Pio(PioPacket),
    /// A programmed-I/O response.
    PioResp(PioResp),
    /// A self-scheduled timer.
    Tick(TickKind),
    /// Core control from the PRM or harness.
    CoreCtl(CoreCommand),
}

impl PardEvent {
    /// The DS-id this event is attributed to, when it carries one.
    ///
    /// Timers, core control, and raw network frames (whose DS-id is only
    /// resolved by the NIC's MAC lookup) have none. Used by the kernel
    /// trace hook to attribute event-loop deliveries to LDoms.
    pub fn ds(&self) -> Option<crate::DsId> {
        match self {
            PardEvent::MemReq(p) => Some(p.ds),
            PardEvent::MemResp(p) => Some(p.ds),
            PardEvent::DiskReq(p) => Some(p.ds),
            PardEvent::DiskDone(p) => Some(p.ds),
            PardEvent::Interrupt(p) => Some(p.ds),
            PardEvent::Pio(p) => Some(p.ds),
            PardEvent::NetFrame(_)
            | PardEvent::PioResp(_)
            | PardEvent::Tick(_)
            | PardEvent::CoreCtl(_) => None,
        }
    }

    /// A short static label naming the event variant (trace-friendly).
    pub fn kind_label(&self) -> &'static str {
        match self {
            PardEvent::MemReq(_) => "mem_req",
            PardEvent::MemResp(_) => "mem_resp",
            PardEvent::DiskReq(_) => "disk_req",
            PardEvent::DiskDone(_) => "disk_done",
            PardEvent::NetFrame(_) => "net_frame",
            PardEvent::Interrupt(_) => "interrupt",
            PardEvent::Pio(_) => "pio",
            PardEvent::PioResp(_) => "pio_resp",
            PardEvent::Tick(_) => "tick",
            PardEvent::CoreCtl(_) => "core_ctl",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // The event enum is the unit of queue traffic; keep it compact.
        fn assert_copy<T: Copy>() {}
        assert_copy::<PardEvent>();
        assert!(
            std::mem::size_of::<PardEvent>() <= 96,
            "PardEvent grew to {} bytes; keep queue traffic lean",
            std::mem::size_of::<PardEvent>()
        );
    }

    #[test]
    fn tick_kinds_compare() {
        assert_eq!(TickKind::Dram, TickKind::Dram);
        assert_ne!(TickKind::Dram, TickKind::Ide);
    }

    #[test]
    fn ds_attribution_and_labels() {
        use crate::packet::{MemKind, PacketIdGen};
        use crate::{DsId, LAddr};
        use pard_sim::{ComponentId, Time};

        let mut ids = PacketIdGen::new();
        let pkt = MemPacket {
            id: ids.next_id(),
            ds: DsId::new(3),
            addr: LAddr::new(0x40),
            kind: MemKind::Read,
            size: 64,
            reply_to: ComponentId::UNWIRED,
            issued_at: Time::ZERO,
            dma: false,
        };
        let ev = PardEvent::MemReq(pkt);
        assert_eq!(ev.ds(), Some(DsId::new(3)));
        assert_eq!(ev.kind_label(), "mem_req");
        let tick = PardEvent::Tick(TickKind::Dram);
        assert_eq!(tick.ds(), None);
        assert_eq!(tick.kind_label(), "tick");
    }
}
