//! LDom-physical and machine-physical addresses.
//!
//! PARD partitions one server into multiple fully-virtualised LDoms, each of
//! which runs an *unmodified* OS and therefore sees a physical address space
//! starting at zero. Two different LDoms may issue requests for the *same*
//! numeric address; the pair `(DS-id, address)` is what uniquely names data
//! (paper §4.2, footnote 4). The memory control plane translates an
//! LDom-physical address to a machine (DRAM) physical address using its
//! parameter table.
//!
//! The two newtypes here make that distinction impossible to confuse in
//! code: caches index by [`LAddr`] (plus DS-id), the DRAM bank mapping uses
//! [`MAddr`].

use std::fmt;
use std::ops::{Add, Sub};

/// Bytes per cache line on the Table 2 platform.
pub const CACHE_LINE_BYTES: u64 = 64;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// The zero address.
            pub const ZERO: $name = $name(0);

            /// Creates an address from a raw byte offset.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw byte offset.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// This address rounded down to its cache-line base.
            #[inline]
            pub const fn line_base(self) -> Self {
                $name(self.0 & !(CACHE_LINE_BYTES - 1))
            }

            /// The cache-line number containing this address.
            #[inline]
            pub const fn line_number(self) -> u64 {
                self.0 / CACHE_LINE_BYTES
            }

            /// Whether this address is cache-line aligned.
            #[inline]
            pub const fn is_line_aligned(self) -> bool {
                self.0 % CACHE_LINE_BYTES == 0
            }

            /// Checked addition of a byte offset.
            #[inline]
            pub fn checked_add(self, bytes: u64) -> Option<Self> {
                self.0.checked_add(bytes).map($name)
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_newtype! {
    /// An **LDom-physical** address: what an unmodified guest OS sees.
    ///
    /// Every LDom's address space starts at zero. An `LAddr` is only
    /// meaningful together with the DS-id of the LDom that issued it.
    ///
    /// # Example
    ///
    /// ```
    /// use pard_icn::LAddr;
    /// let a = LAddr::new(0x1234);
    /// assert_eq!(a.line_base(), LAddr::new(0x1200));
    /// assert_eq!(a.line_number(), 0x48);
    /// ```
    LAddr
}

addr_newtype! {
    /// A **machine-physical** (DRAM) address, produced by the memory
    /// control plane's per-DS-id address translation.
    ///
    /// # Example
    ///
    /// ```
    /// use pard_icn::MAddr;
    /// let a = MAddr::new(0x8000_0040);
    /// assert!(a.is_line_aligned());
    /// ```
    MAddr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        let a = LAddr::new(127);
        assert_eq!(a.line_base(), LAddr::new(64));
        assert_eq!(a.line_number(), 1);
        assert!(!a.is_line_aligned());
        assert!(LAddr::new(128).is_line_aligned());
    }

    #[test]
    fn arithmetic() {
        let a = MAddr::new(100);
        assert_eq!(a + 28, MAddr::new(128));
        assert_eq!(MAddr::new(128) - a, 28);
        assert_eq!(a.checked_add(u64::MAX), None);
        assert_eq!(a.checked_add(28), Some(MAddr::new(128)));
    }

    #[test]
    fn formatting() {
        assert_eq!(format!("{}", LAddr::new(0x40)), "0x40");
        assert_eq!(format!("{:?}", MAddr::new(0x40)), "MAddr(0x40)");
        assert_eq!(format!("{:x}", MAddr::new(0x40)), "40");
    }

    #[test]
    fn types_are_distinct() {
        // This test documents intent: LAddr and MAddr cannot be mixed
        // without an explicit conversion through the control plane.
        fn takes_laddr(_: LAddr) {}
        takes_laddr(LAddr::new(1));
    }
}
