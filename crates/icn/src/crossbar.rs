//! The on-chip crossbar between cores and the shared LLC.

use std::collections::HashMap;

use pard_sim::{audit, fault, Component, ComponentId, Ctx, Time};

use crate::clock::cpu_cycles;
use crate::event::PardEvent;
use crate::link::Link;

/// Configuration of the [`Crossbar`].
#[derive(Debug, Clone)]
pub struct CrossbarConfig {
    /// Traversal latency per packet (the NoC hop the paper's Figure 1
    /// draws between the cores and the LLC).
    pub latency: Time,
    /// Per-source-port bandwidth in bytes per nanosecond. The default of
    /// 128 B/ns (one 64 B line per 2 GHz cycle) makes the port wire
    /// effectively non-blocking for cache-line traffic, matching the
    /// paper's platform where the crossbar is never the bottleneck.
    pub port_bytes_per_ns: f64,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig {
            latency: cpu_cycles(4),
            port_bytes_per_ns: 128.0,
        }
    }
}

/// The request crossbar: cores' memory requests traverse it to reach the
/// LLC, serialised per source port by a [`Link`].
///
/// Responses return on the dedicated response network (the LLC answers
/// the requester directly), as in the OpenSPARC T1's separate forward and
/// return crossbars — so this component only sees request traffic.
///
/// Source ports are identified by the request's `reply_to` (the
/// requesting component); a port's link is created on first use.
pub struct Crossbar {
    cfg: CrossbarConfig,
    dst: ComponentId,
    ports: HashMap<u32, Link>,
    forwarded: u64,
}

impl Crossbar {
    /// Creates a crossbar forwarding to `dst` (the LLC).
    pub fn new(cfg: CrossbarConfig, dst: ComponentId) -> Self {
        Crossbar {
            cfg,
            dst,
            ports: HashMap::new(),
            forwarded: 0,
        }
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Component<PardEvent> for Crossbar {
    fn name(&self) -> &str {
        "crossbar"
    }

    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        match ev {
            PardEvent::MemReq(pkt) => {
                if audit::enabled() {
                    // The crossbar is the injection point of the core →
                    // LLC conservation domain; the LLC retires the entry.
                    audit::packet_inject(
                        "xbar",
                        pkt.reply_to.raw(),
                        pkt.id.0,
                        pkt.ds.raw(),
                        ctx.now(),
                    );
                }
                let latency = self.cfg.latency;
                let bw = self.cfg.port_bytes_per_ns;
                let port = self
                    .ports
                    .entry(pkt.reply_to.raw())
                    .or_insert_with(|| Link::new(latency, bw));
                let mut deliver_at = port.delivery_time(ctx.now(), pkt.size);
                if fault::enabled(fault::FaultClass::Xbar) {
                    // Injected port backpressure: the packet is delivered
                    // late, never dropped — the xbar conservation domain
                    // sees the same inject/retire pair.
                    deliver_at += fault::xbar_extra_delay(pkt.reply_to.raw(), ctx.now());
                }
                self.forwarded += 1;
                ctx.send_at(self.dst, deliver_at, PardEvent::MemReq(pkt));
            }
            other => audit::unexpected_event(
                "crossbar",
                other.kind_label(),
                ctx.now(),
                other.ds().map_or(u16::MAX, crate::ds::DsId::raw),
            ),
        }
    }

    pard_sim::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LAddr;
    use crate::ds::DsId;
    use crate::packet::{MemKind, MemPacket, PacketId};
    use pard_sim::Simulation;

    struct Sink {
        arrivals: Vec<(u64, Time)>,
    }

    impl Component<PardEvent> for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
            if let PardEvent::MemReq(pkt) = ev {
                self.arrivals.push((pkt.id.0, ctx.now()));
            }
        }
        pard_sim::impl_as_any!();
    }

    fn pkt(id: u64, from: ComponentId) -> PardEvent {
        PardEvent::MemReq(MemPacket {
            id: PacketId(id),
            ds: DsId::new(1),
            addr: LAddr::new(0x40),
            kind: MemKind::Read,
            size: 64,
            reply_to: from,
            issued_at: Time::ZERO,
            dma: false,
        })
    }

    #[test]
    fn adds_the_configured_hop_latency() {
        let mut sim: Simulation<PardEvent> = Simulation::new();
        let sink = sim.add_component(Box::new(Sink { arrivals: vec![] }));
        let xbar = sim.add_component(Box::new(Crossbar::new(CrossbarConfig::default(), sink)));
        let core = ComponentId::from_raw(99);
        sim.post(xbar, Time::ZERO, pkt(1, core));
        sim.run_until(Time::from_us(1));
        sim.with_component::<Sink, _, _>(sink, |s| {
            // 64 B at 128 B/ns = 0.5 ns wire + 2 ns latency.
            assert_eq!(s.arrivals, vec![(1, Time::from_units(10))]);
        });
    }

    #[test]
    fn ports_serialise_independently() {
        let cfg = CrossbarConfig {
            latency: Time::ZERO,
            port_bytes_per_ns: 64.0, // 1 ns per line
        };
        let mut sim: Simulation<PardEvent> = Simulation::new();
        let sink = sim.add_component(Box::new(Sink { arrivals: vec![] }));
        let xbar = sim.add_component(Box::new(Crossbar::new(cfg, sink)));
        let (a, b) = (ComponentId::from_raw(10), ComponentId::from_raw(11));
        // Two back-to-back packets from port A, one from port B.
        sim.post(xbar, Time::ZERO, pkt(1, a));
        sim.post(xbar, Time::ZERO, pkt(2, a));
        sim.post(xbar, Time::ZERO, pkt(3, b));
        sim.run_until(Time::from_us(1));
        sim.with_component::<Sink, _, _>(sink, |s| {
            let t = |id: u64| s.arrivals.iter().find(|&&(i, _)| i == id).unwrap().1;
            assert_eq!(t(1), Time::from_ns(1));
            assert_eq!(t(2), Time::from_ns(2), "same port serialises");
            assert_eq!(t(3), Time::from_ns(1), "other port unaffected");
        });
        sim.with_component::<Crossbar, _, _>(xbar, |x| assert_eq!(x.forwarded(), 3));
    }
}
