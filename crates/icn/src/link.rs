//! A serialising point-to-point link / bus model.

use pard_sim::Time;

/// A point-to-point link with fixed per-hop latency and finite bandwidth.
///
/// Components embed a `Link` on each of their output ports; before sending
/// an event they ask the link when the payload can be delivered. The link
/// serialises transfers: a payload of `n` bytes occupies the wire for
/// `n / bytes_per_unit` time units after the previous transfer completes.
///
/// # Example
///
/// ```
/// use pard_icn::Link;
/// use pard_sim::Time;
///
/// // 64 bytes/ns at 1 ns latency ≈ a 64-byte-per-cycle on-chip link.
/// let mut link = Link::new(Time::from_ns(1), 64.0);
/// let t0 = link.delivery_time(Time::ZERO, 64);
/// let t1 = link.delivery_time(Time::ZERO, 64);
/// assert!(t1 > t0, "second transfer waits for the wire");
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    latency: Time,
    bytes_per_ns: f64,
    wire_free_at: Time,
}

impl Link {
    /// Creates a link with `latency` per hop and `bytes_per_ns` bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_ns` is not strictly positive.
    pub fn new(latency: Time, bytes_per_ns: f64) -> Self {
        assert!(bytes_per_ns > 0.0, "link bandwidth must be positive");
        Link {
            latency,
            bytes_per_ns,
            wire_free_at: Time::ZERO,
        }
    }

    /// An effectively infinite-bandwidth link with fixed latency.
    pub fn latency_only(latency: Time) -> Self {
        Link::new(latency, f64::INFINITY)
    }

    /// The per-hop latency.
    pub fn latency(&self) -> Time {
        self.latency
    }

    /// Reserves the wire for a `bytes`-sized payload starting no earlier
    /// than `now`, returning the time at which the payload arrives at the
    /// far end.
    pub fn delivery_time(&mut self, now: Time, bytes: u32) -> Time {
        let start = now.max(self.wire_free_at);
        let occupancy_ns = f64::from(bytes) / self.bytes_per_ns;
        let occupancy = Time::from_units((occupancy_ns * Time::UNITS_PER_NS as f64).ceil() as u64);
        self.wire_free_at = start + occupancy;
        self.wire_free_at + self.latency
    }

    /// Time at which the wire next becomes free.
    pub fn wire_free_at(&self) -> Time {
        self.wire_free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_only_adds_fixed_delay() {
        let mut l = Link::latency_only(Time::from_ns(3));
        assert_eq!(l.delivery_time(Time::from_ns(10), 4096), Time::from_ns(13));
        assert_eq!(l.delivery_time(Time::from_ns(10), 4096), Time::from_ns(13));
    }

    #[test]
    fn bandwidth_serialises_back_to_back_transfers() {
        // 1 byte per ns, zero latency: 10-byte payloads take 10 ns each.
        let mut l = Link::new(Time::ZERO, 1.0);
        assert_eq!(l.delivery_time(Time::ZERO, 10), Time::from_ns(10));
        assert_eq!(l.delivery_time(Time::ZERO, 10), Time::from_ns(20));
        // After the wire drains, transfers start immediately again.
        assert_eq!(l.delivery_time(Time::from_ns(100), 10), Time::from_ns(110));
        assert_eq!(l.wire_free_at(), Time::from_ns(110));
    }

    #[test]
    fn partial_units_round_up() {
        // 3 bytes at 2 bytes/ns = 1.5 ns -> 6 quarter-ns units exactly.
        let mut l = Link::new(Time::ZERO, 2.0);
        assert_eq!(l.delivery_time(Time::ZERO, 3), Time::from_units(6));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = Link::new(Time::ZERO, 0.0);
    }
}
