//! The differentiated-service identifier.

use std::fmt;

/// A differentiated-service identifier (DS-id).
///
/// A DS-id names a high-level entity — in this reproduction, a *logical
/// domain* (LDom): a submachine owning CPU cores, memory capacity, and
/// storage. The platform resource manager assigns one DS-id per LDom; every
/// request source (CPU core, DMA engine, v-NIC) holds a **tag register**
/// whose DS-id is attached to each packet it generates, and the tag travels
/// with the packet for its whole lifetime (paper §3 ①).
///
/// The RTL implementation used 8-bit tags; the architecture supports up to
/// 16 bits (the CPA `addr` field reserves 16 bits for the DS-id, Fig. 6),
/// which is what we use here.
///
/// # Example
///
/// ```
/// use pard_icn::DsId;
/// let ds = DsId::new(2);
/// assert_eq!(ds.index(), 2);
/// assert_eq!(ds.to_string(), "ds2");
/// assert_eq!(DsId::DEFAULT.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DsId(u16);

impl DsId {
    /// The default tag, used for packets generated before any LDom exists
    /// (e.g. platform bring-up) — the paper's parameter-table row "default".
    pub const DEFAULT: DsId = DsId(0);

    /// Creates a DS-id from its raw 16-bit value.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        DsId(raw)
    }

    /// The raw 16-bit tag value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The tag as a table-row index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for DsId {
    fn from(raw: u16) -> Self {
        DsId(raw)
    }
}

impl From<DsId> for u16 {
    fn from(ds: DsId) -> Self {
        ds.0
    }
}

impl fmt::Debug for DsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DsId({})", self.0)
    }
}

impl fmt::Display for DsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ds{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        assert_eq!(DsId::DEFAULT, DsId::new(0));
        assert_eq!(DsId::default(), DsId::DEFAULT);
    }

    #[test]
    fn conversions_round_trip() {
        let ds: DsId = 7u16.into();
        let raw: u16 = ds.into();
        assert_eq!(raw, 7);
        assert_eq!(ds.index(), 7);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(DsId::new(1) < DsId::new(2));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", DsId::new(3)), "DsId(3)");
        assert_eq!(format!("{}", DsId::new(3)), "ds3");
    }
}
