//! Static domain planning for the partitioned kernel.
//!
//! The conservative parallel kernel
//! ([`PartitionedSimulation`](pard_sim::PartitionedSimulation)) needs three
//! facts about the machine, all derivable from the ICN topology at build
//! time:
//!
//! 1. a **domain map** — which domain owns each component,
//! 2. an optional **serial domain** — the one (the PRM) that must run with
//!    exclusive access to the machine because its triggers read statistics
//!    owned by other domains,
//! 3. the **lookahead** — the minimum latency of any link that crosses a
//!    domain boundary, which bounds how far domains can run apart.
//!
//! [`DomainPlan`] is the builder for those facts. The system model assigns
//! components as it wires them and declares every cross-domain [`Link`]'s
//! latency; the plan min-combines declared latencies per directed domain
//! pair and derives the global lookahead. Components connected by
//! zero-latency edges (same-cycle coupling, e.g. LLC → memory controller
//! fills) must share a domain — the plan rejects a zero-latency
//! cross-domain declaration because a zero lookahead admits no
//! parallelism.
//!
//! [`Link`]: crate::Link

use std::collections::HashMap;

use pard_sim::{ComponentId, Time};

/// A static partition of the component graph into kernel domains.
///
/// # Example
///
/// ```
/// use pard_icn::DomainPlan;
/// use pard_sim::{ComponentId, Time};
///
/// let mut plan = DomainPlan::new();
/// plan.assign(ComponentId::from_raw(0), 0); // memory controller
/// plan.assign(ComponentId::from_raw(1), 1); // core
/// plan.declare_link(1, 0, Time::from_ns(2)); // core → mem request path
/// plan.declare_link(0, 1, Time::from_ns(2)); // fill path back
/// assert_eq!(plan.lookahead(), Time::from_ns(2));
/// let (domain_of, serial, lookahead) = plan.into_parts();
/// assert_eq!(domain_of, vec![0, 1]);
/// assert_eq!(serial, None);
/// assert_eq!(lookahead, Time::from_ns(2));
/// ```
#[derive(Debug, Default, Clone)]
pub struct DomainPlan {
    /// Owning domain per component raw id; `u32::MAX` marks unassigned.
    domain_of: Vec<u32>,
    serial: Option<u32>,
    /// Minimum declared latency per directed cross-domain pair.
    min_latency: HashMap<(u32, u32), Time>,
}

/// Placeholder for components the plan has not been told about.
const UNASSIGNED: u32 = u32::MAX;

impl DomainPlan {
    /// An empty plan.
    pub fn new() -> Self {
        DomainPlan::default()
    }

    /// Assigns component `id` to `domain`. Components may be assigned in
    /// any order; gaps are tolerated until [`into_parts`](Self::into_parts).
    pub fn assign(&mut self, id: ComponentId, domain: u32) {
        assert!(domain != UNASSIGNED, "domain index {domain} is reserved");
        let idx = id.raw() as usize;
        if idx >= self.domain_of.len() {
            self.domain_of.resize(idx + 1, UNASSIGNED);
        }
        self.domain_of[idx] = domain;
    }

    /// Marks `domain` as the barrier-serialized domain (the PRM's).
    pub fn set_serial(&mut self, domain: u32) {
        self.serial = Some(domain);
    }

    /// Declares a communication edge whose endpoints live in `from` and
    /// `to`, with the given link `latency`. Same-domain declarations are
    /// ignored (intra-domain latency does not constrain the epoch width);
    /// repeated declarations min-combine.
    ///
    /// # Panics
    ///
    /// Panics on a zero-latency cross-domain edge: such components are
    /// same-cycle coupled and must share a domain.
    pub fn declare_link(&mut self, from: u32, to: u32, latency: Time) {
        if from == to {
            return;
        }
        assert!(
            latency > Time::ZERO,
            "zero-latency edge between domains {from} and {to}: \
             same-cycle coupled components must share a domain"
        );
        self.min_latency
            .entry((from, to))
            .and_modify(|l| *l = (*l).min(latency))
            .or_insert(latency);
    }

    /// The minimum declared latency from `from` to `to`, if any edge was
    /// declared for that directed pair.
    pub fn min_latency(&self, from: u32, to: u32) -> Option<Time> {
        self.min_latency.get(&(from, to)).copied()
    }

    /// The global lookahead: the minimum latency over every declared
    /// cross-domain edge.
    ///
    /// # Panics
    ///
    /// Panics if no cross-domain edge was declared — a plan with more than
    /// one domain must declare how they talk.
    pub fn lookahead(&self) -> Time {
        self.min_latency
            .values()
            .copied()
            .min()
            .expect("no cross-domain link declared; the plan has no lookahead")
    }

    /// Number of distinct domains assigned so far.
    pub fn domain_count(&self) -> usize {
        let mut seen: Vec<u32> = self
            .domain_of
            .iter()
            .copied()
            .filter(|&d| d != UNASSIGNED)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// The owning domain of component `id`, if assigned.
    pub fn domain_of(&self, id: ComponentId) -> Option<u32> {
        self.domain_of
            .get(id.raw() as usize)
            .copied()
            .filter(|&d| d != UNASSIGNED)
    }

    /// Finishes the plan, returning the raw parts
    /// `(domain map, serial domain, lookahead)` that
    /// [`PartitionedSimulation::new`](pard_sim::PartitionedSimulation::new)
    /// takes.
    ///
    /// # Panics
    ///
    /// Panics if any component in the map's range is unassigned, or if no
    /// cross-domain link was declared.
    pub fn into_parts(self) -> (Vec<u32>, Option<u32>, Time) {
        let lookahead = self.lookahead();
        for (idx, &d) in self.domain_of.iter().enumerate() {
            assert!(
                d != UNASSIGNED,
                "component {idx} has no domain assignment"
            );
        }
        (self.domain_of, self.serial, lookahead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_min_combines_and_derives_lookahead() {
        let mut plan = DomainPlan::new();
        plan.assign(ComponentId::from_raw(0), 0);
        plan.assign(ComponentId::from_raw(2), 1);
        plan.assign(ComponentId::from_raw(1), 0);
        plan.set_serial(0);
        plan.declare_link(0, 1, Time::from_ns(4));
        plan.declare_link(0, 1, Time::from_ns(2)); // min-combines
        plan.declare_link(1, 0, Time::from_ns(3));
        plan.declare_link(1, 1, Time::ZERO); // same-domain: ignored
        assert_eq!(plan.min_latency(0, 1), Some(Time::from_ns(2)));
        assert_eq!(plan.min_latency(1, 0), Some(Time::from_ns(3)));
        assert_eq!(plan.min_latency(1, 2), None);
        assert_eq!(plan.lookahead(), Time::from_ns(2));
        assert_eq!(plan.domain_count(), 2);
        assert_eq!(plan.domain_of(ComponentId::from_raw(2)), Some(1));
        let (map, serial, lookahead) = plan.into_parts();
        assert_eq!(map, vec![0, 0, 1]);
        assert_eq!(serial, Some(0));
        assert_eq!(lookahead, Time::from_ns(2));
    }

    #[test]
    #[should_panic(expected = "must share a domain")]
    fn zero_latency_cross_domain_edge_rejected() {
        let mut plan = DomainPlan::new();
        plan.declare_link(0, 1, Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "no domain assignment")]
    fn unassigned_component_rejected() {
        let mut plan = DomainPlan::new();
        plan.assign(ComponentId::from_raw(1), 0);
        plan.declare_link(0, 1, Time::from_ns(1));
        let _ = plan.into_parts();
    }
}
