//! # pard-icn — the intra-computer network
//!
//! PARD's founding observation is that *a computer is inherently a network*:
//! CPU cores, caches, memory controllers, and I/O devices communicate via
//! packets over the NoC, memory bus, and PCIe. This crate defines that
//! network for the reproduction:
//!
//! * [`DsId`] — the differentiated-service tag attached to every packet
//!   (the paper's §3 ① tagging mechanism),
//! * address newtypes ([`LAddr`], [`MAddr`]) distinguishing LDom-physical
//!   from machine-physical addresses (each LDom sees an address space
//!   starting at zero; the memory control plane translates),
//! * the packet vocabulary ([`MemPacket`], [`DiskRequest`],
//!   [`InterruptPacket`], …) and the system-wide event enum [`PardEvent`]
//!   that every simulated component handles,
//! * clock-domain constants for the paper's Table 2 platform
//!   ([`CPU_CYCLE`], [`MEM_CYCLE`]),
//! * a serialising [`Link`] model for bus latency/bandwidth.
//!
//! # Paper mapping
//!
//! This crate is the "computer is inherently a network" substrate of the
//! PAPER.md design overview: the paper's §3 mechanism ① (DS-id tagging of
//! every memory / I/O / DMA / interrupt packet) and the ICN fabric those
//! tags ride on. The crossbar and link models carry the fault layer's
//! port-backpressure hook (DESIGN.md §11); packet conservation and DS-id
//! stability across every hop are the audit layer's core invariants
//! (DESIGN.md §10).

#![warn(missing_docs)]

mod addr;
mod clock;
mod crossbar;
mod domains;
mod ds;
mod event;
mod link;
mod packet;

pub use addr::{LAddr, MAddr, CACHE_LINE_BYTES};
pub use clock::{cpu_cycles, mem_cycles, to_cpu_cycles, to_mem_cycles, CPU_CYCLE, MEM_CYCLE};
pub use crossbar::{Crossbar, CrossbarConfig};
pub use domains::DomainPlan;
pub use ds::DsId;
pub use event::{CoreCommand, PardEvent, TickKind};
pub use link::Link;
pub use packet::{
    DiskDone, DiskKind, DiskRequest, InterruptPacket, MemKind, MemPacket, MemResp, NetFrame,
    PacketId, PacketIdGen, PioPacket, PioResp,
};
