//! Clock domains of the Table 2 platform.
//!
//! The simulated server runs its cores at 2 GHz and its DDR3-1600 memory
//! bus at 800 MHz (tCK = 1.25 ns). Both are exact multiples of the kernel's
//! quarter-nanosecond base unit, so cycle arithmetic is lossless.

use pard_sim::Time;

/// One 2 GHz CPU cycle (0.5 ns).
pub const CPU_CYCLE: Time = Time::from_units(2);

/// One DDR3-1600 I/O-clock cycle (tCK = 1.25 ns).
pub const MEM_CYCLE: Time = Time::from_units(5);

/// `n` CPU cycles as a [`Time`].
///
/// # Example
///
/// ```
/// use pard_icn::cpu_cycles;
/// assert_eq!(cpu_cycles(2).as_ns(), 1.0);
/// ```
#[inline]
pub const fn cpu_cycles(n: u64) -> Time {
    Time::from_units(n * CPU_CYCLE.units())
}

/// `n` memory cycles as a [`Time`].
///
/// # Example
///
/// ```
/// use pard_icn::mem_cycles;
/// // The paper's 11-11-11 DDR3 timings: tCL = 13.75 ns.
/// assert_eq!(mem_cycles(11).as_ns(), 13.75);
/// ```
#[inline]
pub const fn mem_cycles(n: u64) -> Time {
    Time::from_units(n * MEM_CYCLE.units())
}

/// A duration expressed in whole CPU cycles (truncating).
#[inline]
pub fn to_cpu_cycles(t: Time) -> u64 {
    t.units() / CPU_CYCLE.units()
}

/// A duration expressed in whole memory cycles (truncating).
#[inline]
pub fn to_mem_cycles(t: Time) -> u64 {
    t.units() / MEM_CYCLE.units()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_lengths_match_table2() {
        assert_eq!(CPU_CYCLE.as_ns(), 0.5);
        assert_eq!(MEM_CYCLE.as_ns(), 1.25);
    }

    #[test]
    fn round_trips() {
        assert_eq!(to_cpu_cycles(cpu_cycles(123)), 123);
        assert_eq!(to_mem_cycles(mem_cycles(456)), 456);
    }

    #[test]
    fn cross_domain_truncation() {
        // 3 memory cycles = 3.75 ns = 7.5 CPU cycles -> truncates to 7.
        assert_eq!(to_cpu_cycles(mem_cycles(3)), 7);
    }
}
