//! Seeded randomized tests of the intra-computer-network primitives.

use pard_icn::{cpu_cycles, mem_cycles, to_cpu_cycles, to_mem_cycles, LAddr, Link, MAddr};
use pard_sim::check::{cases, vec_of, DEFAULT_CASES};
use pard_sim::rng::Rng;
use pard_sim::Time;

/// Cycle conversions round-trip within their own clock domain.
#[test]
fn cycle_round_trips() {
    cases("icn.cycle_round_trips", DEFAULT_CASES, |rng| {
        let n = rng.gen_range(0u64..(1 << 40));
        assert_eq!(to_cpu_cycles(cpu_cycles(n)), n);
        assert_eq!(to_mem_cycles(mem_cycles(n)), n);
    });
}

/// Line math: base ≤ addr, aligned, same line number; two addresses
/// share a line base iff they share a line number.
#[test]
fn line_math_is_consistent() {
    cases("icn.line_math_is_consistent", DEFAULT_CASES, |rng| {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let (la, lb) = (LAddr::new(a), LAddr::new(b));
        assert!(la.line_base().raw() <= a);
        assert!(la.line_base().is_line_aligned());
        assert_eq!(la.line_base().line_number(), la.line_number());
        assert_eq!(
            la.line_base() == lb.line_base(),
            la.line_number() == lb.line_number()
        );
        // The same algebra holds for machine addresses.
        let ma = MAddr::new(a);
        assert_eq!(ma.line_base().raw(), la.line_base().raw());
    });
}

/// Link deliveries are monotone in request order and never earlier
/// than `now + latency`.
#[test]
fn link_serialises_monotonically() {
    cases("icn.link_serialises_monotonically", DEFAULT_CASES, |rng| {
        let latency_ns = rng.gen_range(0u64..100);
        let bw = rng.gen_range(1.0f64..256.0);
        let sends = vec_of(rng, 1..50, |r| {
            (r.gen_range(0u64..1_000), r.gen_range(1u32..4096))
        });
        let mut link = Link::new(Time::from_ns(latency_ns), bw);
        let mut now = Time::ZERO;
        let mut last_delivery = Time::ZERO;
        for &(gap, bytes) in &sends {
            now += Time::from_ns(gap);
            let at = link.delivery_time(now, bytes);
            assert!(at >= now + Time::from_ns(latency_ns));
            assert!(at >= last_delivery, "deliveries reordered");
            last_delivery = at;
        }
    });
}

/// At infinite bandwidth the link is pure latency.
#[test]
fn latency_only_link_adds_constant() {
    cases("icn.latency_only_link_adds_constant", DEFAULT_CASES, |rng| {
        let latency_ns = rng.gen_range(0u64..1000);
        let bytes = rng.gen_range(1u32..65536);
        let mut link = Link::latency_only(Time::from_ns(latency_ns));
        let t0 = link.delivery_time(Time::from_us(1), bytes);
        let t1 = link.delivery_time(Time::from_us(1), bytes);
        assert_eq!(t0, Time::from_us(1) + Time::from_ns(latency_ns));
        assert_eq!(t1, t0);
    });
}
