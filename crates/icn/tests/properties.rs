//! Property-based tests of the intra-computer-network primitives.

use pard_icn::{cpu_cycles, mem_cycles, to_cpu_cycles, to_mem_cycles, LAddr, Link, MAddr};
use pard_sim::Time;
use proptest::prelude::*;

proptest! {
    /// Cycle conversions round-trip within their own clock domain.
    #[test]
    fn cycle_round_trips(n in 0u64..(1 << 40)) {
        prop_assert_eq!(to_cpu_cycles(cpu_cycles(n)), n);
        prop_assert_eq!(to_mem_cycles(mem_cycles(n)), n);
    }

    /// Line math: base ≤ addr, aligned, same line number; two addresses
    /// share a line base iff they share a line number.
    #[test]
    fn line_math_is_consistent(a in any::<u64>(), b in any::<u64>()) {
        let (la, lb) = (LAddr::new(a), LAddr::new(b));
        prop_assert!(la.line_base().raw() <= a);
        prop_assert!(la.line_base().is_line_aligned());
        prop_assert_eq!(la.line_base().line_number(), la.line_number());
        prop_assert_eq!(la.line_base() == lb.line_base(), la.line_number() == lb.line_number());
        // The same algebra holds for machine addresses.
        let ma = MAddr::new(a);
        prop_assert_eq!(ma.line_base().raw(), la.line_base().raw());
    }

    /// Link deliveries are monotone in request order and never earlier
    /// than `now + latency`.
    #[test]
    fn link_serialises_monotonically(
        latency_ns in 0u64..100,
        bw in 1.0f64..256.0,
        sends in prop::collection::vec((0u64..1_000, 1u32..4096), 1..50),
    ) {
        let mut link = Link::new(Time::from_ns(latency_ns), bw);
        let mut now = Time::ZERO;
        let mut last_delivery = Time::ZERO;
        for &(gap, bytes) in &sends {
            now += Time::from_ns(gap);
            let at = link.delivery_time(now, bytes);
            prop_assert!(at >= now + Time::from_ns(latency_ns));
            prop_assert!(at >= last_delivery, "deliveries reordered");
            last_delivery = at;
        }
    }

    /// At infinite bandwidth the link is pure latency.
    #[test]
    fn latency_only_link_adds_constant(latency_ns in 0u64..1000, bytes in 1u32..65536) {
        let mut link = Link::latency_only(Time::from_ns(latency_ns));
        let t0 = link.delivery_time(Time::from_us(1), bytes);
        let t1 = link.delivery_time(Time::from_us(1), bytes);
        prop_assert_eq!(t0, Time::from_us(1) + Time::from_ns(latency_ns));
        prop_assert_eq!(t1, t0);
    }
}
