//! Durable paged binary trace store — the long-horizon alternative to the
//! JSONL sink.
//!
//! The JSONL tracer ([`crate::trace`]) renders one self-contained JSON
//! object per event: ideal for eyeballs and `grep`, hopeless for the
//! million-user, hours-of-simulated-time runs the roadmap is building
//! toward — the rendered text is ~5x the information content, and the only
//! bounded-memory consumer was a ring that silently dropped the oldest
//! evidence. This module is the storage subsystem that replaces that ring
//! as the durable record:
//!
//! * **Fixed-size pages.** A `.ptr` file is a header page followed by
//!   append-only data pages of the same fixed size. Every page is
//!   self-describing (magic, payload length, event count, CRC-32, the
//!   ordinal and timestamp of its first event), so any page can be decoded
//!   without reading any other page — the property that makes replay
//!   seekable and crash recovery page-granular.
//! * **Varint/delta encoding.** Event timestamps are zigzag-varint deltas
//!   against the previous event in the same page; event names and field
//!   keys go through a per-page string dictionary, so the hot categories
//!   (`kernel`, `llc`, `dram`) cost a handful of bytes per event instead
//!   of a rendered line.
//! * **A small buffer manager with ordered flush.** The writer encodes
//!   into an in-memory page frame; sealed pages queue in a bounded pool
//!   and are written strictly in page order (WAL-style: page *n* is never
//!   deferred behind page *n+1*), so a crash leaves a valid page prefix
//!   plus at most one torn tail that [`TraceReader`] detects by CRC and
//!   reports instead of misparsing.
//! * **Seekable, bounded-memory replay.** [`TraceReader`] streams one
//!   page frame at a time regardless of trace length, and
//!   [`TraceReader::seek_event`] / [`TraceReader::seek_time`] binary-search
//!   the page headers — O(log pages) header reads, never a full scan.
//!
//! The store is format-only: it knows nothing about trace categories or
//! filtering. [`crate::trace`] selects it when `PARD_TRACE` names a
//! `.ptr` path and re-renders decoded events into byte-identical JSONL
//! lines for the tools (see `trace::render_stored`).

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: first eight bytes of every trace store.
pub const MAGIC: [u8; 8] = *b"PARDTRC1";

/// Format version recorded in the file header.
pub const VERSION: u32 = 1;

/// Per-data-page magic (little-endian `u32` of `b"PTpg"`).
pub const PAGE_MAGIC: u32 = u32::from_le_bytes(*b"PTpg");

/// Bytes of every data page consumed by the page header.
pub const PAGE_HEADER_LEN: usize = 32;

/// Default page size in bytes (a few hundred encoded events per page).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Smallest / largest accepted page size.
pub const MIN_PAGE_SIZE: usize = 512;
/// Largest accepted page size.
pub const MAX_PAGE_SIZE: usize = 1 << 20;

/// Default buffer-pool capacity, in sealed pages buffered before a write.
pub const DEFAULT_POOL_PAGES: usize = 8;

/// Writer configuration: page geometry and buffer-pool depth.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Page size in bytes (`MIN_PAGE_SIZE..=MAX_PAGE_SIZE`).
    pub page_size: usize,
    /// Sealed pages buffered before the pool writes them out in order.
    pub pool_pages: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            page_size: DEFAULT_PAGE_SIZE,
            pool_pages: DEFAULT_POOL_PAGES,
        }
    }
}

impl StoreConfig {
    /// Validates the configuration, returning a message naming the bad
    /// field.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_size < MIN_PAGE_SIZE || self.page_size > MAX_PAGE_SIZE {
            return Err(format!(
                "page_size {} out of range ({MIN_PAGE_SIZE}..={MAX_PAGE_SIZE})",
                self.page_size
            ));
        }
        if self.pool_pages == 0 {
            return Err("pool_pages must be >= 1".to_string());
        }
        Ok(())
    }
}

/// An owned field value of a decoded (or staged) trace event.
///
/// Mirrors `trace::TraceVal`, with strings owned so decoded events are
/// self-contained.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// An unsigned counter / identifier.
    U(u64),
    /// A floating-point measurement (bit-exact through the store).
    F(f64),
    /// A string label.
    S(String),
    /// A boolean flag.
    B(bool),
}

impl Val {
    /// A borrowed view, as the writer consumes.
    pub fn as_ref(&self) -> ValRef<'_> {
        match self {
            Val::U(u) => ValRef::U(*u),
            Val::F(f) => ValRef::F(*f),
            Val::S(s) => ValRef::S(s),
            Val::B(b) => ValRef::B(*b),
        }
    }
}

/// A borrowed field value, as accepted by [`TraceWriter::append`].
#[derive(Debug, Clone, Copy)]
pub enum ValRef<'a> {
    /// An unsigned counter / identifier.
    U(u64),
    /// A floating-point measurement.
    F(f64),
    /// A string label.
    S(&'a str),
    /// A boolean flag.
    B(bool),
}

/// One decoded trace event.
///
/// `cat` is the raw category byte (`trace::TraceCat as u8`); the store
/// does not interpret it — `trace::render_stored` validates it when
/// re-rendering JSONL.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Raw category byte.
    pub cat: u8,
    /// Timestamp in simulation time units.
    pub time: u64,
    /// DS-id the event is attributed to.
    pub ds: u16,
    /// Event name.
    pub event: String,
    /// Key/value fields, in emission order.
    pub fields: Vec<(String, Val)>,
}

impl Event {
    /// Borrowed `(key, value)` views of the fields, for re-encoding.
    pub fn field_refs(&self) -> impl ExactSizeIterator<Item = (&str, ValRef<'_>)> + Clone {
        self.fields.iter().map(|(k, v)| (k.as_str(), v.as_ref()))
    }
}

/// Reader-side failure classification.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file header is not a valid trace store.
    BadHeader(String),
    /// A page in the middle of the file fails validation while later
    /// pages are valid — real corruption, not a torn append tail.
    CorruptPage {
        /// Zero-based data-page index.
        page: u64,
        /// What failed.
        detail: String,
    },
    /// A record inside a CRC-valid page does not decode.
    BadRecord {
        /// Zero-based data-page index.
        page: u64,
        /// What failed.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadHeader(d) => write!(f, "bad store header: {d}"),
            StoreError::CorruptPage { page, detail } => {
                write!(f, "corrupt page {page}: {detail}")
            }
            StoreError::BadRecord { page, detail } => {
                write!(f, "bad record in page {page}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Description of a torn append tail found (and skipped) by the reader.
#[derive(Debug, Clone)]
pub struct TornTail {
    /// Zero-based index of the first unreadable data page.
    pub page: u64,
    /// Events successfully decoded before the tear.
    pub events_recovered: u64,
    /// Bytes from the tear to end-of-file.
    pub trailing_bytes: u64,
    /// Why the tail page was rejected.
    pub detail: String,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "torn tail at page {}: {} ({} events recovered, {} trailing bytes discarded)",
            self.page, self.detail, self.events_recovered, self.trailing_bytes
        )
    }
}

// ---------------------------------------------------------------------------
// varint / zigzag / crc32 primitives
// ---------------------------------------------------------------------------

/// Appends `v` as a LEB128 varint.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `buf[*pos..]`.
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err("varint runs past page payload".to_string());
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err("varint overflows u64".to_string());
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag maps a wrapping u64 delta so small magnitudes (either sign)
/// encode short.
fn zigzag(v: u64) -> u64 {
    let s = v as i64;
    ((s << 1) ^ (s >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> u64 {
    ((v >> 1) ^ (v & 1).wrapping_neg()) as u64
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) over `data`, the per-page payload checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// record encoding
// ---------------------------------------------------------------------------

const TAG_U: u8 = 0;
const TAG_F: u8 = 1;
const TAG_S: u8 = 2;
const TAG_B_TRUE: u8 = 3;
const TAG_B_FALSE: u8 = 4;

/// Encodes a string reference: `0` + len + bytes defines a new dictionary
/// entry, `n >= 1` references entry `n-1`.
fn put_str(buf: &mut Vec<u8>, dict: &mut Vec<String>, s: &str) {
    if let Some(i) = dict.iter().position(|d| d == s) {
        put_varint(buf, i as u64 + 1);
    } else {
        put_varint(buf, 0);
        put_varint(buf, s.len() as u64);
        buf.extend_from_slice(s.as_bytes());
        dict.push(s.to_string());
    }
}

fn get_str(buf: &[u8], pos: &mut usize, dict: &mut Vec<String>) -> Result<String, String> {
    let id = get_varint(buf, pos)?;
    if id == 0 {
        let len = get_varint(buf, pos)? as usize;
        let Some(bytes) = buf.get(*pos..*pos + len) else {
            return Err("string runs past page payload".to_string());
        };
        *pos += len;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| "string is not UTF-8".to_string())?
            .to_string();
        dict.push(s.clone());
        Ok(s)
    } else {
        dict.get(id as usize - 1)
            .cloned()
            .ok_or_else(|| format!("string ref {id} beyond dictionary"))
    }
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

/// Append-only writer: encodes events into fixed-size pages through a
/// small ordered-flush buffer pool.
///
/// Dropping the writer flushes best-effort; call [`TraceWriter::finish`]
/// to observe flush errors.
#[derive(Debug)]
pub struct TraceWriter {
    file: File,
    page_size: usize,
    pool_pages: usize,
    /// The page being encoded. `cur[..PAGE_HEADER_LEN]` is reserved for
    /// the header, filled at seal time.
    cur: Vec<u8>,
    /// Sealed pages awaiting their ordered write (bounded by
    /// `pool_pages`).
    sealed: VecDeque<Vec<u8>>,
    /// Recycled page frames.
    free: Vec<Vec<u8>>,
    /// Per-page string dictionary (reset at each seal).
    dict: Vec<String>,
    scratch: Vec<u8>,
    /// Events encoded into the current page.
    cur_events: u32,
    /// Ordinal of the current page's first event.
    cur_first_event: u64,
    /// Timestamp of the current page's first event.
    cur_first_time: u64,
    /// Delta base for the next record.
    prev_time: u64,
    events_total: u64,
    bytes_written: u64,
}

impl TraceWriter {
    /// Creates `path`, writes the file header page, and returns a writer.
    ///
    /// # Errors
    ///
    /// Fails if `config` is invalid (`InvalidInput`) or the file cannot be
    /// created/written.
    pub fn create(path: impl AsRef<Path>, config: StoreConfig) -> io::Result<TraceWriter> {
        config
            .validate()
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidInput, m))?;
        let mut file = File::create(path)?;
        let mut header = vec![0u8; config.page_size];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&(config.page_size as u32).to_le_bytes());
        header[12..16].copy_from_slice(&VERSION.to_le_bytes());
        file.write_all(&header)?;
        Ok(TraceWriter {
            file,
            page_size: config.page_size,
            pool_pages: config.pool_pages,
            cur: vec![0u8; PAGE_HEADER_LEN],
            sealed: VecDeque::new(),
            free: Vec::new(),
            dict: Vec::new(),
            scratch: Vec::new(),
            cur_events: 0,
            cur_first_event: 0,
            cur_first_time: 0,
            prev_time: 0,
            events_total: 0,
            bytes_written: config.page_size as u64,
        })
    }

    /// Events appended so far.
    pub fn events_written(&self) -> u64 {
        self.events_total
    }

    /// File bytes written **and buffered**: header page plus one full page
    /// per sealed-or-current non-empty page (the on-disk size after
    /// [`TraceWriter::finish`]).
    pub fn bytes_total(&self) -> u64 {
        let pending = self.sealed.len() as u64 + u64::from(self.cur_events > 0);
        self.bytes_written + pending * self.page_size as u64
    }

    /// Appends one event.
    ///
    /// `fields` may be consumed twice (the record is re-encoded when it
    /// does not fit the current page), hence `Clone`.
    ///
    /// # Errors
    ///
    /// Propagates pool write failures; rejects an event whose encoding
    /// exceeds a whole page payload (`InvalidInput`).
    pub fn append<'a, I>(
        &mut self,
        cat: u8,
        time: u64,
        ds: u16,
        event: &str,
        fields: I,
    ) -> io::Result<()>
    where
        I: IntoIterator<Item = (&'a str, ValRef<'a>)> + Clone,
        I::IntoIter: ExactSizeIterator,
    {
        if !self.try_encode(cat, time, ds, event, fields.clone()) {
            // Record does not fit the current page: seal it and re-encode
            // against the fresh page (empty dictionary, delta base reset).
            self.seal_page()?;
            if !self.try_encode(cat, time, ds, event, fields) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("trace event {event:?} exceeds one page ({} B)", self.page_size),
                ));
            }
        }
        Ok(())
    }

    /// Encodes one record into the current page; returns `false` (leaving
    /// page state untouched) if it does not fit.
    fn try_encode<'a, I>(&mut self, cat: u8, time: u64, ds: u16, event: &str, fields: I) -> bool
    where
        I: IntoIterator<Item = (&'a str, ValRef<'a>)>,
        I::IntoIter: ExactSizeIterator,
    {
        let dict_mark = self.dict.len();
        let (first_time, prev) = if self.cur_events == 0 {
            (time, time)
        } else {
            (self.cur_first_time, self.prev_time)
        };
        self.scratch.clear();
        put_varint(&mut self.scratch, zigzag(time.wrapping_sub(prev)));
        self.scratch.push(cat);
        put_varint(&mut self.scratch, u64::from(ds));
        // Temporarily move the scratch/dict out to appease the borrow
        // checker (put_str needs both mutably).
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut dict = std::mem::take(&mut self.dict);
        put_str(&mut scratch, &mut dict, event);
        let fields = fields.into_iter();
        put_varint(&mut scratch, fields.len() as u64);
        for (key, val) in fields {
            put_str(&mut scratch, &mut dict, key);
            match val {
                ValRef::U(u) => {
                    scratch.push(TAG_U);
                    put_varint(&mut scratch, u);
                }
                ValRef::F(f) => {
                    scratch.push(TAG_F);
                    scratch.extend_from_slice(&f.to_bits().to_le_bytes());
                }
                ValRef::S(s) => {
                    scratch.push(TAG_S);
                    put_str(&mut scratch, &mut dict, s);
                }
                ValRef::B(b) => scratch.push(if b { TAG_B_TRUE } else { TAG_B_FALSE }),
            }
        }
        self.scratch = scratch;
        self.dict = dict;

        if self.cur.len() + self.scratch.len() > self.page_size {
            self.dict.truncate(dict_mark);
            return false;
        }
        self.cur.extend_from_slice(&self.scratch);
        if self.cur_events == 0 {
            self.cur_first_time = first_time;
            self.cur_first_event = self.events_total;
        }
        self.prev_time = time;
        self.cur_events += 1;
        self.events_total += 1;
        true
    }

    /// Seals the current page (header + CRC + zero padding), queues it in
    /// the pool, and writes pending pages in order once the pool is full.
    fn seal_page(&mut self) -> io::Result<()> {
        if self.cur_events == 0 {
            return Ok(());
        }
        let payload_len = (self.cur.len() - PAGE_HEADER_LEN) as u32;
        let crc = crc32(&self.cur[PAGE_HEADER_LEN..]);
        self.cur[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
        self.cur[4..8].copy_from_slice(&payload_len.to_le_bytes());
        self.cur[8..12].copy_from_slice(&self.cur_events.to_le_bytes());
        self.cur[12..16].copy_from_slice(&crc.to_le_bytes());
        self.cur[16..24].copy_from_slice(&self.cur_first_event.to_le_bytes());
        self.cur[24..32].copy_from_slice(&self.cur_first_time.to_le_bytes());
        self.cur.resize(self.page_size, 0);

        let mut fresh = self.free.pop().unwrap_or_default();
        fresh.clear();
        fresh.resize(PAGE_HEADER_LEN, 0);
        let sealed = std::mem::replace(&mut self.cur, fresh);
        self.sealed.push_back(sealed);
        self.cur_events = 0;
        self.dict.clear();
        if self.sealed.len() >= self.pool_pages {
            self.write_sealed()?;
        }
        Ok(())
    }

    /// Writes every sealed page to the file, strictly in seal order.
    fn write_sealed(&mut self) -> io::Result<()> {
        while let Some(page) = self.sealed.pop_front() {
            self.file.write_all(&page)?;
            self.bytes_written += page.len() as u64;
            self.free.push(page);
        }
        Ok(())
    }

    /// Seals the partial page (if any) and writes everything out, so the
    /// file contains every event appended so far. Appending may continue
    /// afterwards on a fresh page.
    pub fn flush(&mut self) -> io::Result<()> {
        self.seal_page()?;
        self.write_sealed()?;
        self.file.flush()
    }

    /// Flushes and syncs the file. The writer is unusable afterwards only
    /// in the sense that further appends start a new page; callers
    /// normally drop it.
    pub fn finish(&mut self) -> io::Result<()> {
        self.flush()?;
        // Durability point: page data reaches the device before the
        // process claims the trace is complete.
        self.file.sync_all()
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

// ---------------------------------------------------------------------------
// reader
// ---------------------------------------------------------------------------

/// Parsed per-page header.
#[derive(Debug, Clone, Copy)]
struct PageHeader {
    payload_len: u32,
    n_events: u32,
    crc: u32,
    first_event: u64,
    first_time: u64,
}

/// Seekable, bounded-memory reader over a trace store file.
///
/// Memory use is one page frame regardless of trace length; seeks
/// binary-search page headers.
#[derive(Debug)]
pub struct TraceReader {
    file: File,
    page_size: u64,
    /// Whole data-page slots present in the file (a trailing partial
    /// slot, if any, is a torn-tail candidate surfaced during reads).
    pages: u64,
    file_len: u64,
}

impl TraceReader {
    /// Opens and validates `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadHeader`] when the file is not a trace store.
    pub fn open(path: impl AsRef<Path>) -> Result<TraceReader, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut head = [0u8; 16];
        if file_len < 16 {
            return Err(StoreError::BadHeader("file shorter than header".into()));
        }
        file.read_exact(&mut head)?;
        if head[..8] != MAGIC {
            return Err(StoreError::BadHeader("magic mismatch".into()));
        }
        let page_size = u32::from_le_bytes(head[8..12].try_into().unwrap()) as u64;
        let version = u32::from_le_bytes(head[12..16].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::BadHeader(format!("unsupported version {version}")));
        }
        if !(MIN_PAGE_SIZE as u64..=MAX_PAGE_SIZE as u64).contains(&page_size) {
            return Err(StoreError::BadHeader(format!("implausible page size {page_size}")));
        }
        if file_len < page_size {
            return Err(StoreError::BadHeader("truncated header page".into()));
        }
        let pages = (file_len - page_size) / page_size;
        Ok(TraceReader {
            file,
            page_size,
            pages,
            file_len,
        })
    }

    /// The store's page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size as usize
    }

    /// Whole data-page slots in the file (including a torn final page, if
    /// present).
    pub fn data_pages(&self) -> u64 {
        self.pages
    }

    /// Reads data page `idx` into `buf` and validates it.
    fn load_page(&mut self, idx: u64, buf: &mut Vec<u8>) -> Result<PageHeader, String> {
        buf.resize(self.page_size as usize, 0);
        self.file
            .seek(SeekFrom::Start((idx + 1) * self.page_size))
            .map_err(|e| format!("seek: {e}"))?;
        self.file.read_exact(buf).map_err(|e| format!("read: {e}"))?;
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if magic != PAGE_MAGIC {
            return Err("page magic mismatch".to_string());
        }
        let h = PageHeader {
            payload_len: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            n_events: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            crc: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            first_event: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            first_time: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
        };
        let max_payload = self.page_size as usize - PAGE_HEADER_LEN;
        if h.payload_len as usize > max_payload {
            return Err(format!("payload length {} exceeds page", h.payload_len));
        }
        let payload = &buf[PAGE_HEADER_LEN..PAGE_HEADER_LEN + h.payload_len as usize];
        let crc = crc32(payload);
        if crc != h.crc {
            return Err(format!("CRC mismatch (stored {:08x}, computed {crc:08x})", h.crc));
        }
        Ok(h)
    }

    /// Whether any page at or after `idx` validates — distinguishes a torn
    /// append tail (nothing valid follows) from mid-file corruption.
    fn any_valid_page_from(&mut self, idx: u64) -> bool {
        let mut buf = Vec::new();
        (idx..self.pages).any(|i| self.load_page(i, &mut buf).is_ok())
    }

    /// Streams every event from the first page. See [`Events`].
    pub fn events(&mut self) -> Events<'_> {
        Events::new(self, 0, 0, None)
    }

    /// Positions a cursor at the event with global ordinal `ordinal`
    /// (0-based), binary-searching page headers. An ordinal beyond the
    /// recoverable events yields an empty cursor.
    ///
    /// # Errors
    ///
    /// Fails on corrupt (non-tail) pages.
    pub fn seek_event(&mut self, ordinal: u64) -> Result<Events<'_>, StoreError> {
        let page = self.find_page(|h| h.first_event, ordinal)?;
        Ok(Events::new(self, page, ordinal, None))
    }

    /// Positions a cursor at the first event whose time is `>= units`.
    ///
    /// Page-level search assumes time moves forward across pages — true
    /// for any single-run trace (the kernel clock is monotonic; the audit
    /// layer checks it). Multi-run traces in one file are found
    /// best-effort from the page the search lands on.
    ///
    /// # Errors
    ///
    /// Fails on corrupt pages.
    pub fn seek_time(&mut self, units: u64) -> Result<Events<'_>, StoreError> {
        let page = self.find_page(|h| h.first_time, units)?;
        Ok(Events::new(self, page, 0, Some(units)))
    }

    /// Binary search for the last readable page whose `key(header)` is
    /// `<= target` (clamped to the first page).
    fn find_page(
        &mut self,
        key: impl Fn(&PageHeader) -> u64,
        target: u64,
    ) -> Result<u64, StoreError> {
        let mut buf = Vec::new();
        let (mut lo, mut hi) = (0u64, self.pages); // [lo, hi)
        // Shrink `hi` past any torn tail so the search only sees valid
        // headers. The tail is at most pool+1 pages in practice, so this
        // loop is short.
        while hi > lo {
            match self.load_page(hi - 1, &mut buf) {
                Ok(_) => break,
                Err(detail) => {
                    if self.any_valid_page_from(hi) {
                        return Err(StoreError::CorruptPage { page: hi - 1, detail });
                    }
                    hi -= 1;
                }
            }
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let h = self
                .load_page(mid, &mut buf)
                .map_err(|detail| StoreError::CorruptPage { page: mid, detail })?;
            if key(&h) <= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

/// A streaming event cursor holding exactly one page frame.
///
/// Yields `Result<Event, StoreError>`; after `None`, check
/// [`Events::torn_tail`] for a detected (and skipped) torn append tail.
#[derive(Debug)]
pub struct Events<'r> {
    reader: &'r mut TraceReader,
    page: u64,
    buf: Vec<u8>,
    pos: usize,
    payload_end: usize,
    page_events_left: u32,
    dict: Vec<String>,
    prev_time: u64,
    /// Global ordinal of the next event to decode.
    next_ordinal: u64,
    /// Events to silently skip (intra-page part of `seek_event`).
    skip_to: u64,
    /// Events before this time are silently skipped (`seek_time`).
    time_floor: Option<u64>,
    tail: Option<TornTail>,
    decoded: u64,
    failed: bool,
}

impl<'r> Events<'r> {
    fn new(reader: &'r mut TraceReader, page: u64, skip_to: u64, floor: Option<u64>) -> Self {
        Events {
            reader,
            page,
            buf: Vec::new(),
            pos: 0,
            payload_end: 0,
            page_events_left: 0,
            dict: Vec::new(),
            prev_time: 0,
            next_ordinal: 0,
            skip_to,
            time_floor: floor,
            tail: None,
            decoded: 0,
            failed: false,
        }
    }

    /// The torn tail detected at end of iteration, if any.
    pub fn torn_tail(&self) -> Option<&TornTail> {
        self.tail.as_ref()
    }

    /// Events yielded so far (post-skip).
    pub fn events_yielded(&self) -> u64 {
        self.decoded
    }

    /// Loads the next page; returns `false` at end-of-data (setting
    /// `tail` when the end is a torn page rather than the file end).
    fn advance_page(&mut self) -> Result<bool, StoreError> {
        while self.page < self.reader.pages {
            let idx = self.page;
            match self.reader.load_page(idx, &mut self.buf) {
                Ok(h) => {
                    self.page += 1;
                    if h.n_events == 0 {
                        continue;
                    }
                    self.pos = PAGE_HEADER_LEN;
                    self.payload_end = PAGE_HEADER_LEN + h.payload_len as usize;
                    self.page_events_left = h.n_events;
                    self.dict.clear();
                    self.prev_time = h.first_time;
                    self.next_ordinal = h.first_event;
                    return Ok(true);
                }
                Err(detail) => {
                    if self.reader.any_valid_page_from(idx + 1) {
                        return Err(StoreError::CorruptPage { page: idx, detail });
                    }
                    self.tail = Some(TornTail {
                        page: idx,
                        events_recovered: self.next_ordinal,
                        trailing_bytes: self.reader.file_len
                            - (idx + 1) * self.reader.page_size,
                        detail,
                    });
                    return Ok(false);
                }
            }
        }
        // Partial trailing bytes beyond the last whole page slot are a
        // torn tail too (the crash happened mid-write of the next page).
        let tail_bytes = self.reader.file_len - (self.reader.pages + 1) * self.reader.page_size;
        if tail_bytes > 0 && self.tail.is_none() {
            self.tail = Some(TornTail {
                page: self.reader.pages,
                events_recovered: self.next_ordinal,
                trailing_bytes: tail_bytes,
                detail: "partial page at end of file".to_string(),
            });
        }
        Ok(false)
    }

}

impl Iterator for Events<'_> {
    type Item = Result<Event, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if self.page_events_left == 0 {
                match self.advance_page() {
                    Ok(true) => {}
                    Ok(false) => return None,
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            }
            let page_idx = self.page - 1;
            let res = decode_record(
                &self.buf[..self.payload_end],
                &mut self.pos,
                &mut self.dict,
                &mut self.prev_time,
            );
            let ev = match res {
                Ok(ev) => ev,
                Err(detail) => {
                    self.failed = true;
                    return Some(Err(StoreError::BadRecord {
                        page: page_idx,
                        detail,
                    }));
                }
            };
            self.page_events_left -= 1;
            let ordinal = self.next_ordinal;
            self.next_ordinal += 1;
            if ordinal < self.skip_to {
                continue;
            }
            if let Some(floor) = self.time_floor {
                if ev.time < floor {
                    continue;
                }
                self.time_floor = None;
            }
            self.decoded += 1;
            return Some(Ok(ev));
        }
    }
}

/// Decodes one record from `payload[*pos..]`, advancing the delta base.
fn decode_record(
    payload: &[u8],
    pos: &mut usize,
    dict: &mut Vec<String>,
    prev_time: &mut u64,
) -> Result<Event, String> {
    let delta = unzigzag(get_varint(payload, pos)?);
    let time = prev_time.wrapping_add(delta);
    *prev_time = time;
    let Some(&cat) = payload.get(*pos) else {
        return Err("record truncated at category".to_string());
    };
    *pos += 1;
    let ds = get_varint(payload, pos)?;
    let ds = u16::try_from(ds).map_err(|_| format!("ds {ds} exceeds u16"))?;
    let event = get_str(payload, pos, dict)?;
    let n_fields = get_varint(payload, pos)? as usize;
    if n_fields > 256 {
        return Err(format!("implausible field count {n_fields}"));
    }
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let key = get_str(payload, pos, dict)?;
        let Some(&tag) = payload.get(*pos) else {
            return Err("record truncated at field tag".to_string());
        };
        *pos += 1;
        let val = match tag {
            TAG_U => Val::U(get_varint(payload, pos)?),
            TAG_F => {
                let Some(bytes) = payload.get(*pos..*pos + 8) else {
                    return Err("record truncated at f64".to_string());
                };
                *pos += 8;
                Val::F(f64::from_bits(u64::from_le_bytes(bytes.try_into().unwrap())))
            }
            TAG_S => Val::S(get_str(payload, pos, dict)?),
            TAG_B_TRUE => Val::B(true),
            TAG_B_FALSE => Val::B(false),
            other => return Err(format!("unknown field tag {other}")),
        };
        fields.push((key, val));
    }
    Ok(Event {
        cat,
        time,
        ds,
        event,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pard-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_events(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| Event {
                cat: (i % 7) as u8,
                time: 1000 + i * 17,
                ds: (i % 5) as u16,
                event: if i % 3 == 0 { "issue".into() } else { "retire".into() },
                fields: vec![
                    ("bank".to_string(), Val::U(i % 16)),
                    ("lat".to_string(), Val::F(0.25 * i as f64)),
                    ("kind".to_string(), Val::S(if i % 2 == 0 { "rd" } else { "wr" }.into())),
                    ("hot".to_string(), Val::B(i % 4 == 0)),
                ],
            })
            .collect()
    }

    fn write_all(path: &std::path::Path, config: StoreConfig, events: &[Event]) {
        let mut w = TraceWriter::create(path, config).unwrap();
        for ev in events {
            w.append(ev.cat, ev.time, ev.ds, &ev.event, ev.field_refs()).unwrap();
        }
        w.finish().unwrap();
    }

    fn read_all(path: &std::path::Path) -> (Vec<Event>, Option<TornTail>) {
        let mut r = TraceReader::open(path).unwrap();
        let mut cursor = r.events();
        let mut out = Vec::new();
        for ev in &mut cursor {
            out.push(ev.unwrap());
        }
        let tail = cursor.torn_tail().cloned();
        (out, tail)
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        let mut buf = Vec::new();
        let samples = [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX];
        for &v in &samples {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Wrapping deltas survive sign and magnitude extremes.
        for (a, b) in [(5u64, 3u64), (3, 5), (0, u64::MAX), (u64::MAX, 0)] {
            let delta = b.wrapping_sub(a);
            assert_eq!(a.wrapping_add(unzigzag(zigzag(delta))), b);
        }
        assert!(get_varint(&[0x80], &mut 0).is_err(), "truncated varint must fail");
    }

    #[test]
    fn roundtrip_across_many_pages_preserves_every_event() {
        let path = tmp("roundtrip.ptr");
        // Small pages force hundreds of page boundaries and dict resets.
        let config = StoreConfig { page_size: MIN_PAGE_SIZE, pool_pages: 3 };
        let events = sample_events(5000);
        write_all(&path, config, &events);
        let (decoded, tail) = read_all(&path);
        assert!(tail.is_none(), "clean file must have no torn tail: {tail:?}");
        assert_eq!(decoded.len(), events.len());
        assert_eq!(decoded, events);
        // The store must actually be compact: well under the rendered size.
        let bytes = std::fs::metadata(&path).unwrap().len();
        assert!(
            (bytes as usize) < events.len() * 40,
            "{bytes} bytes for {} events is not a compact encoding",
            events.len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_makes_all_events_visible_midstream() {
        let path = tmp("flush.ptr");
        let mut w = TraceWriter::create(&path, StoreConfig::default()).unwrap();
        let events = sample_events(10);
        for ev in &events[..7] {
            w.append(ev.cat, ev.time, ev.ds, &ev.event, ev.field_refs()).unwrap();
        }
        w.flush().unwrap();
        let (decoded, _) = read_all(&path);
        assert_eq!(decoded.len(), 7, "flush must publish the partial page");
        // Appends continue on a fresh page; the final file has all 10.
        for ev in &events[7..] {
            w.append(ev.cat, ev.time, ev.ds, &ev.event, ev.field_refs()).unwrap();
        }
        w.finish().unwrap();
        drop(w);
        let (decoded, _) = read_all(&path);
        assert_eq!(decoded, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_page_recovers_prefix_and_reports_tail() {
        let path = tmp("torn.ptr");
        let config = StoreConfig { page_size: MIN_PAGE_SIZE, pool_pages: 2 };
        let events = sample_events(1200);
        write_all(&path, config, &events);
        let full = read_all(&path).0;
        assert_eq!(full.len(), events.len());

        // Truncate mid-way through the final page: the reader must yield
        // every event of the complete pages and describe the tail.
        let len = std::fs::metadata(&path).unwrap().len();
        let torn_len = len - MIN_PAGE_SIZE as u64 / 2;
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(torn_len).unwrap();
        drop(f);

        let (decoded, tail) = read_all(&path);
        let tail = tail.expect("truncation mid-page must be reported");
        assert!(decoded.len() < events.len());
        assert_eq!(decoded.as_slice(), &events[..decoded.len()], "recovered prefix must be exact");
        assert_eq!(tail.events_recovered, decoded.len() as u64);
        assert!(tail.trailing_bytes > 0);

        // Corrupting a page in the *middle* is not a torn tail: hard error.
        write_all(&path, config, &events);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid_page_payload = 2 * MIN_PAGE_SIZE + PAGE_HEADER_LEN + 4;
        bytes[mid_page_payload] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut r = TraceReader::open(&path).unwrap();
        let err = r
            .events()
            .find_map(|res| res.err())
            .expect("mid-file corruption must surface an error");
        assert!(matches!(err, StoreError::CorruptPage { page: 1, .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seek_by_ordinal_and_time_match_full_scan_suffix() {
        let path = tmp("seek.ptr");
        let config = StoreConfig { page_size: MIN_PAGE_SIZE, pool_pages: 4 };
        let events = sample_events(3000);
        write_all(&path, config, &events);
        let mut r = TraceReader::open(&path).unwrap();

        for &ord in &[0u64, 1, 17, 1499, 2999] {
            let suffix: Vec<Event> = r
                .seek_event(ord)
                .unwrap()
                .map(Result::unwrap)
                .collect();
            assert_eq!(suffix.as_slice(), &events[ord as usize..], "ordinal {ord}");
        }
        assert_eq!(r.seek_event(3000).unwrap().count(), 0, "past-the-end seek is empty");

        // Time seek: first event with time >= t.
        let t = events[1234].time;
        let suffix: Vec<Event> = r.seek_time(t).unwrap().map(Result::unwrap).collect();
        assert_eq!(suffix.as_slice(), &events[1234..]);
        let suffix: Vec<Event> = r.seek_time(t + 1).unwrap().map(Result::unwrap).collect();
        assert_eq!(suffix.as_slice(), &events[1235..]);
        assert_eq!(
            r.seek_time(0).unwrap().map(Result::unwrap).count(),
            events.len(),
            "seek before the first event replays everything"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_bad_configs_and_oversized_events() {
        assert!(TraceWriter::create(
            tmp("bad.ptr"),
            StoreConfig { page_size: 16, pool_pages: 1 }
        )
        .is_err());
        assert!(TraceWriter::create(
            tmp("bad.ptr"),
            StoreConfig { page_size: DEFAULT_PAGE_SIZE, pool_pages: 0 }
        )
        .is_err());

        let path = tmp("oversize.ptr");
        let mut w =
            TraceWriter::create(&path, StoreConfig { page_size: MIN_PAGE_SIZE, pool_pages: 1 })
                .unwrap();
        let huge = "x".repeat(2 * MIN_PAGE_SIZE);
        let err = w
            .append(0, 0, 0, &huge, std::iter::empty())
            .expect_err("an event bigger than a page must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_rejects_non_store_files() {
        let path = tmp("not-a-store");
        std::fs::write(&path, b"{\"time\":1}\n").unwrap();
        assert!(matches!(TraceReader::open(&path), Err(StoreError::BadHeader(_))));
        std::fs::remove_file(&path).ok();
    }
}
