//! A tiny seeded property-testing harness.
//!
//! The workspace's invariant tests used to run under `proptest`; this
//! module keeps their shape — "for many random inputs, assert an
//! invariant" — on the first-party [`rng`](crate::rng) so the whole test
//! suite runs offline and bit-reproducibly.
//!
//! Each case gets an RNG derived from `(test name, case index)`, so a
//! failure report like ``case 17 of `allocator_disjoint` `` is enough to
//! replay exactly that input in a debugger.
//!
//! ```
//! use pard_sim::check::{self, cases};
//! use pard_sim::rng::Rng;
//!
//! cases("doc_example", 32, |rng| {
//!     let v = check::vec_of(rng, 1..10, |r| r.gen_range(0u64..100));
//!     assert!(!v.is_empty());
//! });
//! ```

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{stream_rng, Rng, Xoshiro256pp};

/// Default number of cases per property, matching proptest's 256 while
/// staying fast enough for `--release`-less CI runs.
pub const DEFAULT_CASES: u64 = 256;

/// Runs `f` once per case with a deterministic per-case RNG.
///
/// `name` must be unique per property (the test function's name is the
/// convention); it seeds the case stream. A panic inside `f` is re-raised
/// after printing which case failed.
pub fn cases<F>(name: &str, n: u64, mut f: F)
where
    F: FnMut(&mut Xoshiro256pp),
{
    for case in 0..n {
        let mut rng = stream_rng(case, name);
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property `{name}` failed at case {case} of {n} (seed {case})");
            resume_unwind(payload);
        }
    }
}

/// A random-length vector with elements drawn by `elem`.
pub fn vec_of<T, R: Rng, F: FnMut(&mut R) -> T>(
    rng: &mut R,
    len: Range<usize>,
    mut elem: F,
) -> Vec<T> {
    let n = rng.gen_range(len);
    (0..n).map(|_| elem(rng)).collect()
}

/// A random string of `len` characters drawn uniformly from `alphabet`.
///
/// # Panics
///
/// Panics if `alphabet` is empty.
pub fn string_of<R: Rng>(rng: &mut R, alphabet: &str, len: Range<usize>) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    assert!(!chars.is_empty(), "alphabet must be non-empty");
    let n = rng.gen_range(len);
    (0..n)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

/// A random `[u8; N]` array.
pub fn bytes<const N: usize, R: Rng>(rng: &mut R) -> [u8; N] {
    let mut out = [0u8; N];
    for b in &mut out {
        *b = rng.gen_range(0u8..=255);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        cases("det", 10, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        cases("det", 10, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 10);
    }

    #[test]
    fn distinct_names_give_distinct_streams() {
        let mut a = Vec::new();
        cases("stream_a", 4, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        cases("stream_b", 4, |rng| b.push(rng.next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn generators_respect_bounds() {
        cases("bounds", 64, |rng| {
            let v = vec_of(rng, 1..20, |r| r.gen_range(5u64..10));
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&x| (5..10).contains(&x)));
            let s = string_of(rng, "abc", 0..5);
            assert!(s.len() < 5);
            assert!(s.chars().all(|c| "abc".contains(c)));
            let arr: [u8; 6] = bytes(rng);
            let _ = arr;
        });
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        cases("failing", 4, |_| panic!("deliberate"));
    }
}
