//! Deterministic random-number plumbing — fully first-party.
//!
//! Every stochastic element of the simulation (workload address streams,
//! Poisson arrivals, Zipf key draws, …) derives its RNG from a single
//! experiment seed plus a stable stream name. Two runs with the same seed
//! are bit-identical; changing the seed re-randomises every stream
//! independently.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through a
//! **SplitMix64** expansion of a 64-bit seed — both implemented in-tree so
//! the workspace builds with zero registry dependencies. The [`Rng`] trait
//! is the only interface the rest of the workspace programs against.

use std::ops::{Range, RangeInclusive};

/// Mixes the bits of `x` with the SplitMix64 finalizer.
///
/// # Example
///
/// ```
/// assert_ne!(pard_sim::rng::splitmix64(1), pard_sim::rng::splitmix64(2));
/// ```
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a hash of a byte string; used to turn stream names into seeds.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The SplitMix64 sequential generator: the reference seed-expander for
/// the xoshiro family, and a fine tiny generator in its own right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advances the state and returns the next output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's generator: **xoshiro256++**.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality, and
/// a handful of arithmetic instructions per output — everything a
/// deterministic architectural simulator wants.
///
/// # Example
///
/// ```
/// use pard_sim::rng::{Rng, Xoshiro256pp};
/// let mut a = Xoshiro256pp::seed_from_u64(42);
/// let mut b = Xoshiro256pp::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Xoshiro256pp { s }
    }

    /// Expands a 64-bit seed into full state via SplitMix64, as the
    /// xoshiro reference code recommends.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The minimal RNG interface the workspace programs against.
///
/// Everything derives from [`next_u64`](Rng::next_u64); the provided
/// methods cover the uniform draws the simulator needs. Generic code takes
/// `&mut impl Rng` so tests can substitute counters or replay tapes.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from `range`, which may be any of the integer
    /// `lo..hi` / `lo..=hi` ranges or an `f64` half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<S: UniformRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform element using `rng`.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Maps 64 random bits onto `0..span` without modulo bias worth caring
/// about (Lemire's multiply-shift; bias < 2^-64 · span).
#[inline]
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over an empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // The full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + mul_shift(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over an empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Creates a deterministic [`Xoshiro256pp`] for `(seed, stream)`.
///
/// Different stream names yield statistically independent sequences for the
/// same experiment seed.
///
/// # Example
///
/// ```
/// use pard_sim::rng::Rng;
/// let mut a = pard_sim::rng::stream_rng(42, "core0");
/// let mut b = pard_sim::rng::stream_rng(42, "core0");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub fn stream_rng(seed: u64, stream: &str) -> Xoshiro256pp {
    let mixed = splitmix64(seed ^ fnv1a(stream.as_bytes()));
    Xoshiro256pp::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_reproducible() {
        let mut a = stream_rng(7, "dram");
        let mut b = stream_rng(7, "dram");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = stream_rng(7, "core0");
        let mut b = stream_rng(7, "core1");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = stream_rng(1, "x");
        let mut b = stream_rng(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), fnv1a(b"a"));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..2000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3u16..=5);
            assert!((3..=5).contains(&w));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_half_open_unit() {
        let mut r = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..2000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut r = Xoshiro256pp::seed_from_u64(2);
        // Must not panic or hang; spans the whole domain.
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        let _ = r.gen_range(5u64..5);
    }

    #[test]
    fn trait_object_through_mut_ref() {
        fn draw(mut rng: impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut r = Xoshiro256pp::seed_from_u64(4);
        let a = draw(&mut r);
        let b = draw(&mut r);
        assert_ne!(a, b);
    }
}
