//! Deterministic random-number plumbing.
//!
//! Every stochastic element of the simulation (workload address streams,
//! Poisson arrivals, Zipf key draws, …) derives its RNG from a single
//! experiment seed plus a stable stream name. Two runs with the same seed
//! are bit-identical; changing the seed re-randomises every stream
//! independently.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Mixes the bits of `x` with the SplitMix64 finalizer.
///
/// # Example
///
/// ```
/// assert_ne!(pard_sim::rng::splitmix64(1), pard_sim::rng::splitmix64(2));
/// ```
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a hash of a byte string; used to turn stream names into seeds.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Creates a deterministic [`SmallRng`] for `(seed, stream)`.
///
/// Different stream names yield statistically independent sequences for the
/// same experiment seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = pard_sim::rng::stream_rng(42, "core0");
/// let mut b = pard_sim::rng::stream_rng(42, "core0");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn stream_rng(seed: u64, stream: &str) -> SmallRng {
    let mixed = splitmix64(seed ^ fnv1a(stream.as_bytes()));
    SmallRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_is_reproducible() {
        let xs: Vec<u64> = (0..8).map(|_| 0).collect();
        let mut a = stream_rng(7, "dram");
        let mut b = stream_rng(7, "dram");
        let va: Vec<u64> = xs.iter().map(|_| a.gen()).collect();
        let vb: Vec<u64> = xs.iter().map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = stream_rng(7, "core0");
        let mut b = stream_rng(7, "core1");
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = stream_rng(1, "x");
        let mut b = stream_rng(2, "x");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), fnv1a(b"a"));
    }
}
